//! Region profiling (paper §3 and Fig. 5): runs the Knuth-Bendix-style
//! benchmark with the region profiler enabled and prints, per collection,
//! the words held by the largest regions.
//!
//! ```sh
//! cargo run --release --example region_profile
//! ```

use kit::{Compiler, Mode};
use kit_bench::by_name;
use kit_runtime::RtConfig;

fn main() -> Result<(), kit::Error> {
    let bench = by_name("kitkb").expect("kitkb benchmark");
    let src = bench.source_scaled(30);
    let cfg = RtConfig {
        initial_pages: 16,
        ..RtConfig::rgt()
    };
    let out = Compiler::new(Mode::Rgt)
        .with_config(cfg)
        .with_profiling()
        .run_source(&src)?;

    println!(
        "kitkb finished: result {}, {} collections",
        out.result, out.stats.gc_count
    );
    // Rank regions by peak footprint, like the ML Kit profiler's legend.
    let mut peaks: std::collections::BTreeMap<u32, u64> = Default::default();
    for s in &out.profile {
        for (&r, &w) in &s.by_region {
            let e = peaks.entry(r).or_default();
            *e = (*e).max(w);
        }
    }
    let mut top: Vec<(u32, u64)> = peaks.into_iter().collect();
    top.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
    top.truncate(4);

    println!("\nper-sample words in the {} largest regions:", top.len());
    print!("{:>7}", "sample");
    for (r, _) in &top {
        print!("{:>12}", format!("r{r}"));
    }
    println!();
    for s in &out.profile {
        print!("{:>7}", s.time);
        for (r, _) in &top {
            print!("{:>12}", s.by_region.get(r).copied().unwrap_or(0));
        }
        println!();
    }
    println!(
        "\n(the global region would grow without bound under pure region\n\
         inference for this program; the collector keeps it in check — the\n\
         paper's Fig. 5 observation)"
    );
    Ok(())
}
