//! Runs one allocation-heavy program under all execution modes of the
//! paper (§1.2) plus the generational baseline, showing how the memory
//! discipline changes the outcome while the result stays identical:
//!
//! * `r`   — untagged regions: fastest, no collections;
//! * `rt`  — tagged regions: the cost of tags (Table 1);
//! * `gt`  — one global region + Cheney: everything is the collector's
//!   problem (many collections, Table 2);
//! * `rgt` — regions + collector: few collections;
//! * baseline — generational collector, no stack allocation (Table 4).
//!
//! ```sh
//! cargo run --release --example gc_modes
//! ```

use kit::{Compiler, Mode};
use kit_runtime::RtConfig;

const PROGRAM: &str = r#"
fun build 0 = nil
  | build n = (n, n * n) :: build (n - 1)
fun sum (nil, acc) = acc
  | sum ((a, b) :: rest, acc) = sum (rest, acc + a + b)
fun rounds (0, acc) = acc
  | rounds (k, acc) = rounds (k - 1, acc + sum (build 400, 0))
val it = rounds (120, 0)
"#;

fn main() -> Result<(), kit::Error> {
    println!(
        "{:<9} {:>10} {:>12} {:>7} {:>12} {:>10}",
        "mode", "result", "instrs", "#GC", "words", "peak(B)"
    );
    for mode in Mode::ALL_WITH_BASELINE {
        let cfg = RtConfig {
            initial_pages: 32,
            ..RtConfig::rgt()
        };
        let out = Compiler::new(mode).with_config(cfg).run_source(PROGRAM)?;
        println!(
            "{:<9} {:>10} {:>12} {:>7} {:>12} {:>10}",
            mode.suffix(),
            out.result,
            out.instructions,
            out.stats.gc_count,
            out.stats.words_allocated,
            out.stats.peak_bytes
        );
    }
    Ok(())
}
