//! Quickstart: compile and run a MiniML program under regions + garbage
//! collection (`rgt`, the paper's combined mode) and inspect the runtime
//! statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kit::{Compiler, Mode};

const PROGRAM: &str = r#"
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)

fun squares nil = nil
  | squares (x :: xs) = x * x :: squares xs

val nums = squares (upto (1, 100))
val _ = print ("sum of squares: " ^ itos (foldl op+ 0 nums) ^ "\n")
val it = fib 20
"#;

fn main() -> Result<(), kit::Error> {
    let out = Compiler::new(Mode::Rgt).run_source(PROGRAM)?;
    print!("{}", out.output);
    println!("result         = {}", out.result);
    println!("instructions   = {}", out.instructions);
    println!("words alloc'd  = {}", out.stats.words_allocated);
    println!("regions pushed = {}", out.stats.regions_created);
    println!("regions popped = {}", out.stats.regions_popped);
    println!("collections    = {}", out.stats.gc_count);
    println!("peak memory    = {} bytes", out.stats.peak_bytes);
    Ok(())
}
