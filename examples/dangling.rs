//! The paper's §2.6 example: a closure captures a pair it never uses.
//!
//! Under pure region inference (`r` mode) the pair's region may be
//! deallocated before the closure is applied — a *safe* dangling pointer,
//! legal exactly because the program never dereferences it. With the
//! collector enabled (`rgt`) region inference is weakened so the captured
//! pair lives at least as long as the closure; otherwise the collector
//! would trace a dangling pointer.
//!
//! ```sh
//! cargo run --example dangling
//! ```

use kit::{Compiler, Mode};

const PROGRAM: &str = r#"
fun f x = 17
fun g v = fn y => f v + y
val h = g (2, 3)
val it = h 5
"#;

fn main() -> Result<(), kit::Error> {
    for mode in [Mode::R, Mode::Rgt] {
        let out = Compiler::new(mode).run_source(PROGRAM)?;
        println!(
            "{:<4} result {}  (regions created {}, popped {}, collections {})",
            mode.suffix(),
            out.result,
            out.stats.regions_created,
            out.stats.regions_popped,
            out.stats.gc_count
        );
    }
    println!(
        "\nBoth modes print 22. In `r` the pair (2,3) may die before `h`\n\
         runs (f ignores it); in `rgt` the §2.6 weakening keeps its region\n\
         alive so the collector never sees a dangling pointer."
    );
    Ok(())
}
