//! Cross-crate integration tests of the full pipeline and of the paper's
//! qualitative claims, at small scale so they run in CI.

use kit::{Compiler, Mode};
use kit_bench::by_name;
use kit_runtime::RtConfig;

/// §4.2, third observation: `t_r < t_rgt` is about machine time, but its
/// deterministic core — mode `r` executes no collection work at all — must
/// hold exactly.
#[test]
fn regions_alone_never_collect() {
    for name in ["msort", "kitlife", "professor", "tyan"] {
        let b = by_name(name).unwrap();
        let src = b.source_scaled(b.test_scale);
        for mode in [Mode::R, Mode::Rt] {
            let out = Compiler::new(mode).run_source(&src).unwrap();
            assert_eq!(out.stats.gc_count, 0, "{name} [{mode}]");
            assert_eq!(out.stats.gc_copied_words, 0, "{name} [{mode}]");
        }
    }
}

/// Region-friendly programs reclaim essentially everything through region
/// inference (Table 3: msort/kitlife/kitkb ≈ 100%).
#[test]
fn region_friendly_programs_reclaim_by_regions() {
    let b = by_name("msort").unwrap();
    let src = b.source_scaled(1500);
    let cfg = RtConfig {
        initial_pages: 32,
        ..RtConfig::rgt()
    };
    let out = Compiler::new(Mode::Rgt)
        .with_config(cfg)
        .run_source(&src)
        .unwrap();
    if let Some(ri) = out.stats.ri_fraction() {
        assert!(
            ri > 0.5,
            "msort should be mostly region-reclaimed, got {ri:.2}"
        );
    }
}

/// Region-hostile programs lean on the collector (Table 3: logic ≈ 0.1%
/// reclaimed by regions).
#[test]
fn region_hostile_programs_lean_on_gc() {
    let b = by_name("tyan").unwrap();
    let src = b.source_scaled(6);
    let cfg = RtConfig {
        initial_pages: 8,
        page_words_log2: 6,
        ..RtConfig::rgt()
    };
    let out = Compiler::new(Mode::Rgt)
        .with_config(cfg)
        .run_source(&src)
        .unwrap();
    assert!(
        out.stats.gc_count >= 2,
        "tyan should collect under a small heap"
    );
    let ri = out.stats.ri_fraction().expect("accounting");
    assert!(
        ri < 0.8,
        "tyan should not be mostly region-reclaimed, got {ri:.2}"
    );
}

/// The `gt` mode really degenerates to one global region: no region pops
/// besides the final teardown, every collection is a full Cheney pass.
#[test]
fn gt_mode_is_degenerate_region_stack() {
    let b = by_name("kitlife").unwrap();
    let src = b.source_scaled(b.test_scale);
    let out = Compiler::new(Mode::Gt).run_source(&src).unwrap();
    assert_eq!(
        out.stats.regions_created, 1,
        "gt mode must push exactly the global region"
    );
}

/// Mode `rgt` pops regions *and* collects — both reclamation mechanisms
/// are active simultaneously.
#[test]
fn rgt_combines_both_mechanisms() {
    let b = by_name("kitlife").unwrap();
    let src = b.source_scaled(8);
    let cfg = RtConfig {
        initial_pages: 8,
        page_words_log2: 6,
        ..RtConfig::rgt()
    };
    let out = Compiler::new(Mode::Rgt)
        .with_config(cfg)
        .run_source(&src)
        .unwrap();
    assert!(out.stats.regions_popped > 1, "regions must be popped");
    assert!(
        out.stats.gc_count > 0,
        "the collector must run under pressure"
    );
}

/// Heap-to-live ratio sweep (§4.4's time/memory knob): a larger ratio
/// must not increase the number of collections.
#[test]
fn heap_to_live_ratio_controls_collections() {
    let b = by_name("tyan").unwrap();
    let src = b.source_scaled(6);
    let mut counts = Vec::new();
    for ratio in [2.0, 4.0, 8.0] {
        let cfg = RtConfig {
            heap_to_live_ratio: ratio,
            initial_pages: 8,
            page_words_log2: 6,
            ..RtConfig::rgt()
        };
        let out = Compiler::new(Mode::Rgt)
            .with_config(cfg)
            .run_source(&src)
            .unwrap();
        counts.push(out.stats.gc_count);
    }
    assert!(
        counts[0] >= counts[1] && counts[1] >= counts[2],
        "collections must not increase with the ratio: {counts:?}"
    );
}

/// Page-size sweep (§2.4): all power-of-two page sizes execute correctly.
#[test]
fn page_size_sweep_is_sound() {
    let b = by_name("msort").unwrap();
    let src = b.source_scaled(200);
    let mut results = Vec::new();
    for log2 in [5u32, 7, 9, 11] {
        let cfg = RtConfig {
            page_words_log2: log2,
            initial_pages: 8,
            ..RtConfig::rgt()
        };
        let out = Compiler::new(Mode::Rgt)
            .with_config(cfg)
            .run_source(&src)
            .unwrap();
        results.push(out.result);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}

/// The profiler sees the paper's Fig. 5 shape on kitkb: some region is
/// large and the collector keeps sampling it.
#[test]
fn profiler_samples_regions() {
    let b = by_name("kitkb").unwrap();
    let src = b.source_scaled(10);
    let cfg = RtConfig {
        initial_pages: 8,
        page_words_log2: 6,
        ..RtConfig::rgt()
    };
    let out = Compiler::new(Mode::Rgt)
        .with_config(cfg)
        .with_profiling()
        .run_source(&src)
        .unwrap();
    assert!(!out.profile.is_empty(), "profiling must record samples");
    assert!(out.profile.iter().any(|s| !s.by_region.is_empty()));
}

/// Bytecode is reusable: compile once, run many times, identical results.
#[test]
fn compiled_programs_are_reusable() {
    let compiler = Compiler::new(Mode::Rgt);
    let prog = compiler
        .compile_source("val it = foldl op+ 0 (upto (1, 1000))")
        .unwrap();
    let a = compiler.run_program(&prog).unwrap();
    let b = compiler.run_program(&prog).unwrap();
    assert_eq!(a.result, b.result);
    assert_eq!(a.instructions, b.instructions, "execution is deterministic");
}
