//! Randomized property tests, driven by the in-tree SplitMix64 generator
//! (the build is offline, so `proptest` is unavailable; the properties and
//! case counts mirror the original proptest suite, and the fixed seeds
//! make every run bit-identical).
//!
//! 1. *Differential execution*: randomly generated well-typed MiniML
//!    programs evaluate identically in every execution mode (including
//!    the generational baseline, including under heap pressure) and in
//!    the reference evaluator.
//! 2. *Runtime invariants*: random allocate/pop/collect scripts against
//!    the region runtime conserve pages and preserve value integrity.

use kit::oracle::run_oracle;
use kit::{Compiler, Mode};
use kit_bench::programs::SplitMix64;
use kit_runtime::gc;
use kit_runtime::value::{is_ptr, Tag};
use kit_runtime::{RegionId, Rt, RtConfig};

// ------------------------------------------------------- program generator

/// A random leaf of type int, drawn from constants and `x0..x{vars}`.
fn leaf(rng: &mut SplitMix64, vars: usize) -> String {
    if vars > 0 && rng.below(3) == 0 {
        format!("x{}", rng.below(vars as u64))
    } else {
        let n = rng.range_i64(-20, 100);
        if n < 0 {
            format!("~{}", -n)
        } else {
            n.to_string()
        }
    }
}

/// A random expression of type int, using variables `x0..x{vars}`. The
/// production weights match the original proptest strategy.
fn int_expr(rng: &mut SplitMix64, vars: usize, depth: u32) -> String {
    if depth == 0 {
        return leaf(rng, vars);
    }
    let a = int_expr(rng, vars, depth - 1);
    let b = int_expr(rng, vars, depth - 1);
    match rng.below(14) {
        0..=3 => leaf(rng, vars),
        4..=6 => {
            let op = ["-", "+", "*"][rng.below(3) as usize];
            format!("({a} {op} {b})")
        }
        7..=8 => {
            let c = int_expr(rng, vars, depth - 1);
            format!("(if {c} < {a} then {a} else {b})")
        }
        9 => format!("(fst ({a}, {b}) + snd ({b}, {a}))"),
        10 => format!("(length [{a}, {b}] + hd [{a}])"),
        11 => format!("(let val y = {a} in y + {b} end)"),
        12 => format!("((fn q => q + {b}) {a})"),
        _ => {
            let l = leaf(rng, vars);
            format!("(foldl op+ 0 (map (fn z => z + 1) [{l}, 2, 3]))")
        }
    }
}

/// A small program: a couple of `val` bindings and an int result.
fn program(rng: &mut SplitMix64) -> String {
    let a = int_expr(rng, 0, 2);
    let b = int_expr(rng, 1, 2);
    let c = int_expr(rng, 2, 3);
    format!("val x0 = {a}\nval x1 = {b}\nval it = {c}\n")
}

#[test]
fn random_programs_agree_across_modes() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for case in 0..64 {
        let src = program(&mut rng);
        let oracle = match run_oracle(&src, Some(10_000_000)) {
            Ok(o) => o,
            // Overflow/Div are legitimate outcomes; modes must agree on them.
            Err(kit::Error::Run(e)) => {
                for mode in Mode::ALL_WITH_BASELINE {
                    let r = Compiler::new(mode).with_fuel(10_000_000).run_source(&src);
                    match r {
                        Err(kit::Error::Run(e2)) => {
                            assert_eq!(e2, e, "case {case} mode {mode} on\n{src}")
                        }
                        other => {
                            panic!("case {case} {mode}: expected {e}, got {other:?} for\n{src}")
                        }
                    }
                }
                continue;
            }
            Err(e) => panic!("case {case} oracle: {e}\n{src}"),
        };
        for mode in Mode::ALL_WITH_BASELINE {
            let out = Compiler::new(mode)
                .with_fuel(10_000_000)
                .run_source(&src)
                .unwrap_or_else(|e| panic!("case {case} {mode}: {e}\n{src}"));
            assert_eq!(
                out.result, oracle.result,
                "case {case} mode {mode} on\n{src}"
            );
        }
        // Heap pressure on the combined mode.
        let cfg = RtConfig {
            initial_pages: 4,
            page_words_log2: 6,
            ..RtConfig::rgt()
        };
        let out = Compiler::new(Mode::Rgt)
            .with_config(cfg)
            .with_fuel(10_000_000)
            .run_source(&src)
            .unwrap_or_else(|e| panic!("case {case} rgt pressure: {e}\n{src}"));
        assert_eq!(
            out.result, oracle.result,
            "case {case} rgt pressure on\n{src}"
        );
    }
}

// ------------------------------------------------------- runtime invariants

#[derive(Debug, Clone)]
enum Op {
    Push,
    Pop,
    AllocList(u16),
    Collect,
}

fn script(rng: &mut SplitMix64) -> Vec<Op> {
    let len = 1 + rng.below(59) as usize;
    (0..len)
        .map(|_| match rng.below(9) {
            0..=1 => Op::Push,
            2..=3 => Op::Pop,
            4..=7 => Op::AllocList(1 + rng.below(59) as u16),
            _ => Op::Collect,
        })
        .collect()
}

/// Random region scripts: pages are conserved, live data survives
/// collections intact, and popped regions return their pages.
#[test]
fn region_scripts_conserve_pages() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for case in 0..128 {
        let ops = script(&mut rng);
        let mut rt = Rt::new(RtConfig {
            initial_pages: 8,
            page_words_log2: 6,
            ..RtConfig::rgt()
        });
        let base = rt.letregion(0);
        // One tracked list in the base region; its checksum must survive.
        let mut expected = 0i64;
        let mut list = rt.tag_int(0);
        rt.stack.push(list);
        let root = rt.stack.len() - 1;
        let mut depth = 1;
        for op in &ops {
            match op {
                Op::Push => {
                    rt.letregion(depth);
                    depth += 1;
                }
                Op::Pop => {
                    if depth > 1 {
                        rt.endregion();
                        depth -= 1;
                    }
                }
                Op::AllocList(n) => {
                    // Garbage in the newest region, live cells in base.
                    let newest = RegionId(depth - 1);
                    for i in 0..*n {
                        let _ = rt.alloc_record(newest, &[rt.tag_int(i as i64)]);
                    }
                    list = rt.stack[root];
                    let head = rt.tag_int(*n as i64);
                    expected += *n as i64;
                    list = rt.alloc_boxed(base, Tag::con(1, 2), &[head, list]);
                    rt.stack[root] = list;
                }
                Op::Collect => {
                    gc::collect(&mut rt, &[root], &mut []);
                }
            }
            rt.check_page_conservation()
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{ops:?}"));
        }
        gc::collect(&mut rt, &[root], &mut []);
        rt.check_page_conservation()
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{ops:?}"));
        // Walk the list and check the checksum.
        let mut v = rt.stack[root];
        let mut sum = 0i64;
        while is_ptr(v) {
            sum += rt.untag_int(rt.field(v, 0));
            v = rt.field(v, 1);
        }
        assert_eq!(sum, expected, "case {case}: {ops:?}");
        rt.pop_regions_to(0);
        assert_eq!(rt.heap.free_pages(), rt.heap.total_pages(), "case {case}");
    }
}

/// Tag words round-trip through encode/decode for arbitrary field values.
#[test]
fn tags_round_trip() {
    let mut rng = SplitMix64::new(0x5EED_0003);
    for _ in 0..256 {
        let size = rng.below(0xFF_FFFF) as u32;
        let info = rng.below(0xFF_FFFF) as u32;
        let mark = rng.bool();
        for kind in [
            kit_runtime::value::Kind::Record,
            kit_runtime::value::Kind::Con,
            kit_runtime::value::Kind::Ref,
            kit_runtime::value::Kind::Exn,
        ] {
            let t = Tag {
                kind,
                size,
                info,
                mark,
            };
            assert_eq!(Tag::decode(t.encode()), t);
            assert_eq!(t.encode() & 1, 1);
        }
    }
}

/// Scalars round-trip for the full 63-bit int range.
#[test]
fn scalars_round_trip() {
    use kit_runtime::value::{scalar, scalar_val};
    let mut rng = SplitMix64::new(0x5EED_0004);
    for _ in 0..256 {
        let n = rng.range_i64(-(1i64 << 62), (1i64 << 62) - 1);
        assert_eq!(scalar_val(scalar(n)), n);
        assert!(!is_ptr(scalar(n)));
    }
}
