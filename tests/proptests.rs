//! Property-based tests.
//!
//! 1. *Differential execution*: randomly generated well-typed MiniML
//!    programs evaluate identically in every execution mode (including
//!    the generational baseline, including under heap pressure) and in
//!    the reference evaluator.
//! 2. *Runtime invariants*: random allocate/pop/collect scripts against
//!    the region runtime conserve pages and preserve value integrity.

use kit::oracle::run_oracle;
use kit::{Compiler, Mode};
use kit_runtime::gc;
use kit_runtime::value::{is_ptr, Tag};
use kit_runtime::{RegionId, Rt, RtConfig};
use proptest::prelude::*;

// ------------------------------------------------------- program generator

/// A generated expression of type int, using variables `x0..x{depth}`.
fn int_expr(vars: usize, depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        let mut leaves = vec![(-20i64..100).prop_map(|n| {
            if n < 0 { format!("~{}", -n) } else { n.to_string() }
        })
        .boxed()];
        if vars > 0 {
            leaves.push((0..vars).prop_map(|i| format!("x{i}")).boxed());
        }
        return proptest::strategy::Union::new(leaves).boxed();
    }
    let sub = int_expr(vars, depth - 1);
    let sub2 = int_expr(vars, depth - 1);
    let sub3 = int_expr(vars, depth - 1);
    prop_oneof![
        4 => int_expr(vars, 0),
        3 => (sub.clone(), sub2.clone(), "[-+*]")
            .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
        2 => (sub.clone(), sub2.clone(), sub3.clone())
            .prop_map(|(c, t, f)| format!("(if {c} < {t} then {t} else {f})")),
        1 => (sub.clone(), sub2.clone())
            .prop_map(|(a, b)| format!("(fst ({a}, {b}) + snd ({b}, {a}))")),
        1 => (sub.clone(), sub2.clone())
            .prop_map(|(a, b)| format!("(length [{a}, {b}] + hd [{a}])")),
        1 => (sub.clone(), sub2.clone())
            .prop_map(|(a, b)| {
                format!("(let val y = {a} in y + {b} end)")
            }),
        1 => (sub, sub2)
            .prop_map(|(a, b)| format!("((fn q => q + {b}) {a})")),
        1 => int_expr(vars, 0).prop_map(|a| {
            format!("(foldl op+ 0 (map (fn z => z + 1) [{a}, 2, 3]))")
        }),
    ]
    .boxed()
}

/// A small program: a couple of `val` bindings and an int result.
fn program() -> impl Strategy<Value = String> {
    (int_expr(0, 2), int_expr(1, 2), int_expr(2, 3)).prop_map(|(a, b, c)| {
        format!("val x0 = {a}\nval x1 = {b}\nval it = {c}\n")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_agree_across_modes(src in program()) {
        let oracle = match run_oracle(&src, Some(10_000_000)) {
            Ok(o) => o,
            // Overflow/Div are legitimate outcomes; modes must agree on them.
            Err(kit::Error::Run(e)) => {
                for mode in Mode::ALL_WITH_BASELINE {
                    let r = Compiler::new(mode).with_fuel(10_000_000).run_source(&src);
                    match r {
                        Err(kit::Error::Run(e2)) => prop_assert_eq!(&e2, &e),
                        other => {
                            return Err(TestCaseError::fail(format!(
                                "{mode}: expected {e}, got {other:?} for\n{src}"
                            )));
                        }
                    }
                }
                return Ok(());
            }
            Err(e) => return Err(TestCaseError::fail(format!("oracle: {e}\n{src}"))),
        };
        for mode in Mode::ALL_WITH_BASELINE {
            let out = Compiler::new(mode)
                .with_fuel(10_000_000)
                .run_source(&src)
                .map_err(|e| TestCaseError::fail(format!("{mode}: {e}\n{src}")))?;
            prop_assert_eq!(&out.result, &oracle.result, "mode {} on\n{}", mode, src);
        }
        // Heap pressure on the combined mode.
        let cfg = RtConfig { initial_pages: 4, page_words_log2: 6, ..RtConfig::rgt() };
        let out = Compiler::new(Mode::Rgt)
            .with_config(cfg)
            .with_fuel(10_000_000)
            .run_source(&src)
            .map_err(|e| TestCaseError::fail(format!("rgt pressure: {e}\n{src}")))?;
        prop_assert_eq!(&out.result, &oracle.result, "rgt pressure on\n{}", src);
    }
}

// ------------------------------------------------------- runtime invariants

#[derive(Debug, Clone)]
enum Op {
    Push,
    Pop,
    AllocList(u16),
    Collect,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(Op::Push),
            2 => Just(Op::Pop),
            4 => (1u16..60).prop_map(Op::AllocList),
            1 => Just(Op::Collect),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Random region scripts: pages are conserved, live data survives
    /// collections intact, and popped regions return their pages.
    #[test]
    fn region_scripts_conserve_pages(script in ops()) {
        let mut rt = Rt::new(RtConfig { initial_pages: 8, page_words_log2: 6, ..RtConfig::rgt() });
        let base = rt.letregion(0);
        // One tracked list in the base region; its checksum must survive.
        let mut expected = 0i64;
        let mut list = rt.tag_int(0);
        rt.stack.push(list);
        let root = rt.stack.len() - 1;
        let mut depth = 1;
        for op in script {
            match op {
                Op::Push => {
                    rt.letregion(depth as u32);
                    depth += 1;
                }
                Op::Pop => {
                    if depth > 1 {
                        rt.endregion();
                        depth -= 1;
                    }
                }
                Op::AllocList(n) => {
                    // Garbage in the newest region, live cells in base.
                    let newest = RegionId(depth - 1);
                    for i in 0..n {
                        let _ = rt.alloc_record(newest, &[rt.tag_int(i as i64)]);
                    }
                    list = rt.stack[root];
                    let head = rt.tag_int(n as i64);
                    expected += n as i64;
                    list = rt.alloc_boxed(base, Tag::con(1, 2), &[head, list]);
                    rt.stack[root] = list;
                }
                Op::Collect => {
                    gc::collect(&mut rt, &[root], &mut []);
                }
            }
            rt.check_page_conservation().map_err(TestCaseError::fail)?;
        }
        gc::collect(&mut rt, &[root], &mut []);
        rt.check_page_conservation().map_err(TestCaseError::fail)?;
        // Walk the list and check the checksum.
        let mut v = rt.stack[root];
        let mut sum = 0i64;
        while is_ptr(v) {
            sum += rt.untag_int(rt.field(v, 0));
            v = rt.field(v, 1);
        }
        prop_assert_eq!(sum, expected);
        rt.pop_regions_to(0);
        prop_assert_eq!(rt.heap.free_pages(), rt.heap.total_pages());
    }

    /// Tag words round-trip through encode/decode for arbitrary field
    /// values.
    #[test]
    fn tags_round_trip(size in 0u32..0xFF_FFFF, info in 0u32..0xFF_FFFF, mark in any::<bool>()) {
        for kind in [
            kit_runtime::value::Kind::Record,
            kit_runtime::value::Kind::Con,
            kit_runtime::value::Kind::Ref,
            kit_runtime::value::Kind::Exn,
        ] {
            let t = Tag { kind, size, info, mark };
            prop_assert_eq!(Tag::decode(t.encode()), t);
            prop_assert_eq!(t.encode() & 1, 1);
        }
    }

    /// Scalars round-trip for the full 63-bit int range.
    #[test]
    fn scalars_round_trip(n in (-(1i64 << 62))..((1i64 << 62) - 1)) {
        use kit_runtime::value::{scalar, scalar_val};
        prop_assert_eq!(scalar_val(scalar(n)), n);
        prop_assert!(!is_ptr(scalar(n)));
    }
}
