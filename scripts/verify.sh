#!/usr/bin/env bash
# Tier-1 verification gate (offline; no network access needed):
# formatting, lints as errors, release build, and the full test suite.
# Run from the repo root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> 4-way engine equivalence: fusion differential (release)"
cargo test --release -p kit-bench --test fusion -q

echo "==> 4-way engine equivalence: randomized differential (release)"
cargo test --release -p kit-bench --test randomized -q

echo "==> collector equivalence: parallel + sliced GC tests (release)"
cargo test --release -p kit-runtime -q gc

echo "==> soak: short config-fuzzing run (all modes, all engines;"
echo "    gc_workers fuzzed over {1,2,4}, slice budget fuzzed on/off)"
cargo run --release -p kit-bench --bin soak -- --cases 25 --seed 0x5EED0400

echo "==> soak: parallel collector pinned (gc_workers=4)"
cargo run --release -p kit-bench --bin soak -- \
    --cases 15 --seed 0x5EED0600 --gc-workers 4

echo "==> soak: full-surface generator (datatypes, arrays past the"
echo "    large-object threshold, strings, reals, refs, nested handlers;"
echo "    all modes, all engines, fuzzed workers/slice incl. combined)"
cargo run --release -p kit-bench --bin soak -- \
    --cases 25 --seed 0x5EED0800 --surface full

echo "==> bench-summary smoke run (2 programs, all four engines)"
cargo run --release -p kit-bench --bin bench-summary -- \
    --only fib,tak --modes r --samples 1 --out /tmp/bench_smoke.json
rm -f /tmp/bench_smoke.json

echo "==> kit-serve smoke: 64-session burst, mixed fuel/memory-quota"
echo "    outcomes, every served counter bit-identical to standalone"
cargo run --release -p kit-bench --bin loadgen -- \
    --sessions 64 --conns 8 --requests 256 --workers 4 \
    --mix 'fib:12,fib:12:fuel=1000,churn:10:pages=4' --check \
    --out /tmp/serve_smoke.json
rm -f /tmp/serve_smoke.json

echo "==> kit-serve chaos smoke: slowloris, mid-frame disconnects,"
echo "    malformed frames, stalled readers and connection churn next to"
echo "    a healthy mix; post-chaos burst must be exact, no worker/cache/"
echo "    connection leaks"
cargo run --release -p kit-bench --bin loadgen -- \
    --sessions 64 --conns 8 --requests 512 --workers 4 \
    --mix 'fib:12,churn:10' --chaos --chaos-secs 3 --check

echo "==> kit-serve flood + drain-under-load: 4x-capacity flood into a"
echo "    tiny queue sheds typed Overloaded while executed work stays"
echo "    bit-identical (serve test suite, release)"
cargo test --release -p kit-serve -q flood
cargo test --release -p kit-serve -q drain

echo "verify: OK"
