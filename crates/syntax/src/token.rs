//! Lexical tokens of MiniML.

use std::fmt;

/// A lexical token.
///
/// Keywords and symbolic reserved words are distinguished from identifiers
/// by the lexer; alphanumeric identifiers may include primes and
/// underscores, as in Standard ML.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Literals
    /// Integer literal (SML `~` negation is applied by the lexer).
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal with escapes resolved.
    Str(String),
    /// Character literal `#"c"`, exposed as its code point.
    Char(i64),
    /// Alphanumeric identifier.
    Ident(String),
    /// Type variable, e.g. `'a`.
    TyVar(String),

    // Keywords
    Val,
    Fun,
    Fn,
    Let,
    In,
    End,
    If,
    Then,
    Else,
    Case,
    Of,
    Datatype,
    Exception,
    Raise,
    Handle,
    Andalso,
    Orelse,
    While,
    Do,
    And,
    Not,
    True,
    False,
    Op,

    // Symbols
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Underscore,
    Equal,
    DArrow, // =>
    Arrow,  // ->
    Bar,    // |
    Colon,
    // Infix operators
    Plus,
    Minus,
    Times,
    Divide, // / (real division)
    Div,    // div
    Mod,    // mod
    Cons,   // ::
    Append, // @
    NotEqual,
    Less,
    LessEq,
    Greater,
    GreaterEq,
    Caret,   // ^ string concat
    Assign,  // :=
    Bang,    // !
    Compose, // o
    Tilde,   // ~ (negation)

    /// End of input.
    Eof,
}

impl Token {
    /// Returns the keyword token for `word`, if it is a reserved word.
    pub fn keyword(word: &str) -> Option<Token> {
        Some(match word {
            "val" => Token::Val,
            "fun" => Token::Fun,
            "fn" => Token::Fn,
            "let" => Token::Let,
            "in" => Token::In,
            "end" => Token::End,
            "if" => Token::If,
            "then" => Token::Then,
            "else" => Token::Else,
            "case" => Token::Case,
            "of" => Token::Of,
            "datatype" => Token::Datatype,
            "exception" => Token::Exception,
            "raise" => Token::Raise,
            "handle" => Token::Handle,
            "andalso" => Token::Andalso,
            "orelse" => Token::Orelse,
            "while" => Token::While,
            "do" => Token::Do,
            "and" => Token::And,
            "not" => Token::Not,
            "true" => Token::True,
            "false" => Token::False,
            "op" => Token::Op,
            "div" => Token::Div,
            "mod" => Token::Mod,
            "o" => Token::Compose,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(n) => write!(f, "{n}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Char(c) => write!(f, "#\"{}\"", (*c as u8) as char),
            Token::Ident(s) => write!(f, "{s}"),
            Token::TyVar(s) => write!(f, "'{s}"),
            Token::Val => write!(f, "val"),
            Token::Fun => write!(f, "fun"),
            Token::Fn => write!(f, "fn"),
            Token::Let => write!(f, "let"),
            Token::In => write!(f, "in"),
            Token::End => write!(f, "end"),
            Token::If => write!(f, "if"),
            Token::Then => write!(f, "then"),
            Token::Else => write!(f, "else"),
            Token::Case => write!(f, "case"),
            Token::Of => write!(f, "of"),
            Token::Datatype => write!(f, "datatype"),
            Token::Exception => write!(f, "exception"),
            Token::Raise => write!(f, "raise"),
            Token::Handle => write!(f, "handle"),
            Token::Andalso => write!(f, "andalso"),
            Token::Orelse => write!(f, "orelse"),
            Token::While => write!(f, "while"),
            Token::Do => write!(f, "do"),
            Token::And => write!(f, "and"),
            Token::Not => write!(f, "not"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Op => write!(f, "op"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Underscore => write!(f, "_"),
            Token::Equal => write!(f, "="),
            Token::DArrow => write!(f, "=>"),
            Token::Arrow => write!(f, "->"),
            Token::Bar => write!(f, "|"),
            Token::Colon => write!(f, ":"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Times => write!(f, "*"),
            Token::Divide => write!(f, "/"),
            Token::Div => write!(f, "div"),
            Token::Mod => write!(f, "mod"),
            Token::Cons => write!(f, "::"),
            Token::Append => write!(f, "@"),
            Token::NotEqual => write!(f, "<>"),
            Token::Less => write!(f, "<"),
            Token::LessEq => write!(f, "<="),
            Token::Greater => write!(f, ">"),
            Token::GreaterEq => write!(f, ">="),
            Token::Caret => write!(f, "^"),
            Token::Assign => write!(f, ":="),
            Token::Bang => write!(f, "!"),
            Token::Compose => write!(f, "o"),
            Token::Tilde => write!(f, "~"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(Token::keyword("val"), Some(Token::Val));
        assert_eq!(Token::keyword("div"), Some(Token::Div));
        assert_eq!(Token::keyword("foo"), None);
    }

    #[test]
    fn display_round_trips_symbols() {
        assert_eq!(Token::DArrow.to_string(), "=>");
        assert_eq!(Token::Cons.to_string(), "::");
        assert_eq!(Token::Char(97).to_string(), "#\"a\"");
    }
}
