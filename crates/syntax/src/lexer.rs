//! Lexer for MiniML.
//!
//! Standard ML conventions are followed where they matter for the benchmark
//! programs: `~` is numeric negation (both in literals and as a prefix
//! operator), `(* ... *)` comments nest, identifiers may contain primes, and
//! `#"c"` is a character literal.

use crate::error::SyntaxError;
use crate::pos::Span;
use crate::token::Token;

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Its source span.
    pub span: Span,
}

/// A lexer over MiniML source text.
///
/// # Examples
///
/// ```
/// use kit_syntax::lexer::Lexer;
/// use kit_syntax::token::Token;
///
/// let toks = Lexer::new("val x = 1 + 2").tokenize()?;
/// assert_eq!(toks[0].tok, Token::Val);
/// assert_eq!(toks.last().unwrap().tok, Token::Eof);
/// # Ok::<(), kit_syntax::SyntaxError>(())
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Lexes the whole input, ending with [`Token::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`SyntaxError`] on malformed literals, unterminated
    /// comments or strings, or unexpected characters.
    pub fn tokenize(mut self) -> Result<Vec<Spanned>, SyntaxError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.tok == Token::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), SyntaxError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'(') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    let line = self.line;
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.bump(), self.peek()) {
                            (Some(b'('), Some(b'*')) => {
                                self.bump();
                                depth += 1;
                            }
                            (Some(b'*'), Some(b')')) => {
                                self.bump();
                                depth -= 1;
                            }
                            (Some(_), _) => {}
                            (None, _) => {
                                return Err(SyntaxError::new(
                                    "unterminated comment",
                                    Span::new(start, self.pos, line),
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Spanned, SyntaxError> {
        self.skip_trivia()?;
        let start = self.pos;
        let line = self.line;
        let span = |l: &Lexer<'_>| Span::new(start, l.pos, line);
        let Some(c) = self.peek() else {
            return Ok(Spanned {
                tok: Token::Eof,
                span: Span::new(start, start, line),
            });
        };

        // Numeric literals, with optional SML `~` sign.
        if c.is_ascii_digit() || (c == b'~' && self.peek2().is_some_and(|d| d.is_ascii_digit())) {
            return self.lex_number(start, line);
        }

        if c.is_ascii_alphabetic() {
            let word = self.lex_word();
            let tok = match Token::keyword(&word) {
                Some(k) => k,
                None => Token::Ident(word),
            };
            return Ok(Spanned {
                tok,
                span: span(self),
            });
        }

        match c {
            b'\'' => {
                self.bump();
                let word = self.lex_word();
                if word.is_empty() {
                    return Err(SyntaxError::new("empty type variable", span(self)));
                }
                Ok(Spanned {
                    tok: Token::TyVar(word),
                    span: span(self),
                })
            }
            b'"' => self.lex_string(start, line),
            b'#' if self.peek2() == Some(b'"') => {
                self.bump(); // '#'
                let s = self.lex_string(start, line)?;
                match s.tok {
                    Token::Str(body) if body.chars().count() == 1 => Ok(Spanned {
                        tok: Token::Char(body.chars().next().unwrap() as i64),
                        span: s.span,
                    }),
                    _ => Err(SyntaxError::new(
                        "character literal must have length 1",
                        s.span,
                    )),
                }
            }
            _ => {
                self.bump();
                let two = |l: &mut Lexer<'_>, t: Token| {
                    l.bump();
                    t
                };
                let tok = match (c, self.peek()) {
                    (b'=', Some(b'>')) => two(self, Token::DArrow),
                    (b'-', Some(b'>')) => two(self, Token::Arrow),
                    (b':', Some(b':')) => two(self, Token::Cons),
                    (b':', Some(b'=')) => two(self, Token::Assign),
                    (b'<', Some(b'>')) => two(self, Token::NotEqual),
                    (b'<', Some(b'=')) => two(self, Token::LessEq),
                    (b'>', Some(b'=')) => two(self, Token::GreaterEq),
                    (b'(', _) => Token::LParen,
                    (b')', _) => Token::RParen,
                    (b'[', _) => Token::LBracket,
                    (b']', _) => Token::RBracket,
                    (b',', _) => Token::Comma,
                    (b';', _) => Token::Semicolon,
                    (b'_', _) => Token::Underscore,
                    (b'=', _) => Token::Equal,
                    (b'|', _) => Token::Bar,
                    (b':', _) => Token::Colon,
                    (b'+', _) => Token::Plus,
                    (b'-', _) => Token::Minus,
                    (b'*', _) => Token::Times,
                    (b'/', _) => Token::Divide,
                    (b'<', _) => Token::Less,
                    (b'>', _) => Token::Greater,
                    (b'^', _) => Token::Caret,
                    (b'@', _) => Token::Append,
                    (b'!', _) => Token::Bang,
                    (b'~', _) => Token::Tilde,
                    _ => {
                        return Err(SyntaxError::new(
                            format!("unexpected character {:?}", c as char),
                            span(self),
                        ));
                    }
                };
                Ok(Spanned {
                    tok,
                    span: span(self),
                })
            }
        }
    }

    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'\'')
        {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self, start: usize, line: u32) -> Result<Spanned, SyntaxError> {
        let negative = self.peek() == Some(b'~');
        if negative {
            self.bump();
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_real = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_real = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E'))
            && self
                .peek2()
                .is_some_and(|c| c.is_ascii_digit() || c == b'~' || c == b'-')
        {
            is_real = true;
            self.bump(); // e
            if matches!(self.peek(), Some(b'~') | Some(b'-')) {
                self.bump();
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String =
            String::from_utf8_lossy(&self.src[digits_start..self.pos]).replace('~', "-");
        let span = Span::new(start, self.pos, line);
        if is_real {
            let v: f64 = text
                .parse()
                .map_err(|_| SyntaxError::new("malformed real literal", span))?;
            Ok(Spanned {
                tok: Token::Real(if negative { -v } else { v }),
                span,
            })
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| SyntaxError::new("integer literal out of range", span))?;
            Ok(Spanned {
                tok: Token::Int(if negative { -v } else { v }),
                span,
            })
        }
    }

    fn lex_string(&mut self, start: usize, line: u32) -> Result<Spanned, SyntaxError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    return Ok(Spanned {
                        tok: Token::Str(out),
                        span: Span::new(start, self.pos, line),
                    });
                }
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    _ => {
                        return Err(SyntaxError::new(
                            "unsupported string escape",
                            Span::new(start, self.pos, line),
                        ));
                    }
                },
                Some(c) => out.push(c as char),
                None => {
                    return Err(SyntaxError::new(
                        "unterminated string literal",
                        Span::new(start, self.pos, line),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            toks("val x = 1 + 2"),
            vec![
                Token::Val,
                Token::Ident("x".into()),
                Token::Equal,
                Token::Int(1),
                Token::Plus,
                Token::Int(2),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_negative_literals() {
        assert_eq!(toks("~3"), vec![Token::Int(-3), Token::Eof]);
        assert_eq!(toks("~3.5"), vec![Token::Real(-3.5), Token::Eof]);
        // `~` followed by a non-digit is the negation operator.
        assert_eq!(
            toks("~x"),
            vec![Token::Tilde, Token::Ident("x".into()), Token::Eof]
        );
    }

    #[test]
    fn lexes_reals_with_exponent() {
        assert_eq!(toks("1.5e2"), vec![Token::Real(150.0), Token::Eof]);
        assert_eq!(toks("2e~1"), vec![Token::Real(0.2), Token::Eof]);
    }

    #[test]
    fn lexes_compound_symbols() {
        assert_eq!(
            toks(":= :: => -> <> <= >="),
            vec![
                Token::Assign,
                Token::Cons,
                Token::DArrow,
                Token::Arrow,
                Token::NotEqual,
                Token::LessEq,
                Token::GreaterEq,
                Token::Eof
            ]
        );
    }

    #[test]
    fn nested_comments_skip() {
        assert_eq!(
            toks("1 (* a (* nested *) b *) 2"),
            vec![Token::Int(1), Token::Int(2), Token::Eof]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(Lexer::new("(* oops").tokenize().is_err());
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#""hi\n""#),
            vec![Token::Str("hi\n".into()), Token::Eof]
        );
        assert!(Lexer::new("\"open").tokenize().is_err());
    }

    #[test]
    fn char_literal_is_code_point() {
        assert_eq!(toks("#\"A\""), vec![Token::Char(65), Token::Eof]);
    }

    #[test]
    fn primes_in_identifiers() {
        assert_eq!(
            toks("x' foo_bar"),
            vec![
                Token::Ident("x'".into()),
                Token::Ident("foo_bar".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn tyvars() {
        assert_eq!(toks("'a"), vec![Token::TyVar("a".into()), Token::Eof]);
    }

    #[test]
    fn line_numbers_advance() {
        let spanned = Lexer::new("1\n2\n3").tokenize().unwrap();
        assert_eq!(spanned[0].span.line, 1);
        assert_eq!(spanned[1].span.line, 2);
        assert_eq!(spanned[2].span.line, 3);
    }
}
