//! Recursive-descent parser for MiniML.
//!
//! Operator precedences follow the Standard ML initial basis:
//!
//! | level | operators            | associativity |
//! |-------|----------------------|---------------|
//! | 7     | `* / div mod`        | left          |
//! | 6     | `+ - ^`              | left          |
//! | 5     | `:: @`               | right         |
//! | 4     | `= <> < <= > >=`     | left          |
//! | 3     | `:= o`               | left          |
//!
//! `andalso` and `orelse` bind more loosely than any infix operator, and
//! `handle` more loosely still. Application binds tightest. As in SML, the
//! prefix forms `if`/`case`/`fn`/`raise`/`while` are whole expressions, not
//! infix operands: `1 + if ...` requires parentheses.

use crate::ast::*;
use crate::error::SyntaxError;
use crate::lexer::{Lexer, Spanned};
use crate::pos::Span;
use crate::token::Token;

/// Parses a full MiniML program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// let p = kit_syntax::parse_program("fun id x = x")?;
/// assert_eq!(p.decs.len(), 1);
/// # Ok::<(), kit_syntax::SyntaxError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, SyntaxError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, idx: 0 };
    let mut decs = Vec::new();
    while !p.at(&Token::Eof) {
        // Tolerate stray top-level semicolons (common in SML sources).
        if p.at(&Token::Semicolon) {
            p.bump();
            continue;
        }
        decs.push(p.dec()?);
    }
    Ok(Program { decs })
}

/// Parses a single expression (used by tests and the REPL-style examples).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered, including
/// trailing input after the expression.
pub fn parse_exp(src: &str) -> Result<Exp, SyntaxError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, idx: 0 };
    let e = p.exp()?;
    p.expect(Token::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.idx].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.idx].span
    }

    fn at(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Spanned {
        let s = self.toks[self.idx].clone();
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        s
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> Result<Spanned, SyntaxError> {
        if self.at(&t) {
            Ok(self.bump())
        } else {
            Err(SyntaxError::new(
                format!("expected `{}`, found `{}`", t, self.peek()),
                self.peek_span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), SyntaxError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                let sp = self.bump().span;
                Ok((s, sp))
            }
            other => Err(SyntaxError::new(
                format!("expected identifier, found `{other}`"),
                self.peek_span(),
            )),
        }
    }

    // ---------------------------------------------------------- declarations

    fn dec(&mut self) -> Result<Dec, SyntaxError> {
        let start = self.peek_span();
        match self.peek() {
            Token::Val => {
                self.bump();
                let pat = self.pat()?;
                self.expect(Token::Equal)?;
                let exp = self.exp()?;
                let span = start.merge(exp.span());
                Ok(Dec::Val { pat, exp, span })
            }
            Token::Fun => {
                self.bump();
                let mut binds = vec![self.funbind()?];
                while self.eat(&Token::And) {
                    binds.push(self.funbind()?);
                }
                let span = start.merge(binds.last().unwrap().span);
                Ok(Dec::Fun { binds, span })
            }
            Token::Datatype => {
                self.bump();
                let mut binds = vec![self.databind()?];
                while self.eat(&Token::And) {
                    binds.push(self.databind()?);
                }
                Ok(Dec::Datatype { binds, span: start })
            }
            Token::Exception => {
                self.bump();
                let (name, nsp) = self.ident()?;
                let arg = if self.eat(&Token::Of) {
                    Some(self.tyexp()?)
                } else {
                    None
                };
                Ok(Dec::Exception {
                    name,
                    arg,
                    span: start.merge(nsp),
                })
            }
            other => Err(SyntaxError::new(
                format!("expected declaration, found `{other}`"),
                start,
            )),
        }
    }

    fn funbind(&mut self) -> Result<FunBind, SyntaxError> {
        let (name, start) = self.ident()?;
        let mut clauses = Vec::new();
        loop {
            let mut pats = vec![self.atpat()?];
            while self.starts_atpat() {
                pats.push(self.atpat()?);
            }
            self.expect(Token::Equal)?;
            let body = self.exp()?;
            clauses.push(Clause { pats, body });
            // Another clause for the *same* function: `| f pats = exp`.
            if self.at(&Token::Bar) {
                // Only continue if what follows the bar is this function name.
                let save = self.idx;
                self.bump();
                match self.peek().clone() {
                    Token::Ident(n) if n == name => {
                        self.bump();
                        continue;
                    }
                    _ => {
                        self.idx = save;
                        break;
                    }
                }
            }
            break;
        }
        let arity = clauses[0].pats.len();
        if clauses.iter().any(|c| c.pats.len() != arity) {
            return Err(SyntaxError::new(
                format!("clauses of `{name}` have differing numbers of arguments"),
                start,
            ));
        }
        Ok(FunBind {
            name,
            clauses,
            span: start,
        })
    }

    fn databind(&mut self) -> Result<DataBind, SyntaxError> {
        let mut tyvars = Vec::new();
        match self.peek().clone() {
            Token::TyVar(v) => {
                self.bump();
                tyvars.push(v);
            }
            Token::LParen if matches!(self.toks[self.idx + 1].tok, Token::TyVar(_)) => {
                self.bump();
                loop {
                    match self.peek().clone() {
                        Token::TyVar(v) => {
                            self.bump();
                            tyvars.push(v);
                        }
                        other => {
                            return Err(SyntaxError::new(
                                format!("expected type variable, found `{other}`"),
                                self.peek_span(),
                            ));
                        }
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(Token::RParen)?;
            }
            _ => {}
        }
        let (name, _) = self.ident()?;
        self.expect(Token::Equal)?;
        let mut cons = vec![self.conbind()?];
        while self.eat(&Token::Bar) {
            cons.push(self.conbind()?);
        }
        Ok(DataBind { tyvars, name, cons })
    }

    fn conbind(&mut self) -> Result<ConBind, SyntaxError> {
        let (name, _) = self.ident()?;
        let arg = if self.eat(&Token::Of) {
            Some(self.tyexp()?)
        } else {
            None
        };
        Ok(ConBind { name, arg })
    }

    // ------------------------------------------------------------------ types

    fn tyexp(&mut self) -> Result<TyExp, SyntaxError> {
        let lhs = self.tytuple()?;
        if self.eat(&Token::Arrow) {
            let rhs = self.tyexp()?;
            Ok(TyExp::Arrow(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn tytuple(&mut self) -> Result<TyExp, SyntaxError> {
        let first = self.tyapp()?;
        if self.at(&Token::Times) {
            let mut parts = vec![first];
            while self.eat(&Token::Times) {
                parts.push(self.tyapp()?);
            }
            Ok(TyExp::Tuple(parts))
        } else {
            Ok(first)
        }
    }

    fn tyapp(&mut self) -> Result<TyExp, SyntaxError> {
        let mut t = self.atty()?;
        while let Token::Ident(name) = self.peek().clone() {
            self.bump();
            t = TyExp::Con(name, vec![t]);
        }
        Ok(t)
    }

    fn atty(&mut self) -> Result<TyExp, SyntaxError> {
        match self.peek().clone() {
            Token::TyVar(v) => {
                self.bump();
                Ok(TyExp::Var(v))
            }
            Token::Ident(name) => {
                self.bump();
                Ok(TyExp::Con(name, Vec::new()))
            }
            Token::LParen => {
                self.bump();
                let first = self.tyexp()?;
                if self.eat(&Token::Comma) {
                    let mut args = vec![first];
                    loop {
                        args.push(self.tyexp()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(Token::RParen)?;
                    let (name, _) = self.ident()?;
                    Ok(TyExp::Con(name, args))
                } else {
                    self.expect(Token::RParen)?;
                    Ok(first)
                }
            }
            other => Err(SyntaxError::new(
                format!("expected type, found `{other}`"),
                self.peek_span(),
            )),
        }
    }

    // -------------------------------------------------------------- patterns

    fn pat(&mut self) -> Result<Pat, SyntaxError> {
        let lhs = self.apppat()?;
        if self.eat(&Token::Cons) {
            let rhs = self.pat()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Pat::Cons(Box::new(lhs), Box::new(rhs), span));
        }
        if self.eat(&Token::Colon) {
            let ty = self.tyexp()?;
            let span = lhs.span();
            return Ok(Pat::Ascribe(Box::new(lhs), ty, span));
        }
        Ok(lhs)
    }

    fn apppat(&mut self) -> Result<Pat, SyntaxError> {
        if let Token::Ident(name) = self.peek().clone() {
            let sp = self.peek_span();
            self.bump();
            if self.starts_atpat() {
                let arg = self.atpat()?;
                let span = sp.merge(arg.span());
                return Ok(Pat::Con(name, Box::new(arg), span));
            }
            return Ok(Pat::Var(name, sp));
        }
        self.atpat()
    }

    fn starts_atpat(&self) -> bool {
        matches!(
            self.peek(),
            Token::Underscore
                | Token::Ident(_)
                | Token::Int(_)
                | Token::Char(_)
                | Token::Str(_)
                | Token::True
                | Token::False
                | Token::LParen
                | Token::LBracket
        )
    }

    fn atpat(&mut self) -> Result<Pat, SyntaxError> {
        let sp = self.peek_span();
        match self.peek().clone() {
            Token::Underscore => {
                self.bump();
                Ok(Pat::Wild(sp))
            }
            Token::Ident(name) => {
                self.bump();
                Ok(Pat::Var(name, sp))
            }
            Token::Int(n) => {
                self.bump();
                Ok(Pat::Int(n, sp))
            }
            Token::Char(c) => {
                self.bump();
                Ok(Pat::Int(c, sp))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Pat::Str(s, sp))
            }
            Token::True => {
                self.bump();
                Ok(Pat::Bool(true, sp))
            }
            Token::False => {
                self.bump();
                Ok(Pat::Bool(false, sp))
            }
            Token::LParen => {
                self.bump();
                if self.eat(&Token::RParen) {
                    return Ok(Pat::Unit(sp));
                }
                let first = self.pat()?;
                if self.eat(&Token::Comma) {
                    let mut parts = vec![first];
                    loop {
                        parts.push(self.pat()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(Token::RParen)?.span;
                    Ok(Pat::Tuple(parts, sp.merge(end)))
                } else {
                    self.expect(Token::RParen)?;
                    Ok(first)
                }
            }
            Token::LBracket => {
                self.bump();
                let mut parts = Vec::new();
                if !self.at(&Token::RBracket) {
                    loop {
                        parts.push(self.pat()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(Token::RBracket)?.span;
                Ok(Pat::List(parts, sp.merge(end)))
            }
            other => Err(SyntaxError::new(
                format!("expected pattern, found `{other}`"),
                sp,
            )),
        }
    }

    // ----------------------------------------------------------- expressions

    fn exp(&mut self) -> Result<Exp, SyntaxError> {
        let e = self.exp_no_handle()?;
        if self.eat(&Token::Handle) {
            let rules = self.rules()?;
            let span = e.span();
            return Ok(Exp::Handle(Box::new(e), rules, span));
        }
        Ok(e)
    }

    fn exp_no_handle(&mut self) -> Result<Exp, SyntaxError> {
        let sp = self.peek_span();
        match self.peek() {
            Token::If => {
                self.bump();
                let c = self.exp()?;
                self.expect(Token::Then)?;
                let t = self.exp()?;
                self.expect(Token::Else)?;
                let f = self.exp()?;
                let span = sp.merge(f.span());
                Ok(Exp::If(Box::new(c), Box::new(t), Box::new(f), span))
            }
            Token::While => {
                self.bump();
                let c = self.exp()?;
                self.expect(Token::Do)?;
                let b = self.exp()?;
                let span = sp.merge(b.span());
                Ok(Exp::While(Box::new(c), Box::new(b), span))
            }
            Token::Case => {
                self.bump();
                let scrut = self.exp()?;
                self.expect(Token::Of)?;
                let rules = self.rules()?;
                Ok(Exp::Case(Box::new(scrut), rules, sp))
            }
            Token::Fn => {
                self.bump();
                let rules = self.rules()?;
                Ok(Exp::Fn(rules, sp))
            }
            Token::Raise => {
                self.bump();
                let e = self.exp()?;
                let span = sp.merge(e.span());
                Ok(Exp::Raise(Box::new(e), span))
            }
            _ => self.orelse_exp(),
        }
    }

    fn rules(&mut self) -> Result<Vec<Rule>, SyntaxError> {
        let mut rules = Vec::new();
        loop {
            let pat = self.pat()?;
            self.expect(Token::DArrow)?;
            let exp = self.exp_no_handle()?;
            rules.push(Rule { pat, exp });
            if !self.eat(&Token::Bar) {
                return Ok(rules);
            }
        }
    }

    fn orelse_exp(&mut self) -> Result<Exp, SyntaxError> {
        let mut lhs = self.andalso_exp()?;
        while self.eat(&Token::Orelse) {
            let rhs = self.andalso_exp()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Exp::Orelse(Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn andalso_exp(&mut self) -> Result<Exp, SyntaxError> {
        let mut lhs = self.infix_exp(3)?;
        while self.eat(&Token::Andalso) {
            let rhs = self.infix_exp(3)?;
            let span = lhs.span().merge(rhs.span());
            lhs = Exp::Andalso(Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    /// Binary-operator level of a token, if it is infix.
    fn infix_level(t: &Token) -> Option<(u8, bool /*right assoc*/)> {
        Some(match t {
            Token::Times | Token::Divide | Token::Div | Token::Mod => (7, false),
            Token::Plus | Token::Minus | Token::Caret => (6, false),
            Token::Cons | Token::Append => (5, true),
            Token::Equal
            | Token::NotEqual
            | Token::Less
            | Token::LessEq
            | Token::Greater
            | Token::GreaterEq => (4, false),
            Token::Assign | Token::Compose => (3, false),
            _ => return None,
        })
    }

    fn infix_exp(&mut self, min_level: u8) -> Result<Exp, SyntaxError> {
        let mut lhs = self.app_exp()?;
        while let Some((level, right)) = Self::infix_level(self.peek()) {
            if level < min_level {
                break;
            }
            let op_tok = self.bump().tok;
            let next_min = if right { level } else { level + 1 };
            let rhs = self.infix_exp(next_min)?;
            let span = lhs.span().merge(rhs.span());
            lhs = match op_tok {
                Token::Cons => Exp::Cons(Box::new(lhs), Box::new(rhs), span),
                Token::Append => Exp::Append(Box::new(lhs), Box::new(rhs), span),
                t => {
                    let op = match t {
                        Token::Plus => BinOp::Add,
                        Token::Minus => BinOp::Sub,
                        Token::Times => BinOp::Mul,
                        Token::Divide => BinOp::RDiv,
                        Token::Div => BinOp::Div,
                        Token::Mod => BinOp::Mod,
                        Token::Equal => BinOp::Eq,
                        Token::NotEqual => BinOp::Neq,
                        Token::Less => BinOp::Lt,
                        Token::LessEq => BinOp::Le,
                        Token::Greater => BinOp::Gt,
                        Token::GreaterEq => BinOp::Ge,
                        Token::Caret => BinOp::Concat,
                        Token::Assign => BinOp::Assign,
                        Token::Compose => BinOp::Compose,
                        _ => unreachable!("infix_level admitted a non-infix token"),
                    };
                    Exp::BinOp(op, Box::new(lhs), Box::new(rhs), span)
                }
            };
        }
        Ok(lhs)
    }

    fn app_exp(&mut self) -> Result<Exp, SyntaxError> {
        let mut e = self.prefix_exp()?;
        while self.starts_atexp() {
            let arg = self.atexp()?;
            let span = e.span().merge(arg.span());
            e = Exp::App(Box::new(e), Box::new(arg), span);
        }
        Ok(e)
    }

    fn prefix_exp(&mut self) -> Result<Exp, SyntaxError> {
        let sp = self.peek_span();
        match self.peek() {
            Token::Tilde => {
                self.bump();
                let e = self.prefix_exp()?;
                let span = sp.merge(e.span());
                Ok(Exp::Neg(Box::new(e), span))
            }
            Token::Bang => {
                self.bump();
                let e = self.prefix_exp()?;
                let span = sp.merge(e.span());
                Ok(Exp::Deref(Box::new(e), span))
            }
            Token::Not => {
                self.bump();
                let e = self.prefix_exp()?;
                let span = sp.merge(e.span());
                Ok(Exp::Not(Box::new(e), span))
            }
            _ => self.atexp(),
        }
    }

    fn starts_atexp(&self) -> bool {
        matches!(
            self.peek(),
            Token::Int(_)
                | Token::Real(_)
                | Token::Str(_)
                | Token::Char(_)
                | Token::True
                | Token::False
                | Token::Ident(_)
                | Token::LParen
                | Token::LBracket
                | Token::Let
                | Token::Op
        )
    }

    fn atexp(&mut self) -> Result<Exp, SyntaxError> {
        let sp = self.peek_span();
        match self.peek().clone() {
            Token::Int(n) => {
                self.bump();
                Ok(Exp::Int(n, sp))
            }
            Token::Char(c) => {
                self.bump();
                Ok(Exp::Int(c, sp))
            }
            Token::Real(r) => {
                self.bump();
                Ok(Exp::Real(r, sp))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Exp::Str(s, sp))
            }
            Token::True => {
                self.bump();
                Ok(Exp::Bool(true, sp))
            }
            Token::False => {
                self.bump();
                Ok(Exp::Bool(false, sp))
            }
            Token::Ident(name) => {
                self.bump();
                Ok(Exp::Var(name, sp))
            }
            Token::Op => {
                self.bump();
                // `op <operator>` references the operator as a function value.
                let name = match self.bump().tok {
                    Token::Plus => "op+",
                    Token::Minus => "op-",
                    Token::Times => "op*",
                    Token::Divide => "op/",
                    Token::Div => "opdiv",
                    Token::Mod => "opmod",
                    Token::Cons => "op::",
                    Token::Append => "op@",
                    Token::Equal => "op=",
                    Token::Less => "op<",
                    Token::LessEq => "op<=",
                    Token::Greater => "op>",
                    Token::GreaterEq => "op>=",
                    Token::Caret => "op^",
                    other => {
                        return Err(SyntaxError::new(
                            format!("`op` must be followed by an infix operator, found `{other}`"),
                            sp,
                        ));
                    }
                };
                Ok(Exp::Var(name.to_string(), sp))
            }
            Token::Let => {
                self.bump();
                let mut decs = Vec::new();
                while !self.at(&Token::In) {
                    if self.eat(&Token::Semicolon) {
                        continue;
                    }
                    decs.push(self.dec()?);
                }
                self.expect(Token::In)?;
                let mut body = vec![self.exp()?];
                while self.eat(&Token::Semicolon) {
                    body.push(self.exp()?);
                }
                let end = self.expect(Token::End)?.span;
                Ok(Exp::Let(decs, body, sp.merge(end)))
            }
            Token::LParen => {
                self.bump();
                if self.eat(&Token::RParen) {
                    return Ok(Exp::Unit(sp));
                }
                let first = self.exp()?;
                if self.at(&Token::Comma) {
                    let mut parts = vec![first];
                    while self.eat(&Token::Comma) {
                        parts.push(self.exp()?);
                    }
                    let end = self.expect(Token::RParen)?.span;
                    Ok(Exp::Tuple(parts, sp.merge(end)))
                } else if self.at(&Token::Semicolon) {
                    let mut parts = vec![first];
                    while self.eat(&Token::Semicolon) {
                        parts.push(self.exp()?);
                    }
                    let end = self.expect(Token::RParen)?.span;
                    Ok(Exp::Seq(parts, sp.merge(end)))
                } else if self.eat(&Token::Colon) {
                    let ty = self.tyexp()?;
                    let end = self.expect(Token::RParen)?.span;
                    Ok(Exp::Ascribe(Box::new(first), ty, sp.merge(end)))
                } else {
                    self.expect(Token::RParen)?;
                    Ok(first)
                }
            }
            Token::LBracket => {
                self.bump();
                let mut parts = Vec::new();
                if !self.at(&Token::RBracket) {
                    loop {
                        parts.push(self.exp()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(Token::RBracket)?.span;
                Ok(Exp::List(parts, sp.merge(end)))
            }
            other => Err(SyntaxError::new(
                format!("expected expression, found `{other}`"),
                sp,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_val_dec() {
        let p = parse_program("val x = 1 + 2 * 3").unwrap();
        assert_eq!(p.decs.len(), 1);
        let Dec::Val { exp, .. } = &p.decs[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        let Exp::BinOp(BinOp::Add, _, rhs, _) = exp else {
            panic!("got {exp:?}")
        };
        assert!(matches!(**rhs, Exp::BinOp(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn application_binds_tighter_than_infix() {
        let e = parse_exp("f x + g y").unwrap();
        let Exp::BinOp(BinOp::Add, l, r, _) = e else {
            panic!()
        };
        assert!(matches!(*l, Exp::App(_, _, _)));
        assert!(matches!(*r, Exp::App(_, _, _)));
    }

    #[test]
    fn cons_is_right_associative() {
        let e = parse_exp("1 :: 2 :: nil").unwrap();
        let Exp::Cons(_, tl, _) = e else { panic!() };
        assert!(matches!(*tl, Exp::Cons(_, _, _)));
    }

    #[test]
    fn comparison_below_arith() {
        let e = parse_exp("1 + 2 < 3 * 4").unwrap();
        assert!(matches!(e, Exp::BinOp(BinOp::Lt, _, _, _)));
    }

    #[test]
    fn andalso_orelse_precedence() {
        let e = parse_exp("a < b andalso c orelse d").unwrap();
        let Exp::Orelse(l, _, _) = e else { panic!() };
        assert!(matches!(*l, Exp::Andalso(_, _, _)));
    }

    #[test]
    fn parses_multi_clause_fun() {
        let p = parse_program("fun len nil = 0 | len (x::xs) = 1 + len xs").unwrap();
        let Dec::Fun { binds, .. } = &p.decs[0] else {
            panic!()
        };
        assert_eq!(binds[0].clauses.len(), 2);
    }

    #[test]
    fn parses_mutual_recursion() {
        let p = parse_program(
            "fun even 0 = true | even n = odd (n-1) and odd 0 = false | odd n = even (n-1)",
        )
        .unwrap();
        let Dec::Fun { binds, .. } = &p.decs[0] else {
            panic!()
        };
        assert_eq!(binds.len(), 2);
    }

    #[test]
    fn rejects_mismatched_clause_arity() {
        assert!(parse_program("fun f x = 1 | f x y = 2").is_err());
    }

    #[test]
    fn parses_datatype() {
        let p = parse_program("datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree").unwrap();
        let Dec::Datatype { binds, .. } = &p.decs[0] else {
            panic!()
        };
        assert_eq!(binds[0].tyvars, vec!["a".to_string()]);
        assert_eq!(binds[0].cons.len(), 2);
        assert!(binds[0].cons[1].arg.is_some());
    }

    #[test]
    fn parses_multi_tyvar_datatype() {
        let p = parse_program("datatype ('a,'b) pair = P of 'a * 'b").unwrap();
        let Dec::Datatype { binds, .. } = &p.decs[0] else {
            panic!()
        };
        assert_eq!(binds[0].tyvars.len(), 2);
    }

    #[test]
    fn parses_case_with_nested_patterns() {
        let e = parse_exp("case xs of (x, y) :: rest => x | nil => 0").unwrap();
        let Exp::Case(_, rules, _) = e else { panic!() };
        assert_eq!(rules.len(), 2);
        assert!(matches!(rules[0].pat, Pat::Cons(_, _, _)));
    }

    #[test]
    fn parses_let_with_sequence() {
        let e = parse_exp("let val x = 1 in print x; x + 1 end").unwrap();
        let Exp::Let(decs, body, _) = e else { panic!() };
        assert_eq!(decs.len(), 1);
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn parses_handle_and_raise() {
        let e = parse_exp("(raise Overflow) handle Overflow => 0").unwrap();
        assert!(matches!(e, Exp::Handle(_, _, _)));
    }

    #[test]
    fn parses_ref_ops() {
        let e = parse_exp("r := !r + 1").unwrap();
        let Exp::BinOp(BinOp::Assign, _, rhs, _) = e else {
            panic!()
        };
        assert!(matches!(*rhs, Exp::BinOp(BinOp::Add, _, _, _)));
    }

    #[test]
    fn parses_fn_and_composition() {
        let e = parse_exp("(fn x => x + 1) o double").unwrap();
        assert!(matches!(e, Exp::BinOp(BinOp::Compose, _, _, _)));
    }

    #[test]
    fn parses_op_section() {
        let e = parse_exp("foldl op+ 0 xs").unwrap();
        // foldl (op+) 0 xs is a chain of applications.
        assert!(matches!(e, Exp::App(_, _, _)));
    }

    #[test]
    fn parses_while_loop() {
        let e = parse_exp("while !i < 10 do i := !i + 1").unwrap();
        assert!(matches!(e, Exp::While(_, _, _)));
    }

    #[test]
    fn parses_list_literal() {
        let e = parse_exp("[1, 2, 3]").unwrap();
        let Exp::List(xs, _) = e else { panic!() };
        assert_eq!(xs.len(), 3);
    }

    #[test]
    fn parses_seq_parens() {
        let e = parse_exp("(print \"a\"; 1)").unwrap();
        let Exp::Seq(xs, _) = e else { panic!() };
        assert_eq!(xs.len(), 2);
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("val = 3").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn if_requires_parens_as_operand() {
        assert!(parse_exp("1 + if true then 1 else 2").is_err());
        assert!(parse_exp("1 + (if true then 1 else 2)").is_ok());
    }

    #[test]
    fn negation_of_application() {
        let e = parse_exp("~(f x)").unwrap();
        assert!(matches!(e, Exp::Neg(_, _)));
    }

    #[test]
    fn exception_dec() {
        let p = parse_program("exception Fail of string").unwrap();
        assert!(matches!(&p.decs[0], Dec::Exception { arg: Some(_), .. }));
    }
}
