//! Front-end syntax for *MiniML*, the Standard ML subset used by the
//! region-inference + garbage-collection reproduction.
//!
//! The crate provides a lexer ([`lexer::Lexer`]), a recursive-descent parser
//! ([`parser::parse_program`]) producing the surface [`ast`], and a pretty
//! printer ([`pretty`]) used by round-trip tests.
//!
//! MiniML covers the value shapes the runtime distinguishes: integers,
//! booleans, reals, strings, tuples, user datatypes with pattern matching,
//! first-class functions, references, arrays and exceptions. Modules and
//! functors are out of scope (see `DESIGN.md` §4).
//!
//! # Examples
//!
//! ```
//! use kit_syntax::parse_program;
//!
//! let prog = parse_program("fun double x = x + x  val it = double 21")?;
//! assert_eq!(prog.decs.len(), 2);
//! # Ok::<(), kit_syntax::SyntaxError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pos;
pub mod pretty;
pub mod token;

pub use ast::Program;
pub use error::SyntaxError;
pub use parser::parse_program;
pub use pos::Span;
