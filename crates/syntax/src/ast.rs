//! Surface abstract syntax of MiniML.
//!
//! The surface AST deliberately does not distinguish variables from nullary
//! datatype constructors — that resolution requires the constructor
//! environment and happens during elaboration in `kit-typing`.

use crate::pos::Span;

/// A complete program: a sequence of top-level declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level declarations, in source order.
    pub decs: Vec<Dec>,
}

/// A top-level or `let`-bound declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Dec {
    /// `val pat = exp`
    Val { pat: Pat, exp: Exp, span: Span },
    /// `fun f p1 ... = e | f p1' ... = e' and g ... ` — a group of possibly
    /// mutually recursive function bindings.
    Fun { binds: Vec<FunBind>, span: Span },
    /// `datatype ('a, ...) t = C of ty | D | ...` — a group of possibly
    /// mutually recursive datatype bindings.
    Datatype { binds: Vec<DataBind>, span: Span },
    /// `exception E` or `exception E of ty`
    Exception {
        name: String,
        arg: Option<TyExp>,
        span: Span,
    },
}

/// One function binding: a name and its clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct FunBind {
    /// Function name.
    pub name: String,
    /// Clauses; each has the same number of curried argument patterns.
    pub clauses: Vec<Clause>,
    /// Source span of the binding.
    pub span: Span,
}

/// One clause of a function binding: `f p1 p2 ... = body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Curried argument patterns.
    pub pats: Vec<Pat>,
    /// Clause body.
    pub body: Exp,
}

/// One datatype binding.
#[derive(Debug, Clone, PartialEq)]
pub struct DataBind {
    /// Bound type variables (without the leading prime).
    pub tyvars: Vec<String>,
    /// The type constructor name.
    pub name: String,
    /// Value constructors.
    pub cons: Vec<ConBind>,
}

/// A value-constructor binding inside a datatype declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConBind {
    /// Constructor name.
    pub name: String,
    /// Argument type, if the constructor carries a value.
    pub arg: Option<TyExp>,
}

/// Type expressions in annotations and datatype declarations.
#[derive(Debug, Clone, PartialEq)]
pub enum TyExp {
    /// `'a`
    Var(String),
    /// `(ty, ...) tycon` (possibly with zero arguments)
    Con(String, Vec<TyExp>),
    /// `ty1 * ty2 * ...` (n >= 2)
    Tuple(Vec<TyExp>),
    /// `ty1 -> ty2`
    Arrow(Box<TyExp>, Box<TyExp>),
}

/// Patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum Pat {
    /// Wildcard `_`.
    Wild(Span),
    /// A lowercase identifier: variable or nullary constructor (resolved
    /// during elaboration).
    Var(String, Span),
    /// Integer literal pattern.
    Int(i64, Span),
    /// String literal pattern.
    Str(String, Span),
    /// Boolean literal pattern.
    Bool(bool, Span),
    /// Unit pattern `()`.
    Unit(Span),
    /// Tuple pattern `(p1, ..., pn)` with n >= 2.
    Tuple(Vec<Pat>, Span),
    /// Constructor application `C p`.
    Con(String, Box<Pat>, Span),
    /// List pattern `[p1, ..., pn]` (sugar for conses).
    List(Vec<Pat>, Span),
    /// Cons pattern `p1 :: p2`.
    Cons(Box<Pat>, Box<Pat>, Span),
    /// Type-annotated pattern `p : ty`.
    Ascribe(Box<Pat>, TyExp, Span),
}

impl Pat {
    /// The source span of the pattern.
    pub fn span(&self) -> Span {
        match self {
            Pat::Wild(s)
            | Pat::Var(_, s)
            | Pat::Int(_, s)
            | Pat::Str(_, s)
            | Pat::Bool(_, s)
            | Pat::Unit(s)
            | Pat::Tuple(_, s)
            | Pat::Con(_, _, s)
            | Pat::List(_, s)
            | Pat::Cons(_, _, s)
            | Pat::Ascribe(_, _, s) => *s,
        }
    }
}

/// A `case`/`handle`/`fn` match rule: `pat => exp`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The pattern.
    pub pat: Pat,
    /// The right-hand side.
    pub exp: Exp,
}

/// Binary operators (SML infix operators at their standard precedences).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (overloaded int/real)
    Add,
    /// `-` (overloaded int/real)
    Sub,
    /// `*` (overloaded int/real)
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
    /// `/` (real division)
    RDiv,
    /// `=` (polymorphic equality)
    Eq,
    /// `<>`
    Neq,
    /// `<` (overloaded)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `^` string concatenation
    Concat,
    /// `:=` reference assignment
    Assign,
    /// `o` function composition
    Compose,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Exp {
    /// Integer literal.
    Int(i64, Span),
    /// Real literal.
    Real(f64, Span),
    /// String literal.
    Str(String, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Unit `()`.
    Unit(Span),
    /// Identifier (variable, constructor or builtin; resolved later).
    Var(String, Span),
    /// Tuple `(e1, ..., en)` with n >= 2.
    Tuple(Vec<Exp>, Span),
    /// List `[e1, ..., en]`.
    List(Vec<Exp>, Span),
    /// Application `e1 e2`.
    App(Box<Exp>, Box<Exp>, Span),
    /// Infix application `e1 op e2`.
    BinOp(BinOp, Box<Exp>, Box<Exp>, Span),
    /// `::`
    Cons(Box<Exp>, Box<Exp>, Span),
    /// `@` list append (expands to a prelude call).
    Append(Box<Exp>, Box<Exp>, Span),
    /// Unary negation `~ e`.
    Neg(Box<Exp>, Span),
    /// Dereference `! e`.
    Deref(Box<Exp>, Span),
    /// `not e`.
    Not(Box<Exp>, Span),
    /// `e1 andalso e2` (short-circuit).
    Andalso(Box<Exp>, Box<Exp>, Span),
    /// `e1 orelse e2` (short-circuit).
    Orelse(Box<Exp>, Box<Exp>, Span),
    /// `if e1 then e2 else e3`.
    If(Box<Exp>, Box<Exp>, Box<Exp>, Span),
    /// `while e1 do e2` (unit-valued).
    While(Box<Exp>, Box<Exp>, Span),
    /// `case e of rules`.
    Case(Box<Exp>, Vec<Rule>, Span),
    /// `fn pat => e | ...`.
    Fn(Vec<Rule>, Span),
    /// `let decs in e1; ...; en end`.
    Let(Vec<Dec>, Vec<Exp>, Span),
    /// `(e1; e2; ...; en)` sequencing.
    Seq(Vec<Exp>, Span),
    /// `raise e`.
    Raise(Box<Exp>, Span),
    /// `e handle rules`.
    Handle(Box<Exp>, Vec<Rule>, Span),
    /// Type-annotated expression `e : ty`.
    Ascribe(Box<Exp>, TyExp, Span),
}

impl Exp {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Exp::Int(_, s)
            | Exp::Real(_, s)
            | Exp::Str(_, s)
            | Exp::Bool(_, s)
            | Exp::Unit(s)
            | Exp::Var(_, s)
            | Exp::Tuple(_, s)
            | Exp::List(_, s)
            | Exp::App(_, _, s)
            | Exp::BinOp(_, _, _, s)
            | Exp::Cons(_, _, s)
            | Exp::Append(_, _, s)
            | Exp::Neg(_, s)
            | Exp::Deref(_, s)
            | Exp::Not(_, s)
            | Exp::Andalso(_, _, s)
            | Exp::Orelse(_, _, s)
            | Exp::If(_, _, _, s)
            | Exp::While(_, _, s)
            | Exp::Case(_, _, s)
            | Exp::Fn(_, s)
            | Exp::Let(_, _, s)
            | Exp::Seq(_, s)
            | Exp::Raise(_, s)
            | Exp::Handle(_, _, s)
            | Exp::Ascribe(_, _, s) => *s,
        }
    }
}

impl Dec {
    /// The source span of the declaration.
    pub fn span(&self) -> Span {
        match self {
            Dec::Val { span, .. }
            | Dec::Fun { span, .. }
            | Dec::Datatype { span, .. }
            | Dec::Exception { span, .. } => *span,
        }
    }
}
