//! Syntax errors produced by the lexer and parser.

use crate::pos::Span;
use std::error::Error;
use std::fmt;

/// An error encountered while lexing or parsing MiniML source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    message: String,
    span: Span,
}

impl SyntaxError {
    /// Creates a new syntax error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SyntaxError {
            message: message.into(),
            span,
        }
    }

    /// The human-readable description (lowercase, no trailing punctuation).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source location of the error.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_message() {
        let e = SyntaxError::new("unexpected token", Span::new(0, 1, 3));
        assert_eq!(e.to_string(), "line 3: unexpected token");
    }
}
