//! Pretty printer for the surface AST.
//!
//! Output is valid MiniML: `parse(pretty(parse(src)))` equals
//! `parse(src)` up to spans. This is exercised by round-trip tests here and
//! property tests in the workspace test suite.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a program as parseable MiniML source.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    for d in &p.decs {
        let _ = writeln!(s, "{}", dec_to_string(d));
    }
    s
}

/// Renders one declaration.
pub fn dec_to_string(d: &Dec) -> String {
    match d {
        Dec::Val { pat, exp, .. } => {
            format!("val {} = {}", pat_to_string(pat), exp_to_string(exp))
        }
        Dec::Fun { binds, .. } => {
            let bs: Vec<String> = binds
                .iter()
                .map(|b| {
                    b.clauses
                        .iter()
                        .map(|c| {
                            let pats: Vec<String> = c.pats.iter().map(atpat_to_string).collect();
                            format!("{} {} = {}", b.name, pats.join(" "), exp_to_string(&c.body))
                        })
                        .collect::<Vec<_>>()
                        .join("\n  | ")
                })
                .collect();
            format!("fun {}", bs.join("\nand "))
        }
        Dec::Datatype { binds, .. } => {
            let bs: Vec<String> = binds
                .iter()
                .map(|b| {
                    let tv = match b.tyvars.len() {
                        0 => String::new(),
                        1 => format!("'{} ", b.tyvars[0]),
                        _ => format!(
                            "({}) ",
                            b.tyvars
                                .iter()
                                .map(|v| format!("'{v}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    };
                    let cons: Vec<String> = b
                        .cons
                        .iter()
                        .map(|c| match &c.arg {
                            Some(t) => format!("{} of {}", c.name, ty_to_string(t)),
                            None => c.name.clone(),
                        })
                        .collect();
                    format!("{tv}{} = {}", b.name, cons.join(" | "))
                })
                .collect();
            format!("datatype {}", bs.join("\nand "))
        }
        Dec::Exception { name, arg, .. } => match arg {
            Some(t) => format!("exception {name} of {}", ty_to_string(t)),
            None => format!("exception {name}"),
        },
    }
}

/// Renders a type expression.
pub fn ty_to_string(t: &TyExp) -> String {
    match t {
        TyExp::Var(v) => format!("'{v}"),
        TyExp::Con(name, args) => match args.len() {
            0 => name.clone(),
            1 => format!("{} {}", ty_atom(&args[0]), name),
            _ => format!(
                "({}) {}",
                args.iter().map(ty_to_string).collect::<Vec<_>>().join(", "),
                name
            ),
        },
        TyExp::Tuple(parts) => parts.iter().map(ty_atom).collect::<Vec<_>>().join(" * "),
        TyExp::Arrow(a, b) => format!("{} -> {}", ty_atom(a), ty_to_string(b)),
    }
}

fn ty_atom(t: &TyExp) -> String {
    match t {
        TyExp::Var(_) | TyExp::Con(_, _) => ty_to_string(t),
        _ => format!("({})", ty_to_string(t)),
    }
}

/// Renders a pattern.
pub fn pat_to_string(p: &Pat) -> String {
    match p {
        Pat::Cons(h, t, _) => format!("{} :: {}", atpat_to_string(h), pat_to_string(t)),
        Pat::Con(c, a, _) => format!("{c} {}", atpat_to_string(a)),
        Pat::Ascribe(p, t, _) => format!("{} : {}", atpat_to_string(p), ty_to_string(t)),
        _ => atpat_to_string(p),
    }
}

fn atpat_to_string(p: &Pat) -> String {
    match p {
        Pat::Wild(_) => "_".to_string(),
        Pat::Var(v, _) => v.clone(),
        Pat::Int(n, _) => fmt_int(*n),
        Pat::Str(s, _) => format!("{s:?}"),
        Pat::Bool(b, _) => b.to_string(),
        Pat::Unit(_) => "()".to_string(),
        Pat::Tuple(ps, _) => format!(
            "({})",
            ps.iter().map(pat_to_string).collect::<Vec<_>>().join(", ")
        ),
        Pat::List(ps, _) => format!(
            "[{}]",
            ps.iter().map(pat_to_string).collect::<Vec<_>>().join(", ")
        ),
        Pat::Cons(_, _, _) | Pat::Con(_, _, _) | Pat::Ascribe(_, _, _) => {
            format!("({})", pat_to_string(p))
        }
    }
}

fn fmt_int(n: i64) -> String {
    if n < 0 {
        format!("~{}", -(n as i128))
    } else {
        n.to_string()
    }
}

fn fmt_real(r: f64) -> String {
    let body = if r == r.trunc() && r.abs() < 1e15 {
        format!("{:.1}", r.abs())
    } else {
        format!("{}", r.abs())
    };
    if r.is_sign_negative() {
        format!("~{body}")
    } else {
        body
    }
}

/// Renders an expression (fully parenthesised where required).
pub fn exp_to_string(e: &Exp) -> String {
    match e {
        Exp::Int(n, _) => fmt_int(*n),
        Exp::Real(r, _) => fmt_real(*r),
        Exp::Str(s, _) => format!("{s:?}"),
        Exp::Bool(b, _) => b.to_string(),
        Exp::Unit(_) => "()".to_string(),
        Exp::Var(v, _) => {
            if let Some(rest) = v.strip_prefix("op") {
                format!("op {rest}")
            } else {
                v.clone()
            }
        }
        Exp::Tuple(es, _) => format!(
            "({})",
            es.iter().map(exp_to_string).collect::<Vec<_>>().join(", ")
        ),
        Exp::List(es, _) => format!(
            "[{}]",
            es.iter().map(exp_to_string).collect::<Vec<_>>().join(", ")
        ),
        Exp::App(f, a, _) => format!("({} {})", exp_to_string(f), exp_to_string(a)),
        Exp::BinOp(op, a, b, _) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "div",
                BinOp::Mod => "mod",
                BinOp::RDiv => "/",
                BinOp::Eq => "=",
                BinOp::Neq => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Concat => "^",
                BinOp::Assign => ":=",
                BinOp::Compose => "o",
            };
            format!("({} {} {})", exp_to_string(a), sym, exp_to_string(b))
        }
        Exp::Cons(h, t, _) => format!("({} :: {})", exp_to_string(h), exp_to_string(t)),
        Exp::Append(a, b, _) => format!("({} @ {})", exp_to_string(a), exp_to_string(b)),
        Exp::Neg(e, _) => format!("(~ {})", exp_to_string(e)),
        Exp::Deref(e, _) => format!("(! {})", exp_to_string(e)),
        Exp::Not(e, _) => format!("(not {})", exp_to_string(e)),
        Exp::Andalso(a, b, _) => {
            format!("({} andalso {})", exp_to_string(a), exp_to_string(b))
        }
        Exp::Orelse(a, b, _) => format!("({} orelse {})", exp_to_string(a), exp_to_string(b)),
        Exp::If(c, t, f, _) => format!(
            "(if {} then {} else {})",
            exp_to_string(c),
            exp_to_string(t),
            exp_to_string(f)
        ),
        Exp::While(c, b, _) => format!("(while {} do {})", exp_to_string(c), exp_to_string(b)),
        Exp::Case(scrut, rules, _) => format!(
            "(case {} of {})",
            exp_to_string(scrut),
            rules_to_string(rules)
        ),
        Exp::Fn(rules, _) => format!("(fn {})", rules_to_string(rules)),
        Exp::Let(decs, body, _) => {
            let ds: Vec<String> = decs.iter().map(dec_to_string).collect();
            let bs: Vec<String> = body.iter().map(exp_to_string).collect();
            format!("let {} in {} end", ds.join(" "), bs.join("; "))
        }
        Exp::Seq(es, _) => format!(
            "({})",
            es.iter().map(exp_to_string).collect::<Vec<_>>().join("; ")
        ),
        Exp::Raise(e, _) => format!("(raise {})", exp_to_string(e)),
        Exp::Handle(e, rules, _) => {
            format!("({} handle {})", exp_to_string(e), rules_to_string(rules))
        }
        Exp::Ascribe(e, t, _) => format!("({} : {})", exp_to_string(e), ty_to_string(t)),
    }
}

fn rules_to_string(rules: &[Rule]) -> String {
    rules
        .iter()
        .map(|r| format!("{} => {}", pat_to_string(&r.pat), exp_to_string(&r.exp)))
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_exp, parse_program};

    fn strip_spans_prog(p: &Program) -> String {
        // Comparing pretty-printed forms is equivalent to span-insensitive
        // AST equality for round-trip purposes.
        program_to_string(p)
    }

    fn round_trip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse of {printed:?} failed: {e}"));
        assert_eq!(
            strip_spans_prog(&p1),
            strip_spans_prog(&p2),
            "source: {src}"
        );
    }

    #[test]
    fn round_trips_declarations() {
        round_trip("val x = 1 + 2 * 3");
        round_trip("fun len nil = 0 | len (x :: xs) = 1 + len xs");
        round_trip("datatype 'a opt = None | Some of 'a");
        round_trip("exception Bad of int");
        round_trip("fun f x = let val y = x in y; y end");
        round_trip("val r = (fn x => x) o (fn y => y)");
        round_trip("val z = case [1,2] of x :: _ => x | nil => 0");
        round_trip("val w = (raise Div) handle Div => ~1");
        round_trip("val v = while false do ()");
        round_trip("val n = ~3 val r = ~2.5");
    }

    #[test]
    fn negative_literals_use_tilde() {
        let e = parse_exp("~7").unwrap();
        assert_eq!(exp_to_string(&e), "~7");
    }

    #[test]
    fn real_formatting_reparses_as_real() {
        let e = parse_exp("2.0").unwrap();
        let s = exp_to_string(&e);
        assert!(matches!(parse_exp(&s).unwrap(), Exp::Real(_, _)), "{s}");
    }
}
