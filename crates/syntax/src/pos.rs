//! Source positions and spans.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text, with a line
/// number for error reporting.
///
/// Spans are attached to tokens and AST nodes so that later phases (type
/// inference, region inference) can report errors against source locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// A span covering both `self` and `other`.
    ///
    /// The line number of the merged span is the line of the earlier span.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: if self.start <= other.start {
                self.line
            } else {
                other.line
            },
        }
    }

    /// A synthetic span for generated code.
    pub fn synthetic() -> Span {
        Span {
            start: 0,
            end: 0,
            line: 0,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_correctly() {
        let a = Span::new(0, 4, 1);
        let b = Span::new(10, 12, 3);
        let m = a.merge(b);
        assert_eq!(m, Span::new(0, 12, 1));
        let m2 = b.merge(a);
        assert_eq!(m2, Span::new(0, 12, 1));
    }

    #[test]
    fn display_shows_line() {
        assert_eq!(Span::new(5, 6, 7).to_string(), "line 7");
    }
}
