//! Public façade of the ML Kit RGC reproduction: one call compiles and
//! runs a MiniML program under any of the paper's execution modes.
//!
//! The pipeline (paper §3): parsing → elaboration (`kit-typing`) →
//! `LambdaExp` optimization (`kit-lambda`) → region inference +
//! representation inference (`kit-region`) → bytecode generation
//! (`kit-kam`) → execution against the region runtime with the
//! Cheney-for-regions collector (`kit-runtime`).
//!
//! # Examples
//!
//! ```
//! use kit::{Compiler, Mode};
//!
//! let out = Compiler::new(Mode::Rgt).run_source("val it = 1 + 2")?;
//! assert_eq!(out.result_int(), Some(3));
//! assert_eq!(out.stats.gc_count, 0);
//! # Ok::<(), kit::Error>(())
//! ```

pub mod oracle;

use kit_kam::render::render_value;
use kit_kam::{Executable, Vm};
use kit_lambda::opt::OptOptions;
use kit_lambda::LProgram;
use kit_region::RegionOptions;
use kit_runtime::Rt;
use kit_typing::TypeError;
use std::fmt;

pub use kit_kam::threaded::Op as KamOp;
pub use kit_kam::Program;
pub use kit_kam::{DispatchMode, Fusion, FusionProfile, VmError};
pub use kit_lambda::ty::LTy;
pub use kit_runtime::stats::GcRecord;
pub use kit_runtime::{RtConfig, RtStats};

/// Execution modes (paper §1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Regions alone, untagged values, (safe) dangling pointers allowed.
    R,
    /// Regions alone, tagged values — isolates the cost of tagging.
    Rt,
    /// Garbage collection within a degenerate region stack (region
    /// inference disabled; one global region).
    Gt,
    /// Regions combined with garbage collection.
    Rgt,
    /// The SML/NJ substitute: everything heap-allocated in one region,
    /// two-generation copying collection (see [`kit_baseline`]).
    Baseline,
}

impl Mode {
    /// The paper's four modes, in order.
    pub const ALL: [Mode; 4] = [Mode::R, Mode::Rt, Mode::Gt, Mode::Rgt];

    /// The four modes plus the generational baseline.
    pub const ALL_WITH_BASELINE: [Mode; 5] =
        [Mode::R, Mode::Rt, Mode::Gt, Mode::Rgt, Mode::Baseline];

    /// The subscript used in the paper's tables (`r`, `rt`, `gt`, `rgt`).
    pub fn suffix(self) -> &'static str {
        match self {
            Mode::R => "r",
            Mode::Rt => "rt",
            Mode::Gt => "gt",
            Mode::Rgt => "rgt",
            Mode::Baseline => "smlnj",
        }
    }

    fn region_options(self) -> RegionOptions {
        match self {
            Mode::R | Mode::Rt => RegionOptions::regions_only(),
            Mode::Gt => RegionOptions::disabled(),
            Mode::Rgt => RegionOptions::with_gc(),
            Mode::Baseline => RegionOptions::baseline(),
        }
    }

    fn rt_config(self) -> RtConfig {
        match self {
            Mode::R => RtConfig::r(),
            Mode::Rt => RtConfig::rt(),
            Mode::Gt => RtConfig::gt(),
            Mode::Rgt => RtConfig::rgt(),
            Mode::Baseline => kit_baseline::baseline_config(),
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Compilation or execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Front-end (syntax or type) error.
    Compile(TypeError),
    /// Runtime failure (uncaught exception, fuel).
    Run(VmError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "compile error: {e}"),
            Error::Run(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<TypeError> for Error {
    fn from(e: TypeError) -> Self {
        Error::Compile(e)
    }
}

impl From<VmError> for Error {
    fn from(e: VmError) -> Self {
        Error::Run(e)
    }
}

/// Result of running a program.
#[derive(Debug)]
pub struct Outcome {
    /// Canonically rendered result value.
    pub result: String,
    /// Everything printed by the program.
    pub output: String,
    /// Instructions executed by the abstract machine.
    pub instructions: u64,
    /// Runtime statistics: allocation volume, collections, peak memory,
    /// per-collection accounting (paper §4.3).
    pub stats: RtStats,
    /// Region-profile samples if profiling was enabled (paper Fig. 5).
    pub profile: Vec<kit_runtime::profile::Sample>,
    /// Dynamic opcode pair/triple counts if the fusion counting mode was
    /// enabled ([`Compiler::with_fusion_profile`]).
    pub fusion_profile: Option<Box<FusionProfile>>,
    /// Wall-clock execution time of the VM run.
    pub wall: std::time::Duration,
}

impl Outcome {
    /// The result as an integer, if it renders as one.
    pub fn result_int(&self) -> Option<i64> {
        self.result.strip_prefix('~').map_or_else(
            || self.result.parse().ok(),
            |rest| rest.parse::<i64>().ok().map(|n| -n),
        )
    }
}

/// A program compiled *and* linked/translated for one dispatch engine:
/// the expensive, shareable half of execution. Prepare once with
/// [`Compiler::prepare_source`], then run any number of times with
/// [`Compiler::run_prepared`] — concurrently if desired, since the
/// payload is plain immutable data (`Send + Sync`; share via `Arc`) and
/// every run gets its own `Vm`/`Rt`.
#[derive(Debug)]
pub struct PreparedProgram {
    /// The compiled bytecode (entry points, render tables).
    pub program: Program,
    /// The linked stream, translated for the compiler's dispatch engine.
    pub executable: Executable,
}

/// A configured compiler.
#[derive(Debug, Clone)]
pub struct Compiler {
    mode: Mode,
    opt: OptOptions,
    config: RtConfig,
    fuel: Option<u64>,
    /// Relative wall-clock budget, anchored to `Instant::now()` when a
    /// run starts (so one `Compiler` can serve many runs, each with a
    /// fresh deadline). An absolute deadline set via
    /// [`Compiler::with_deadline_at`] lives in `config.deadline` instead.
    deadline: Option<std::time::Duration>,
    fusion: Fusion,
    dispatch: DispatchMode,
    fusion_profile: bool,
}

impl Compiler {
    /// Creates a compiler for `mode` with default options.
    pub fn new(mode: Mode) -> Self {
        Compiler {
            mode,
            opt: OptOptions::default(),
            config: mode.rt_config(),
            fuel: None,
            deadline: None,
            fusion: Fusion::default(),
            dispatch: DispatchMode::default(),
            fusion_profile: false,
        }
    }

    /// The mode this compiler targets.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Overrides the runtime configuration (heap-to-live ratio, page size,
    /// profiling, ...). Tagging and GC flags are forced back to the mode's
    /// requirements.
    pub fn with_config(mut self, mut config: RtConfig) -> Self {
        let m = self.mode.rt_config();
        config.tagged = m.tagged;
        config.gc_enabled = m.gc_enabled;
        if config.generational.is_none() {
            config.generational = m.generational;
        }
        self.config = config;
        self
    }

    /// Enables region profiling (paper Fig. 5).
    pub fn with_profiling(mut self) -> Self {
        self.config.profile = true;
        self
    }

    /// Sets an instruction budget (for tests and property checks).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Caps each run's materialized region-heap footprint (the
    /// per-request memory quota of the server). A run that stays over
    /// the cap after a forced collection at a `GcCheck` safe point fails
    /// with [`VmError::QuotaExceeded`]. Unlike [`Compiler::with_config`]
    /// this leaves the mode's other runtime defaults untouched.
    pub fn with_max_heap_pages(mut self, pages: usize) -> Self {
        self.config.max_heap_pages = Some(pages);
        self
    }

    /// Bounds each run's wall-clock time (the per-request deadline of the
    /// server): the budget is anchored to `Instant::now()` when the run
    /// starts, and a run whose clock expires fails with
    /// [`VmError::DeadlineExceeded`] at a `GcCheck` safe point — the same
    /// points fuel and the page quota are enforced at, on every engine.
    pub fn with_deadline(mut self, budget: std::time::Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Like [`Compiler::with_deadline`] but with an absolute point in
    /// time, so queueing delay upstream of the run (e.g. time spent in
    /// the server's admission queue) counts against the budget.
    pub fn with_deadline_at(mut self, deadline: std::time::Instant) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Disables the `LambdaExp` optimizer.
    pub fn without_optimizer(mut self) -> Self {
        self.opt.enabled = false;
        self
    }

    /// Disables superinstruction fusion in the interpreter's link pass
    /// (for differential testing; all observable behavior — including the
    /// instruction count — is identical either way).
    pub fn without_fusion(mut self) -> Self {
        self.fusion = Fusion::Off;
        self
    }

    /// Selects the superinstruction set the link pass may fuse (`Off`,
    /// the hand-picked PR 1 `Hand` set, or the `Full` generated table).
    pub fn with_fusion(mut self, fusion: Fusion) -> Self {
        self.fusion = fusion;
        self
    }

    /// Selects the interpreter's dispatch engine: the classic match loop,
    /// the direct-threaded handler table, the register-translated form
    /// (stack bytecode rewritten to three-address ops post-link, with
    /// cross-block register assignment), or the register-fused form
    /// (the register stream re-fused with the profile-selected
    /// superinstruction set). Observable behavior — results, output,
    /// instruction totals, GC schedule and statistics — is identical
    /// across all four.
    ///
    /// ```
    /// use kit::{Compiler, DispatchMode, Mode};
    ///
    /// let src = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n\
    ///            val it = fib 12";
    /// let run = |d| {
    ///     Compiler::new(Mode::Rgt)
    ///         .with_dispatch(d)
    ///         .run_source(src)
    ///         .unwrap()
    /// };
    /// let m = run(DispatchMode::Match);
    /// let r = run(DispatchMode::Register);
    /// let rf = run(DispatchMode::RegisterFused);
    /// assert_eq!(m.result, r.result);
    /// assert_eq!(m.instructions, r.instructions);
    /// assert_eq!(m.result, rf.result);
    /// assert_eq!(m.instructions, rf.instructions);
    /// ```
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Enables the VM's fusion counting mode: dynamic opcode pair/triple
    /// frequencies are returned in [`Outcome::fusion_profile`]. Forces
    /// match dispatch with fusion off so base opcodes stay visible.
    pub fn with_fusion_profile(mut self) -> Self {
        self.fusion_profile = true;
        self
    }

    /// Compiles `src` to bytecode (usable for repeated runs).
    ///
    /// # Errors
    ///
    /// Returns a compile error on invalid programs.
    pub fn compile_source(&self, src: &str) -> Result<kit_kam::Program, Error> {
        let mut lprog = kit_typing::compile_str(src)?;
        self.compile_lambda(&mut lprog)
    }

    /// Compiles an elaborated program.
    ///
    /// # Errors
    ///
    /// Currently infallible after elaboration; the `Result` is kept for
    /// interface stability.
    pub fn compile_lambda(&self, lprog: &mut LProgram) -> Result<kit_kam::Program, Error> {
        kit_lambda::opt::optimize(lprog, &self.opt);
        let rprog = kit_region::infer(lprog, self.mode.region_options());
        let mut prog = kit_kam::compile(&rprog, self.config.tagged);
        prog.result_ty = lprog.result_ty.clone();
        Ok(prog)
    }

    /// Runs compiled bytecode. Links and translates on every call; for
    /// repeated runs of the same program, [`Compiler::prepare_source`] +
    /// [`Compiler::run_prepared`] pay that cost once.
    ///
    /// # Errors
    ///
    /// Returns a runtime error on uncaught exceptions, fuel exhaustion
    /// or a breached memory quota.
    pub fn run_program(&self, prog: &kit_kam::Program) -> Result<Outcome, Error> {
        let rt = Rt::new(self.run_config());
        let mut vm = Vm::new(prog, rt)
            .with_fusion(self.fusion)
            .with_dispatch(self.dispatch);
        if let Some(f) = self.fuel {
            vm = vm.with_fuel(f);
        }
        if self.fusion_profile {
            vm = vm.with_fusion_profile();
        }
        let t0 = std::time::Instant::now();
        let out = vm.run()?;
        let wall = t0.elapsed();
        let result = render_value(&out.rt, out.result, &prog.result_ty, &prog.data);
        Ok(Outcome {
            result,
            output: out.output,
            instructions: out.instructions,
            stats: out.stats,
            profile: out.rt.profiler.samples().to_vec(),
            fusion_profile: out.fusion_profile,
            wall,
        })
    }

    /// Links and translates compiled bytecode for this compiler's
    /// dispatch engine, producing a [`PreparedProgram`] for repeated
    /// (and concurrent) execution.
    pub fn prepare_program(&self, prog: Program) -> PreparedProgram {
        // The fusion counting mode forces match dispatch with fusion off
        // (base opcodes must stay visible), mirroring
        // `Vm::with_fusion_profile`.
        let (dispatch, fusion) = if self.fusion_profile {
            (DispatchMode::Match, Fusion::Off)
        } else {
            (self.dispatch, self.fusion)
        };
        let executable = Executable::prepare(&prog, dispatch, fusion);
        PreparedProgram {
            program: prog,
            executable,
        }
    }

    /// Compiles and prepares `src` in one step.
    ///
    /// # Errors
    ///
    /// Returns a compile error on invalid programs.
    pub fn prepare_source(&self, src: &str) -> Result<PreparedProgram, Error> {
        Ok(self.prepare_program(self.compile_source(src)?))
    }

    /// Runs a prepared program on a fresh `Vm`/`Rt`. Observationally
    /// identical to [`Compiler::run_program`] on the same bytecode with
    /// the same configuration — results, output, instruction totals and
    /// GC counters are bit-identical — but skips the per-run link and
    /// translation work.
    ///
    /// # Errors
    ///
    /// Returns a runtime error on uncaught exceptions, fuel exhaustion
    /// or a breached memory quota.
    pub fn run_prepared(&self, prep: &PreparedProgram) -> Result<Outcome, Error> {
        let rt = Rt::new(self.run_config());
        let mut vm = Vm::new(&prep.program, rt)
            .with_fusion(self.fusion)
            .with_dispatch(self.dispatch);
        if let Some(f) = self.fuel {
            vm = vm.with_fuel(f);
        }
        if self.fusion_profile {
            vm = vm.with_fusion_profile();
        }
        let t0 = std::time::Instant::now();
        let out = vm.run_prepared(&prep.executable)?;
        let wall = t0.elapsed();
        let result = render_value(
            &out.rt,
            out.result,
            &prep.program.result_ty,
            &prep.program.data,
        );
        Ok(Outcome {
            result,
            output: out.output,
            instructions: out.instructions,
            stats: out.stats,
            profile: out.rt.profiler.samples().to_vec(),
            fusion_profile: out.fusion_profile,
            wall,
        })
    }

    /// The per-run runtime configuration: the stored config with the
    /// relative wall-clock budget (if any) anchored to now. When both a
    /// relative budget and an absolute deadline are set, the earlier one
    /// wins.
    fn run_config(&self) -> RtConfig {
        let mut config = self.config.clone();
        if let Some(budget) = self.deadline {
            let at = std::time::Instant::now() + budget;
            config.deadline = Some(config.deadline.map_or(at, |d| d.min(at)));
        }
        config
    }

    /// Compiles and runs `src`.
    ///
    /// # Errors
    ///
    /// Propagates compile and runtime errors.
    pub fn run_source(&self, src: &str) -> Result<Outcome, Error> {
        let prog = self.compile_source(src)?;
        self.run_program(&prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_run_hello() {
        for mode in Mode::ALL {
            let out = Compiler::new(mode)
                .run_source("val it = 20 + 22")
                .unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(out.result_int(), Some(42), "{mode}");
        }
    }

    #[test]
    fn prepared_program_is_send_sync_and_matches_per_run_linking() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedProgram>();
        assert_send_sync::<RtConfig>();

        let src = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n\
                   val it = fib 15";
        for dispatch in [
            DispatchMode::Match,
            DispatchMode::Threaded,
            DispatchMode::Register,
            DispatchMode::RegisterFused,
        ] {
            let c = Compiler::new(Mode::Rgt).with_dispatch(dispatch);
            let prep = c.prepare_source(src).unwrap();
            let a = c.run_prepared(&prep).unwrap();
            let b = c.run_source(src).unwrap();
            assert_eq!(a.result, b.result, "{dispatch:?}");
            assert_eq!(a.instructions, b.instructions, "{dispatch:?}");
            assert_eq!(a.stats.gc_count, b.stats.gc_count, "{dispatch:?}");
            // Repeated runs over one prepared program are identical too.
            let a2 = c.run_prepared(&prep).unwrap();
            assert_eq!(a.result, a2.result, "{dispatch:?}");
            assert_eq!(a.instructions, a2.instructions, "{dispatch:?}");
        }
    }

    #[test]
    fn untagged_modes_never_collect() {
        for mode in [Mode::R, Mode::Rt] {
            let out = Compiler::new(mode)
                .run_source(
                    "fun build 0 = nil | build n = n :: build (n-1) val it = length (build 5000)",
                )
                .unwrap();
            assert_eq!(out.stats.gc_count, 0, "{mode}");
        }
    }
}
