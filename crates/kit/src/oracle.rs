//! The reference-evaluator oracle with canonical rendering, used by
//! differential tests: every execution mode must produce the same rendered
//! result and printed output as the oracle.

use crate::Error;
use kit_lambda::eval::{self, fmt_sml_int, fmt_sml_real, EvalError, Value};
use kit_lambda::opt::OptOptions;
use kit_lambda::ty::{DataEnv, LTy, SchemeTy};
use kit_syntax::Span;
use kit_typing::TypeError;

/// Result of an oracle run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Canonically rendered result (same format as the VM renderer).
    pub result: String,
    /// Printed output.
    pub output: String,
}

/// Runs `src` through the front-end, optimizer and reference evaluator.
///
/// # Errors
///
/// Compile errors, uncaught exceptions (as [`Error::Run`]-compatible
/// compile errors for simplicity of comparison) and fuel exhaustion.
pub fn run_oracle(src: &str, fuel: Option<u64>) -> Result<OracleOutcome, Error> {
    let mut prog = kit_typing::compile_str(src)?;
    kit_lambda::opt::optimize(&mut prog, &OptOptions::default());
    let out = eval::eval(&prog.body, &prog.exns, fuel).map_err(|e| match e {
        EvalError::UncaughtException(n) => {
            // No call chain in the reference evaluator; `VmError` equality
            // ignores the backtrace.
            Error::Run(kit_kam::VmError::UncaughtException {
                name: n,
                backtrace: String::new(),
            })
        }
        other => Error::Compile(TypeError::new(other.to_string(), Span::synthetic())),
    })?;
    let result = render_oracle(&out.value, &prog.result_ty, &prog.data, 0);
    Ok(OracleOutcome {
        result,
        output: out.output,
    })
}

/// Renders an oracle value in the canonical format of
/// [`kit_kam::render::render_value`].
pub fn render_oracle(v: &Value<'_>, ty: &LTy, data: &DataEnv, depth: u32) -> String {
    if depth > 50 {
        return "...".to_string();
    }
    match (v, ty) {
        (Value::Int(n), _) => fmt_sml_int(*n),
        (Value::Bool(b), _) => b.to_string(),
        (Value::Unit, _) => "()".to_string(),
        (Value::Real(r), _) => fmt_sml_real(*r),
        (Value::Str(s), _) => format!("{s:?}"),
        (Value::Tuple(fields), LTy::Tuple(ts)) => {
            let parts: Vec<String> = fields
                .iter()
                .zip(ts)
                .map(|(f, t)| render_oracle(f, t, data, depth + 1))
                .collect();
            format!("({})", parts.join(", "))
        }
        (Value::Tuple(_), _) => "<tuple>".to_string(),
        (Value::Closure { .. } | Value::FixClosure(_, _), _) => "<fn>".to_string(),
        (Value::Ref(cell), LTy::Ref(t)) => {
            format!("ref {}", render_oracle(&cell.borrow(), t, data, depth + 1))
        }
        (Value::Ref(_), _) => "ref <?>".to_string(),
        (Value::Array(arr), LTy::Array(t)) => {
            let arr = arr.borrow();
            let elems: Vec<String> = arr
                .iter()
                .take(20)
                .map(|e| render_oracle(e, t, data, depth + 1))
                .collect();
            format!("<array {}>[{}]", arr.len(), elems.join(", "))
        }
        (Value::Array(_), _) => "<array>".to_string(),
        (Value::Exn(_, _), _) => "<exn>".to_string(),
        (Value::Con { tycon, con, arg }, LTy::Con(_, targs)) => {
            let dt = data.get(*tycon);
            let cinfo = &dt.constructors[con.0 as usize];
            match (arg, &cinfo.arg) {
                (None, _) => cinfo.name.clone(),
                (Some(a), Some(SchemeTy::Tuple(ts))) => {
                    // Inline tuple argument renders without double parens.
                    let Value::Tuple(fields) = a.as_ref() else {
                        return format!("{}(<?>)", cinfo.name);
                    };
                    let parts: Vec<String> = fields
                        .iter()
                        .zip(ts)
                        .map(|(f, s)| render_oracle(f, &s.instantiate(targs), data, depth + 1))
                        .collect();
                    format!("{}({})", cinfo.name, parts.join(", "))
                }
                (Some(a), Some(s)) => {
                    format!(
                        "{}({})",
                        cinfo.name,
                        render_oracle(a, &s.instantiate(targs), data, depth + 1)
                    )
                }
                (Some(_), None) => format!("{}(<?>)", cinfo.name),
            }
        }
        (Value::Con { .. }, _) => "<con>".to_string(),
    }
}
