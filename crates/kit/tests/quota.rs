//! Per-request quota enforcement (DESIGN.md §6i): fuel exhaustion and
//! page-cap breaches return clean typed errors, identically across all
//! four dispatch engines, and leave no state behind — repeated runs of
//! one prepared program are bit-identical whether or not a capped run
//! failed in between.

use kit::{Compiler, DispatchMode, Error, Mode, VmError};

const ENGINES: [DispatchMode; 4] = [
    DispatchMode::Match,
    DispatchMode::Threaded,
    DispatchMode::Register,
    DispatchMode::RegisterFused,
];

const BUILD: &str = "fun build 0 = nil | build n = n :: build (n-1)\nval it = length (build 40000)";
const FIB: &str = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval it = fib 15";

#[test]
fn page_cap_breach_is_typed_and_engine_identical() {
    let mut errors = Vec::new();
    for dispatch in ENGINES {
        let err = Compiler::new(Mode::Rgt)
            .with_dispatch(dispatch)
            .with_max_heap_pages(8)
            .run_source(BUILD)
            .expect_err("the 40k-cons list cannot fit in 8 pages");
        match &err {
            Error::Run(VmError::QuotaExceeded { pages, cap }) => {
                assert_eq!(*cap, 8, "{dispatch:?}");
                assert!(*pages > 8, "{dispatch:?}: failing footprint {pages}");
            }
            other => panic!("{dispatch:?}: expected QuotaExceeded, got {other}"),
        }
        errors.push(err);
    }
    // Quota is checked only at GcCheck safe points, so the failing
    // footprint is the same number of pages in every engine.
    for window in errors.windows(2) {
        assert_eq!(window[0], window[1]);
    }
}

#[test]
fn fuel_exhaustion_is_typed_and_engine_identical() {
    for dispatch in ENGINES {
        let err = Compiler::new(Mode::Rgt)
            .with_dispatch(dispatch)
            .with_fuel(1_000)
            .run_source(FIB)
            .expect_err("fib 15 needs more than 1000 instructions");
        assert_eq!(err, Error::Run(VmError::OutOfFuel), "{dispatch:?}");
    }
}

#[test]
fn generous_cap_leaves_execution_bit_identical() {
    // A quota that is never breached must not perturb anything: same
    // result, instruction total, GC schedule and peak as the uncapped
    // run.
    for mode in [Mode::Rgt, Mode::Gt] {
        let uncapped = Compiler::new(mode).run_source(BUILD).expect("uncapped run");
        let capped = Compiler::new(mode)
            .with_max_heap_pages(1 << 20)
            .run_source(BUILD)
            .expect("generously capped run");
        assert_eq!(capped.result, uncapped.result, "{mode}");
        assert_eq!(capped.instructions, uncapped.instructions, "{mode}");
        assert_eq!(capped.stats.gc_count, uncapped.stats.gc_count, "{mode}");
        assert_eq!(
            capped.stats.gc_copied_words, uncapped.stats.gc_copied_words,
            "{mode}"
        );
        assert_eq!(capped.stats.peak_bytes, uncapped.stats.peak_bytes, "{mode}");
    }
}

#[test]
fn quota_failures_leak_nothing_across_runs() {
    // Interleave capped (failing) and uncapped (succeeding) runs over
    // one shared PreparedProgram: every uncapped run must be
    // bit-identical to the first, and every capped failure identical
    // too — no pages or accounting leak from one request to the next.
    let base = Compiler::new(Mode::Rgt);
    let capped = base.clone().with_max_heap_pages(8);
    let prep = base.prepare_source(BUILD).expect("compile");

    let ok0 = base.run_prepared(&prep).expect("uncapped run");
    let err0 = capped.run_prepared(&prep).expect_err("capped run fails");
    for _ in 0..3 {
        let err = capped.run_prepared(&prep).expect_err("capped run fails");
        assert_eq!(err, err0);
        let ok = base.run_prepared(&prep).expect("uncapped run");
        assert_eq!(ok.result, ok0.result);
        assert_eq!(ok.instructions, ok0.instructions);
        assert_eq!(ok.stats.gc_count, ok0.stats.gc_count);
        assert_eq!(ok.stats.gc_copied_words, ok0.stats.gc_copied_words);
        assert_eq!(ok.stats.peak_bytes, ok0.stats.peak_bytes);
        assert_eq!(ok.stats.heap_grows, ok0.stats.heap_grows);
    }
}

#[test]
fn quota_error_renders_pages_and_cap() {
    let err = Compiler::new(Mode::Rgt)
        .with_max_heap_pages(8)
        .run_source(BUILD)
        .expect_err("quota breach");
    let msg = err.to_string();
    assert!(
        msg.contains("memory quota exceeded") && msg.contains("cap of 8"),
        "unhelpful message: {msg}"
    );
}
