//! Differential tests: every execution mode (`r`, `rt`, `gt`, `rgt`) must
//! produce exactly the oracle's rendered result and printed output.
//!
//! The `rgt`/`gt` runs additionally execute under severe heap pressure
//! (tiny initial heap) so collections actually happen mid-computation.

use kit::oracle::run_oracle;
use kit::{Compiler, Mode};
use kit_runtime::RtConfig;

const FUEL: u64 = 300_000_000;

/// Runs `body` on a thread with a deep stack: the reference evaluator (and
/// the renderer) recurse per data constructor, and debug-mode frames on
/// deep structures exceed the default test-thread stack.
fn with_deep_stack(body: impl FnOnce() + Send) {
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn_scoped(s, body)
            .unwrap();
    });
}

fn check(src: &str) {
    with_deep_stack(|| check_on_current_thread(src));
}

#[track_caller]
fn check_on_current_thread(src: &str) {
    let oracle = run_oracle(src, Some(FUEL)).unwrap_or_else(|e| panic!("oracle: {e}\n{src}"));
    for mode in Mode::ALL {
        let out = Compiler::new(mode)
            .with_fuel(FUEL)
            .run_source(src)
            .unwrap_or_else(|e| panic!("{mode}: {e}\n{src}"));
        assert_eq!(
            out.result, oracle.result,
            "result mismatch in {mode}\n{src}"
        );
        assert_eq!(
            out.output, oracle.output,
            "output mismatch in {mode}\n{src}"
        );
    }
    // Poisoned run: deallocated pages are overwritten, so any read through
    // a dangling pointer (a region popped too early) fails loudly.
    {
        let cfg = RtConfig {
            poison: true,
            ..RtConfig::r()
        };
        let out = Compiler::new(Mode::R)
            .with_config(cfg)
            .with_fuel(FUEL)
            .run_source(src)
            .unwrap_or_else(|e| panic!("r (poisoned): {e}\n{src}"));
        assert_eq!(out.result, oracle.result, "poisoned result mismatch\n{src}");
    }
    // Heap pressure: small pages & heap force many collections.
    for mode in [Mode::Gt, Mode::Rgt] {
        let cfg = RtConfig {
            initial_pages: 4,
            page_words_log2: 6,
            ..mode_cfg(mode)
        };
        let out = Compiler::new(mode)
            .with_config(cfg)
            .with_fuel(FUEL)
            .run_source(src)
            .unwrap_or_else(|e| panic!("{mode} (pressure): {e}\n{src}"));
        assert_eq!(
            out.result, oracle.result,
            "pressure result mismatch in {mode}\n{src}"
        );
        assert_eq!(
            out.output, oracle.output,
            "pressure output mismatch in {mode}\n{src}"
        );
    }
}

fn mode_cfg(mode: Mode) -> RtConfig {
    match mode {
        Mode::R => RtConfig::r(),
        Mode::Rt => RtConfig::rt(),
        Mode::Gt => RtConfig::gt(),
        _ => RtConfig::rgt(),
    }
}

#[track_caller]
fn expect_exn(src: &str, name: &str) {
    for mode in Mode::ALL {
        let err = Compiler::new(mode)
            .with_fuel(FUEL)
            .run_source(src)
            .expect_err(&format!("{mode} should raise"));
        assert!(
            err.to_string().contains(name),
            "{mode}: expected {name}, got {err}\n{src}"
        );
    }
}

#[test]
fn arithmetic() {
    check("val it = 2 + 3 * 4 - 1");
    check("val it = ~7 div 2 + ~7 mod 2");
    check("val it = (1 < 2, 2 <= 2, 3 > 4, 4 >= 5)");
}

#[test]
fn lists_and_prelude() {
    check("val it = length [1,2,3]");
    check("val it = rev [1,2,3]");
    check("val it = map (fn x => x * x) (upto (1, 10))");
    check("val it = foldl op+ 0 (upto (1, 100))");
    check("val it = [1,2] @ [3,4]");
    check("val it = filter (fn x => x mod 2 = 0) (upto (1, 20))");
}

#[test]
fn recursion_and_hofs() {
    check("fun fib n = if n < 2 then n else fib (n-1) + fib (n-2) val it = fib 18");
    check(
        "fun even 0 = true | even n = odd (n-1)
         and odd 0 = false | odd n = even (n-1)
         val it = (even 100, odd 99)",
    );
    check("fun twice f x = f (f x) val it = twice (twice (fn n => n + 1)) 0");
    check("fun compose2 f g = f o g val it = (compose2 (fn x => x*2) (fn x => x+1)) 10");
}

#[test]
fn currying_and_closures() {
    check("fun add x y = x + y  val add3 = add 3  val it = add3 4 + add3 5");
    check(
        "fun counter start =
           let val r = ref start
           in fn () => (r := !r + 1; !r) end
         val c = counter 10
         val _ = c ()
         val _ = c ()
         val it = c ()",
    );
    check(
        "fun make n = fn x => x + n
         val fs = map make [1, 2, 3]
         val it = map (fn f => f 10) fs",
    );
}

#[test]
fn datatypes_and_patterns() {
    check(
        "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
         fun insert (Leaf, x) = Node (Leaf, x, Leaf)
           | insert (Node (l, y, r), x) =
               if x < y then Node (insert (l, x), y, r)
               else Node (l, y, insert (r, x))
         fun sum Leaf = 0 | sum (Node (l, x, r)) = sum l + x + sum r
         val t = foldl (fn (x, acc) => insert (acc, x)) Leaf [5, 2, 8, 1, 9, 3]
         val it = sum t",
    );
    check(
        "datatype shape = Circle of real | Rect of real * real | Point
         fun area (Circle r) = floor (r * r * 3.0)
           | area (Rect (w, h)) = floor (w * h)
           | area Point = 0
         val it = area (Circle 2.0) + area (Rect (3.0, 4.0)) + area Point",
    );
    check(
        "datatype colour = Red | Green | Blue
         fun next Red = Green | next Green = Blue | next Blue = Red
         val it = next (next Red)",
    );
}

#[test]
fn deep_data_survives_collection() {
    check(
        "fun build 0 = nil | build n = (n, n * 2) :: build (n - 1)
         fun total nil = 0 | total ((a, b) :: xs) = a + b + total xs
         val it = total (build 2000)",
    );
}

#[test]
fn reals() {
    check("val it = floor (2.5 + 0.25 * 2.0)");
    check("val pi = 3.14159 val it = floor (pi * 100.0)");
    check("val it = floor (sqrt 16.0) + trunc ~2.7");
    check("val it = if 1.5 < 2.5 andalso 2.5 <= 2.5 then 1 else 0");
}

#[test]
fn strings() {
    check("val it = \"a\" ^ \"b\" ^ itos 42");
    check("val it = size (concat [\"aa\", \"bbb\", \"c\"])");
    check("val it = (\"abc\" < \"abd\", \"b\" < \"a\", \"x\" = \"x\")");
    check("val _ = print (\"hello \" ^ itos 1 ^ \"\\n\") val it = 0");
    check("val it = strsub (\"AZ\", 1)");
}

#[test]
fn equality() {
    check("val it = [1,2,3] = [1,2,3]");
    check("val it = (1, (true, \"s\")) = (1, (true, \"s\"))");
    check(
        "datatype t = A | B of int * t
         val it = (B (1, B (2, A)) = B (1, B (2, A)), B (1, A) = B (2, A))",
    );
}

#[test]
fn exceptions() {
    check("val it = (1 div 0) handle Div => 42");
    check(
        "exception Found of int
         fun find p nil = raise Found ~1
           | find p (x :: xs) = if p x then x else find p xs
         val it = (find (fn x => x > 100) [1, 2, 3]) handle Found n => n",
    );
    check(
        "exception A exception B of string
         fun f 0 = raise A | f 1 = raise B \"one\" | f n = n
         val it = ((f 0 handle A => 10) + (f 1 handle B s => size s) + f 5)",
    );
    check("val it = ((1 div 0) handle Subscript => 1) handle Div => 2");
    expect_exn("val it = 1 div 0", "Div");
    expect_exn("val it = hd nil", "Match");
    expect_exn("val a = array (2, 0) val it = asub (a, 2)", "Subscript");
}

#[test]
fn refs_arrays_loops() {
    check(
        "val acc = ref 0
         val i = ref 0
         val _ = while !i < 100 do (acc := !acc + !i; i := !i + 1)
         val it = !acc",
    );
    check(
        "val a = array (20, 0)
         fun fill i = if i >= 20 then () else (aupdate (a, i, i * i); fill (i + 1))
         val _ = fill 0
         fun total (i, acc) = if i >= 20 then acc else total (i + 1, acc + asub (a, i))
         val it = total (0, 0)",
    );
    check("val r = ref [1,2] val _ = r := 0 :: !r val it = !r");
}

#[test]
fn escaping_closures_and_regions() {
    // The §2.6 shape: a closure captures a pair it never uses.
    check(
        "fun f x = 17
         fun g v = fn y => f v + y
         val h = g (2, 3)
         val it = h 5",
    );
    // Closure capturing data that must survive region exits.
    check(
        "fun make () = let val data = upto (1, 50) in fn () => length data end
         val f = make ()
         val it = f () + f ()",
    );
}

#[test]
fn region_polymorphic_recursion_survives() {
    check(
        "fun msort nil = nil
           | msort [x] = [x]
           | msort xs =
             let
               fun split (nil, a, b) = (a, b)
                 | split (x :: rest, a, b) = split (rest, x :: b, a)
               fun merge (nil, ys) = ys
                 | merge (xs, nil) = xs
                 | merge (x :: xs, y :: ys) =
                     if x <= y then x :: merge (xs, y :: ys)
                     else y :: merge (x :: xs, ys)
               val (a, b) = split (xs, nil, nil)
             in
               merge (msort a, msort b)
             end
         fun mk (0, acc) = acc | mk (n, acc) = mk (n - 1, (n * 7919) mod 1000 :: acc)
         val sorted = msort (mk (500, nil))
         val it = (hd sorted, hd (rev sorted), length sorted)",
    );
}

#[test]
fn printing_order_is_preserved() {
    check(
        "fun show n = print (itos n ^ \" \")
         val _ = app show (upto (1, 10))
         val it = ()",
    );
}

#[test]
fn large_tail_recursion() {
    check(
        "fun go (0, acc) = acc | go (n, acc) = go (n - 1, acc + n)
         val it = go (200000, 0)",
    );
}

#[test]
fn polymorphic_functions_shared_across_types() {
    check("val it = (length (map id [1,2,3]), length (map id [true, false]))");
    check("val p = (id 1, id \"x\", id 2.5) val it = p");
}

#[test]
fn gc_actually_ran_under_pressure() {
    let cfg = RtConfig {
        initial_pages: 4,
        page_words_log2: 6,
        ..RtConfig::rgt()
    };
    let out = Compiler::new(Mode::Rgt)
        .with_config(cfg)
        .run_source(
            "fun burn 0 = 0 | burn n = length (upto (1, 50)) + burn (n - 1)
             val it = burn 200",
        )
        .unwrap();
    assert!(
        out.stats.gc_count > 0,
        "expected collections under pressure"
    );
    assert_eq!(out.result_int(), Some(10000));
}
