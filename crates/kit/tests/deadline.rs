//! Wall-clock deadline enforcement (DESIGN.md §6j): breaches surface as
//! a typed `VmError::DeadlineExceeded` at `GcCheck` safe points — the
//! same points fuel and page quotas use — so an already-expired deadline
//! fails at the *first* safe point on every dispatch engine (the strided
//! clock read always samples safe point 1), and a generous deadline
//! leaves execution bit-identical to an undeadlined run.

use kit::{Compiler, DispatchMode, Error, Mode, VmError};
use std::time::{Duration, Instant};

const ENGINES: [DispatchMode; 4] = [
    DispatchMode::Match,
    DispatchMode::Threaded,
    DispatchMode::Register,
    DispatchMode::RegisterFused,
];

const FIB: &str = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval it = fib 15";
/// Runs forever; only fuel or a deadline stops it.
const SPIN: &str = "fun loop n = loop (n + 1)\nval it = loop 0";

#[test]
fn expired_deadline_breaches_at_the_first_safe_point_on_every_engine() {
    let mut errors = Vec::new();
    for dispatch in ENGINES {
        let err = Compiler::new(Mode::Rgt)
            .with_dispatch(dispatch)
            .with_deadline_at(Instant::now())
            .run_source(FIB)
            .expect_err("an already-expired deadline cannot run anything");
        match &err {
            Error::Run(VmError::DeadlineExceeded { checks }) => {
                assert_eq!(
                    *checks, 1,
                    "{dispatch:?}: the stride samples the first safe point"
                );
            }
            other => panic!("{dispatch:?}: expected DeadlineExceeded, got {other}"),
        }
        errors.push(err);
    }
    // The typed error (including the breaching safe-point ordinal) is
    // identical across engines — the deadline is an engine-shared
    // safe-point property, not an engine detail.
    for window in errors.windows(2) {
        assert_eq!(window[0], window[1]);
    }
}

#[test]
fn short_deadline_stops_a_divergent_program() {
    for dispatch in ENGINES {
        let err = Compiler::new(Mode::Rgt)
            .with_dispatch(dispatch)
            .with_deadline(Duration::from_millis(50))
            .run_source(SPIN)
            .expect_err("the spin loop cannot finish");
        match err {
            Error::Run(VmError::DeadlineExceeded { checks }) => {
                assert!(checks >= 1, "{dispatch:?}");
            }
            other => panic!("{dispatch:?}: expected DeadlineExceeded, got {other}"),
        }
    }
}

#[test]
fn deadline_error_text_is_constant() {
    // The serve layer demands uniform result text for a given outcome;
    // the breaching safe-point ordinal varies run to run, so it must
    // not leak into the rendered error.
    let err = Compiler::new(Mode::Rgt)
        .with_deadline_at(Instant::now())
        .run_source(FIB)
        .expect_err("expired deadline");
    assert_eq!(
        err.to_string(),
        "runtime error: wall-clock deadline exceeded"
    );
}

#[test]
fn generous_deadline_leaves_execution_bit_identical() {
    for dispatch in ENGINES {
        let plain = Compiler::new(Mode::Rgt)
            .with_dispatch(dispatch)
            .run_source(FIB)
            .expect("plain run");
        let deadlined = Compiler::new(Mode::Rgt)
            .with_dispatch(dispatch)
            .with_deadline(Duration::from_secs(600))
            .run_source(FIB)
            .expect("deadlined run");
        assert_eq!(plain.result, deadlined.result, "{dispatch:?}");
        assert_eq!(plain.instructions, deadlined.instructions, "{dispatch:?}");
        assert_eq!(
            plain.stats.gc_count, deadlined.stats.gc_count,
            "{dispatch:?}"
        );
        assert_eq!(
            plain.stats.gc_copied_words, deadlined.stats.gc_copied_words,
            "{dispatch:?}"
        );
        assert_eq!(
            plain.stats.peak_bytes, deadlined.stats.peak_bytes,
            "{dispatch:?}"
        );
    }
}
