//! Abstract-machine tests: calling conventions, tail calls, finite
//! regions, region-polymorphic calls, escaping `fix` functions (stubs),
//! and collection at safe points with deep frame stacks.

use kit_kam::{compile, Vm};
use kit_lambda::ty::LTy;
use kit_region::RegionOptions;
use kit_runtime::{Rt, RtConfig};

fn run(src: &str, opts: RegionOptions, cfg: RtConfig) -> (String, kit_runtime::RtStats) {
    let mut lprog = kit_typing::compile_str(src).expect("front-end");
    kit_lambda::opt::optimize(&mut lprog, &Default::default());
    let rprog = kit_region::infer(&lprog, opts);
    let mut prog = compile(&rprog, cfg.tagged);
    prog.result_ty = lprog.result_ty.clone();
    let out = Vm::new(&prog, Rt::new(cfg))
        .with_fuel(500_000_000)
        .run()
        .expect("vm run");
    let rendered = kit_kam::render::render_value(&out.rt, out.result, &prog.result_ty, &prog.data);
    (rendered, out.stats)
}

fn run_rgt(src: &str) -> (String, kit_runtime::RtStats) {
    run(src, RegionOptions::with_gc(), RtConfig::rgt())
}

#[test]
fn tail_calls_keep_memory_bounded() {
    // One million tail-recursive iterations must not grow the stack:
    // peak memory stays small even though each non-tail frame would be
    // dozens of words.
    let (res, stats) = run_rgt(
        "fun loop (0, acc) = acc | loop (n, acc) = loop (n - 1, acc + 1)
         val it = loop (1000000, 0)",
    );
    assert_eq!(res, "1000000");
    assert!(
        stats.peak_bytes < 4 * 1024 * 1024,
        "tail recursion must not accumulate frames: peak {} bytes",
        stats.peak_bytes
    );
}

#[test]
fn non_tail_recursion_grows_the_stack() {
    let (res, stats) = run_rgt(
        "fun sum 0 = 0 | sum n = n + sum (n - 1)
         val it = sum 20000",
    );
    assert_eq!(res, "200010000");
    assert!(
        stats.peak_bytes > 100 * 1024,
        "non-tail frames should be visible in peak memory: {}",
        stats.peak_bytes
    );
}

#[test]
fn letregion_blocks_tail_calls_like_the_ml_kit() {
    // §4.4: letregion around a tail position defeats tail-call
    // optimization in the ML Kit; we reproduce that. The loop below
    // allocates a pair per iteration in a local region, so frames pile up
    // — it must still run correctly (the stack is a Vec, not the Rust
    // stack).
    let (res, _) = run_rgt(
        "fun loop (0, acc) = acc
           | loop (n, acc) = loop (n - 1, acc + fst (n, n))
         val it = loop (30000, 0)",
    );
    assert_eq!(res, "450015000");
}

#[test]
fn escaping_fix_functions_enter_via_stub() {
    // `build` is region-polymorphic and escapes as a value (mapped over a
    // list), so calls go through the pair + stub entry.
    let (res, _) = run_rgt(
        "fun build 0 = nil | build n = n :: build (n - 1)
         val lists = map build [1, 2, 3, 4]
         val it = foldl (fn (l, a) => length l + a) 0 lists",
    );
    assert_eq!(res, "10");
}

#[test]
fn finite_regions_hold_values_on_the_stack() {
    // A single-use pair is a finite region: no region page allocation
    // should be needed for it. With only finite allocations the region
    // heap sees zero mutator page requests beyond the global regions.
    let (res, stats) = run(
        "val p = (21, 2) val it = fst p * snd p",
        RegionOptions::regions_only(),
        RtConfig::r(),
    );
    assert_eq!(res, "42");
    assert_eq!(stats.words_allocated, 0, "the pair must live in the frame");
}

#[test]
fn deep_frames_are_gc_roots() {
    // Collection triggered while thousands of frames are live: every
    // frame's locals must be scanned (non-tail recursion holding a list
    // alive at every level).
    let src = "
        fun down 0 = nil
          | down n = let val keep = [n, n, n]
                     in hd keep :: down (n - 1) end
        val it = length (down 3000)";
    let cfg = RtConfig {
        initial_pages: 8,
        page_words_log2: 6,
        ..RtConfig::rgt()
    };
    let (res, stats) = run(src, RegionOptions::with_gc(), cfg);
    assert_eq!(res, "3000");
    assert!(
        stats.gc_count > 0,
        "the heap was sized to force collections"
    );
}

#[test]
fn region_handles_pass_through_closures() {
    // A closure allocating into a region bound outside it must capture the
    // region handle (the ML Kit's region vectors).
    let (res, _) = run_rgt(
        "fun apply f = f ()
         fun outer n =
           let val g = fn () => (n, n + 1)
           in snd (apply g) end
         val it = outer 41",
    );
    assert_eq!(res, "42");
}

#[test]
fn disassembler_round_trip_smoke() {
    let mut lprog = kit_typing::compile_str("fun f x = x + 1 val it = f 1").unwrap();
    kit_lambda::opt::optimize(&mut lprog, &Default::default());
    let rprog = kit_region::infer(&lprog, RegionOptions::with_gc());
    let prog = compile(&rprog, true);
    let asm = kit_kam::disasm::disassemble(&prog);
    assert!(asm.contains("GcCheck"), "{asm}");
    let _ = LTy::Int;
}
