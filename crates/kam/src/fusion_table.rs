//! Fusion-candidate table consumed by the link pass.
//!
//! This table is *generated*: `cargo run -p kit-bench --release --bin
//! bench-summary -- --profile-fusion` runs the benchmark suite in the
//! VM's counting mode (fusion off, so base opcodes are visible),
//! aggregates dynamic pair/triple frequencies of fallthrough-adjacent
//! instructions, and prints a replacement for [`FUSION_CANDIDATES`] with
//! fresh `dyn_count` numbers. Patterns are ordered longest-first because
//! the matcher in [`crate::link`] is greedy; a unit test enforces the
//! ordering.
//!
//! `tier` records provenance: tier 1 is the hand-picked PR 1 set (kept
//! selectable on its own for A/B continuity with `BENCH_PR1.json`), tier
//! 2 the profile-selected additions, tier 3 the triples the tier-2
//! profile still reported as hot-but-uncovered. `dyn_count` is the
//! measured number of adjacent executions across the suite at test
//! scale — documentation for the next regeneration, not an input to the
//! matcher.

/// Source-instruction kind, as matched by fusion patterns (a projection
/// of [`crate::instr::Instr`] that ignores operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opk {
    Load,
    Store,
    Pop,
    PushConst,
    Select,
    Prim,
    JumpIfFalse,
    SwitchCon,
    GcCheck,
    RegHandle,
}

/// The superinstruction a matched pattern is replaced by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseKind {
    LoadLoadPrim,
    PushConstPrim,
    LoadSelect,
    StorePop,
    PushConstJumpIfFalse,
    LoadConstPrim,
    LoadSelectStore,
    LoadLoadPrimJump,
    LoadConstPrimJump,
    // Tier 2: selected from `--profile-fusion` counts.
    StoreLoadSelect,
    LoadPrimJump,
    SelectConstPrim,
    StoreLoad,
    LoadLoad,
    PrimJump,
    SelectStore,
    LoadStore,
    LoadSwitchCon,
    GcCheckLoad,
    RegHandleRegHandle,
    // Tier 3: triples the tier-2 profile still reported uncovered.
    SelectStoreLoad,
    GcCheckLoadSwitchCon,
    RegHandleRegHandleLoad,
    RegHandleLoadLoad,
}

/// One fusion candidate: the instruction sequence `seq` collapses into
/// the superinstruction `out` (cost = `seq.len()`).
#[derive(Debug)]
pub struct Pattern {
    /// Source-instruction kinds, matched at adjacent pcs with no interior
    /// leader.
    pub seq: &'static [Opk],
    /// Replacement superinstruction.
    pub out: FuseKind,
    /// 1 = hand-picked PR 1 set, 2 = profile-selected addition, 3 =
    /// uncovered-triple fixups on top of tier 2.
    pub tier: u8,
    /// Measured fallthrough-adjacent executions across the benchmark
    /// suite (see module docs; regenerated with `--profile-fusion`).
    pub dyn_count: u64,
}

/// All fusion candidates, longest pattern first (the matcher is greedy).
pub static FUSION_CANDIDATES: &[Pattern] = &[
    Pattern {
        seq: &[Opk::Load, Opk::Load, Opk::Prim, Opk::JumpIfFalse],
        out: FuseKind::LoadLoadPrimJump,
        tier: 1,
        dyn_count: 4112980,
    },
    Pattern {
        seq: &[Opk::Load, Opk::PushConst, Opk::Prim, Opk::JumpIfFalse],
        out: FuseKind::LoadConstPrimJump,
        tier: 1,
        dyn_count: 1365200,
    },
    Pattern {
        seq: &[Opk::Store, Opk::Load, Opk::Select],
        out: FuseKind::StoreLoadSelect,
        tier: 2,
        dyn_count: 19294318,
    },
    Pattern {
        seq: &[Opk::Select, Opk::Store, Opk::Load],
        out: FuseKind::SelectStoreLoad,
        tier: 3,
        dyn_count: 17480807,
    },
    Pattern {
        seq: &[Opk::GcCheck, Opk::Load, Opk::SwitchCon],
        out: FuseKind::GcCheckLoadSwitchCon,
        tier: 3,
        dyn_count: 8032545,
    },
    Pattern {
        seq: &[Opk::RegHandle, Opk::RegHandle, Opk::Load],
        out: FuseKind::RegHandleRegHandleLoad,
        tier: 3,
        dyn_count: 5138412,
    },
    Pattern {
        seq: &[Opk::RegHandle, Opk::Load, Opk::Load],
        out: FuseKind::RegHandleLoadLoad,
        tier: 3,
        dyn_count: 4899492,
    },
    Pattern {
        seq: &[Opk::Load, Opk::Select, Opk::Store],
        out: FuseKind::LoadSelectStore,
        tier: 1,
        dyn_count: 17488090,
    },
    Pattern {
        seq: &[Opk::Load, Opk::Load, Opk::Prim],
        out: FuseKind::LoadLoadPrim,
        tier: 1,
        dyn_count: 4492800,
    },
    Pattern {
        seq: &[Opk::Load, Opk::Prim, Opk::JumpIfFalse],
        out: FuseKind::LoadPrimJump,
        tier: 2,
        dyn_count: 4112980,
    },
    Pattern {
        seq: &[Opk::Load, Opk::PushConst, Opk::Prim],
        out: FuseKind::LoadConstPrim,
        tier: 1,
        dyn_count: 3660790,
    },
    Pattern {
        seq: &[Opk::Select, Opk::PushConst, Opk::Prim],
        out: FuseKind::SelectConstPrim,
        tier: 2,
        dyn_count: 2465,
    },
    Pattern {
        seq: &[Opk::Store, Opk::Load],
        out: FuseKind::StoreLoad,
        tier: 2,
        dyn_count: 26264872,
    },
    Pattern {
        seq: &[Opk::Load, Opk::Select],
        out: FuseKind::LoadSelect,
        tier: 1,
        dyn_count: 25855695,
    },
    Pattern {
        seq: &[Opk::Select, Opk::Store],
        out: FuseKind::SelectStore,
        tier: 2,
        dyn_count: 17488090,
    },
    Pattern {
        seq: &[Opk::Load, Opk::Load],
        out: FuseKind::LoadLoad,
        tier: 2,
        dyn_count: 15278157,
    },
    Pattern {
        seq: &[Opk::Prim, Opk::JumpIfFalse],
        out: FuseKind::PrimJump,
        tier: 2,
        dyn_count: 5900985,
    },
    Pattern {
        seq: &[Opk::PushConst, Opk::Prim],
        out: FuseKind::PushConstPrim,
        tier: 1,
        dyn_count: 4172095,
    },
    Pattern {
        seq: &[Opk::PushConst, Opk::JumpIfFalse],
        out: FuseKind::PushConstJumpIfFalse,
        tier: 1,
        dyn_count: 243085,
    },
    Pattern {
        seq: &[Opk::Load, Opk::SwitchCon],
        out: FuseKind::LoadSwitchCon,
        tier: 2,
        dyn_count: 8916140,
    },
    Pattern {
        seq: &[Opk::GcCheck, Opk::Load],
        out: FuseKind::GcCheckLoad,
        tier: 2,
        dyn_count: 9304920,
    },
    Pattern {
        seq: &[Opk::RegHandle, Opk::RegHandle],
        out: FuseKind::RegHandleRegHandle,
        tier: 2,
        dyn_count: 9898762,
    },
    Pattern {
        seq: &[Opk::Load, Opk::Store],
        out: FuseKind::LoadStore,
        tier: 2,
        dyn_count: 7064103,
    },
    Pattern {
        seq: &[Opk::Store, Opk::Pop],
        out: FuseKind::StorePop,
        tier: 1,
        dyn_count: 0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_are_longest_first() {
        for w in FUSION_CANDIDATES.windows(2) {
            assert!(
                w[0].seq.len() >= w[1].seq.len(),
                "greedy matcher needs longest-first ordering: {:?} before {:?}",
                w[0].out,
                w[1].out
            );
        }
    }

    #[test]
    fn patterns_are_unique() {
        for (i, a) in FUSION_CANDIDATES.iter().enumerate() {
            for b in &FUSION_CANDIDATES[i + 1..] {
                assert_ne!(a.seq, b.seq, "duplicate pattern {:?}/{:?}", a.out, b.out);
            }
        }
    }
}
