//! Bytecode disassembler (`--dump-kam` style debugging output), for both
//! the compiler's label-based stream and the linked form the interpreter
//! dispatches on.

use crate::instr::Program;
use crate::link;
use std::fmt::Write as _;

/// Renders the instruction stream with code addresses and function entry
/// markers.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    // Invert label addresses for display.
    let mut entries: std::collections::HashMap<usize, String> = Default::default();
    for (label, fun) in &p.entry_of {
        let addr = p.label_addrs[*label];
        let name = &p.funs[*fun as usize].name;
        entries
            .entry(addr)
            .and_modify(|s| {
                let _ = write!(s, ", {name}");
            })
            .or_insert_with(|| name.clone());
    }
    for (addr, ins) in p.code.iter().enumerate() {
        if let Some(name) = entries.get(&addr) {
            let _ = writeln!(out, "{name}:");
        }
        let _ = writeln!(out, "  {addr:>5}  {ins:?}");
    }
    out
}

/// Renders the *linked* instruction stream (absolute pc operands, fused
/// superinstructions) — what the interpreter actually executes.
pub fn disassemble_linked(p: &Program, fusion: link::Fusion) -> String {
    let linked = link::link(p, fusion);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; linked: {} instructions ({} fused) from {} source instructions",
        linked.code.len(),
        linked.fused,
        p.code.len()
    );
    render_stream(p, &linked.entry_pc, linked.code.iter(), &mut out);
    out
}

/// Renders the *threaded* (struct-of-arrays) form by rebuilding each
/// instruction from its opcode + pre-decoded operands. Because the
/// translation is lossless, this produces the same mnemonic stream as
/// [`disassemble_linked`] apart from the header line — the round-trip
/// property the dispatch tests rely on.
pub fn disassemble_threaded(p: &Program, fusion: link::Fusion) -> String {
    let tcode = crate::threaded::translate(link::link(p, fusion));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; threaded: {} instructions ({} fused) from {} source instructions",
        tcode.ops.len(),
        tcode.fused,
        p.code.len()
    );
    let rebuilt: Vec<_> = (0..tcode.ops.len()).map(|pc| tcode.rebuild(pc)).collect();
    render_stream(p, &tcode.entry_pc, rebuilt.iter(), &mut out);
    out
}

/// Renders the *register* form: the unfused linked stream rewritten by
/// the translator in [`crate::regalloc`]. Register-only ops print as
/// their [`crate::register::RegInstr`] decoding; each line carries the
/// instruction charge (`[n]`), whose sum (plus the deferral books)
/// reproduces the source length. Lines marked `*` forced a pending-entry
/// flush; `; shape:` lines show the block-boundary register assignment
/// agreed with all predecessors — the first thing to check when a
/// cross-block carry misbehaves.
pub fn disassemble_register(p: &Program) -> String {
    let linked = link::link(p, link::Fusion::Off);
    let src_len = linked.code.len();
    let r = crate::register::translate(&linked);
    let header = format!(
        "; register: {} instructions ({} source instructions folded) from {} source instructions\n\
         ; cross-block: {} entries seeded, {} charges deferred",
        r.code.ops.len(),
        r.folded,
        src_len,
        r.seeded,
        r.deferred
    );
    render_register(p, &r, &header)
}

/// Renders the *register-fused* form: the register stream after the
/// re-fusion pass merged profile-selected superinstruction windows. Same
/// annotations as [`disassemble_register`]; a merged line's charge is the
/// sum of its window's charges.
pub fn disassemble_register_fused(p: &Program) -> String {
    let linked = link::link(p, link::Fusion::Off);
    let src_len = linked.code.len();
    let r = crate::register::fuse(crate::register::translate(&linked));
    let header = format!(
        "; register_fused: {} instructions ({} re-fused, {} source instructions folded) from {} source instructions\n\
         ; cross-block: {} entries seeded, {} charges deferred",
        r.code.ops.len(),
        r.code.fused,
        r.folded,
        src_len,
        r.seeded,
        r.deferred
    );
    render_register(p, &r, &header)
}

fn render_register(p: &Program, r: &crate::register::RegCode, header: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    let mut entries: std::collections::HashMap<usize, String> = Default::default();
    for (fun, info) in p.funs.iter().enumerate() {
        let pc = r.code.entry_pc[fun] as usize;
        let name = &info.name;
        entries
            .entry(pc)
            .and_modify(|s| {
                let _ = write!(s, ", {name}");
            })
            .or_insert_with(|| name.clone());
    }
    let shapes: std::collections::HashMap<usize, &[crate::register::RSrc]> = r
        .entry_shapes
        .iter()
        .map(|(pc, s)| (*pc as usize, s.as_slice()))
        .collect();
    for pc in 0..r.code.ops.len() {
        if let Some(name) = entries.get(&pc) {
            let _ = writeln!(out, "{name}:");
        }
        if let Some(shape) = shapes.get(&pc) {
            let _ = writeln!(out, "         ; shape: {shape:?}");
        }
        let cost = r.costs[pc];
        let flush = if r.flushed.get(pc).copied().unwrap_or(false) {
            '*'
        } else {
            ' '
        };
        match r.decode(pc) {
            crate::register::RegInstr::Base(ins) => {
                let _ = writeln!(out, "  {pc:>5} {flush}[{cost}] {ins:?}");
            }
            reg => {
                let _ = writeln!(out, "  {pc:>5} {flush}[{cost}] {reg:?}");
            }
        }
    }
    out
}

fn render_stream<'i>(
    p: &Program,
    entry_pc: &[u32],
    code: impl Iterator<Item = &'i crate::link::LInstr>,
    out: &mut String,
) {
    let mut entries: std::collections::HashMap<usize, String> = Default::default();
    for (fun, info) in p.funs.iter().enumerate() {
        let pc = entry_pc[fun] as usize;
        let name = &info.name;
        entries
            .entry(pc)
            .and_modify(|s| {
                let _ = write!(s, ", {name}");
            })
            .or_insert_with(|| name.clone());
    }
    for (pc, ins) in code.enumerate() {
        if let Some(name) = entries.get(&pc) {
            let _ = writeln!(out, "{name}:");
        }
        let _ = writeln!(out, "  {pc:>5}  {ins:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disassembles_a_program() {
        let mut lprog = kit_typing::compile_str("val it = 1 + 2").unwrap();
        kit_lambda::opt::optimize(&mut lprog, &Default::default());
        let rprog = kit_region::infer(&lprog, kit_region::RegionOptions::regions_only());
        let prog = crate::compile(&rprog, true);
        let s = disassemble(&prog);
        assert!(s.contains("<main>:"), "{s}");
        assert!(s.contains("Halt"), "{s}");
    }

    #[test]
    fn register_dump_carries_flush_markers_and_entry_shapes() {
        // A loop with a live accumulator crossing the back-edge: the
        // cross-block pass seeds a non-empty shape at the loop header,
        // which must show up as a `; shape:` annotation, and observation
        // points force flushes, which must show up as `*` markers.
        let src = "fun go (i, acc) = if i = 0 then acc else go (i - 1, (acc + i) mod 97)\n\
                   val it = go (100, 1)";
        let mut lprog = kit_typing::compile_str(src).unwrap();
        kit_lambda::opt::optimize(&mut lprog, &Default::default());
        let rprog = kit_region::infer(&lprog, kit_region::RegionOptions::regions_only());
        let prog = crate::compile(&rprog, true);
        let dump = disassemble_register(&prog);
        assert!(dump.starts_with("; register:"), "{dump}");
        assert!(dump.contains("; cross-block:"), "{dump}");
        assert!(dump.contains("; shape:"), "{dump}");
        assert!(dump.contains("*["), "{dump}");
        let fused = disassemble_register_fused(&prog);
        assert!(fused.starts_with("; register_fused:"), "{fused}");
        assert!(fused.contains("re-fused"), "{fused}");
        assert!(fused.contains("Halt"), "{fused}");
    }

    #[test]
    fn disassembles_the_linked_form() {
        let mut lprog = kit_typing::compile_str("fun f (x, y) = x + y val it = f (1, 2)").unwrap();
        kit_lambda::opt::optimize(&mut lprog, &Default::default());
        let rprog = kit_region::infer(&lprog, kit_region::RegionOptions::regions_only());
        let prog = crate::compile(&rprog, true);
        let fused = disassemble_linked(&prog, link::Fusion::Full);
        assert!(fused.contains("<main>:"), "{fused}");
        assert!(fused.contains("Halt"), "{fused}");
        let unfused = disassemble_linked(&prog, link::Fusion::Off);
        assert!(unfused.contains("(0 fused)"), "{unfused}");
    }
}
