//! Bytecode disassembler (`--dump-kam` style debugging output), for both
//! the compiler's label-based stream and the linked form the interpreter
//! dispatches on.

use crate::instr::Program;
use crate::link;
use std::fmt::Write as _;

/// Renders the instruction stream with code addresses and function entry
/// markers.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    // Invert label addresses for display.
    let mut entries: std::collections::HashMap<usize, String> = Default::default();
    for (label, fun) in &p.entry_of {
        let addr = p.label_addrs[*label];
        let name = &p.funs[*fun as usize].name;
        entries
            .entry(addr)
            .and_modify(|s| {
                let _ = write!(s, ", {name}");
            })
            .or_insert_with(|| name.clone());
    }
    for (addr, ins) in p.code.iter().enumerate() {
        if let Some(name) = entries.get(&addr) {
            let _ = writeln!(out, "{name}:");
        }
        let _ = writeln!(out, "  {addr:>5}  {ins:?}");
    }
    out
}

/// Renders the *linked* instruction stream (absolute pc operands, fused
/// superinstructions) — what the interpreter actually executes.
pub fn disassemble_linked(p: &Program, fuse: bool) -> String {
    let linked = link::link(p, fuse);
    let mut entries: std::collections::HashMap<usize, String> = Default::default();
    for (fun, info) in p.funs.iter().enumerate() {
        let pc = linked.entry_pc[fun] as usize;
        let name = &info.name;
        entries
            .entry(pc)
            .and_modify(|s| {
                let _ = write!(s, ", {name}");
            })
            .or_insert_with(|| name.clone());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; linked: {} instructions ({} fused) from {} source instructions",
        linked.code.len(),
        linked.fused,
        p.code.len()
    );
    for (pc, ins) in linked.code.iter().enumerate() {
        if let Some(name) = entries.get(&pc) {
            let _ = writeln!(out, "{name}:");
        }
        let _ = writeln!(out, "  {pc:>5}  {ins:?}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disassembles_a_program() {
        let mut lprog = kit_typing::compile_str("val it = 1 + 2").unwrap();
        kit_lambda::opt::optimize(&mut lprog, &Default::default());
        let rprog = kit_region::infer(&lprog, kit_region::RegionOptions::regions_only());
        let prog = crate::compile(&rprog, true);
        let s = disassemble(&prog);
        assert!(s.contains("<main>:"), "{s}");
        assert!(s.contains("Halt"), "{s}");
    }

    #[test]
    fn disassembles_the_linked_form() {
        let mut lprog = kit_typing::compile_str("fun f (x, y) = x + y val it = f (1, 2)").unwrap();
        kit_lambda::opt::optimize(&mut lprog, &Default::default());
        let rprog = kit_region::infer(&lprog, kit_region::RegionOptions::regions_only());
        let prog = crate::compile(&rprog, true);
        let fused = disassemble_linked(&prog, true);
        assert!(fused.contains("<main>:"), "{fused}");
        assert!(fused.contains("Halt"), "{fused}");
        let unfused = disassemble_linked(&prog, false);
        assert!(unfused.contains("(0 fused)"), "{unfused}");
    }
}
