//! Bytecode disassembler (`--dump-kam` style debugging output).

use crate::instr::Program;
use std::fmt::Write as _;

/// Renders the instruction stream with code addresses and function entry
/// markers.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    // Invert label addresses for display.
    let mut entries: std::collections::HashMap<usize, String> = Default::default();
    for (label, fun) in &p.entry_of {
        let addr = p.label_addrs[*label];
        let name = &p.funs[*fun as usize].name;
        entries
            .entry(addr)
            .and_modify(|s| {
                let _ = write!(s, ", {name}");
            })
            .or_insert_with(|| name.clone());
    }
    for (addr, ins) in p.code.iter().enumerate() {
        if let Some(name) = entries.get(&addr) {
            let _ = writeln!(out, "{name}:");
        }
        let _ = writeln!(out, "  {addr:>5}  {ins:?}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disassembles_a_program() {
        let mut lprog = kit_typing::compile_str("val it = 1 + 2").unwrap();
        kit_lambda::opt::optimize(&mut lprog, &Default::default());
        let rprog = kit_region::infer(&lprog, kit_region::RegionOptions::regions_only());
        let prog = crate::compile(&rprog, true);
        let s = disassemble(&prog);
        assert!(s.contains("<main>:"), "{s}");
        assert!(s.contains("Halt"), "{s}");
    }
}
