//! RegionExp → bytecode compilation.
//!
//! Responsibilities: frame layout (locals, finite-region slots), closure
//! conversion (closures capture free variables, free region handles, and
//! the shared closures of referenced `fix` groups), constructor
//! representation, region-polymorphic calling convention, tail calls
//! (only outside `letregion`/handler scopes — the ML Kit limitation noted
//! in §4.4 of the paper), and safe-point placement at function entries.

use crate::instr::{Disc, FunInfo, Instr, Program, RegSlot};
use kit_lambda::exp::VarId;
use kit_lambda::ty::{SchemeTy, TyConId};
use kit_region::{Mult, Place, RExp, RFixFun, RProgram, RegVar};
use kit_runtime::value::scalar;
use std::collections::{BTreeSet, HashMap};

/// Compiles a RegionExp program for the given tagging mode.
pub fn compile(prog: &RProgram, tagged: bool) -> Program {
    let mut cx = Cx {
        prog,
        tagged,
        code: Vec::new(),
        labels: Vec::new(),
        funs: Vec::new(),
        entry_of: HashMap::new(),
        next_group: 0,
    };
    // Global regions: infinite ones are created by the VM at startup (their
    // region ids equal their position); finite ones live in the main frame.
    let mut global_regs: HashMap<RegVar, RegSlot> = HashMap::new();
    let mut global_infinite = Vec::new();
    let mut main_fin = FiniteArea::default();
    for (r, m) in &prog.globals {
        match m {
            Mult::Infinite => {
                global_regs.insert(*r, RegSlot::Global(global_infinite.len() as u32));
                global_infinite.push(r.0);
            }
            Mult::Finite => {
                let size = finite_size(&cx, &prog.body, *r);
                let off = main_fin.alloc(size);
                global_regs.insert(*r, RegSlot::Finite(off));
            }
        }
    }

    // Compile the main body as function 0.
    let entry = cx.new_label();
    cx.bind(entry);
    let mut fcx = FnCx::new(&global_regs, main_fin);
    cx.emit(Instr::GcCheck);
    cx.comp(&prog.body, &mut fcx, false);
    cx.emit(Instr::Halt);
    let main_info = FunInfo {
        entry,
        nlocals: fcx.nlocals,
        nfinite: fcx.fin.watermark,
        name: "<main>".to_string(),
    };
    let main_id = cx.funs.len() as u32;
    cx.funs.push(main_info);
    cx.entry_of.insert(entry, main_id);

    let entry_of = cx.entry_of.clone();
    Program {
        code: cx.code,
        label_addrs: cx.labels,
        funs: cx.funs,
        entry_of,
        main: main_id,
        global_infinite,
        exn_names: (0..prog.exns.len())
            .map(|i| prog.exns.get(kit_lambda::ty::ExnId(i as u32)).name.clone())
            .collect(),
        result_ty: kit_lambda::ty::LTy::Unit, // filled by the driver
        data: prog.data.clone(),
    }
}

// ---------------------------------------------------------------- contexts

#[derive(Debug, Clone)]
enum VB {
    /// Local slot.
    Slot(u32),
    /// Field of the current environment (absolute field index).
    Env(u32),
    /// A `fix`-bound function.
    Fix(FixInfo),
}

#[derive(Debug, Clone)]
struct FixInfo {
    label: usize,
    stub: usize,
    nformals: u16,
    group: u32,
}

#[derive(Debug, Clone, Copy)]
enum SharedSrc {
    /// The shared closure is in a local slot.
    Slot(u32),
    /// The shared closure is a field of the current environment.
    Env(u32),
    /// The group captured nothing: its shared value is scalar 0.
    Scalar,
}

#[derive(Debug, Default, Clone)]
struct FiniteArea {
    next: u32,
    watermark: u32,
}

impl FiniteArea {
    fn alloc(&mut self, words: u32) -> u32 {
        let off = self.next;
        self.next += words;
        self.watermark = self.watermark.max(self.next);
        off
    }
}

struct FnCx<'g> {
    vars: HashMap<VarId, VB>,
    regs: HashMap<RegVar, RegSlot>,
    shareds: HashMap<u32, SharedSrc>,
    globals: &'g HashMap<RegVar, RegSlot>,
    nlocals: u32,
    fin: FiniteArea,
    /// Open letregion scopes (tail calls are disabled inside them — the ML
    /// Kit limitation).
    cleanup: u32,
    /// Open `letregion` scopes of *this* function (a subset of `cleanup`,
    /// which also counts handler scopes). While one is open, a binding
    /// going out of scope must clear its local slot: the collector's root
    /// set spans every local, and a stale slot may point into a region
    /// the function is about to end (or into a reused finite-region area).
    /// Regions bound by callers outlive the frame, so depth 0 needs no
    /// clearing.
    open_lr: u32,
    /// Open infinite-region count (for Local slot indices).
    open_regions: u32,
}

impl<'g> FnCx<'g> {
    fn new(globals: &'g HashMap<RegVar, RegSlot>, fin: FiniteArea) -> Self {
        FnCx {
            vars: HashMap::new(),
            regs: HashMap::new(),
            shareds: HashMap::new(),
            globals,
            nlocals: 1, // slot 0 = environment
            fin,
            cleanup: 0,
            open_lr: 0,
            open_regions: 0,
        }
    }

    fn slot(&mut self) -> u32 {
        let s = self.nlocals;
        self.nlocals += 1;
        s
    }

    fn regslot(&self, r: RegVar) -> RegSlot {
        if let Some(s) = self.regs.get(&r) {
            return *s;
        }
        *self
            .globals
            .get(&r)
            .unwrap_or_else(|| panic!("region r{} not in scope", r.0))
    }
}

struct Cx<'a> {
    prog: &'a RProgram,
    tagged: bool,
    code: Vec<Instr>,
    labels: Vec<usize>,
    funs: Vec<FunInfo>,
    entry_of: HashMap<usize, u32>,
    next_group: u32,
}

impl Cx<'_> {
    fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(usize::MAX);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: usize) {
        self.labels[l] = self.code.len();
    }

    // ------------------------------------------------- constructor layout

    /// `(discriminant scheme, per-ctor inline field count)`.
    fn con_rep(&self, tycon: TyConId) -> (Disc, Vec<u16>) {
        let dt = self.prog.data.get(tycon);
        let fields: Vec<u16> = dt
            .constructors
            .iter()
            .map(|c| match &c.arg {
                None => 0,
                Some(SchemeTy::Tuple(ts)) => ts.len() as u16,
                Some(_) => 1,
            })
            .collect();
        let boxed = dt.boxed_count();
        let disc = if boxed == 0 {
            Disc::Enum
        } else if self.tagged {
            Disc::Tag
        } else if boxed == 1 {
            let single = fields
                .iter()
                .position(|&n| n > 0)
                .expect("one boxed constructor") as u32;
            Disc::Single(single)
        } else {
            Disc::Field0
        };
        (disc, fields)
    }

    fn con_needs_disc(&self, tycon: TyConId) -> bool {
        !self.tagged && self.prog.data.get(tycon).boxed_count() > 1
    }

    // ----------------------------------------------------------- captures

    /// Ordered capture list for a set of function bodies.
    fn captures(
        &self,
        bodies: &[&RExp],
        bound: &BTreeSet<VarId>,
        bound_regs: &BTreeSet<RegVar>,
        fcx: &FnCx<'_>,
    ) -> Vec<Cap> {
        let mut caps: Vec<Cap> = Vec::new();
        let mut seen_v = BTreeSet::new();
        let mut seen_r = BTreeSet::new();
        let mut seen_g = BTreeSet::new();
        for b in bodies {
            collect_caps(
                b,
                &mut bound.clone(),
                &mut bound_regs.clone(),
                fcx,
                &mut caps,
                &mut seen_v,
                &mut seen_r,
                &mut seen_g,
            );
        }
        caps
    }

    /// Emits code pushing the value of `v` (resolved in `fcx`).
    fn push_var(&mut self, v: VarId, fcx: &FnCx<'_>) {
        match fcx.vars.get(&v) {
            Some(VB::Slot(s)) => self.emit(Instr::Load(*s)),
            Some(VB::Env(i)) => {
                self.emit(Instr::Load(0));
                self.emit(Instr::Select(*i as u16));
            }
            Some(VB::Fix(_)) => {
                panic!(
                    "fix-bound {} used as plain variable (should be FixVar)",
                    v.0
                )
            }
            None => panic!("unbound variable {} at codegen", v.0),
        }
    }

    /// Clears the slot of a binding that just went out of scope. The GC
    /// root set includes every local of every live frame, so a stale slot
    /// must not keep pointing into a region this function may end before
    /// it returns — after `EndRegions` such a pointer dangles and the
    /// collector would trace freed (possibly reused) pages. Only letregion
    /// scopes of the current function can end while the frame is live, so
    /// clearing is emitted only inside them.
    fn clear_dead_slot(&mut self, s: u32, fcx: &FnCx<'_>) {
        if fcx.open_lr > 0 {
            let null = if self.tagged { scalar(0) } else { 0 };
            self.emit(Instr::PushConst(null));
            self.emit(Instr::Store(s));
        }
    }

    fn push_shared(&mut self, g: u32, fcx: &FnCx<'_>) {
        match fcx.shareds.get(&g) {
            Some(SharedSrc::Slot(s)) => self.emit(Instr::Load(*s)),
            Some(SharedSrc::Env(i)) => {
                self.emit(Instr::Load(0));
                self.emit(Instr::Select(*i as u16));
            }
            Some(SharedSrc::Scalar) => self.emit(Instr::PushConst(scalar(0))),
            None => panic!("shared closure of group {g} not in scope"),
        }
    }

    fn push_caps(&mut self, caps: &[Cap], fcx: &FnCx<'_>) {
        for c in caps {
            match c {
                Cap::Var(v) => self.push_var(*v, fcx),
                Cap::Reg(r) => self.emit(Instr::RegHandle(fcx.regslot(*r))),
                Cap::Shared(g) => self.push_shared(*g, fcx),
            }
        }
    }

    /// Binds the capture list inside a fresh function context whose
    /// environment starts at field `base` (1 for `fn` closures, 0 for
    /// shared closures).
    fn bind_caps(caps: &[Cap], base: u32, inner: &mut FnCx<'_>) {
        for (i, c) in caps.iter().enumerate() {
            let idx = base + i as u32;
            match c {
                Cap::Var(v) => {
                    inner.vars.insert(*v, VB::Env(idx));
                }
                Cap::Reg(r) => {
                    inner.regs.insert(*r, RegSlot::EnvReg(idx));
                }
                Cap::Shared(g) => {
                    inner.shareds.insert(*g, SharedSrc::Env(idx));
                }
            }
        }
    }

    // ----------------------------------------------------------- compile

    fn comp(&mut self, e: &RExp, fcx: &mut FnCx<'_>, tail: bool) {
        match e {
            RExp::Var(v) => self.push_var(*v, fcx),
            RExp::Int(n) => {
                let w = if self.tagged { scalar(*n) } else { *n as u64 };
                self.emit(Instr::PushConst(w));
            }
            RExp::Bool(b) => {
                let w = if self.tagged {
                    scalar(*b as i64)
                } else {
                    *b as u64
                };
                self.emit(Instr::PushConst(w));
            }
            RExp::Unit => {
                let w = if self.tagged { scalar(0) } else { 0 };
                self.emit(Instr::PushConst(w));
            }
            RExp::Str(s) => {
                // Interned by the VM at load time via a pseudo-prim.
                self.emit(Instr::PushStr(s.clone()));
            }
            RExp::Real(x, p) => {
                let at = fcx.regslot(*p);
                self.emit(Instr::PushReal(*x, at));
            }
            RExp::Prim(p, args, at) => {
                for a in args {
                    self.comp(a, fcx, false);
                }
                let at = at.map(|r| fcx.regslot(r));
                self.emit(Instr::Prim { p: *p, at });
            }
            RExp::Record(es, p) => {
                for a in es {
                    self.comp(a, fcx, false);
                }
                let at = fcx.regslot(*p);
                self.emit(Instr::MkRecord {
                    n: es.len() as u16,
                    at,
                });
            }
            RExp::Select(i, e) => {
                self.comp(e, fcx, false);
                self.emit(Instr::Select(*i as u16));
            }
            RExp::Con {
                tycon,
                con,
                arg,
                at,
            } => {
                let (_, fields) = self.con_rep(*tycon);
                let k = fields[con.0 as usize];
                match arg {
                    None => {
                        // Nullary constructors are immediate scalars whether
                        // or not values are tagged.
                        self.emit(Instr::PushConst(scalar(con.0 as i64)));
                    }
                    Some(a) => {
                        // Inline a syntactic record argument directly.
                        let is_tuple_decl = matches!(
                            self.prog.data.get(*tycon).constructors[con.0 as usize].arg,
                            Some(SchemeTy::Tuple(_))
                        );
                        if is_tuple_decl {
                            if let RExp::Record(es, _) = a.as_ref() {
                                for f in es {
                                    self.comp(f, fcx, false);
                                }
                            } else {
                                self.comp(a, fcx, false);
                                self.emit(Instr::Spread { n: k });
                            }
                        } else {
                            self.comp(a, fcx, false);
                        }
                        let at = fcx.regslot(at.expect("carrying constructor without place"));
                        self.emit(Instr::MkCon {
                            ctor: con.0 as u16,
                            n: k,
                            disc: self.con_needs_disc(*tycon),
                            at,
                        });
                    }
                }
            }
            RExp::DeCon { tycon, con, scrut } => {
                self.comp(scrut, fcx, false);
                let is_tuple_decl = matches!(
                    self.prog.data.get(*tycon).constructors[con.0 as usize].arg,
                    Some(SchemeTy::Tuple(_))
                );
                if is_tuple_decl {
                    // Inlined tuple: the constructor block *is* the tuple
                    // (skipping the discriminant word in untagged mode).
                    if self.con_needs_disc(*tycon) {
                        self.emit(Instr::DeConAdj);
                    }
                } else {
                    // Single-field argument: read it out of the block.
                    let off = u16::from(self.con_needs_disc(*tycon));
                    self.emit(Instr::Select(off));
                }
            }
            RExp::SwitchCon {
                scrut,
                tycon,
                arms,
                default,
            } => {
                self.comp(scrut, fcx, false);
                let (disc, _) = self.con_rep(*tycon);
                let end = self.new_label();
                let dflt = self.new_label();
                let mut larm = Vec::new();
                for (c, _) in arms {
                    larm.push((c.0, self.new_label()));
                }
                self.emit(Instr::SwitchCon {
                    disc,
                    arms: larm.clone(),
                    default: dflt,
                });
                for ((_, a), (_, l)) in arms.iter().zip(&larm) {
                    self.bind(*l);
                    self.comp(a, fcx, tail);
                    self.emit(Instr::Jump(end));
                }
                self.bind(dflt);
                match default {
                    Some(d) => self.comp(d, fcx, tail),
                    None => self.emit(Instr::Unreachable),
                }
                self.bind(end);
            }
            RExp::SwitchInt {
                scrut,
                arms,
                default,
            } => {
                self.comp(scrut, fcx, false);
                let end = self.new_label();
                let dflt = self.new_label();
                let mut larm = Vec::new();
                for (k, _) in arms {
                    larm.push((*k, self.new_label()));
                }
                self.emit(Instr::SwitchInt {
                    arms: larm.clone(),
                    default: dflt,
                });
                for ((_, a), (_, l)) in arms.iter().zip(&larm) {
                    self.bind(*l);
                    self.comp(a, fcx, tail);
                    self.emit(Instr::Jump(end));
                }
                self.bind(dflt);
                self.comp(default, fcx, tail);
                self.bind(end);
            }
            RExp::SwitchStr {
                scrut,
                arms,
                default,
            } => {
                self.comp(scrut, fcx, false);
                let end = self.new_label();
                let dflt = self.new_label();
                let mut larm = Vec::new();
                for (k, _) in arms {
                    larm.push((k.clone(), self.new_label()));
                }
                self.emit(Instr::SwitchStr {
                    arms: larm.clone(),
                    default: dflt,
                });
                for ((_, a), (_, l)) in arms.iter().zip(&larm) {
                    self.bind(*l);
                    self.comp(a, fcx, tail);
                    self.emit(Instr::Jump(end));
                }
                self.bind(dflt);
                self.comp(default, fcx, tail);
                self.bind(end);
            }
            RExp::SwitchExn {
                scrut,
                arms,
                default,
            } => {
                self.comp(scrut, fcx, false);
                let end = self.new_label();
                let dflt = self.new_label();
                let mut larm = Vec::new();
                for (k, _) in arms {
                    larm.push((k.0, self.new_label()));
                }
                self.emit(Instr::SwitchExn {
                    arms: larm.clone(),
                    default: dflt,
                });
                for ((_, a), (_, l)) in arms.iter().zip(&larm) {
                    self.bind(*l);
                    self.comp(a, fcx, tail);
                    self.emit(Instr::Jump(end));
                }
                self.bind(dflt);
                self.comp(default, fcx, tail);
                self.bind(end);
            }
            RExp::If(c, t, f) => {
                self.comp(c, fcx, false);
                let lf = self.new_label();
                let end = self.new_label();
                self.emit(Instr::JumpIfFalse(lf));
                self.comp(t, fcx, tail);
                self.emit(Instr::Jump(end));
                self.bind(lf);
                self.comp(f, fcx, tail);
                self.bind(end);
            }
            RExp::Fn { params, body, at } => {
                let bound: BTreeSet<VarId> = params.iter().copied().collect();
                let caps = self.captures(&[body], &bound, &BTreeSet::new(), fcx);
                // Emit the function body out of line.
                let fix_binds: Vec<(VarId, VB)> = fcx
                    .vars
                    .iter()
                    .filter(|(_, b)| matches!(b, VB::Fix(_)))
                    .map(|(v, b)| (*v, b.clone()))
                    .collect();
                let entry = self.compile_function(
                    "fn",
                    params,
                    &[],
                    body,
                    &caps,
                    1,
                    None,
                    fcx.globals,
                    &fix_binds,
                );
                // Closure record: [label, captures...].
                self.emit(Instr::PushConst(scalar(entry as i64)));
                self.push_caps(&caps, fcx);
                let at = fcx.regslot(*at);
                self.emit(Instr::MkRecord {
                    n: 1 + caps.len() as u16,
                    at,
                });
            }
            RExp::App {
                callee,
                rargs,
                args,
            } => {
                if let RExp::Var(v) = callee.as_ref() {
                    if let Some(VB::Fix(info)) = fcx.vars.get(v).cloned() {
                        // Known call: [shared, rhandles.., args..].
                        self.push_shared(info.group, fcx);
                        for r in rargs {
                            self.emit(Instr::RegHandle(fcx.regslot(*r)));
                        }
                        for a in args {
                            self.comp(a, fcx, false);
                        }
                        self.emit(Instr::Call {
                            label: info.label,
                            nargs: args.len() as u16,
                            nformals: info.nformals,
                            tail: tail && fcx.cleanup == 0,
                        });
                        return;
                    }
                }
                self.comp(callee, fcx, false);
                for a in args {
                    self.comp(a, fcx, false);
                }
                self.emit(Instr::CallClos {
                    nargs: args.len() as u16,
                    tail: tail && fcx.cleanup == 0,
                });
            }
            RExp::FixVar { var, rargs, at } => {
                let Some(VB::Fix(info)) = fcx.vars.get(var).cloned() else {
                    panic!("FixVar of non-fix binding {}", var.0)
                };
                self.emit(Instr::PushConst(scalar(info.stub as i64)));
                self.push_shared(info.group, fcx);
                for r in rargs {
                    self.emit(Instr::RegHandle(fcx.regslot(*r)));
                }
                let at = fcx.regslot(*at);
                self.emit(Instr::MkRecord {
                    n: 2 + rargs.len() as u16,
                    at,
                });
            }
            RExp::Let { var, rhs, body } => {
                self.comp(rhs, fcx, false);
                let s = fcx.slot();
                self.emit(Instr::Store(s));
                fcx.vars.insert(*var, VB::Slot(s));
                self.comp(body, fcx, tail);
                self.clear_dead_slot(s, fcx);
            }
            RExp::Fix { funs, body, at } => self.comp_fix(funs, body, *at, fcx, tail),
            RExp::Letregion { regs, body } => {
                let inf: Vec<u32> = regs
                    .iter()
                    .filter(|(_, m)| *m == Mult::Infinite)
                    .map(|(r, _)| r.0)
                    .collect();
                let fin_save = fcx.fin.next;
                for (r, m) in regs {
                    match m {
                        Mult::Infinite => {
                            let idx = fcx.open_regions;
                            fcx.open_regions += 1;
                            fcx.regs.insert(*r, RegSlot::Local(idx));
                        }
                        Mult::Finite => {
                            let size = finite_size(self, body, *r);
                            let off = fcx.fin.alloc(size);
                            fcx.regs.insert(*r, RegSlot::Finite(off));
                        }
                    }
                }
                if !inf.is_empty() {
                    self.emit(Instr::LetRegion { names: inf.clone() });
                }
                fcx.cleanup += 1;
                fcx.open_lr += 1;
                self.comp(body, fcx, false);
                fcx.open_lr -= 1;
                fcx.cleanup -= 1;
                if !inf.is_empty() {
                    self.emit(Instr::EndRegions(inf.len() as u16));
                    fcx.open_regions -= inf.len() as u32;
                }
                fcx.fin.next = fin_save;
            }
            RExp::Marker { .. } => panic!("marker reached code generation"),
            RExp::ExCon { exn, arg, at } => {
                let has_arg = arg.is_some();
                if let Some(a) = arg {
                    self.comp(a, fcx, false);
                }
                let at = at.map(|r| fcx.regslot(r));
                self.emit(Instr::MkExn {
                    exn: exn.0,
                    has_arg,
                    at,
                });
            }
            RExp::DeExn { scrut, .. } => {
                self.comp(scrut, fcx, false);
                self.emit(Instr::DeExn);
            }
            RExp::Raise(e) => {
                self.comp(e, fcx, false);
                self.emit(Instr::Raise);
            }
            RExp::Handle { body, var, handler } => {
                let lh = self.new_label();
                let end = self.new_label();
                self.emit(Instr::PushHandler { handler: lh });
                fcx.cleanup += 1;
                self.comp(body, fcx, false);
                fcx.cleanup -= 1;
                self.emit(Instr::PopHandler);
                self.emit(Instr::Jump(end));
                self.bind(lh);
                // The raised value is on the operand stack.
                let s = fcx.slot();
                self.emit(Instr::Store(s));
                fcx.vars.insert(*var, VB::Slot(s));
                self.comp(handler, fcx, tail);
                // The slot is only written on the exception path, so the
                // clear lives in the handler arm (the normal path jumps
                // straight to `end`).
                self.clear_dead_slot(s, fcx);
                self.bind(end);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_function(
        &mut self,
        name: &str,
        params: &[VarId],
        formals: &[RegVar],
        body: &RExp,
        caps: &[Cap],
        env_base: u32,
        stub: Option<usize>,
        globals: &HashMap<RegVar, RegSlot>,
        fix_binds: &[(VarId, VB)],
    ) -> usize {
        let entry = self.new_label();
        // Compile out of line: jump over the body in the current stream.
        let skip = self.new_label();
        self.emit(Instr::Jump(skip));
        if let Some(stub_label) = stub {
            self.bind(stub_label);
            self.emit(Instr::EnterViaPair {
                nformals: formals.len() as u16,
            });
        }
        self.bind(entry);
        self.emit(Instr::GcCheck);
        let mut inner = FnCx::new(globals, FiniteArea::default());
        // Fix-function bindings (labels/arities) are context-independent;
        // their shared closures travel through captures.
        for (v, b) in fix_binds {
            inner.vars.insert(*v, b.clone());
        }
        for (i, p) in params.iter().enumerate() {
            inner.vars.insert(*p, VB::Slot(1 + i as u32));
        }
        inner.nlocals = 1 + params.len() as u32;
        for (i, r) in formals.iter().enumerate() {
            inner.regs.insert(*r, RegSlot::Formal(i as u32));
        }
        Self::bind_caps(caps, env_base, &mut inner);
        self.comp(body, &mut inner, true);
        self.emit(Instr::Ret);
        let id = self.funs.len() as u32;
        self.funs.push(FunInfo {
            entry,
            nlocals: inner.nlocals,
            nfinite: inner.fin.watermark,
            name: name.to_string(),
        });
        self.entry_of.insert(entry, id);
        if let Some(stub_label) = stub {
            self.entry_of.insert(stub_label, id);
        }
        self.bind(skip);
        entry
    }

    fn comp_fix(
        &mut self,
        funs: &[RFixFun],
        body: &RExp,
        at: Place,
        fcx: &mut FnCx<'_>,
        tail: bool,
    ) {
        let group = self.next_group;
        self.next_group += 1;
        // Capture analysis over all member bodies, excluding members,
        // their params, their formals.
        let mut bound: BTreeSet<VarId> = funs.iter().map(|f| f.var).collect();
        let mut bound_regs: BTreeSet<RegVar> = BTreeSet::new();
        for f in funs {
            bound.extend(f.params.iter().copied());
            bound_regs.extend(f.formals.iter().copied());
        }
        // Pre-assign labels so recursive references resolve.
        let infos: Vec<FixInfo> = funs
            .iter()
            .map(|f| FixInfo {
                label: self.new_label(),
                stub: self.new_label(),
                nformals: f.formals.len() as u16,
                group,
            })
            .collect();
        // Temporary context for capture analysis: members must be visible
        // as Fix bindings (so they become Shared captures, not Var).
        let mut probe = FnCx::new(fcx.globals, FiniteArea::default());
        probe.vars = fcx.vars.clone();
        probe.regs = fcx.regs.clone();
        probe.shareds = fcx.shareds.clone();
        for (f, info) in funs.iter().zip(&infos) {
            probe.vars.insert(f.var, VB::Fix(info.clone()));
        }
        probe.shareds.insert(group, SharedSrc::Scalar);
        let bodies: Vec<&RExp> = funs.iter().map(|f| &f.body).collect();
        let caps = self.captures(&bodies, &bound, &bound_regs, &probe);

        // Build the shared closure in the defining frame.
        let shared_src = if caps.is_empty() {
            SharedSrc::Scalar
        } else {
            self.push_caps(&caps, fcx);
            let at = fcx.regslot(at);
            self.emit(Instr::MkRecord {
                n: caps.len() as u16,
                at,
            });
            let s = fcx.slot();
            self.emit(Instr::Store(s));
            SharedSrc::Slot(s)
        };
        fcx.shareds.insert(group, shared_src);
        for (f, info) in funs.iter().zip(&infos) {
            fcx.vars.insert(f.var, VB::Fix(info.clone()));
        }

        // Compile member bodies.
        for (f, info) in funs.iter().zip(&infos) {
            let skip = self.new_label();
            self.emit(Instr::Jump(skip));
            self.bind(info.stub);
            self.emit(Instr::EnterViaPair {
                nformals: f.formals.len() as u16,
            });
            self.bind(info.label);
            self.emit(Instr::GcCheck);
            let mut inner = FnCx::new(fcx.globals, FiniteArea::default());
            for (v, b) in fcx.vars.iter().filter(|(_, b)| matches!(b, VB::Fix(_))) {
                inner.vars.insert(*v, b.clone());
            }
            for (i, p) in f.params.iter().enumerate() {
                inner.vars.insert(*p, VB::Slot(1 + i as u32));
            }
            inner.nlocals = 1 + f.params.len() as u32;
            for (i, r) in f.formals.iter().enumerate() {
                inner.regs.insert(*r, RegSlot::Formal(i as u32));
            }
            Self::bind_caps(&caps, 0, &mut inner);
            // Members of the group are visible inside bodies; their shared
            // closure is this body's own environment (slot 0).
            for (g, i2) in funs.iter().zip(&infos) {
                inner.vars.insert(g.var, VB::Fix(i2.clone()));
            }
            inner.shareds.insert(group, SharedSrc::Slot(0));
            self.comp(&f.body, &mut inner, true);
            self.emit(Instr::Ret);
            debug_assert_eq!(inner.open_lr, 0);
            let id = self.funs.len() as u32;
            self.funs.push(FunInfo {
                entry: info.label,
                nlocals: inner.nlocals,
                nfinite: inner.fin.watermark,
                name: self.prog.vars.name(f.var).to_string(),
            });
            self.entry_of.insert(info.label, id);
            self.entry_of.insert(info.stub, id);
            self.bind(skip);
        }
        self.comp(body, fcx, tail);
        // The shared-closure slot dies with the fix scope.
        if let SharedSrc::Slot(s) = shared_src {
            self.clear_dead_slot(s, fcx);
        }
    }
}

// ------------------------------------------------------------ captures

#[derive(Debug, Clone, PartialEq, Eq)]
enum Cap {
    Var(VarId),
    Reg(RegVar),
    Shared(u32),
}

#[allow(clippy::too_many_arguments)]
fn collect_caps(
    e: &RExp,
    bound: &mut BTreeSet<VarId>,
    bound_regs: &mut BTreeSet<RegVar>,
    fcx: &FnCx<'_>,
    caps: &mut Vec<Cap>,
    seen_v: &mut BTreeSet<VarId>,
    seen_r: &mut BTreeSet<RegVar>,
    seen_g: &mut BTreeSet<u32>,
) {
    let cap_var = |v: VarId,
                   bound: &BTreeSet<VarId>,
                   caps: &mut Vec<Cap>,
                   seen_v: &mut BTreeSet<VarId>,
                   seen_g: &mut BTreeSet<u32>| {
        if bound.contains(&v) {
            return;
        }
        match fcx.vars.get(&v) {
            Some(VB::Fix(info)) => {
                if seen_g.insert(info.group) {
                    caps.push(Cap::Shared(info.group));
                }
            }
            _ => {
                if seen_v.insert(v) {
                    caps.push(Cap::Var(v));
                }
            }
        }
    };
    let cap_reg = |r: RegVar,
                   bound_regs: &BTreeSet<RegVar>,
                   caps: &mut Vec<Cap>,
                   seen_r: &mut BTreeSet<RegVar>| {
        if bound_regs.contains(&r) || fcx.globals.contains_key(&r) {
            return;
        }
        if seen_r.insert(r) {
            caps.push(Cap::Reg(r));
        }
    };
    for p in e.own_places() {
        cap_reg(p, bound_regs, caps, seen_r);
    }
    match e {
        RExp::Var(v) | RExp::FixVar { var: v, .. } => {
            cap_var(*v, bound, caps, seen_v, seen_g);
        }
        RExp::Let { var, rhs, body } => {
            collect_caps(rhs, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g);
            let fresh = bound.insert(*var);
            collect_caps(body, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g);
            if fresh {
                bound.remove(var);
            }
        }
        RExp::Fn { params, body, .. } => {
            let fresh: Vec<VarId> = params
                .iter()
                .copied()
                .filter(|p| bound.insert(*p))
                .collect();
            collect_caps(body, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g);
            for p in fresh {
                bound.remove(&p);
            }
        }
        RExp::Fix { funs, body, .. } => {
            let fresh: Vec<VarId> = funs
                .iter()
                .map(|f| f.var)
                .filter(|v| bound.insert(*v))
                .collect();
            for f in funs {
                let fp: Vec<VarId> = f
                    .params
                    .iter()
                    .copied()
                    .filter(|p| bound.insert(*p))
                    .collect();
                let fr: Vec<RegVar> = f
                    .formals
                    .iter()
                    .copied()
                    .filter(|r| bound_regs.insert(*r))
                    .collect();
                collect_caps(
                    &f.body, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g,
                );
                for p in fp {
                    bound.remove(&p);
                }
                for r in fr {
                    bound_regs.remove(&r);
                }
            }
            collect_caps(body, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g);
            for v in fresh {
                bound.remove(&v);
            }
        }
        RExp::Letregion { regs, body } => {
            let fresh: Vec<RegVar> = regs
                .iter()
                .map(|(r, _)| *r)
                .filter(|r| bound_regs.insert(*r))
                .collect();
            collect_caps(body, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g);
            for r in fresh {
                bound_regs.remove(&r);
            }
        }
        RExp::Handle { body, var, handler } => {
            collect_caps(body, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g);
            let fresh = bound.insert(*var);
            collect_caps(
                handler, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g,
            );
            if fresh {
                bound.remove(var);
            }
        }
        RExp::App { callee, args, .. } => {
            collect_caps(callee, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g);
            for a in args {
                collect_caps(a, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g);
            }
        }
        _ => e.for_each_child(|c| {
            collect_caps(c, bound, bound_regs, fcx, caps, seen_v, seen_r, seen_g)
        }),
    }
}

// ------------------------------------------------------- finite sizing

/// Physical size in words of the single allocation in finite region `r`.
fn finite_size(cx: &Cx<'_>, body: &RExp, r: RegVar) -> u32 {
    let hdr = cx.tagged as u32;
    let mut size = 0u32;
    find_finite_site(cx, body, r, hdr, &mut size);
    size.max(1)
}

fn find_finite_site(cx: &Cx<'_>, e: &RExp, r: RegVar, hdr: u32, out: &mut u32) {
    let record = |n: u32| n + hdr;
    match e {
        RExp::Real(_, p) if *p == r => *out = (*out).max(1 + hdr),
        RExp::Record(es, p) if *p == r => *out = (*out).max(record(es.len() as u32)),
        RExp::Fn { body, at, .. } if *at == r => {
            // Closure = [label, caps..]; capture count must match the
            // MkRecord emitted for this closure. We conservatively size by
            // the number of distinct free variables + regions, matching
            // `captures` (which dedupes the same way).
            let caps = count_caps_upper(cx, body);
            *out = (*out).max(record(1 + caps));
        }
        RExp::Fix { funs, at, .. } if *at == r => {
            let mut n = 0;
            for f in funs {
                n += count_caps_upper(cx, &f.body);
            }
            *out = (*out).max(record(n.max(1)));
        }
        RExp::FixVar { rargs, at, .. } if *at == r => {
            *out = (*out).max(record(2 + rargs.len() as u32));
        }
        RExp::Prim(_, _, Some(p)) if *p == r => *out = (*out).max(record(1)),
        RExp::Con {
            tycon,
            con,
            at: Some(p),
            ..
        } if *p == r => {
            let (_, fields) = cx.con_rep(*tycon);
            let disc = cx.con_needs_disc(*tycon) as u32;
            *out = (*out).max(record(fields[con.0 as usize] as u32 + disc));
        }
        RExp::ExCon { at: Some(p), .. } if *p == r => {
            let disc = (!cx.tagged) as u32;
            *out = (*out).max(record(1 + disc));
        }
        _ => {}
    }
    e.for_each_child(|c| find_finite_site(cx, c, r, hdr, out));
}

/// Upper bound on the capture count of a function body (over-approximates
/// by ignoring the enclosing context's classification of fix groups).
fn count_caps_upper(_cx: &Cx<'_>, body: &RExp) -> u32 {
    let mut vars = BTreeSet::new();
    let mut regs = BTreeSet::new();
    free_names(
        body,
        &mut BTreeSet::new(),
        &mut BTreeSet::new(),
        &mut vars,
        &mut regs,
    );
    (vars.len() + regs.len()) as u32
}

fn free_names(
    e: &RExp,
    bound: &mut BTreeSet<VarId>,
    bound_regs: &mut BTreeSet<RegVar>,
    vars: &mut BTreeSet<VarId>,
    regs: &mut BTreeSet<RegVar>,
) {
    for p in e.own_places() {
        if !bound_regs.contains(&p) {
            regs.insert(p);
        }
    }
    match e {
        RExp::Var(v) | RExp::FixVar { var: v, .. } => {
            if !bound.contains(v) {
                vars.insert(*v);
            }
        }
        RExp::Let { var, rhs, body } => {
            free_names(rhs, bound, bound_regs, vars, regs);
            let fresh = bound.insert(*var);
            free_names(body, bound, bound_regs, vars, regs);
            if fresh {
                bound.remove(var);
            }
        }
        RExp::Fn { params, body, .. } => {
            let fresh: Vec<VarId> = params
                .iter()
                .copied()
                .filter(|p| bound.insert(*p))
                .collect();
            free_names(body, bound, bound_regs, vars, regs);
            for p in fresh {
                bound.remove(&p);
            }
        }
        RExp::Fix { funs, body, .. } => {
            let fresh: Vec<VarId> = funs
                .iter()
                .map(|f| f.var)
                .filter(|v| bound.insert(*v))
                .collect();
            for f in funs {
                let fp: Vec<VarId> = f
                    .params
                    .iter()
                    .copied()
                    .filter(|p| bound.insert(*p))
                    .collect();
                let fr: Vec<RegVar> = f
                    .formals
                    .iter()
                    .copied()
                    .filter(|r| bound_regs.insert(*r))
                    .collect();
                free_names(&f.body, bound, bound_regs, vars, regs);
                for p in fp {
                    bound.remove(&p);
                }
                for r in fr {
                    bound_regs.remove(&r);
                }
            }
            free_names(body, bound, bound_regs, vars, regs);
            for v in fresh {
                bound.remove(&v);
            }
        }
        RExp::Letregion { regs: rs, body } => {
            let fresh: Vec<RegVar> = rs
                .iter()
                .map(|(r, _)| *r)
                .filter(|r| bound_regs.insert(*r))
                .collect();
            free_names(body, bound, bound_regs, vars, regs);
            for r in fresh {
                bound_regs.remove(&r);
            }
        }
        RExp::Handle { body, var, handler } => {
            free_names(body, bound, bound_regs, vars, regs);
            let fresh = bound.insert(*var);
            free_names(handler, bound, bound_regs, vars, regs);
            if fresh {
                bound.remove(var);
            }
        }
        _ => e.for_each_child(|c| free_names(c, bound, bound_regs, vars, regs)),
    }
}
