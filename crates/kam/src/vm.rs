//! The abstract machine.
//!
//! Frames live in the simulated runtime stack of [`kit_runtime::Rt`]:
//! `[finite regions | locals | operand stack]`. Locals and operand slots
//! always hold well-formed values (scalars odd, pointers even in tagged
//! mode), so the garbage collector's root set is exactly the locals and
//! operand ranges of every frame — enumerated at the `GcCheck` safe point
//! executed on function entry (paper §4: collection happens at the next
//! function entry once the free-list drops below the threshold).
//!
//! The interpreter never dispatches on [`Instr`] directly: [`Vm::run`]
//! first runs the link pass ([`crate::link`]), which resolves every branch
//! operand to an absolute pc and fuses hot instruction sequences. The
//! reported instruction count is that of the *source* stream — fused
//! instructions account for the instructions they replace — so counters
//! are identical with fusion on or off.

use crate::instr::{Disc, Program, RegSlot};
use crate::link::{self, LInstr};
use kit_lambda::eval::{fmt_sml_int, fmt_sml_real, int_in_range};
use kit_lambda::exp::Prim;
use kit_lambda::ty::{EXN_DIV, EXN_OVERFLOW, EXN_SIZE, EXN_SUBSCRIPT};
use kit_runtime::gc;
use kit_runtime::value::{is_ptr, ptr, ptr_addr, scalar, scalar_val, Tag, Word, STACK_BASE};
use kit_runtime::{RegionId, Rt, RtStats};
use std::fmt;

/// Errors terminating execution abnormally.
#[derive(Debug, Clone)]
pub enum VmError {
    /// An exception reached the top level.
    UncaughtException {
        /// The exception constructor's name.
        name: String,
        /// One-line call chain at the raise point (innermost first).
        /// Empty when unavailable (e.g. errors from the reference
        /// evaluator).
        backtrace: String,
    },
    /// The instruction budget was exhausted.
    OutOfFuel,
}

// The backtrace is diagnostic only: two errors are the same error if the
// same exception escaped (the reference evaluator has no call chain).
impl PartialEq for VmError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                VmError::UncaughtException { name: a, .. },
                VmError::UncaughtException { name: b, .. },
            ) => a == b,
            (VmError::OutOfFuel, VmError::OutOfFuel) => true,
            _ => false,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UncaughtException { name, backtrace } => {
                write!(f, "uncaught exception {name}")?;
                if !backtrace.is_empty() {
                    write!(f, " (raised in {backtrace})")?;
                }
                Ok(())
            }
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for VmError {}

/// Result of a successful run.
#[derive(Debug)]
pub struct VmOutcome {
    /// The program result (render with [`crate::render::render_value`]).
    pub result: Word,
    /// Everything printed.
    pub output: String,
    /// Instructions executed.
    pub instructions: u64,
    /// Runtime statistics (allocation, collections, peak memory).
    pub stats: RtStats,
    /// The runtime (for rendering the result and inspecting regions).
    pub rt: Rt,
}

#[derive(Debug)]
struct Frame {
    /// Function id (for the uncaught-exception backtrace).
    fun: u32,
    ret_pc: usize,
    base: usize,
    locals: usize,
    nlocals: usize,
    /// Base of this frame's formal region handles in [`Vm::formal_pool`].
    fbase: usize,
    /// Base of this frame's `letregion`-bound regions in
    /// [`Vm::region_pool`].
    rbase: usize,
}

#[derive(Debug)]
struct Handler {
    target: usize, // linked code address
    frame_idx: usize,
    stack_len: usize,
    region_depth: usize,
    region_pool_len: usize,
    formal_pool_len: usize,
}

/// The bytecode interpreter.
#[derive(Debug)]
pub struct Vm<'p> {
    prog: &'p Program,
    rt: Rt,
    frames: Vec<Frame>,
    handlers: Vec<Handler>,
    output: String,
    fuel: Option<u64>,
    fuse: bool,
    /// Formal region handles of every live frame, stacked; each frame
    /// indexes its slice via `Frame::fbase`. Keeping one shared pool makes
    /// a call allocation-free.
    formal_pool: Vec<RegionId>,
    /// `letregion`-bound regions of every live frame, stacked
    /// (`Frame::rbase`); pops are LIFO within the owning frame.
    region_pool: Vec<RegionId>,
    /// Reused buffer for record/constructor fields.
    scratch: Vec<Word>,
    /// Write barrier log of the generational baseline: field addresses
    /// mutated since the last collection (may hold old→young pointers).
    remembered: Vec<u64>,
}

impl<'p> Vm<'p> {
    /// Creates a VM over a compiled program with a fresh runtime.
    pub fn new(prog: &'p Program, rt: Rt) -> Self {
        Vm {
            prog,
            rt,
            frames: Vec::new(),
            handlers: Vec::new(),
            output: String::new(),
            fuel: None,
            fuse: true,
            formal_pool: Vec::new(),
            region_pool: Vec::new(),
            scratch: Vec::new(),
            remembered: Vec::new(),
        }
    }

    /// Limits the number of executed instructions (for tests).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Disables superinstruction fusion (the link pass still resolves
    /// branch targets). For differential testing of the fusion pass.
    pub fn without_fusion(mut self) -> Self {
        self.fuse = false;
        self
    }

    fn frame(&self) -> &Frame {
        self.frames.last().unwrap()
    }

    fn push(&mut self, v: Word) {
        self.rt.stack.push(v);
    }

    fn pop(&mut self) -> Word {
        self.rt.stack.pop().expect("operand stack underflow")
    }

    fn local(&self, i: u32) -> Word {
        let f = self.frame();
        self.rt.stack[f.locals + i as usize]
    }

    fn set_local(&mut self, i: u32, v: Word) {
        let idx = self.frame().locals + i as usize;
        self.rt.stack[idx] = v;
    }

    fn region_of(&self, slot: RegSlot) -> RegionId {
        let f = self.frame();
        match slot {
            RegSlot::Global(i) => RegionId(i),
            RegSlot::Local(i) => self.region_pool[f.rbase + i as usize],
            RegSlot::Formal(i) => self.formal_pool[f.fbase + i as usize],
            RegSlot::EnvReg(i) => {
                let env = self.rt.stack[f.locals];
                RegionId(self.rt.untag_int(self.rt.field(env, i as u64)) as u32)
            }
            RegSlot::Finite(_) => panic!("finite region used as a region handle"),
        }
    }

    /// Allocates a box at a place — infinite region or finite frame slot.
    fn alloc_at(&mut self, slot: RegSlot, tag: Tag, fields: &[Word]) -> Word {
        match slot {
            RegSlot::Finite(off) => {
                let f = self.frame();
                let base = f.base + off as usize;
                let mut at = base;
                if self.rt.config.tagged {
                    self.rt.stack[at] = tag.encode();
                    at += 1;
                }
                for w in fields {
                    self.rt.stack[at] = *w;
                    at += 1;
                }
                ptr(STACK_BASE + base as u64)
            }
            _ => {
                let r = self.region_of(slot);
                self.rt.alloc_boxed(r, tag, fields)
            }
        }
    }

    /// Builds the callee frame out of the `[env][rhandles…][args…]` block
    /// on top of the operand stack, moving the arguments into their local
    /// slots in place — no intermediate buffers.
    fn push_frame_from_stack(&mut self, fun: u32, n: usize, nf: usize, ret_pc: usize) {
        let info = &self.prog.funs[fun as usize];
        let sp0 = self.rt.stack.len();
        let base = sp0 - n - nf - 1;
        let env = self.rt.stack[base];
        let fbase = self.formal_pool.len();
        for i in 0..nf {
            let w = self.rt.stack[base + 1 + i];
            self.formal_pool.push(RegionId(self.rt.untag_int(w) as u32));
        }
        let nfinite = info.nfinite as usize;
        let nlocals = info.nlocals as usize;
        let locals = base + nfinite;
        let newlen = base + nfinite + nlocals;
        let fill = if self.rt.config.tagged { scalar(0) } else { 0 };
        if newlen > sp0 {
            self.rt.stack.resize(newlen, fill);
        }
        // Slide the arguments into the local slots after `env` (overlap-
        // safe); then truncate if the frame is smaller than the call block.
        if n > 0 && locals + 1 != sp0 - n {
            self.rt.stack.copy_within(sp0 - n..sp0, locals + 1);
        }
        self.rt.stack.truncate(newlen);
        for i in base..locals {
            self.rt.stack[i] = fill; // finite-region slots
        }
        self.rt.stack[locals] = env;
        for i in locals + 1 + n..newlen {
            self.rt.stack[i] = fill; // remaining locals
        }
        self.frames.push(Frame {
            fun,
            ret_pc,
            base,
            locals,
            nlocals,
            fbase,
            rbase: self.region_pool.len(),
        });
        self.rt.observe_mem();
    }

    /// One-line call chain, innermost frame first, for diagnostics.
    fn backtrace(&self) -> String {
        const MAX: usize = 12;
        let mut names: Vec<&str> = self
            .frames
            .iter()
            .rev()
            .take(MAX)
            .map(|f| self.prog.funs[f.fun as usize].name.as_str())
            .collect();
        if self.frames.len() > MAX {
            names.push("…");
        }
        names.join(" < ")
    }

    fn uncaught(&self, exn: u32) -> VmError {
        VmError::UncaughtException {
            name: self.prog.exn_names[exn as usize].clone(),
            backtrace: self.backtrace(),
        }
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// [`VmError::UncaughtException`] if an exception escapes;
    /// [`VmError::OutOfFuel`] if the optional budget is exhausted.
    pub fn run(mut self) -> Result<VmOutcome, VmError> {
        let linked = link::link(self.prog, self.fuse);
        // Create the global regions (ids 0..n) and the main frame.
        for name in &self.prog.global_infinite {
            let _ = self.rt.letregion(*name);
        }
        if self.rt.config.generational.is_some() {
            assert_eq!(
                self.rt.region_depth(),
                1,
                "the generational baseline needs exactly one program region"
            );
            let _ = self.rt.letregion(u32::MAX); // the tenured generation
        }
        let env0 = if self.rt.config.tagged { scalar(0) } else { 0 };
        self.push(env0);
        self.push_frame_from_stack(self.prog.main, 0, 0, usize::MAX);
        let mut pc = linked.entry_pc[self.prog.main as usize] as usize;

        let code: &[LInstr] = &linked.code;
        let fuel_limit = self.fuel.unwrap_or(u64::MAX);
        let mut icount: u64 = 0;

        macro_rules! raise_builtin {
            ($self:ident, $pc:ident, $exn:expr) => {{
                let v = scalar($exn.0 as i64);
                match $self.do_raise(v) {
                    Some(new_pc) => {
                        $pc = new_pc;
                        continue;
                    }
                    None => return Err($self.uncaught($exn.0)),
                }
            }};
        }

        loop {
            let ins = &code[pc];
            // Fused instructions account for every instruction they
            // replace, so `instructions` matches an unfused run exactly.
            icount += ins.cost();
            if icount > fuel_limit {
                return Err(VmError::OutOfFuel);
            }
            pc += 1;
            match ins {
                LInstr::PushConst(w) => self.push(*w),
                LInstr::PushStr(s) => {
                    let w = self.rt.intern_const_str(s);
                    self.push(w);
                }
                LInstr::PushReal(x, at) => {
                    let bits = x.to_bits();
                    let v = self.alloc_at(*at, Tag::real(), &[bits]);
                    self.push(v);
                }
                LInstr::Load(i) => {
                    let v = self.local(*i);
                    self.push(v);
                }
                LInstr::Store(i) => {
                    let v = self.pop();
                    self.set_local(*i, v);
                }
                LInstr::Pop => {
                    self.pop();
                }
                LInstr::MkRecord { n, at } => {
                    let at = *at;
                    let n = *n as usize;
                    let start = self.rt.stack.len() - n;
                    let mut fields = std::mem::take(&mut self.scratch);
                    fields.clear();
                    fields.extend_from_slice(&self.rt.stack[start..]);
                    self.rt.stack.truncate(start);
                    let v = self.alloc_at(at, Tag::record(n as u32), &fields);
                    self.scratch = fields;
                    self.push(v);
                }
                LInstr::Select(i) => {
                    let v = self.pop();
                    let w = self.rt.field(v, *i as u64);
                    self.push(w);
                }
                LInstr::Spread { n } => {
                    let v = self.pop();
                    for i in 0..*n {
                        let w = self.rt.field(v, i as u64);
                        self.push(w);
                    }
                }
                LInstr::MkCon { ctor, n, disc, at } => {
                    let at = *at;
                    let n = *n as usize;
                    let start = self.rt.stack.len() - n;
                    let mut fields = std::mem::take(&mut self.scratch);
                    fields.clear();
                    if *disc {
                        fields.push(scalar(*ctor as i64));
                    }
                    fields.extend_from_slice(&self.rt.stack[start..]);
                    self.rt.stack.truncate(start);
                    let tag = Tag::con(*ctor as u32, fields.len() as u32);
                    let v = self.alloc_at(at, tag, &fields);
                    self.scratch = fields;
                    self.push(v);
                }
                LInstr::DeConAdj => {
                    let v = self.pop();
                    self.push(ptr(ptr_addr(v) + 1));
                }
                LInstr::SwitchCon {
                    disc,
                    arms,
                    default,
                } => {
                    let v = self.pop();
                    let ctor: u32 = if !is_ptr(v) {
                        scalar_val(v) as u32
                    } else {
                        match disc {
                            Disc::Tag => Tag::decode(self.rt.read_addr(ptr_addr(v))).info,
                            Disc::Field0 => scalar_val(self.rt.read_addr(ptr_addr(v))) as u32,
                            Disc::Single(c) => *c,
                            Disc::Enum => unreachable!("boxed value in enum datatype"),
                        }
                    };
                    let target = arms
                        .iter()
                        .find(|(c, _)| *c == ctor)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::SwitchInt { arms, default } => {
                    let v = self.pop();
                    let n = self.rt.untag_int(v);
                    let target = arms
                        .iter()
                        .find(|(k, _)| *k == n)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::SwitchStr { arms, default } => {
                    let v = self.pop();
                    let s = self.rt.str_val(v);
                    let target = arms
                        .iter()
                        .find(|(k, _)| k == s)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::SwitchExn { arms, default } => {
                    let v = self.pop();
                    let id = self.exn_id(v);
                    let target = arms
                        .iter()
                        .find(|(k, _)| *k == id)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::Jump(t) => pc = *t as usize,
                LInstr::JumpIfFalse(t) => {
                    let v = self.pop();
                    if self.rt.untag_int(v) == 0 {
                        pc = *t as usize;
                    }
                }
                LInstr::Unreachable => unreachable!("exhaustive switch fell through"),
                LInstr::Prim { p, at } => match self.do_prim(*p, *at) {
                    Ok(()) => {}
                    Err(exn) => raise_builtin!(self, pc, exn),
                },
                LInstr::RegHandle(slot) => {
                    let r = self.region_of(*slot);
                    let w = self.rt.tag_int(r.0 as i64);
                    self.push(w);
                }
                LInstr::Call {
                    fun,
                    target,
                    nargs,
                    nformals,
                    tail,
                } => {
                    let n = *nargs as usize;
                    let nf = *nformals as usize;
                    let ret = if *tail {
                        let f = self.frames.pop().unwrap();
                        debug_assert_eq!(
                            self.region_pool.len(),
                            f.rbase,
                            "tail call with open regions"
                        );
                        self.formal_pool.truncate(f.fbase);
                        // Slide the call block down onto the dead frame.
                        let sp = self.rt.stack.len();
                        let start = sp - n - nf - 1;
                        self.rt.stack.copy_within(start..sp, f.base);
                        self.rt.stack.truncate(f.base + n + nf + 1);
                        f.ret_pc
                    } else {
                        pc
                    };
                    self.push_frame_from_stack(*fun, n, nf, ret);
                    pc = *target as usize;
                }
                LInstr::CallClos { nargs, tail } => {
                    let n = *nargs as usize;
                    let sp = self.rt.stack.len();
                    // The closure doubles as the callee's environment.
                    let clos = self.rt.stack[sp - n - 1];
                    let label = scalar_val(self.rt.field(clos, 0)) as usize;
                    let fun = linked.fun_of_label[label];
                    debug_assert_ne!(fun, u32::MAX, "closure label is not a function entry");
                    let ret = if *tail {
                        let f = self.frames.pop().unwrap();
                        debug_assert_eq!(
                            self.region_pool.len(),
                            f.rbase,
                            "tail call with open regions"
                        );
                        self.formal_pool.truncate(f.fbase);
                        self.rt.stack.copy_within(sp - n - 1..sp, f.base);
                        self.rt.stack.truncate(f.base + n + 1);
                        f.ret_pc
                    } else {
                        pc
                    };
                    self.push_frame_from_stack(fun, n, 0, ret);
                    pc = linked.pc_of_label[label] as usize;
                }
                LInstr::EnterViaPair { nformals } => {
                    let pair = self.local(0);
                    let shared = self.rt.field(pair, 1);
                    self.set_local(0, shared);
                    let fbase = self.frame().fbase;
                    self.formal_pool.truncate(fbase);
                    for i in 0..*nformals {
                        let w = self.rt.field(pair, 2 + i as u64);
                        self.formal_pool.push(RegionId(self.rt.untag_int(w) as u32));
                    }
                }
                LInstr::Ret => {
                    let result = self.pop();
                    let f = self.frames.pop().expect("return without frame");
                    debug_assert_eq!(self.region_pool.len(), f.rbase, "return with open regions");
                    self.formal_pool.truncate(f.fbase);
                    self.rt.stack.truncate(f.base);
                    self.push(result);
                    pc = f.ret_pc;
                }
                LInstr::GcCheck => {
                    if let Some(pol) = self.rt.config.generational {
                        let nursery = &self.rt.regions[0];
                        if nursery.pages >= pol.nursery_pages {
                            self.collect_generational(pol);
                        }
                    } else if self.rt.gc_needed && self.rt.config.gc_enabled {
                        self.collect();
                    }
                }
                LInstr::LetRegion { names } => {
                    for name in names.iter() {
                        let id = self.rt.letregion(*name);
                        self.region_pool.push(id);
                    }
                }
                LInstr::EndRegions(n) => {
                    for _ in 0..*n {
                        self.rt.endregion();
                        self.region_pool.pop();
                    }
                }
                LInstr::PushHandler { target } => {
                    self.handlers.push(Handler {
                        target: *target as usize,
                        frame_idx: self.frames.len() - 1,
                        stack_len: self.rt.stack.len(),
                        region_depth: self.rt.region_depth(),
                        region_pool_len: self.region_pool.len(),
                        formal_pool_len: self.formal_pool.len(),
                    });
                }
                LInstr::PopHandler => {
                    self.handlers.pop().expect("handler stack underflow");
                }
                LInstr::MkExn { exn, has_arg, at } => {
                    if !*has_arg {
                        self.push(scalar(*exn as i64));
                    } else {
                        let arg = self.pop();
                        let tag = Tag::exn(*exn, 1);
                        let fields: Vec<Word> = if self.rt.config.tagged {
                            vec![arg]
                        } else {
                            vec![scalar(*exn as i64), arg]
                        };
                        let v = self.alloc_at(
                            at.expect("carrying exception needs a place"),
                            tag,
                            &fields,
                        );
                        self.push(v);
                    }
                }
                LInstr::DeExn => {
                    let v = self.pop();
                    let off = if self.rt.config.tagged { 0 } else { 1 };
                    let w = self.rt.field(v, off);
                    self.push(w);
                }
                LInstr::Raise => {
                    let v = self.pop();
                    match self.do_raise(v) {
                        Some(new_pc) => pc = new_pc,
                        None => {
                            let id = self.exn_id(v);
                            return Err(self.uncaught(id));
                        }
                    }
                }
                LInstr::Halt => {
                    let result = self.pop();
                    let mut stats = self.rt.stats.clone();
                    stats.observe_bytes(self.rt.mem_bytes());
                    return Ok(VmOutcome {
                        result,
                        output: self.output,
                        instructions: icount,
                        stats,
                        rt: self.rt,
                    });
                }
                // -------------------------------------- superinstructions
                LInstr::LoadLoadPrim { a, b, p, at } => {
                    let va = self.local(*a);
                    let vb = self.local(*b);
                    self.push(va);
                    self.push(vb);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                }
                LInstr::PushConstPrim { k, p, at } => {
                    self.push(*k);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                }
                LInstr::LoadSelect { i, sel } => {
                    let v = self.local(*i);
                    let w = self.rt.field(v, *sel as u64);
                    self.push(w);
                }
                LInstr::StorePop { i } => {
                    let v = self.pop();
                    self.set_local(*i, v);
                    self.pop();
                }
                LInstr::PushConstJumpIfFalse { k, target } => {
                    if self.rt.untag_int(*k) == 0 {
                        pc = *target as usize;
                    }
                }
                LInstr::LoadConstPrim { i, k, p, at } => {
                    let v = self.local(*i);
                    self.push(v);
                    self.push(*k);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                }
                LInstr::LoadSelectStore { i, sel, j } => {
                    let v = self.local(*i);
                    let w = self.rt.field(v, *sel as u64);
                    self.set_local(*j, w);
                }
                LInstr::LoadLoadPrimJump {
                    a,
                    b,
                    p,
                    at,
                    target,
                } => {
                    let va = self.local(*a);
                    let vb = self.local(*b);
                    self.push(va);
                    self.push(vb);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                    let v = self.pop();
                    if self.rt.untag_int(v) == 0 {
                        pc = *target as usize;
                    }
                }
                LInstr::LoadConstPrimJump {
                    i,
                    k,
                    p,
                    at,
                    target,
                } => {
                    let v = self.local(*i);
                    self.push(v);
                    self.push(*k);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                    let v = self.pop();
                    if self.rt.untag_int(v) == 0 {
                        pc = *target as usize;
                    }
                }
            }
        }
    }

    fn exn_id(&self, v: Word) -> u32 {
        if !is_ptr(v) {
            scalar_val(v) as u32
        } else if self.rt.config.tagged {
            Tag::decode(self.rt.read_addr(ptr_addr(v))).info
        } else {
            scalar_val(self.rt.read_addr(ptr_addr(v))) as u32
        }
    }

    /// Unwinds to the innermost handler; returns its code address, or
    /// `None` if the exception is uncaught. The in-flight exception value
    /// is treated as a GC root if a collection happens later (it is pushed
    /// on the handler's operand stack immediately).
    fn do_raise(&mut self, exn_val: Word) -> Option<usize> {
        let h = self.handlers.pop()?;
        self.rt.pop_regions_to(h.region_depth);
        self.frames.truncate(h.frame_idx + 1);
        self.region_pool.truncate(h.region_pool_len);
        self.formal_pool.truncate(h.formal_pool_len);
        self.rt.stack.truncate(h.stack_len);
        self.push(exn_val);
        Some(h.target)
    }

    fn roots(&self) -> Vec<usize> {
        let mut roots = Vec::new();
        for (i, f) in self.frames.iter().enumerate() {
            let op_end = self
                .frames
                .get(i + 1)
                .map(|g| g.base)
                .unwrap_or(self.rt.stack.len());
            roots.extend(f.locals..f.locals + f.nlocals);
            roots.extend(f.locals + f.nlocals..op_end);
        }
        roots
    }

    /// One baseline collection: minor promotion, plus a major semispace
    /// pass when the tenured generation outgrew its budget.
    fn collect_generational(&mut self, pol: kit_runtime::config::GenPolicy) {
        let roots = self.roots();
        let tenured_pages = self.rt.regions[1].pages;
        let major = tenured_pages
            >= pol
                .nursery_pages
                .max(self.rt.stats.last_live_pages * pol.major_growth);
        let mut remembered = std::mem::take(&mut self.remembered);
        gc::collect_gen(
            &mut self.rt,
            &roots,
            &mut remembered,
            RegionId(0),
            RegionId(1),
            major,
        );
    }

    /// Runs the Cheney-for-regions collector with all frames' locals and
    /// operand ranges as roots.
    fn collect(&mut self) {
        let roots = self.roots();
        gc::collect(&mut self.rt, &roots, &mut []);
    }

    // ------------------------------------------------------------- prims

    fn do_prim(&mut self, p: Prim, at: Option<RegSlot>) -> Result<(), kit_lambda::ty::ExnId> {
        use Prim::*;
        macro_rules! binop {
            () => {{
                let b = self.pop();
                let a = self.pop();
                (a, b)
            }};
        }
        macro_rules! int2 {
            () => {{
                let (a, b) = binop!();
                (self.rt.untag_int(a), self.rt.untag_int(b))
            }};
        }
        macro_rules! real2 {
            () => {{
                let (a, b) = binop!();
                (self.rt.real_val(a), self.rt.real_val(b))
            }};
        }
        macro_rules! push_int {
            ($v:expr) => {{
                let w = self.rt.tag_int($v);
                self.push(w);
            }};
        }
        macro_rules! push_bool {
            ($v:expr) => {
                push_int!($v as i64)
            };
        }
        macro_rules! push_real {
            ($v:expr) => {{
                let bits = ($v).to_bits();
                let w = self.alloc_at(at.expect("real result needs a place"), Tag::real(), &[bits]);
                self.push(w);
            }};
        }
        macro_rules! push_str {
            ($s:expr) => {{
                let slot = at.expect("string result needs a place");
                let r = self.region_of(slot);
                let w = self.rt.alloc_string(r, $s);
                self.push(w);
            }};
        }
        match p {
            IAdd | ISub | IMul => {
                let (a, b) = int2!();
                let v = match p {
                    IAdd => a.checked_add(b),
                    ISub => a.checked_sub(b),
                    _ => a.checked_mul(b),
                }
                .filter(|v| int_in_range(*v));
                match v {
                    Some(v) => push_int!(v),
                    None => return Err(EXN_OVERFLOW),
                }
            }
            IDiv | IMod => {
                let (a, b) = int2!();
                if b == 0 {
                    return Err(EXN_DIV);
                }
                let q = a.wrapping_div(b);
                let r = a.wrapping_rem(b);
                let adj = r != 0 && (r < 0) != (b < 0);
                push_int!(if p == IDiv {
                    if adj {
                        q - 1
                    } else {
                        q
                    }
                } else if adj {
                    r + b
                } else {
                    r
                });
            }
            INeg => {
                let w = self.pop();
                let v = -self.rt.untag_int(w);
                if !int_in_range(v) {
                    return Err(EXN_OVERFLOW);
                }
                push_int!(v);
            }
            IAbs => {
                let w = self.pop();
                let v = self.rt.untag_int(w).abs();
                if !int_in_range(v) {
                    return Err(EXN_OVERFLOW);
                }
                push_int!(v);
            }
            ILt | ILe | IGt | IGe | IEq => {
                let (a, b) = int2!();
                push_bool!(match p {
                    ILt => a < b,
                    ILe => a <= b,
                    IGt => a > b,
                    IGe => a >= b,
                    _ => a == b,
                });
            }
            RAdd | RSub | RMul | RDiv => {
                let (a, b) = real2!();
                push_real!(match p {
                    RAdd => a + b,
                    RSub => a - b,
                    RMul => a * b,
                    _ => a / b,
                });
            }
            RNeg => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_real!(-v);
            }
            RAbs => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_real!(v.abs());
            }
            RLt | RLe | RGt | RGe | REq => {
                let (a, b) = real2!();
                push_bool!(match p {
                    RLt => a < b,
                    RLe => a <= b,
                    RGt => a > b,
                    RGe => a >= b,
                    _ => a == b,
                });
            }
            IntToReal => {
                let w = self.pop();
                let v = self.rt.untag_int(w) as f64;
                push_real!(v);
            }
            Floor => {
                let w = self.pop();
                let v = self.rt.real_val(w).floor() as i64;
                push_int!(v);
            }
            Trunc => {
                let w = self.pop();
                let v = self.rt.real_val(w).trunc() as i64;
                push_int!(v);
            }
            Sqrt | Sin | Cos | Atan | Ln | Exp => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_real!(match p {
                    Sqrt => v.sqrt(),
                    Sin => v.sin(),
                    Cos => v.cos(),
                    Atan => v.atan(),
                    Ln => v.ln(),
                    _ => v.exp(),
                });
            }
            StrEq | StrLt => {
                let (a, b) = binop!();
                let sa = self.rt.str_val(a);
                let sb = self.rt.str_val(b);
                let r = if p == StrEq { sa == sb } else { sa < sb };
                push_bool!(r);
            }
            StrConcat => {
                let (a, b) = binop!();
                let s = format!("{}{}", self.rt.str_val(a), self.rt.str_val(b));
                push_str!(s);
            }
            StrSize => {
                let v = self.pop();
                let n = self.rt.str_val(v).len() as i64;
                push_int!(n);
            }
            StrSub => {
                let (a, b) = binop!();
                let i = self.rt.untag_int(b);
                let bytes = self.rt.str_val(a).as_bytes();
                if i < 0 || i as usize >= bytes.len() {
                    return Err(EXN_SUBSCRIPT);
                }
                push_int!(bytes[i as usize] as i64);
            }
            ItoS => {
                let w0 = self.pop();
                let v = self.rt.untag_int(w0);
                push_str!(fmt_sml_int(v));
            }
            RtoS => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_str!(fmt_sml_real(v));
            }
            Chr => {
                let w0 = self.pop();
                let v = self.rt.untag_int(w0);
                if !(0..=255).contains(&v) {
                    return Err(EXN_SUBSCRIPT);
                }
                push_str!(((v as u8) as char).to_string());
            }
            Print => {
                let v = self.pop();
                let s = self.rt.str_val(v).to_string();
                self.output.push_str(&s);
                push_int!(0); // unit
            }
            RefNew => {
                let v = self.pop();
                let w = self.alloc_at(at.expect("ref needs a place"), Tag::reference(), &[v]);
                self.push(w);
            }
            RefGet => {
                let r = self.pop();
                let v = self.rt.field(r, 0);
                self.push(v);
            }
            RefSet => {
                let (r, v) = binop!();
                self.rt.set_field(r, 0, v);
                if self.rt.config.generational.is_some() {
                    let addr = ptr_addr(r) + self.rt.hdr_words();
                    self.remembered.push(addr);
                }
                push_int!(0);
            }
            RefEq | ArrEq => {
                let (a, b) = binop!();
                push_bool!(a == b);
            }
            ArrNew => {
                let (n, init) = binop!();
                let n = self.rt.untag_int(n);
                if n < 0 {
                    return Err(EXN_SIZE);
                }
                let slot = at.expect("array needs a place");
                let r = self.region_of(slot);
                let w = self.rt.alloc_array(r, n as usize, init);
                self.push(w);
            }
            ArrSub => {
                let (a, i) = binop!();
                let i = self.rt.untag_int(i);
                if i < 0 || i as usize >= self.rt.arr_len(a) {
                    return Err(EXN_SUBSCRIPT);
                }
                let v = self.rt.read_addr(self.rt.arr_elem_addr(a, i as usize));
                self.push(v);
            }
            ArrUpd => {
                let v = self.pop();
                let wi = self.pop();
                let i = self.rt.untag_int(wi);
                let a = self.pop();
                if i < 0 || i as usize >= self.rt.arr_len(a) {
                    return Err(EXN_SUBSCRIPT);
                }
                let addr = self.rt.arr_elem_addr(a, i as usize);
                self.rt.write_addr(addr, v);
                if self.rt.config.generational.is_some() {
                    self.remembered.push(addr);
                }
                push_int!(0);
            }
            ArrLen => {
                let a = self.pop();
                let n = self.rt.arr_len(a) as i64;
                push_int!(n);
            }
        }
        Ok(())
    }
}
