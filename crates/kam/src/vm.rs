//! The abstract machine.
//!
//! Frames live in the simulated runtime stack of [`kit_runtime::Rt`]:
//! `[finite regions | locals | operand stack]`. Locals and operand slots
//! always hold well-formed values (scalars odd, pointers even in tagged
//! mode), so the garbage collector's root set is exactly the locals and
//! operand ranges of every frame — enumerated at the `GcCheck` safe point
//! executed on function entry (paper §4: collection happens at the next
//! function entry once the free-list drops below the threshold).
//!
//! The interpreter never dispatches on [`Instr`] directly: [`Vm::run`]
//! first runs the link pass ([`crate::link`]), which resolves every branch
//! operand to an absolute pc and fuses hot instruction sequences. The
//! reported instruction count is that of the *source* stream — fused
//! instructions account for the instructions they replace — so counters
//! are identical with fusion on or off.

use crate::instr::{Disc, Program, RegSlot};
use crate::link::{self, Fusion, LInstr, LinkedProgram};
use crate::threaded::{self, FusionProfile, Op, ThreadedCode, OP_COUNT};
use kit_lambda::eval::{fmt_sml_int, fmt_sml_real, int_in_range};
use kit_lambda::exp::Prim;
use kit_lambda::ty::{EXN_DIV, EXN_OVERFLOW, EXN_SIZE, EXN_SUBSCRIPT};
use kit_runtime::gc;
use kit_runtime::value::{is_ptr, ptr, ptr_addr, scalar, scalar_val, Tag, Word, STACK_BASE};
use kit_runtime::{RegionId, Rt, RtStats};
use std::fmt;

/// Errors terminating execution abnormally.
#[derive(Debug, Clone)]
pub enum VmError {
    /// An exception reached the top level.
    UncaughtException {
        /// The exception constructor's name.
        name: String,
        /// One-line call chain at the raise point (innermost first).
        /// Empty when unavailable (e.g. errors from the reference
        /// evaluator).
        backtrace: String,
    },
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// The memory quota (`RtConfig::max_heap_pages`) was still exceeded
    /// after a forced collection at a `GcCheck` safe point.
    QuotaExceeded {
        /// Materialized footprint at the failing safe point, in pages.
        pages: usize,
        /// The configured page cap.
        cap: usize,
    },
    /// The wall-clock deadline (`RtConfig::deadline`) had passed at a
    /// `GcCheck` safe point — the same points fuel and the page quota are
    /// enforced at, so on a fixed clock outcome the breach lands at the
    /// identical safe point on every dispatch engine.
    DeadlineExceeded {
        /// Ordinal of the safe point (counting only those executed while a
        /// deadline was armed) whose clock read observed the breach. An
        /// already-expired deadline always breaches at safe point 1, so
        /// the engine-identical claim is directly testable.
        checks: u64,
    },
}

// The backtrace is diagnostic only: two errors are the same error if the
// same exception escaped (the reference evaluator has no call chain).
impl PartialEq for VmError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                VmError::UncaughtException { name: a, .. },
                VmError::UncaughtException { name: b, .. },
            ) => a == b,
            (VmError::OutOfFuel, VmError::OutOfFuel) => true,
            (
                VmError::QuotaExceeded { pages: a, cap: b },
                VmError::QuotaExceeded { pages: c, cap: d },
            ) => a == c && b == d,
            (VmError::DeadlineExceeded { checks: a }, VmError::DeadlineExceeded { checks: b }) => {
                a == b
            }
            _ => false,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UncaughtException { name, backtrace } => {
                write!(f, "uncaught exception {name}")?;
                if !backtrace.is_empty() {
                    write!(f, " (raised in {backtrace})")?;
                }
                Ok(())
            }
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmError::QuotaExceeded { pages, cap } => {
                write!(f, "memory quota exceeded ({pages} pages > cap of {cap})")
            }
            // Deliberately omits `checks`: under a mid-run wall-clock
            // breach the safe-point ordinal varies run to run, and the
            // serve-layer uniformity checks compare error text.
            VmError::DeadlineExceeded { .. } => write!(f, "wall-clock deadline exceeded"),
        }
    }
}

impl std::error::Error for VmError {}

/// How [`Vm::run`] executes the linked stream. Both modes produce
/// bit-identical observable behavior — results, output, instruction
/// totals, fuel, and the GC schedule (enforced by the dispatch
/// equivalence test in `kit-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// The classic match-per-instruction loop over [`LInstr`].
    Match,
    /// Direct-threaded execution: the linked stream is translated to
    /// struct-of-arrays form ([`ThreadedCode`]) and dispatched through a
    /// `const` handler table indexed by opcode.
    #[default]
    Threaded,
    /// Register-form execution: the unfused linked stream is rewritten by
    /// [`crate::regalloc`] into three-address ops over virtual registers
    /// (the frame's local slots) and dispatched with the threaded
    /// machinery. The fusion setting is ignored — the register translator
    /// subsumes superinstruction fusion by folding operand producers into
    /// their consumers directly. Each register op charges the stack
    /// instructions it replaces (see [`crate::register::RegCode::costs`]),
    /// so instruction totals, fuel and the GC schedule stay bit-identical
    /// with the other engines.
    Register,
    /// Register-form execution with the profile-selected superinstruction
    /// set stacked on top: after [`crate::register::translate`], a
    /// re-fusion pass ([`crate::register::fuse`]) merges the base-op
    /// windows the symbolic-stack pass could not absorb (flushed loads
    /// before calls, entry safepoints, copies around barriers). Costs
    /// merge additively, so all accounting invariants of `Register` hold
    /// unchanged.
    RegisterFused,
}

/// A program linked and translated for one dispatch configuration — the
/// one-time half of [`Vm::run`], split out so a compiled program can be
/// prepared once and executed many times (concurrently: the payload is
/// plain immutable data, `Send + Sync`, and is shared across VM
/// instances via `Arc` by the server).
#[derive(Debug)]
pub enum Executable {
    /// The linked stream, dispatched by the match loop.
    Match(LinkedProgram),
    /// Struct-of-arrays threaded form.
    Threaded(ThreadedCode),
    /// Register form (covers both `Register` and `RegisterFused` —
    /// re-fusion happens at preparation time).
    Register(Box<crate::register::RegCode>),
}

impl Executable {
    /// Links `prog` and translates it for `dispatch`. The fusion setting
    /// is overridden to `Off` for the register engines — the register
    /// translator consumes the unfused stream (it folds operand
    /// producers into consumers itself, subsuming fusion).
    pub fn prepare(prog: &Program, dispatch: DispatchMode, fusion: Fusion) -> Executable {
        let fusion = match dispatch {
            DispatchMode::Register | DispatchMode::RegisterFused => Fusion::Off,
            _ => fusion,
        };
        let linked = link::link(prog, fusion);
        match dispatch {
            DispatchMode::Match => Executable::Match(linked),
            DispatchMode::Threaded => Executable::Threaded(threaded::translate(linked)),
            DispatchMode::Register => {
                Executable::Register(Box::new(crate::register::translate(&linked)))
            }
            DispatchMode::RegisterFused => Executable::Register(Box::new(crate::register::fuse(
                crate::register::translate(&linked),
            ))),
        }
    }
}

/// Result of a successful run.
#[derive(Debug)]
pub struct VmOutcome {
    /// The program result (render with [`crate::render::render_value`]).
    pub result: Word,
    /// Everything printed.
    pub output: String,
    /// Instructions executed.
    pub instructions: u64,
    /// Runtime statistics (allocation, collections, peak memory).
    pub stats: RtStats,
    /// Dynamic opcode-sequence counts, if the fusion counting mode was on.
    pub fusion_profile: Option<Box<FusionProfile>>,
    /// The runtime (for rendering the result and inspecting regions).
    pub rt: Rt,
}

#[derive(Debug)]
struct Frame {
    /// Function id (for the uncaught-exception backtrace).
    fun: u32,
    ret_pc: usize,
    base: usize,
    locals: usize,
    nlocals: usize,
    /// Base of this frame's formal region handles in [`Vm::formal_pool`].
    fbase: usize,
    /// Base of this frame's `letregion`-bound regions in
    /// [`Vm::region_pool`].
    rbase: usize,
}

#[derive(Debug)]
struct Handler {
    target: usize, // linked code address
    frame_idx: usize,
    stack_len: usize,
    region_depth: usize,
    region_pool_len: usize,
    formal_pool_len: usize,
}

/// The bytecode interpreter.
#[derive(Debug)]
pub struct Vm<'p> {
    prog: &'p Program,
    rt: Rt,
    frames: Vec<Frame>,
    /// `Frame::locals` of the innermost frame (0 when no frame is live),
    /// kept in sync by every call/return/unwind — `local`/`set_local`
    /// are on the dispatch fast path and must not re-derive it.
    cur_locals: usize,
    handlers: Vec<Handler>,
    output: String,
    fuel: Option<u64>,
    fusion: Fusion,
    dispatch: DispatchMode,
    /// Fusion counting mode: dynamic pair/triple frequencies, recorded by
    /// the match loop (enabling it forces `Match` dispatch and no fusion
    /// so base opcodes stay visible).
    profile: Option<Box<FusionProfile>>,
    /// Error staged by a failing threaded handler before it returns
    /// [`Control::Fail`].
    pending: Option<VmError>,
    /// Result staged by the threaded `Halt` handler.
    halted: Option<Word>,
    /// Formal region handles of every live frame, stacked; each frame
    /// indexes its slice via `Frame::fbase`. Keeping one shared pool makes
    /// a call allocation-free.
    formal_pool: Vec<RegionId>,
    /// `letregion`-bound regions of every live frame, stacked
    /// (`Frame::rbase`); pops are LIFO within the owning frame.
    region_pool: Vec<RegionId>,
    /// Safe points executed while a wall-clock deadline was armed; drives
    /// the strided clock read in [`Vm::gc_safe_point`] and is reported in
    /// [`VmError::DeadlineExceeded`]. Counts `gc_safe_point` calls only,
    /// which all engines execute at the same source positions, so the
    /// stride schedule is engine-invariant.
    safe_points: u64,
    /// Reused buffer for record/constructor fields.
    scratch: Vec<Word>,
    /// Write barrier log of the generational baseline: field addresses
    /// mutated since the last collection (may hold old→young pointers).
    remembered: Vec<u64>,
}

impl<'p> Vm<'p> {
    /// Creates a VM over a compiled program with a fresh runtime.
    pub fn new(prog: &'p Program, rt: Rt) -> Self {
        Vm {
            prog,
            rt,
            frames: Vec::new(),
            cur_locals: 0,
            handlers: Vec::new(),
            output: String::new(),
            fuel: None,
            fusion: Fusion::default(),
            dispatch: DispatchMode::default(),
            profile: None,
            pending: None,
            halted: None,
            formal_pool: Vec::new(),
            region_pool: Vec::new(),
            safe_points: 0,
            scratch: Vec::new(),
            remembered: Vec::new(),
        }
    }

    /// Limits the number of executed instructions (for tests).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Disables superinstruction fusion (the link pass still resolves
    /// branch targets). For differential testing of the fusion pass.
    pub fn without_fusion(mut self) -> Self {
        self.fusion = Fusion::Off;
        self
    }

    /// Selects the superinstruction set the link pass may fuse.
    pub fn with_fusion(mut self, fusion: Fusion) -> Self {
        self.fusion = fusion;
        self
    }

    /// Selects the dispatch engine.
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Enables the fusion counting mode: dynamic opcode pair/triple
    /// frequencies of fallthrough-adjacent instructions are recorded and
    /// returned in [`VmOutcome::fusion_profile`]. Forces `Match` dispatch
    /// with fusion off so base opcodes stay visible.
    pub fn with_fusion_profile(mut self) -> Self {
        self.profile = Some(Box::default());
        self.fusion = Fusion::Off;
        self.dispatch = DispatchMode::Match;
        self
    }

    fn frame(&self) -> &Frame {
        self.frames.last().unwrap()
    }

    fn push(&mut self, v: Word) {
        self.rt.stack.push(v);
    }

    fn pop(&mut self) -> Word {
        self.rt.stack.pop().expect("operand stack underflow")
    }

    fn local(&self, i: u32) -> Word {
        self.rt.stack[self.cur_locals + i as usize]
    }

    fn set_local(&mut self, i: u32, v: Word) {
        self.rt.stack[self.cur_locals + i as usize] = v;
    }

    fn region_of(&self, slot: RegSlot) -> RegionId {
        let f = self.frame();
        match slot {
            RegSlot::Global(i) => RegionId(i),
            RegSlot::Local(i) => self.region_pool[f.rbase + i as usize],
            RegSlot::Formal(i) => self.formal_pool[f.fbase + i as usize],
            RegSlot::EnvReg(i) => {
                let env = self.rt.stack[f.locals];
                RegionId(self.rt.untag_int(self.rt.field(env, i as u64)) as u32)
            }
            RegSlot::Finite(_) => panic!("finite region used as a region handle"),
        }
    }

    /// Allocates a box at a place — infinite region or finite frame slot.
    fn alloc_at(&mut self, slot: RegSlot, tag: Tag, fields: &[Word]) -> Word {
        match slot {
            RegSlot::Finite(off) => {
                let f = self.frame();
                let base = f.base + off as usize;
                let mut at = base;
                if self.rt.config.tagged {
                    self.rt.stack[at] = tag.encode();
                    at += 1;
                }
                for w in fields {
                    self.rt.stack[at] = *w;
                    at += 1;
                }
                ptr(STACK_BASE + base as u64)
            }
            _ => {
                let r = self.region_of(slot);
                self.rt.alloc_boxed(r, tag, fields)
            }
        }
    }

    /// Builds the callee frame out of the `[env][rhandles…][args…]` block
    /// on top of the operand stack, moving the arguments into their local
    /// slots in place — no intermediate buffers.
    fn push_frame_from_stack(&mut self, fun: u32, n: usize, nf: usize, ret_pc: usize) {
        let info = &self.prog.funs[fun as usize];
        let sp0 = self.rt.stack.len();
        let base = sp0 - n - nf - 1;
        let env = self.rt.stack[base];
        let fbase = self.formal_pool.len();
        for i in 0..nf {
            let w = self.rt.stack[base + 1 + i];
            self.formal_pool.push(RegionId(self.rt.untag_int(w) as u32));
        }
        let nfinite = info.nfinite as usize;
        let nlocals = info.nlocals as usize;
        let locals = base + nfinite;
        let newlen = base + nfinite + nlocals;
        let fill = if self.rt.config.tagged { scalar(0) } else { 0 };
        if newlen > sp0 {
            self.rt.stack.resize(newlen, fill);
        }
        // Slide the arguments into the local slots after `env` (overlap-
        // safe); then truncate if the frame is smaller than the call block.
        if n > 0 && locals + 1 != sp0 - n {
            self.rt.stack.copy_within(sp0 - n..sp0, locals + 1);
        }
        self.rt.stack.truncate(newlen);
        // The old frame's finite-region boxes (tail call) are gone; let a
        // sliced collection prune its scan-buffer entries for them.
        self.rt.note_stack_trunc(base);
        for i in base..locals {
            self.rt.stack[i] = fill; // finite-region slots
        }
        self.rt.stack[locals] = env;
        for i in locals + 1 + n..newlen {
            self.rt.stack[i] = fill; // remaining locals
        }
        self.frames.push(Frame {
            fun,
            ret_pc,
            base,
            locals,
            nlocals,
            fbase,
            rbase: self.region_pool.len(),
        });
        self.cur_locals = locals;
        self.rt.observe_mem();
    }

    /// One-line call chain, innermost frame first, for diagnostics.
    fn backtrace(&self) -> String {
        const MAX: usize = 12;
        let mut names: Vec<&str> = self
            .frames
            .iter()
            .rev()
            .take(MAX)
            .map(|f| self.prog.funs[f.fun as usize].name.as_str())
            .collect();
        if self.frames.len() > MAX {
            names.push("…");
        }
        names.join(" < ")
    }

    fn uncaught(&self, exn: u32) -> VmError {
        VmError::UncaughtException {
            name: self.prog.exn_names[exn as usize].clone(),
            backtrace: self.backtrace(),
        }
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// [`VmError::UncaughtException`] if an exception escapes;
    /// [`VmError::OutOfFuel`] if the optional budget is exhausted;
    /// [`VmError::QuotaExceeded`] if the optional page cap is breached.
    pub fn run(self) -> Result<VmOutcome, VmError> {
        let exe = Executable::prepare(self.prog, self.dispatch, self.fusion);
        self.run_prepared(&exe)
    }

    /// Runs a program prepared by [`Executable::prepare`] to completion.
    ///
    /// The executable decides the engine (it is already translated for
    /// one); the VM's own `dispatch` setting is not consulted. Sharing
    /// one `Executable` across many VMs — concurrently, via `Arc` — is
    /// the compile-once/run-many entry point the server is built on, and
    /// is observationally identical to [`Vm::run`] with the same
    /// configuration (the dispatch-equivalence tests run through both).
    ///
    /// # Errors
    ///
    /// As [`Vm::run`].
    pub fn run_prepared(mut self, exe: &Executable) -> Result<VmOutcome, VmError> {
        // Create the global regions (ids 0..n) and the main frame.
        for name in &self.prog.global_infinite {
            let _ = self.rt.letregion(*name);
        }
        if self.rt.config.generational.is_some() {
            assert_eq!(
                self.rt.region_depth(),
                1,
                "the generational baseline needs exactly one program region"
            );
            let _ = self.rt.letregion(u32::MAX); // the tenured generation
        }
        let env0 = if self.rt.config.tagged { scalar(0) } else { 0 };
        self.push(env0);
        self.push_frame_from_stack(self.prog.main, 0, 0, usize::MAX);
        let main = self.prog.main as usize;
        match exe {
            Executable::Match(linked) => {
                let pc = linked.entry_pc[main] as usize;
                self.exec_match(linked, pc)
            }
            Executable::Threaded(tcode) => {
                let pc = tcode.entry_pc[main] as usize;
                self.exec_threaded(tcode, pc)
            }
            Executable::Register(rcode) => {
                // The register translation renumbers pcs; entry points
                // come from the remapped table.
                let pc = rcode.code.entry_pc[main] as usize;
                self.exec_register(rcode, pc)
            }
        }
    }

    /// The classic loop: fetch, `match` on the [`LInstr`] variant.
    fn exec_match(mut self, linked: &LinkedProgram, mut pc: usize) -> Result<VmOutcome, VmError> {
        let code: &[LInstr] = &linked.code;
        let fuel_limit = self.fuel.unwrap_or(u64::MAX);
        let mut icount: u64 = 0;

        macro_rules! raise_builtin {
            ($self:ident, $pc:ident, $exn:expr) => {{
                let v = scalar($exn.0 as i64);
                match $self.do_raise(v) {
                    Some(new_pc) => {
                        $pc = new_pc;
                        continue;
                    }
                    None => return Err($self.uncaught($exn.0)),
                }
            }};
        }

        loop {
            let ins = &code[pc];
            // Fused instructions account for every instruction they
            // replace, so `instructions` matches an unfused run exactly.
            icount += ins.cost();
            if icount > fuel_limit {
                return Err(VmError::OutOfFuel);
            }
            if let Some(prof) = self.profile.as_deref_mut() {
                prof.step(pc, Op::of(ins));
            }
            pc += 1;
            match ins {
                LInstr::PushConst(w) => self.push(*w),
                LInstr::PushStr(s) => {
                    let w = self.rt.intern_const_str(s);
                    self.push(w);
                }
                LInstr::PushReal(x, at) => {
                    let bits = x.to_bits();
                    let v = self.alloc_at(*at, Tag::real(), &[bits]);
                    self.push(v);
                }
                LInstr::Load(i) => {
                    let v = self.local(*i);
                    self.push(v);
                }
                LInstr::Store(i) => {
                    let v = self.pop();
                    self.set_local(*i, v);
                }
                LInstr::Pop => {
                    self.pop();
                }
                LInstr::MkRecord { n, at } => {
                    let at = *at;
                    let n = *n as usize;
                    let start = self.rt.stack.len() - n;
                    let mut fields = std::mem::take(&mut self.scratch);
                    fields.clear();
                    fields.extend_from_slice(&self.rt.stack[start..]);
                    self.rt.stack.truncate(start);
                    let v = self.alloc_at(at, Tag::record(n as u32), &fields);
                    self.scratch = fields;
                    self.push(v);
                }
                LInstr::Select(i) => {
                    let v = self.pop();
                    let w = self.rt.field(v, *i as u64);
                    self.push(w);
                }
                LInstr::Spread { n } => {
                    let v = self.pop();
                    for i in 0..*n {
                        let w = self.rt.field(v, i as u64);
                        self.push(w);
                    }
                }
                LInstr::MkCon { ctor, n, disc, at } => {
                    let at = *at;
                    let n = *n as usize;
                    let start = self.rt.stack.len() - n;
                    let mut fields = std::mem::take(&mut self.scratch);
                    fields.clear();
                    if *disc {
                        fields.push(scalar(*ctor as i64));
                    }
                    fields.extend_from_slice(&self.rt.stack[start..]);
                    self.rt.stack.truncate(start);
                    let tag = Tag::con(*ctor as u32, fields.len() as u32);
                    let v = self.alloc_at(at, tag, &fields);
                    self.scratch = fields;
                    self.push(v);
                }
                LInstr::DeConAdj => {
                    let v = self.pop();
                    self.push(ptr(ptr_addr(v) + 1));
                }
                LInstr::SwitchCon {
                    disc,
                    arms,
                    default,
                } => {
                    let v = self.pop();
                    let ctor: u32 = if !is_ptr(v) {
                        scalar_val(v) as u32
                    } else {
                        match disc {
                            Disc::Tag => {
                                Tag::decode(self.rt.read_addr(ptr_addr(self.rt.canon(v)))).info
                            }
                            Disc::Field0 => scalar_val(self.rt.read_addr(ptr_addr(v))) as u32,
                            Disc::Single(c) => *c,
                            Disc::Enum => unreachable!("boxed value in enum datatype"),
                        }
                    };
                    let target = arms
                        .iter()
                        .find(|(c, _)| *c == ctor)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::SwitchInt { arms, default } => {
                    let v = self.pop();
                    let n = self.rt.untag_int(v);
                    let target = arms
                        .iter()
                        .find(|(k, _)| *k == n)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::SwitchStr { arms, default } => {
                    let v = self.pop();
                    let s = self.rt.str_val(v);
                    let target = arms
                        .iter()
                        .find(|(k, _)| k == s)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::SwitchExn { arms, default } => {
                    let v = self.pop();
                    let id = self.exn_id(v);
                    let target = arms
                        .iter()
                        .find(|(k, _)| *k == id)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::Jump(t) => pc = *t as usize,
                LInstr::JumpIfFalse(t) => {
                    let v = self.pop();
                    if self.rt.untag_int(v) == 0 {
                        pc = *t as usize;
                    }
                }
                LInstr::Unreachable => unreachable!("exhaustive switch fell through"),
                LInstr::Prim { p, at } => match self.do_prim(*p, *at) {
                    Ok(()) => {}
                    Err(exn) => raise_builtin!(self, pc, exn),
                },
                LInstr::RegHandle(slot) => {
                    let r = self.region_of(*slot);
                    let w = self.rt.tag_int(r.0 as i64);
                    self.push(w);
                }
                LInstr::Call {
                    fun,
                    target,
                    nargs,
                    nformals,
                    tail,
                } => {
                    let n = *nargs as usize;
                    let nf = *nformals as usize;
                    let ret = if *tail {
                        let f = self.frames.pop().unwrap();
                        debug_assert_eq!(
                            self.region_pool.len(),
                            f.rbase,
                            "tail call with open regions"
                        );
                        self.formal_pool.truncate(f.fbase);
                        // Slide the call block down onto the dead frame.
                        let sp = self.rt.stack.len();
                        let start = sp - n - nf - 1;
                        self.rt.stack.copy_within(start..sp, f.base);
                        self.rt.stack.truncate(f.base + n + nf + 1);
                        f.ret_pc
                    } else {
                        pc
                    };
                    self.push_frame_from_stack(*fun, n, nf, ret);
                    pc = *target as usize;
                }
                LInstr::CallClos { nargs, tail } => {
                    let n = *nargs as usize;
                    let sp = self.rt.stack.len();
                    // The closure doubles as the callee's environment.
                    let clos = self.rt.stack[sp - n - 1];
                    let label = scalar_val(self.rt.field(clos, 0)) as usize;
                    let fun = linked.fun_of_label[label];
                    debug_assert_ne!(fun, u32::MAX, "closure label is not a function entry");
                    let ret = if *tail {
                        let f = self.frames.pop().unwrap();
                        debug_assert_eq!(
                            self.region_pool.len(),
                            f.rbase,
                            "tail call with open regions"
                        );
                        self.formal_pool.truncate(f.fbase);
                        self.rt.stack.copy_within(sp - n - 1..sp, f.base);
                        self.rt.stack.truncate(f.base + n + 1);
                        f.ret_pc
                    } else {
                        pc
                    };
                    self.push_frame_from_stack(fun, n, 0, ret);
                    pc = linked.pc_of_label[label] as usize;
                }
                LInstr::EnterViaPair { nformals } => {
                    let pair = self.local(0);
                    let shared = self.rt.field(pair, 1);
                    self.set_local(0, shared);
                    let fbase = self.frame().fbase;
                    self.formal_pool.truncate(fbase);
                    for i in 0..*nformals {
                        let w = self.rt.field(pair, 2 + i as u64);
                        self.formal_pool.push(RegionId(self.rt.untag_int(w) as u32));
                    }
                }
                LInstr::Ret => {
                    let result = self.pop();
                    let f = self.frames.pop().expect("return without frame");
                    debug_assert_eq!(self.region_pool.len(), f.rbase, "return with open regions");
                    self.cur_locals = self.frames.last().map_or(0, |c| c.locals);
                    self.formal_pool.truncate(f.fbase);
                    self.rt.stack.truncate(f.base);
                    self.rt.note_stack_trunc(f.base);
                    self.push(result);
                    pc = f.ret_pc;
                }
                LInstr::GcCheck => {
                    if let Some(e) = self.gc_safe_point() {
                        return Err(e);
                    }
                }
                LInstr::LetRegion { names } => {
                    for name in names.iter() {
                        let id = self.rt.letregion(*name);
                        self.region_pool.push(id);
                    }
                }
                LInstr::EndRegions(n) => {
                    for _ in 0..*n {
                        self.rt.endregion();
                        self.region_pool.pop();
                    }
                }
                LInstr::PushHandler { target } => {
                    self.handlers.push(Handler {
                        target: *target as usize,
                        frame_idx: self.frames.len() - 1,
                        stack_len: self.rt.stack.len(),
                        region_depth: self.rt.region_depth(),
                        region_pool_len: self.region_pool.len(),
                        formal_pool_len: self.formal_pool.len(),
                    });
                }
                LInstr::PopHandler => {
                    self.handlers.pop().expect("handler stack underflow");
                }
                LInstr::MkExn { exn, has_arg, at } => {
                    if !*has_arg {
                        self.push(scalar(*exn as i64));
                    } else {
                        let arg = self.pop();
                        let tag = Tag::exn(*exn, 1);
                        let fields: Vec<Word> = if self.rt.config.tagged {
                            vec![arg]
                        } else {
                            vec![scalar(*exn as i64), arg]
                        };
                        let v = self.alloc_at(
                            at.expect("carrying exception needs a place"),
                            tag,
                            &fields,
                        );
                        self.push(v);
                    }
                }
                LInstr::DeExn => {
                    let v = self.pop();
                    let off = if self.rt.config.tagged { 0 } else { 1 };
                    let w = self.rt.field(v, off);
                    self.push(w);
                }
                LInstr::Raise => {
                    let v = self.pop();
                    match self.do_raise(v) {
                        Some(new_pc) => pc = new_pc,
                        None => {
                            let id = self.exn_id(v);
                            return Err(self.uncaught(id));
                        }
                    }
                }
                LInstr::Halt => {
                    let result = self.pop();
                    let result = self.finish_pending_gc(result);
                    let mut stats = self.rt.stats.clone();
                    stats.observe_bytes(self.rt.mem_bytes());
                    return Ok(VmOutcome {
                        result,
                        output: self.output,
                        instructions: icount,
                        stats,
                        fusion_profile: self.profile.take(),
                        rt: self.rt,
                    });
                }
                // -------------------------------------- superinstructions
                LInstr::LoadLoadPrim { a, b, p, at } => {
                    let va = self.local(*a);
                    let vb = self.local(*b);
                    self.push(va);
                    self.push(vb);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                }
                LInstr::PushConstPrim { k, p, at } => {
                    self.push(*k);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                }
                LInstr::LoadSelect { i, sel } => {
                    let v = self.local(*i);
                    let w = self.rt.field(v, *sel as u64);
                    self.push(w);
                }
                LInstr::StorePop { i } => {
                    let v = self.pop();
                    self.set_local(*i, v);
                    self.pop();
                }
                LInstr::PushConstJumpIfFalse { k, target } => {
                    if self.rt.untag_int(*k) == 0 {
                        pc = *target as usize;
                    }
                }
                LInstr::LoadConstPrim { i, k, p, at } => {
                    let v = self.local(*i);
                    self.push(v);
                    self.push(*k);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                }
                LInstr::LoadSelectStore { i, sel, j } => {
                    let v = self.local(*i);
                    let w = self.rt.field(v, *sel as u64);
                    self.set_local(*j, w);
                }
                LInstr::LoadLoadPrimJump {
                    a,
                    b,
                    p,
                    at,
                    target,
                } => {
                    let va = self.local(*a);
                    let vb = self.local(*b);
                    self.push(va);
                    self.push(vb);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                    let v = self.pop();
                    if self.rt.untag_int(v) == 0 {
                        pc = *target as usize;
                    }
                }
                LInstr::LoadConstPrimJump {
                    i,
                    k,
                    p,
                    at,
                    target,
                } => {
                    let v = self.local(*i);
                    self.push(v);
                    self.push(*k);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                    let v = self.pop();
                    if self.rt.untag_int(v) == 0 {
                        pc = *target as usize;
                    }
                }
                LInstr::StoreLoadSelect { j, i, sel } => {
                    let v = self.pop();
                    self.set_local(*j, v);
                    let w = self.rt.field(self.local(*i), *sel as u64);
                    self.push(w);
                }
                LInstr::LoadPrimJump { i, p, at, target } => {
                    let v = self.local(*i);
                    self.push(v);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                    let v = self.pop();
                    if self.rt.untag_int(v) == 0 {
                        pc = *target as usize;
                    }
                }
                LInstr::SelectConstPrim { sel, k, p, at } => {
                    let v = self.pop();
                    let w = self.rt.field(v, *sel as u64);
                    self.push(w);
                    self.push(*k);
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                }
                LInstr::StoreLoad { j, i } => {
                    let v = self.pop();
                    self.set_local(*j, v);
                    let w = self.local(*i);
                    self.push(w);
                }
                LInstr::LoadLoad { a, b } => {
                    let va = self.local(*a);
                    let vb = self.local(*b);
                    self.push(va);
                    self.push(vb);
                }
                LInstr::PrimJump { p, at, target } => {
                    match self.do_prim(*p, *at) {
                        Ok(()) => {}
                        Err(exn) => raise_builtin!(self, pc, exn),
                    }
                    let v = self.pop();
                    if self.rt.untag_int(v) == 0 {
                        pc = *target as usize;
                    }
                }
                LInstr::SelectStore { sel, j } => {
                    let v = self.pop();
                    let w = self.rt.field(v, *sel as u64);
                    self.set_local(*j, w);
                }
                LInstr::LoadStore { i, j } => {
                    let v = self.local(*i);
                    self.set_local(*j, v);
                }
                LInstr::LoadSwitchCon {
                    i,
                    disc,
                    arms,
                    default,
                } => {
                    let v = self.local(*i);
                    let ctor: u32 = if !is_ptr(v) {
                        scalar_val(v) as u32
                    } else {
                        match disc {
                            Disc::Tag => {
                                Tag::decode(self.rt.read_addr(ptr_addr(self.rt.canon(v)))).info
                            }
                            Disc::Field0 => scalar_val(self.rt.read_addr(ptr_addr(v))) as u32,
                            Disc::Single(c) => *c,
                            Disc::Enum => unreachable!("boxed value in enum datatype"),
                        }
                    };
                    let target = arms
                        .iter()
                        .find(|(c, _)| *c == ctor)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::GcCheckLoad { i } => {
                    if let Some(e) = self.gc_safe_point() {
                        return Err(e);
                    }
                    let v = self.local(*i);
                    self.push(v);
                }
                LInstr::RegHandleRegHandle { a, b } => {
                    let ra = self.region_of(*a);
                    let wa = self.rt.tag_int(ra.0 as i64);
                    self.push(wa);
                    let rb = self.region_of(*b);
                    let wb = self.rt.tag_int(rb.0 as i64);
                    self.push(wb);
                }
                LInstr::SelectStoreLoad { sel, j, i } => {
                    let v = self.pop();
                    let w = self.rt.field(v, *sel as u64);
                    self.set_local(*j, w);
                    let u = self.local(*i);
                    self.push(u);
                }
                LInstr::GcCheckLoadSwitchCon {
                    i,
                    disc,
                    arms,
                    default,
                } => {
                    if let Some(e) = self.gc_safe_point() {
                        return Err(e);
                    }
                    let v = self.local(*i);
                    let ctor: u32 = if !is_ptr(v) {
                        scalar_val(v) as u32
                    } else {
                        match disc {
                            Disc::Tag => {
                                Tag::decode(self.rt.read_addr(ptr_addr(self.rt.canon(v)))).info
                            }
                            Disc::Field0 => scalar_val(self.rt.read_addr(ptr_addr(v))) as u32,
                            Disc::Single(c) => *c,
                            Disc::Enum => unreachable!("boxed value in enum datatype"),
                        }
                    };
                    let target = arms
                        .iter()
                        .find(|(c, _)| *c == ctor)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    pc = target as usize;
                }
                LInstr::RegHandleRegHandleLoad { a, b, i } => {
                    let ra = self.region_of(*a);
                    let wa = self.rt.tag_int(ra.0 as i64);
                    self.push(wa);
                    let rb = self.region_of(*b);
                    let wb = self.rt.tag_int(rb.0 as i64);
                    self.push(wb);
                    let v = self.local(*i);
                    self.push(v);
                }
                LInstr::RegHandleLoadLoad { r, i, j } => {
                    let rr = self.region_of(*r);
                    let wr = self.rt.tag_int(rr.0 as i64);
                    self.push(wr);
                    let v = self.local(*i);
                    self.push(v);
                    let w = self.local(*j);
                    self.push(w);
                }
            }
        }
    }

    /// Direct-threaded execution: the driver keeps `pc` and the
    /// instruction counter in registers and dispatches through
    /// [`HANDLERS`]; each handler does one opcode's work and reports how
    /// control continues. Costs come from [`Op::cost`], which mirrors
    /// [`LInstr::cost`] exactly, so fuel and instruction totals are
    /// bit-identical with the match loop.
    fn exec_threaded(mut self, t: &ThreadedCode, entry: usize) -> Result<VmOutcome, VmError> {
        let fuel_limit = self.fuel.unwrap_or(u64::MAX);
        let mut icount: u64 = 0;
        let mut pc = entry;
        loop {
            let op = t.ops[pc];
            icount += op.cost();
            if icount > fuel_limit {
                return Err(VmError::OutOfFuel);
            }
            // Rust has no computed goto, so the "threading" here is the
            // dense-`u8` match below: it compiles to a single jump table
            // over the opcode byte, and the hot handlers are
            // `#[inline(always)]` so their bodies land inside the arms
            // (an opaque call through the table would block inlining and
            // costs ~10% on the recursive benchmarks). Cold opcodes go
            // through [`HANDLERS`], which stays the single canonical
            // opcode -> handler mapping.
            let ctl = match op {
                Op::PushConst => h_push_const(&mut self, t, pc as u32),
                Op::Load => h_load(&mut self, t, pc as u32),
                Op::Store => h_store(&mut self, t, pc as u32),
                Op::Pop => h_pop(&mut self, t, pc as u32),
                Op::MkRecord => h_mk_record(&mut self, t, pc as u32),
                Op::Select => h_select(&mut self, t, pc as u32),
                Op::MkCon => h_mk_con(&mut self, t, pc as u32),
                Op::SwitchCon => h_switch_con(&mut self, t, pc as u32),
                Op::Jump => h_jump(&mut self, t, pc as u32),
                Op::JumpIfFalse => h_jump_if_false(&mut self, t, pc as u32),
                Op::Prim => h_prim(&mut self, t, pc as u32),
                Op::RegHandle => h_reg_handle(&mut self, t, pc as u32),
                Op::Call => h_call(&mut self, t, pc as u32),
                Op::Ret => h_ret(&mut self, t, pc as u32),
                Op::GcCheck => h_gc_check(&mut self, t, pc as u32),
                Op::LetRegion => h_let_region(&mut self, t, pc as u32),
                Op::EndRegions => h_end_regions(&mut self, t, pc as u32),
                Op::LoadLoadPrim => h_load_load_prim(&mut self, t, pc as u32),
                Op::PushConstPrim => h_push_const_prim(&mut self, t, pc as u32),
                Op::LoadSelect => h_load_select(&mut self, t, pc as u32),
                Op::StorePop => h_store_pop(&mut self, t, pc as u32),
                Op::PushConstJumpIfFalse => h_push_const_jump_if_false(&mut self, t, pc as u32),
                Op::LoadConstPrim => h_load_const_prim(&mut self, t, pc as u32),
                Op::LoadSelectStore => h_load_select_store(&mut self, t, pc as u32),
                Op::LoadLoadPrimJump => h_load_load_prim_jump(&mut self, t, pc as u32),
                Op::LoadConstPrimJump => h_load_const_prim_jump(&mut self, t, pc as u32),
                Op::StoreLoadSelect => h_store_load_select(&mut self, t, pc as u32),
                Op::LoadPrimJump => h_load_prim_jump(&mut self, t, pc as u32),
                Op::SelectConstPrim => h_select_const_prim(&mut self, t, pc as u32),
                Op::StoreLoad => h_store_load(&mut self, t, pc as u32),
                Op::LoadLoad => h_load_load(&mut self, t, pc as u32),
                Op::PrimJump => h_prim_jump(&mut self, t, pc as u32),
                Op::SelectStore => h_select_store(&mut self, t, pc as u32),
                Op::LoadStore => h_load_store(&mut self, t, pc as u32),
                Op::LoadSwitchCon => h_load_switch_con(&mut self, t, pc as u32),
                Op::GcCheckLoad => h_gc_check_load(&mut self, t, pc as u32),
                Op::RegHandleRegHandle => h_reg_handle_reg_handle(&mut self, t, pc as u32),
                Op::SelectStoreLoad => h_select_store_load(&mut self, t, pc as u32),
                Op::GcCheckLoadSwitchCon => h_gc_check_load_switch_con(&mut self, t, pc as u32),
                Op::RegHandleRegHandleLoad => h_reg_handle_reg_handle_load(&mut self, t, pc as u32),
                Op::RegHandleLoadLoad => h_reg_handle_load_load(&mut self, t, pc as u32),
                _ => HANDLERS[op as usize](&mut self, t, pc as u32),
            };
            match ctl {
                Control::Next => pc += 1,
                Control::Goto(target) => pc = target as usize,
                Control::Halt => {
                    let result = self.halted.take().expect("Halt without a result");
                    let result = self.finish_pending_gc(result);
                    let mut stats = self.rt.stats.clone();
                    stats.observe_bytes(self.rt.mem_bytes());
                    return Ok(VmOutcome {
                        result,
                        output: self.output,
                        instructions: icount,
                        stats,
                        fusion_profile: None,
                        rt: self.rt,
                    });
                }
                Control::Fail => {
                    return Err(self.pending.take().expect("Fail without an error"));
                }
            }
        }
    }

    /// Register-form execution: structurally the threaded loop, but the
    /// per-pc charge comes from [`crate::register::RegCode::costs`] — a
    /// register op charges every source instruction the translator folded
    /// into it, so instruction totals, fuel and the GC schedule match the
    /// stack engines bit-for-bit. Base opcodes surviving translation
    /// dispatch through the same handlers as [`Vm::exec_threaded`].
    fn exec_register(
        mut self,
        r: &crate::register::RegCode,
        entry: usize,
    ) -> Result<VmOutcome, VmError> {
        let t = &r.code;
        let fuel_limit = self.fuel.unwrap_or(u64::MAX);
        let mut icount: u64 = 0;
        let mut pc = entry;
        loop {
            let op = t.ops[pc];
            icount += r.costs[pc] as u64;
            if icount > fuel_limit {
                return Err(VmError::OutOfFuel);
            }
            let ctl = match op {
                Op::RPrim => h_rprim(&mut self, t, pc as u32),
                Op::RPrimJump => h_rprim_jump(&mut self, t, pc as u32),
                Op::RJumpIfFalse => h_rjump_if_false(&mut self, t, pc as u32),
                Op::RStoreConst => h_rstore_const(&mut self, t, pc as u32),
                Op::RRet => h_rret(&mut self, t, pc as u32),
                Op::RNop => h_rnop(&mut self, t, pc as u32),
                Op::PushConst => h_push_const(&mut self, t, pc as u32),
                Op::Load => h_load(&mut self, t, pc as u32),
                Op::Store => h_store(&mut self, t, pc as u32),
                Op::Pop => h_pop(&mut self, t, pc as u32),
                Op::MkRecord => h_mk_record(&mut self, t, pc as u32),
                Op::Select => h_select(&mut self, t, pc as u32),
                Op::MkCon => h_mk_con(&mut self, t, pc as u32),
                Op::SwitchCon => h_switch_con(&mut self, t, pc as u32),
                Op::Jump => h_jump(&mut self, t, pc as u32),
                Op::JumpIfFalse => h_jump_if_false(&mut self, t, pc as u32),
                Op::Prim => h_prim(&mut self, t, pc as u32),
                Op::RegHandle => h_reg_handle(&mut self, t, pc as u32),
                Op::Call => h_call(&mut self, t, pc as u32),
                Op::Ret => h_ret(&mut self, t, pc as u32),
                Op::GcCheck => h_gc_check(&mut self, t, pc as u32),
                Op::LetRegion => h_let_region(&mut self, t, pc as u32),
                Op::EndRegions => h_end_regions(&mut self, t, pc as u32),
                Op::PushConstJumpIfFalse => h_push_const_jump_if_false(&mut self, t, pc as u32),
                Op::LoadSelect => h_load_select(&mut self, t, pc as u32),
                Op::LoadSelectStore => h_load_select_store(&mut self, t, pc as u32),
                Op::SelectStore => h_select_store(&mut self, t, pc as u32),
                Op::LoadStore => h_load_store(&mut self, t, pc as u32),
                Op::LoadSwitchCon => h_load_switch_con(&mut self, t, pc as u32),
                Op::GcCheckLoadSwitchCon => h_gc_check_load_switch_con(&mut self, t, pc as u32),
                Op::RegHandleRegHandle => h_reg_handle_reg_handle(&mut self, t, pc as u32),
                Op::PrimJump => h_prim_jump(&mut self, t, pc as u32),
                // Re-fusion (`DispatchMode::RegisterFused`) reintroduces
                // the rest of the superinstruction set over flushed
                // base-op windows.
                Op::GcCheckLoad => h_gc_check_load(&mut self, t, pc as u32),
                Op::LoadLoad => h_load_load(&mut self, t, pc as u32),
                Op::StoreLoad => h_store_load(&mut self, t, pc as u32),
                Op::StorePop => h_store_pop(&mut self, t, pc as u32),
                Op::LoadLoadPrim => h_load_load_prim(&mut self, t, pc as u32),
                Op::PushConstPrim => h_push_const_prim(&mut self, t, pc as u32),
                Op::LoadConstPrim => h_load_const_prim(&mut self, t, pc as u32),
                Op::StoreLoadSelect => h_store_load_select(&mut self, t, pc as u32),
                Op::SelectConstPrim => h_select_const_prim(&mut self, t, pc as u32),
                Op::SelectStoreLoad => h_select_store_load(&mut self, t, pc as u32),
                Op::LoadLoadPrimJump => h_load_load_prim_jump(&mut self, t, pc as u32),
                Op::LoadConstPrimJump => h_load_const_prim_jump(&mut self, t, pc as u32),
                Op::LoadPrimJump => h_load_prim_jump(&mut self, t, pc as u32),
                Op::RegHandleRegHandleLoad => h_reg_handle_reg_handle_load(&mut self, t, pc as u32),
                Op::RegHandleLoadLoad => h_reg_handle_load_load(&mut self, t, pc as u32),
                _ => HANDLERS[op as usize](&mut self, t, pc as u32),
            };
            match ctl {
                Control::Next => pc += 1,
                Control::Goto(target) => pc = target as usize,
                Control::Halt => {
                    let result = self.halted.take().expect("Halt without a result");
                    let result = self.finish_pending_gc(result);
                    let mut stats = self.rt.stats.clone();
                    stats.observe_bytes(self.rt.mem_bytes());
                    return Ok(VmOutcome {
                        result,
                        output: self.output,
                        instructions: icount,
                        stats,
                        fusion_profile: None,
                        rt: self.rt,
                    });
                }
                Control::Fail => {
                    return Err(self.pending.take().expect("Fail without an error"));
                }
            }
        }
    }

    /// Unwinds a built-in exception from a threaded handler: transfers to
    /// the innermost handler, or stages the uncaught-exception error.
    fn raise_or_fail(&mut self, exn: kit_lambda::ty::ExnId) -> Control {
        let v = scalar(exn.0 as i64);
        match self.do_raise(v) {
            Some(new_pc) => Control::Goto(new_pc as u32),
            None => {
                self.pending = Some(self.uncaught(exn.0));
                Control::Fail
            }
        }
    }

    fn exn_id(&self, v: Word) -> u32 {
        if !is_ptr(v) {
            scalar_val(v) as u32
        } else if self.rt.config.tagged {
            let v = self.rt.canon(v);
            Tag::decode(self.rt.read_addr(ptr_addr(v))).info
        } else {
            scalar_val(self.rt.read_addr(ptr_addr(v))) as u32
        }
    }

    /// Unwinds to the innermost handler; returns its code address, or
    /// `None` if the exception is uncaught. The in-flight exception value
    /// is treated as a GC root if a collection happens later (it is pushed
    /// on the handler's operand stack immediately).
    fn do_raise(&mut self, exn_val: Word) -> Option<usize> {
        let h = self.handlers.pop()?;
        self.rt.pop_regions_to(h.region_depth);
        self.frames.truncate(h.frame_idx + 1);
        self.cur_locals = self.frames.last().map_or(0, |c| c.locals);
        self.region_pool.truncate(h.region_pool_len);
        self.formal_pool.truncate(h.formal_pool_len);
        self.rt.stack.truncate(h.stack_len);
        self.rt.note_stack_trunc(h.stack_len);
        self.push(exn_val);
        Some(h.target)
    }

    fn roots(&self) -> Vec<usize> {
        let mut roots = Vec::new();
        for (i, f) in self.frames.iter().enumerate() {
            let op_end = self
                .frames
                .get(i + 1)
                .map(|g| g.base)
                .unwrap_or(self.rt.stack.len());
            roots.extend(f.locals..f.locals + f.nlocals);
            roots.extend(f.locals + f.nlocals..op_end);
        }
        roots
    }

    /// One baseline collection: minor promotion, plus a major semispace
    /// pass when the tenured generation outgrew its budget.
    fn collect_generational(&mut self, pol: kit_runtime::config::GenPolicy) {
        let roots = self.roots();
        let tenured_pages = self.rt.regions[1].pages;
        let major = tenured_pages
            >= pol
                .nursery_pages
                .max(self.rt.stats.last_live_pages * pol.major_growth);
        let mut remembered = std::mem::take(&mut self.remembered);
        gc::collect_gen(
            &mut self.rt,
            &roots,
            &mut remembered,
            RegionId(0),
            RegionId(1),
            major,
        );
    }

    /// Runs the Cheney-for-regions collector with all frames' locals and
    /// operand ranges as roots.
    fn collect(&mut self) {
        let roots = self.roots();
        // Every root must point at a live object: the compiler clears
        // binding slots that go out of scope inside letregion scopes
        // (`clear_dead_slot`), so no local can dangle into an ended
        // region. A root landing on page slack means that invariant
        // broke — report it with frame context before the collector
        // trips over it.
        #[cfg(debug_assertions)]
        for &slot in &roots {
            let v = self.rt.stack[slot];
            if is_ptr(v)
                && matches!(
                    kit_runtime::value::space_of(ptr_addr(v)),
                    kit_runtime::value::Space::Heap
                )
            {
                let w = self.rt.read_addr(ptr_addr(v));
                if !is_ptr(w) && Tag::decode(w).kind == kit_runtime::value::Kind::Sentinel {
                    panic!(
                        "dangling GC root at stack slot {slot} (value {v:#x}) in {}",
                        self.backtrace()
                    );
                }
            }
        }
        if self.rt.config.gc_slice_budget_words.is_some() {
            kit_runtime::gc_sliced::collect_sliced(&mut self.rt, &roots, &mut []);
            return;
        }
        gc::collect(&mut self.rt, &roots, &mut []);
    }

    /// Collection policy at a `GcCheck` safe point, shared by all
    /// engines: enforce the optional wall-clock deadline, run the
    /// configured collector if it is due, then enforce the optional
    /// page-cap quota. Returns the quota error if the cap is breached
    /// even after a forced collection. With neither a cap nor a deadline
    /// configured the extra checks are single `is_some` tests, so
    /// instruction totals and the GC schedule of unconstrained runs are
    /// untouched.
    #[inline(always)]
    fn gc_safe_point(&mut self) -> Option<VmError> {
        if let Some(deadline) = self.rt.config.deadline {
            if let Some(e) = self.deadline_check(deadline) {
                return Some(e);
            }
        }
        if let Some(pol) = self.rt.config.generational {
            let nursery = &self.rt.regions[0];
            if nursery.pages >= pol.nursery_pages {
                self.collect_generational(pol);
            }
        } else if self.rt.gc_needed && self.rt.config.gc_enabled {
            self.collect();
        }
        if self.rt.config.max_heap_pages.is_some() {
            self.quota_check()
        } else {
            None
        }
    }

    /// The deadline slow path (only entered with a deadline armed): read
    /// the clock at the first safe point and every 16th after it — the
    /// first read catches an already-expired deadline at the earliest
    /// enforceable point (safe point 1, on every engine), and the stride
    /// keeps the clock read off the function-entry fast path. The
    /// counter advances only while a deadline is armed, so the stride
    /// schedule is identical across engines and runs.
    #[cold]
    fn deadline_check(&mut self, deadline: std::time::Instant) -> Option<VmError> {
        const STRIDE_MASK: u64 = 15;
        self.safe_points += 1;
        if self.safe_points & STRIDE_MASK == 1 && std::time::Instant::now() >= deadline {
            return Some(VmError::DeadlineExceeded {
                checks: self.safe_points,
            });
        }
        None
    }

    /// The quota slow path: if the materialized footprint exceeds the
    /// cap, force one full collection (finishing any in-flight slice),
    /// release the free arena tail, and re-measure. A request that stays
    /// over the cap after all that is genuinely holding too much live
    /// data and fails with a typed error.
    #[cold]
    fn quota_check(&mut self) -> Option<VmError> {
        if !self.rt.over_quota() {
            return None;
        }
        if self.rt.config.gc_enabled {
            if let Some(pol) = self.rt.config.generational {
                self.collect_generational(pol);
            } else {
                self.collect();
                if self.rt.sliced_active() {
                    let roots = self.roots();
                    kit_runtime::gc_sliced::finish_sliced(&mut self.rt, &roots, &mut []);
                }
            }
        }
        self.rt.quota_reclaim();
        if self.rt.over_quota() {
            Some(VmError::QuotaExceeded {
                pages: self.rt.quota_pages(),
                cap: self.rt.config.max_heap_pages.expect("cap checked above"),
            })
        } else {
            None
        }
    }

    /// Forcibly completes a sliced collection still in flight at program
    /// exit, with the result value as an extra root (the from-space must
    /// not outlive the collection).
    fn finish_pending_gc(&mut self, result: Word) -> Word {
        if !self.rt.sliced_active() {
            return result;
        }
        let roots = self.roots();
        let mut extra = [result];
        kit_runtime::gc_sliced::finish_sliced(&mut self.rt, &roots, &mut extra);
        extra[0]
    }

    // ------------------------------------------------------------- prims

    fn do_prim(&mut self, p: Prim, at: Option<RegSlot>) -> Result<(), kit_lambda::ty::ExnId> {
        use Prim::*;
        macro_rules! binop {
            () => {{
                let b = self.pop();
                let a = self.pop();
                (a, b)
            }};
        }
        macro_rules! int2 {
            () => {{
                let (a, b) = binop!();
                (self.rt.untag_int(a), self.rt.untag_int(b))
            }};
        }
        macro_rules! real2 {
            () => {{
                let (a, b) = binop!();
                (self.rt.real_val(a), self.rt.real_val(b))
            }};
        }
        macro_rules! push_int {
            ($v:expr) => {{
                let w = self.rt.tag_int($v);
                self.push(w);
            }};
        }
        macro_rules! push_bool {
            ($v:expr) => {
                push_int!($v as i64)
            };
        }
        macro_rules! push_real {
            ($v:expr) => {{
                let bits = ($v).to_bits();
                let w = self.alloc_at(at.expect("real result needs a place"), Tag::real(), &[bits]);
                self.push(w);
            }};
        }
        macro_rules! push_str {
            ($s:expr) => {{
                let slot = at.expect("string result needs a place");
                let r = self.region_of(slot);
                let w = self.rt.alloc_string(r, $s);
                self.push(w);
            }};
        }
        match p {
            IAdd | ISub | IMul => {
                let (a, b) = int2!();
                let v = match p {
                    IAdd => a.checked_add(b),
                    ISub => a.checked_sub(b),
                    _ => a.checked_mul(b),
                }
                .filter(|v| int_in_range(*v));
                match v {
                    Some(v) => push_int!(v),
                    None => return Err(EXN_OVERFLOW),
                }
            }
            IDiv | IMod => {
                let (a, b) = int2!();
                if b == 0 {
                    return Err(EXN_DIV);
                }
                let q = a.wrapping_div(b);
                let r = a.wrapping_rem(b);
                let adj = r != 0 && (r < 0) != (b < 0);
                push_int!(if p == IDiv {
                    if adj {
                        q - 1
                    } else {
                        q
                    }
                } else if adj {
                    r + b
                } else {
                    r
                });
            }
            INeg => {
                let w = self.pop();
                let v = -self.rt.untag_int(w);
                if !int_in_range(v) {
                    return Err(EXN_OVERFLOW);
                }
                push_int!(v);
            }
            IAbs => {
                let w = self.pop();
                let v = self.rt.untag_int(w).abs();
                if !int_in_range(v) {
                    return Err(EXN_OVERFLOW);
                }
                push_int!(v);
            }
            ILt | ILe | IGt | IGe | IEq => {
                let (a, b) = int2!();
                push_bool!(match p {
                    ILt => a < b,
                    ILe => a <= b,
                    IGt => a > b,
                    IGe => a >= b,
                    _ => a == b,
                });
            }
            RAdd | RSub | RMul | RDiv => {
                let (a, b) = real2!();
                push_real!(match p {
                    RAdd => a + b,
                    RSub => a - b,
                    RMul => a * b,
                    _ => a / b,
                });
            }
            RNeg => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_real!(-v);
            }
            RAbs => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_real!(v.abs());
            }
            RLt | RLe | RGt | RGe | REq => {
                let (a, b) = real2!();
                push_bool!(match p {
                    RLt => a < b,
                    RLe => a <= b,
                    RGt => a > b,
                    RGe => a >= b,
                    _ => a == b,
                });
            }
            IntToReal => {
                let w = self.pop();
                let v = self.rt.untag_int(w) as f64;
                push_real!(v);
            }
            Floor => {
                let w = self.pop();
                let v = self.rt.real_val(w).floor() as i64;
                push_int!(v);
            }
            Trunc => {
                let w = self.pop();
                let v = self.rt.real_val(w).trunc() as i64;
                push_int!(v);
            }
            Sqrt | Sin | Cos | Atan | Ln | Exp => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_real!(match p {
                    Sqrt => v.sqrt(),
                    Sin => v.sin(),
                    Cos => v.cos(),
                    Atan => v.atan(),
                    Ln => v.ln(),
                    _ => v.exp(),
                });
            }
            StrEq | StrLt => {
                let (a, b) = binop!();
                let sa = self.rt.str_val(a);
                let sb = self.rt.str_val(b);
                let r = if p == StrEq { sa == sb } else { sa < sb };
                push_bool!(r);
            }
            StrConcat => {
                let (a, b) = binop!();
                let s = format!("{}{}", self.rt.str_val(a), self.rt.str_val(b));
                push_str!(s);
            }
            StrSize => {
                let v = self.pop();
                let n = self.rt.str_val(v).len() as i64;
                push_int!(n);
            }
            StrSub => {
                let (a, b) = binop!();
                let i = self.rt.untag_int(b);
                let bytes = self.rt.str_val(a).as_bytes();
                if i < 0 || i as usize >= bytes.len() {
                    return Err(EXN_SUBSCRIPT);
                }
                push_int!(bytes[i as usize] as i64);
            }
            ItoS => {
                let w0 = self.pop();
                let v = self.rt.untag_int(w0);
                push_str!(fmt_sml_int(v));
            }
            RtoS => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_str!(fmt_sml_real(v));
            }
            Chr => {
                let w0 = self.pop();
                let v = self.rt.untag_int(w0);
                if !(0..=255).contains(&v) {
                    return Err(EXN_SUBSCRIPT);
                }
                push_str!(((v as u8) as char).to_string());
            }
            Print => {
                let v = self.pop();
                let s = self.rt.str_val(v).to_string();
                self.output.push_str(&s);
                push_int!(0); // unit
            }
            RefNew => {
                let v = self.pop();
                let w = self.alloc_at(at.expect("ref needs a place"), Tag::reference(), &[v]);
                self.push(w);
            }
            RefGet => {
                let r = self.pop();
                let r = self.rt.canon(r);
                let v = self.rt.field(r, 0);
                self.push(v);
            }
            RefSet => {
                let (r, v) = binop!();
                let r = self.rt.canon(r);
                let v = self.rt.gc_write_barrier(v);
                self.rt.set_field(r, 0, v);
                if self.rt.config.generational.is_some() {
                    let addr = ptr_addr(r) + self.rt.hdr_words();
                    self.remembered.push(addr);
                }
                push_int!(0);
            }
            RefEq | ArrEq => {
                let (a, b) = binop!();
                push_bool!(self.rt.canon(a) == self.rt.canon(b));
            }
            ArrNew => {
                let (n, init) = binop!();
                let n = self.rt.untag_int(n);
                if n < 0 {
                    return Err(EXN_SIZE);
                }
                let slot = at.expect("array needs a place");
                let r = self.region_of(slot);
                let w = self.rt.alloc_array(r, n as usize, init);
                self.push(w);
            }
            ArrSub => {
                let (a, i) = binop!();
                let i = self.rt.untag_int(i);
                if i < 0 || i as usize >= self.rt.arr_len(a) {
                    return Err(EXN_SUBSCRIPT);
                }
                let v = self.rt.read_addr(self.rt.arr_elem_addr(a, i as usize));
                self.push(v);
            }
            ArrUpd => {
                let v = self.pop();
                let wi = self.pop();
                let i = self.rt.untag_int(wi);
                let a = self.pop();
                if i < 0 || i as usize >= self.rt.arr_len(a) {
                    return Err(EXN_SUBSCRIPT);
                }
                let addr = self.rt.arr_elem_addr(a, i as usize);
                let v = self.rt.gc_write_barrier(v);
                self.rt.write_addr(addr, v);
                if self.rt.config.generational.is_some() {
                    self.remembered.push(addr);
                }
                push_int!(0);
            }
            ArrLen => {
                let a = self.pop();
                let n = self.rt.arr_len(a) as i64;
                push_int!(n);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- threaded

/// What a threaded handler tells the dispatch loop to do next.
#[derive(Clone, Copy)]
enum Control {
    /// Fall through to `pc + 1`.
    Next,
    /// Transfer to an absolute pc (branches, calls, raises).
    Goto(u32),
    /// `Halt` executed; [`Vm::halted`] holds the result.
    Halt,
    /// Abnormal termination; [`Vm::pending`] holds the error.
    Fail,
}

/// A threaded instruction handler: one opcode's worth of work.
type OpHandler = for<'a, 'p, 't> fn(&'a mut Vm<'p>, &'t ThreadedCode, u32) -> Control;

/// The direct-threaded dispatch table, indexed by `Op as usize` (the
/// order of [`Op::ALL`]).
const HANDLERS: [OpHandler; OP_COUNT] = [
    h_push_const,
    h_push_str,
    h_spread,
    h_unreachable,
    h_push_real,
    h_load,
    h_store,
    h_pop,
    h_mk_record,
    h_select,
    h_mk_con,
    h_de_con_adj,
    h_switch_con,
    h_switch_int,
    h_switch_str,
    h_switch_exn,
    h_jump,
    h_jump_if_false,
    h_prim,
    h_reg_handle,
    h_call,
    h_call_clos,
    h_enter_via_pair,
    h_ret,
    h_gc_check,
    h_let_region,
    h_end_regions,
    h_push_handler,
    h_pop_handler,
    h_mk_exn,
    h_de_exn,
    h_raise,
    h_halt,
    h_load_load_prim,
    h_push_const_prim,
    h_load_select,
    h_store_pop,
    h_push_const_jump_if_false,
    h_load_const_prim,
    h_load_select_store,
    h_load_load_prim_jump,
    h_load_const_prim_jump,
    h_store_load_select,
    h_load_prim_jump,
    h_select_const_prim,
    h_store_load,
    h_load_load,
    h_prim_jump,
    h_select_store,
    h_load_store,
    h_load_switch_con,
    h_gc_check_load,
    h_reg_handle_reg_handle,
    h_select_store_load,
    h_gc_check_load_switch_con,
    h_reg_handle_reg_handle_load,
    h_reg_handle_load_load,
    h_rprim,
    h_rprim_jump,
    h_rjump_if_false,
    h_rstore_const,
    h_rret,
    h_rnop,
];

#[inline]
fn args(t: &ThreadedCode, pc: u32) -> &threaded::Args {
    &t.args[pc as usize]
}

#[inline(always)]
fn h_push_const(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    vm.push(args(t, pc).k);
    Control::Next
}

fn h_push_str(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let w = vm.rt.intern_const_str(&t.strs[args(t, pc).a as usize]);
    vm.push(w);
    Control::Next
}

fn h_spread(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let n = args(t, pc).n;
    let v = vm.pop();
    for i in 0..n {
        let w = vm.rt.field(v, i as u64);
        vm.push(w);
    }
    Control::Next
}

fn h_unreachable(_vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    unreachable!("exhaustive switch fell through")
}

fn h_push_real(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.alloc_at(
        x.at.expect("real literal needs a place"),
        Tag::real(),
        &[x.k],
    );
    vm.push(v);
    Control::Next
}

#[inline(always)]
fn h_load(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let v = vm.local(args(t, pc).a);
    vm.push(v);
    Control::Next
}

#[inline(always)]
fn h_store(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let v = vm.pop();
    vm.set_local(args(t, pc).a, v);
    Control::Next
}

#[inline(always)]
fn h_pop(vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    vm.pop();
    Control::Next
}

#[inline(always)]
fn h_mk_record(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let n = x.n as usize;
    let start = vm.rt.stack.len() - n;
    let mut fields = std::mem::take(&mut vm.scratch);
    fields.clear();
    fields.extend_from_slice(&vm.rt.stack[start..]);
    vm.rt.stack.truncate(start);
    let v = vm.alloc_at(
        x.at.expect("record needs a place"),
        Tag::record(n as u32),
        &fields,
    );
    vm.scratch = fields;
    vm.push(v);
    Control::Next
}

#[inline(always)]
fn h_select(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let v = vm.pop();
    let w = vm.rt.field(v, args(t, pc).n as u64);
    vm.push(w);
    Control::Next
}

#[inline(always)]
fn h_mk_con(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let n = x.n as usize;
    let start = vm.rt.stack.len() - n;
    let mut fields = std::mem::take(&mut vm.scratch);
    fields.clear();
    if x.flag {
        fields.push(scalar(x.a as i64));
    }
    fields.extend_from_slice(&vm.rt.stack[start..]);
    vm.rt.stack.truncate(start);
    let tag = Tag::con(x.a, fields.len() as u32);
    let v = vm.alloc_at(x.at.expect("constructor needs a place"), tag, &fields);
    vm.scratch = fields;
    vm.push(v);
    Control::Next
}

fn h_de_con_adj(vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    let v = vm.pop();
    vm.push(ptr(ptr_addr(v) + 1));
    Control::Next
}

#[inline(always)]
fn h_switch_con(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let v = vm.pop();
    let (disc, (arms, default)) = &t.con_switches[args(t, pc).a as usize];
    let ctor: u32 = if !is_ptr(v) {
        scalar_val(v) as u32
    } else {
        match *disc {
            Disc::Tag => Tag::decode(vm.rt.read_addr(ptr_addr(vm.rt.canon(v)))).info,
            Disc::Field0 => scalar_val(vm.rt.read_addr(ptr_addr(v))) as u32,
            Disc::Single(c) => c,
            Disc::Enum => unreachable!("boxed value in enum datatype"),
        }
    };
    let target = arms
        .iter()
        .find(|(c, _)| *c == ctor)
        .map(|(_, t)| *t)
        .unwrap_or(*default);
    Control::Goto(target)
}

fn h_switch_int(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let v = vm.pop();
    let n = vm.rt.untag_int(v);
    let (arms, default) = &t.int_switches[args(t, pc).a as usize];
    let target = arms
        .iter()
        .find(|(k, _)| *k == n)
        .map(|(_, t)| *t)
        .unwrap_or(*default);
    Control::Goto(target)
}

fn h_switch_str(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let v = vm.pop();
    let (arms, default) = &t.str_switches[args(t, pc).a as usize];
    let s = vm.rt.str_val(v);
    let target = arms
        .iter()
        .find(|(k, _)| k == s)
        .map(|(_, t)| *t)
        .unwrap_or(*default);
    Control::Goto(target)
}

fn h_switch_exn(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let v = vm.pop();
    let id = vm.exn_id(v);
    let (arms, default) = &t.exn_switches[args(t, pc).a as usize];
    let target = arms
        .iter()
        .find(|(k, _)| *k == id)
        .map(|(_, t)| *t)
        .unwrap_or(*default);
    Control::Goto(target)
}

#[inline(always)]
fn h_jump(_vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    Control::Goto(args(t, pc).t)
}

#[inline(always)]
fn h_jump_if_false(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let v = vm.pop();
    if vm.rt.untag_int(v) == 0 {
        Control::Goto(args(t, pc).t)
    } else {
        Control::Next
    }
}

#[inline(always)]
fn h_prim(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    if matches!(
        x.p,
        Prim::ILt | Prim::ILe | Prim::IGt | Prim::IGe | Prim::IEq
    ) {
        let b = vm.pop();
        let a = vm.pop();
        let res = fast_int_cmp(vm, x.p, a, b).expect("int comparison");
        let w = vm.rt.tag_int(res as i64);
        vm.push(w);
        return Control::Next;
    }
    match vm.do_prim(x.p, x.at) {
        Ok(()) => Control::Next,
        Err(exn) => vm.raise_or_fail(exn),
    }
}

#[inline(always)]
fn h_reg_handle(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let r = vm.region_of(args(t, pc).at.expect("region handle needs a slot"));
    let w = vm.rt.tag_int(r.0 as i64);
    vm.push(w);
    Control::Next
}

#[inline(always)]
fn h_call(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let n = x.n as usize;
    let nf = x.m as usize;
    let ret = if x.flag {
        let f = vm.frames.pop().unwrap();
        debug_assert_eq!(vm.region_pool.len(), f.rbase, "tail call with open regions");
        vm.formal_pool.truncate(f.fbase);
        // Slide the call block down onto the dead frame.
        let sp = vm.rt.stack.len();
        let start = sp - n - nf - 1;
        vm.rt.stack.copy_within(start..sp, f.base);
        vm.rt.stack.truncate(f.base + n + nf + 1);
        f.ret_pc
    } else {
        pc as usize + 1
    };
    vm.push_frame_from_stack(x.a, n, nf, ret);
    Control::Goto(x.t)
}

fn h_call_clos(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let n = x.n as usize;
    let sp = vm.rt.stack.len();
    // The closure doubles as the callee's environment.
    let clos = vm.rt.stack[sp - n - 1];
    let label = scalar_val(vm.rt.field(clos, 0)) as usize;
    let fun = t.fun_of_label[label];
    debug_assert_ne!(fun, u32::MAX, "closure label is not a function entry");
    let ret = if x.flag {
        let f = vm.frames.pop().unwrap();
        debug_assert_eq!(vm.region_pool.len(), f.rbase, "tail call with open regions");
        vm.formal_pool.truncate(f.fbase);
        vm.rt.stack.copy_within(sp - n - 1..sp, f.base);
        vm.rt.stack.truncate(f.base + n + 1);
        f.ret_pc
    } else {
        pc as usize + 1
    };
    vm.push_frame_from_stack(fun, n, 0, ret);
    Control::Goto(t.pc_of_label[label])
}

fn h_enter_via_pair(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let nformals = args(t, pc).n;
    let pair = vm.local(0);
    let shared = vm.rt.field(pair, 1);
    vm.set_local(0, shared);
    let fbase = vm.frame().fbase;
    vm.formal_pool.truncate(fbase);
    for i in 0..nformals {
        let w = vm.rt.field(pair, 2 + i as u64);
        vm.formal_pool.push(RegionId(vm.rt.untag_int(w) as u32));
    }
    Control::Next
}

#[inline(always)]
fn h_ret(vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    let result = vm.pop();
    let f = vm.frames.pop().expect("return without frame");
    debug_assert_eq!(vm.region_pool.len(), f.rbase, "return with open regions");
    vm.cur_locals = vm.frames.last().map_or(0, |c| c.locals);
    vm.formal_pool.truncate(f.fbase);
    vm.rt.stack.truncate(f.base);
    vm.rt.note_stack_trunc(f.base);
    vm.push(result);
    Control::Goto(f.ret_pc as u32)
}

#[inline(always)]
fn h_gc_check(vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    if let Some(e) = vm.gc_safe_point() {
        vm.pending = Some(e);
        return Control::Fail;
    }
    Control::Next
}

#[inline(always)]
fn h_let_region(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    for name in t.names[args(t, pc).a as usize].iter() {
        let id = vm.rt.letregion(*name);
        vm.region_pool.push(id);
    }
    Control::Next
}

#[inline(always)]
fn h_end_regions(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    for _ in 0..args(t, pc).n {
        vm.rt.endregion();
        vm.region_pool.pop();
    }
    Control::Next
}

fn h_push_handler(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    vm.handlers.push(Handler {
        target: args(t, pc).t as usize,
        frame_idx: vm.frames.len() - 1,
        stack_len: vm.rt.stack.len(),
        region_depth: vm.rt.region_depth(),
        region_pool_len: vm.region_pool.len(),
        formal_pool_len: vm.formal_pool.len(),
    });
    Control::Next
}

fn h_pop_handler(vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    vm.handlers.pop().expect("handler stack underflow");
    Control::Next
}

fn h_mk_exn(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    if !x.flag {
        vm.push(scalar(x.a as i64));
    } else {
        let arg = vm.pop();
        let tag = Tag::exn(x.a, 1);
        let fields: Vec<Word> = if vm.rt.config.tagged {
            vec![arg]
        } else {
            vec![scalar(x.a as i64), arg]
        };
        let v = vm.alloc_at(
            x.at.expect("carrying exception needs a place"),
            tag,
            &fields,
        );
        vm.push(v);
    }
    Control::Next
}

fn h_de_exn(vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    let v = vm.pop();
    let off = if vm.rt.config.tagged { 0 } else { 1 };
    let w = vm.rt.field(v, off);
    vm.push(w);
    Control::Next
}

fn h_raise(vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    let v = vm.pop();
    match vm.do_raise(v) {
        Some(new_pc) => Control::Goto(new_pc as u32),
        None => {
            let id = vm.exn_id(v);
            vm.pending = Some(vm.uncaught(id));
            Control::Fail
        }
    }
}

fn h_halt(vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    let result = vm.pop();
    vm.halted = Some(result);
    Control::Halt
}

// -------------------------------------------- superinstruction handlers

/// Integer-comparison fast path for the fused compare-and-branch
/// superinstructions: computes exactly what [`Vm::do_prim`] would push
/// for the int comparisons (they cannot raise or allocate) without the
/// operand-stack round trip. `None` sends the caller down the generic
/// path.
#[inline(always)]
fn fast_int_cmp(vm: &Vm<'_>, p: Prim, a: Word, b: Word) -> Option<bool> {
    let (x, y) = (vm.rt.untag_int(a), vm.rt.untag_int(b));
    match p {
        Prim::ILt => Some(x < y),
        Prim::ILe => Some(x <= y),
        Prim::IGt => Some(x > y),
        Prim::IGe => Some(x >= y),
        Prim::IEq => Some(x == y),
        _ => None,
    }
}

/// Integer-arithmetic fast path for the fused prim superinstructions:
/// returns the tagged result word, or `None` (wrong prim, overflow, or
/// out of the implementation's int range) to send the caller down the
/// generic path — which recomputes and raises `Overflow` properly.
#[inline(always)]
fn fast_int_arith(vm: &Vm<'_>, p: Prim, a: Word, b: Word) -> Option<Word> {
    let (x, y) = (vm.rt.untag_int(a), vm.rt.untag_int(b));
    let v = match p {
        Prim::IAdd => x.checked_add(y),
        Prim::ISub => x.checked_sub(y),
        Prim::IMul => x.checked_mul(y),
        _ => None,
    }
    .filter(|v| int_in_range(*v))?;
    Some(vm.rt.tag_int(v))
}

#[inline(always)]
fn h_load_load_prim(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let va = vm.local(x.a);
    let vb = vm.local(x.b);
    if let Some(w) = fast_int_arith(vm, x.p, va, vb) {
        vm.push(w);
        return Control::Next;
    }
    vm.push(va);
    vm.push(vb);
    match vm.do_prim(x.p, x.at) {
        Ok(()) => Control::Next,
        Err(exn) => vm.raise_or_fail(exn),
    }
}

#[inline(always)]
fn h_push_const_prim(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    // The other operand is already on the stack, under the constant.
    if matches!(
        x.p,
        Prim::ILt | Prim::ILe | Prim::IGt | Prim::IGe | Prim::IEq
    ) {
        let a = vm.pop();
        let res = fast_int_cmp(vm, x.p, a, x.k).expect("int comparison");
        let w = vm.rt.tag_int(res as i64);
        vm.push(w);
        return Control::Next;
    }
    if matches!(x.p, Prim::IAdd | Prim::ISub | Prim::IMul) {
        let a = vm.pop();
        if let Some(w) = fast_int_arith(vm, x.p, a, x.k) {
            vm.push(w);
            return Control::Next;
        }
        vm.push(a);
    }
    vm.push(x.k);
    match vm.do_prim(x.p, x.at) {
        Ok(()) => Control::Next,
        Err(exn) => vm.raise_or_fail(exn),
    }
}

#[inline(always)]
fn h_load_select(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.local(x.a);
    let w = vm.rt.field(v, x.n as u64);
    vm.push(w);
    Control::Next
}

#[inline(always)]
fn h_store_pop(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let v = vm.pop();
    vm.set_local(args(t, pc).a, v);
    vm.pop();
    Control::Next
}

#[inline(always)]
fn h_push_const_jump_if_false(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    if vm.rt.untag_int(x.k) == 0 {
        Control::Goto(x.t)
    } else {
        Control::Next
    }
}

#[inline(always)]
fn h_load_const_prim(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.local(x.a);
    if let Some(w) = fast_int_arith(vm, x.p, v, x.k) {
        vm.push(w);
        return Control::Next;
    }
    if let Some(res) = fast_int_cmp(vm, x.p, v, x.k) {
        let w = vm.rt.tag_int(res as i64);
        vm.push(w);
        return Control::Next;
    }
    vm.push(v);
    vm.push(x.k);
    match vm.do_prim(x.p, x.at) {
        Ok(()) => Control::Next,
        Err(exn) => vm.raise_or_fail(exn),
    }
}

#[inline(always)]
fn h_load_select_store(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.local(x.a);
    let w = vm.rt.field(v, x.n as u64);
    vm.set_local(x.m as u32, w);
    Control::Next
}

#[inline(always)]
fn h_load_load_prim_jump(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let va = vm.local(x.a);
    let vb = vm.local(x.b);
    if let Some(res) = fast_int_cmp(vm, x.p, va, vb) {
        return if res {
            Control::Next
        } else {
            Control::Goto(x.t)
        };
    }
    vm.push(va);
    vm.push(vb);
    match vm.do_prim(x.p, x.at) {
        Ok(()) => {}
        Err(exn) => return vm.raise_or_fail(exn),
    }
    let v = vm.pop();
    if vm.rt.untag_int(v) == 0 {
        Control::Goto(x.t)
    } else {
        Control::Next
    }
}

#[inline(always)]
fn h_load_const_prim_jump(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.local(x.a);
    if let Some(res) = fast_int_cmp(vm, x.p, v, x.k) {
        return if res {
            Control::Next
        } else {
            Control::Goto(x.t)
        };
    }
    vm.push(v);
    vm.push(x.k);
    match vm.do_prim(x.p, x.at) {
        Ok(()) => {}
        Err(exn) => return vm.raise_or_fail(exn),
    }
    let v = vm.pop();
    if vm.rt.untag_int(v) == 0 {
        Control::Goto(x.t)
    } else {
        Control::Next
    }
}

#[inline(always)]
fn h_store_load_select(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.pop();
    vm.set_local(x.a, v);
    let w = vm.rt.field(vm.local(x.b), x.n as u64);
    vm.push(w);
    Control::Next
}

#[inline(always)]
fn h_load_prim_jump(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.local(x.a);
    // The other operand is already on the stack (under the loaded one).
    if matches!(
        x.p,
        Prim::ILt | Prim::ILe | Prim::IGt | Prim::IGe | Prim::IEq
    ) {
        let a = vm.pop();
        let res = fast_int_cmp(vm, x.p, a, v).expect("int comparison");
        return if res {
            Control::Next
        } else {
            Control::Goto(x.t)
        };
    }
    vm.push(v);
    match vm.do_prim(x.p, x.at) {
        Ok(()) => {}
        Err(exn) => return vm.raise_or_fail(exn),
    }
    let v = vm.pop();
    if vm.rt.untag_int(v) == 0 {
        Control::Goto(x.t)
    } else {
        Control::Next
    }
}

#[inline(always)]
fn h_select_const_prim(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.pop();
    let w = vm.rt.field(v, x.n as u64);
    vm.push(w);
    vm.push(x.k);
    match vm.do_prim(x.p, x.at) {
        Ok(()) => Control::Next,
        Err(exn) => vm.raise_or_fail(exn),
    }
}

#[inline(always)]
fn h_store_load(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.pop();
    vm.set_local(x.a, v);
    let w = vm.local(x.b);
    vm.push(w);
    Control::Next
}

#[inline(always)]
fn h_load_load(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let va = vm.local(x.a);
    let vb = vm.local(x.b);
    vm.push(va);
    vm.push(vb);
    Control::Next
}

#[inline(always)]
fn h_prim_jump(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    if matches!(
        x.p,
        Prim::ILt | Prim::ILe | Prim::IGt | Prim::IGe | Prim::IEq
    ) {
        let b = vm.pop();
        let a = vm.pop();
        let res = fast_int_cmp(vm, x.p, a, b).expect("int comparison");
        return if res {
            Control::Next
        } else {
            Control::Goto(x.t)
        };
    }
    match vm.do_prim(x.p, x.at) {
        Ok(()) => {}
        Err(exn) => return vm.raise_or_fail(exn),
    }
    let v = vm.pop();
    if vm.rt.untag_int(v) == 0 {
        Control::Goto(x.t)
    } else {
        Control::Next
    }
}

#[inline(always)]
fn h_select_store(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.pop();
    let w = vm.rt.field(v, x.n as u64);
    vm.set_local(x.a, w);
    Control::Next
}

#[inline(always)]
fn h_load_store(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.local(x.a);
    vm.set_local(x.b, v);
    Control::Next
}

#[inline(always)]
fn h_load_switch_con(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.local(x.b);
    let (disc, (arms, default)) = &t.con_switches[x.a as usize];
    let ctor: u32 = if !is_ptr(v) {
        scalar_val(v) as u32
    } else {
        match *disc {
            Disc::Tag => Tag::decode(vm.rt.read_addr(ptr_addr(vm.rt.canon(v)))).info,
            Disc::Field0 => scalar_val(vm.rt.read_addr(ptr_addr(v))) as u32,
            Disc::Single(c) => c,
            Disc::Enum => unreachable!("boxed value in enum datatype"),
        }
    };
    let target = arms
        .iter()
        .find(|(c, _)| *c == ctor)
        .map(|(_, t)| *t)
        .unwrap_or(*default);
    Control::Goto(target)
}

#[inline(always)]
fn h_gc_check_load(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    if let Some(e) = vm.gc_safe_point() {
        vm.pending = Some(e);
        return Control::Fail;
    }
    let v = vm.local(args(t, pc).a);
    vm.push(v);
    Control::Next
}

#[inline(always)]
fn h_reg_handle_reg_handle(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let ra = vm.region_of(x.at.expect("region handle needs a slot"));
    let wa = vm.rt.tag_int(ra.0 as i64);
    vm.push(wa);
    let rb = vm.region_of(x.at2.expect("region handle needs a slot"));
    let wb = vm.rt.tag_int(rb.0 as i64);
    vm.push(wb);
    Control::Next
}

#[inline(always)]
fn h_select_store_load(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.pop();
    let w = vm.rt.field(v, x.n as u64);
    vm.set_local(x.a, w);
    let u = vm.local(x.b);
    vm.push(u);
    Control::Next
}

#[inline(always)]
fn h_gc_check_load_switch_con(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    if let Some(e) = vm.gc_safe_point() {
        vm.pending = Some(e);
        return Control::Fail;
    }
    let x = args(t, pc);
    let v = vm.local(x.b);
    let (disc, (arms, default)) = &t.con_switches[x.a as usize];
    let ctor: u32 = if !is_ptr(v) {
        scalar_val(v) as u32
    } else {
        match *disc {
            Disc::Tag => Tag::decode(vm.rt.read_addr(ptr_addr(vm.rt.canon(v)))).info,
            Disc::Field0 => scalar_val(vm.rt.read_addr(ptr_addr(v))) as u32,
            Disc::Single(c) => c,
            Disc::Enum => unreachable!("boxed value in enum datatype"),
        }
    };
    let target = arms
        .iter()
        .find(|(c, _)| *c == ctor)
        .map(|(_, t)| *t)
        .unwrap_or(*default);
    Control::Goto(target)
}

#[inline(always)]
fn h_reg_handle_reg_handle_load(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let ra = vm.region_of(x.at.expect("region handle needs a slot"));
    let wa = vm.rt.tag_int(ra.0 as i64);
    vm.push(wa);
    let rb = vm.region_of(x.at2.expect("region handle needs a slot"));
    let wb = vm.rt.tag_int(rb.0 as i64);
    vm.push(wb);
    let v = vm.local(x.a);
    vm.push(v);
    Control::Next
}

#[inline(always)]
fn h_reg_handle_load_load(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let rr = vm.region_of(x.at.expect("region handle needs a slot"));
    let wr = vm.rt.tag_int(rr.0 as i64);
    vm.push(wr);
    let v = vm.local(x.a);
    vm.push(v);
    let w = vm.local(x.b);
    vm.push(w);
    Control::Next
}

// ------------------------------------------------ register-form handlers
//
// Operand modes for `RPrim`/`RPrimJump` live in `Args::n` as two nibbles
// (`amode | bmode << 4`): 0 = on the operand stack, 1 = local `a`/`b`,
// 2 = the constant `k` (at most one operand is a constant). `B` is the
// top-of-stack operand; the translator guarantees that a physical `B`
// implies a physical `A`, and that unary prims use the `B` slot only.
// Staged operands are pushed before the generic [`Vm::do_prim`] path so
// the stack at a raise point is exactly what the stack machine had.

/// Fetches the staged operands of a register prim. `None` means the
/// operand is already on the operand stack.
#[inline(always)]
fn rprim_operands(vm: &Vm<'_>, x: &threaded::Args) -> (Option<Word>, Option<Word>) {
    let aval = match x.n & 0xf {
        1 => Some(vm.local(x.a)),
        2 => Some(x.k),
        _ => None,
    };
    let bval = match x.n >> 4 {
        1 => Some(vm.local(x.b)),
        2 => Some(x.k),
        _ => None,
    };
    (aval, bval)
}

#[inline(always)]
fn h_rprim(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let (aval, bval) = rprim_operands(vm, x);
    if let (Some(a), Some(b)) = (aval, bval) {
        if let Some(w) = fast_int_arith(vm, x.p, a, b) {
            if x.flag {
                vm.set_local(x.m as u32, w);
            } else {
                vm.push(w);
            }
            return Control::Next;
        }
        if let Some(res) = fast_int_cmp(vm, x.p, a, b) {
            let w = vm.rt.tag_int(res as i64);
            if x.flag {
                vm.set_local(x.m as u32, w);
            } else {
                vm.push(w);
            }
            return Control::Next;
        }
    }
    if let Some(a) = aval {
        vm.push(a);
    }
    if let Some(b) = bval {
        vm.push(b);
    }
    match vm.do_prim(x.p, x.at) {
        Ok(()) => {
            if x.flag {
                let v = vm.pop();
                vm.set_local(x.m as u32, v);
            }
            Control::Next
        }
        // The translator never folds a store into a raising prim, so the
        // stack the handler unwinds matches the stack machine's.
        Err(exn) => vm.raise_or_fail(exn),
    }
}

#[inline(always)]
fn h_rprim_jump(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let (aval, bval) = rprim_operands(vm, x);
    if let (Some(a), Some(b)) = (aval, bval) {
        if let Some(res) = fast_int_cmp(vm, x.p, a, b) {
            return if res {
                Control::Next
            } else {
                Control::Goto(x.t)
            };
        }
    }
    if let Some(a) = aval {
        vm.push(a);
    }
    if let Some(b) = bval {
        vm.push(b);
    }
    // Only non-raising prims are jump-folded, so `Err` is unreachable;
    // keep the generic path anyway for uniformity.
    match vm.do_prim(x.p, x.at) {
        Ok(()) => {}
        Err(exn) => return vm.raise_or_fail(exn),
    }
    let v = vm.pop();
    if vm.rt.untag_int(v) == 0 {
        Control::Goto(x.t)
    } else {
        Control::Next
    }
}

#[inline(always)]
fn h_rjump_if_false(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    let v = vm.local(x.a);
    if vm.rt.untag_int(v) == 0 {
        Control::Goto(x.t)
    } else {
        Control::Next
    }
}

#[inline(always)]
fn h_rstore_const(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    vm.set_local(x.a, x.k);
    Control::Next
}

#[inline(always)]
fn h_rret(vm: &mut Vm<'_>, t: &ThreadedCode, pc: u32) -> Control {
    let x = args(t, pc);
    // Read the result before the frame (and its locals) is torn down.
    let result = if x.n == 1 { vm.local(x.a) } else { x.k };
    let f = vm.frames.pop().expect("return without frame");
    debug_assert_eq!(vm.region_pool.len(), f.rbase, "return with open regions");
    vm.cur_locals = vm.frames.last().map_or(0, |c| c.locals);
    vm.formal_pool.truncate(f.fbase);
    vm.rt.stack.truncate(f.base);
    vm.rt.note_stack_trunc(f.base);
    vm.push(result);
    Control::Goto(f.ret_pc as u32)
}

#[inline(always)]
fn h_rnop(_vm: &mut Vm<'_>, _t: &ThreadedCode, _pc: u32) -> Control {
    Control::Next
}
