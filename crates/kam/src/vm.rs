//! The abstract machine.
//!
//! Frames live in the simulated runtime stack of [`kit_runtime::Rt`]:
//! `[finite regions | locals | operand stack]`. Locals and operand slots
//! always hold well-formed values (scalars odd, pointers even in tagged
//! mode), so the garbage collector's root set is exactly the locals and
//! operand ranges of every frame — enumerated at the `GcCheck` safe point
//! executed on function entry (paper §4: collection happens at the next
//! function entry once the free-list drops below the threshold).

use crate::instr::{Disc, Instr, Program, RegSlot};
use kit_lambda::exp::Prim;
use kit_lambda::eval::{fmt_sml_int, fmt_sml_real, int_in_range};
use kit_lambda::ty::{EXN_DIV, EXN_OVERFLOW, EXN_SIZE, EXN_SUBSCRIPT};
use kit_runtime::gc;
use kit_runtime::value::{is_ptr, ptr, ptr_addr, scalar, scalar_val, Tag, Word, STACK_BASE};
use kit_runtime::{RegionId, Rt, RtStats};
use std::fmt;

/// Errors terminating execution abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// An exception reached the top level.
    UncaughtException(String),
    /// The instruction budget was exhausted.
    OutOfFuel,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UncaughtException(n) => write!(f, "uncaught exception {n}"),
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for VmError {}

/// Result of a successful run.
#[derive(Debug)]
pub struct VmOutcome {
    /// The program result (render with [`crate::render::render_value`]).
    pub result: Word,
    /// Everything printed.
    pub output: String,
    /// Instructions executed.
    pub instructions: u64,
    /// Runtime statistics (allocation, collections, peak memory).
    pub stats: RtStats,
    /// The runtime (for rendering the result and inspecting regions).
    pub rt: Rt,
}

#[derive(Debug)]
struct Frame {
    /// Function id (diagnostics; frame sizes are read at push time).
    #[allow(dead_code)]
    fun: u32,
    ret_pc: usize,
    base: usize,
    locals: usize,
    nlocals: usize,
    formal_regions: Vec<RegionId>,
    regions: Vec<RegionId>,
}

#[derive(Debug)]
struct Handler {
    target: usize, // code address
    frame_idx: usize,
    stack_len: usize,
    region_depth: usize,
    regions_len: usize,
}

/// The bytecode interpreter.
#[derive(Debug)]
pub struct Vm<'p> {
    prog: &'p Program,
    rt: Rt,
    frames: Vec<Frame>,
    handlers: Vec<Handler>,
    output: String,
    instructions: u64,
    fuel: Option<u64>,
    /// Write barrier log of the generational baseline: field addresses
    /// mutated since the last collection (may hold old→young pointers).
    remembered: Vec<u64>,
}

impl<'p> Vm<'p> {
    /// Creates a VM over a compiled program with a fresh runtime.
    pub fn new(prog: &'p Program, rt: Rt) -> Self {
        Vm {
            prog,
            rt,
            frames: Vec::new(),
            handlers: Vec::new(),
            output: String::new(),
            instructions: 0,
            fuel: None,
            remembered: Vec::new(),
        }
    }

    /// Limits the number of executed instructions (for tests).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    fn frame(&self) -> &Frame {
        self.frames.last().unwrap()
    }

    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().unwrap()
    }

    fn push(&mut self, v: Word) {
        self.rt.stack.push(v);
    }

    fn pop(&mut self) -> Word {
        self.rt.stack.pop().expect("operand stack underflow")
    }

    fn local(&self, i: u32) -> Word {
        let f = self.frame();
        self.rt.stack[f.locals + i as usize]
    }

    fn set_local(&mut self, i: u32, v: Word) {
        let idx = self.frame().locals + i as usize;
        self.rt.stack[idx] = v;
    }

    fn region_of(&self, slot: RegSlot) -> RegionId {
        let f = self.frame();
        match slot {
            RegSlot::Global(i) => RegionId(i),
            RegSlot::Local(i) => f.regions[i as usize],
            RegSlot::Formal(i) => f.formal_regions[i as usize],
            RegSlot::EnvReg(i) => {
                let env = self.rt.stack[f.locals];
                RegionId(self.rt.untag_int(self.rt.field(env, i as u64)) as u32)
            }
            RegSlot::Finite(_) => panic!("finite region used as a region handle"),
        }
    }

    /// Allocates a box at a place — infinite region or finite frame slot.
    fn alloc_at(&mut self, slot: RegSlot, tag: Tag, fields: &[Word]) -> Word {
        match slot {
            RegSlot::Finite(off) => {
                let f = self.frame();
                let base = f.base + off as usize;
                let mut at = base;
                if self.rt.config.tagged {
                    self.rt.stack[at] = tag.encode();
                    at += 1;
                }
                for w in fields {
                    self.rt.stack[at] = *w;
                    at += 1;
                }
                ptr(STACK_BASE + base as u64)
            }
            _ => {
                let r = self.region_of(slot);
                self.rt.alloc_boxed(r, tag, fields)
            }
        }
    }

    fn push_frame(
        &mut self,
        fun: u32,
        env: Word,
        rhandles: &[Word],
        args: &[Word],
        ret_pc: usize,
    ) {
        let info = &self.prog.funs[fun as usize];
        let base = self.rt.stack.len();
        let fill = if self.rt.config.tagged { scalar(0) } else { 0 };
        let total = info.nfinite as usize + info.nlocals as usize;
        self.rt
            .stack
            .extend(std::iter::repeat_n(fill, total));
        let locals = base + info.nfinite as usize;
        self.rt.stack[locals] = env;
        for (i, a) in args.iter().enumerate() {
            self.rt.stack[locals + 1 + i] = *a;
        }
        self.frames.push(Frame {
            fun,
            ret_pc,
            base,
            locals,
            nlocals: info.nlocals as usize,
            formal_regions: rhandles
                .iter()
                .map(|&w| RegionId(self.rt.untag_int(w) as u32))
                .collect(),
            regions: Vec::new(),
        });
        self.rt.observe_mem();
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// [`VmError::UncaughtException`] if an exception escapes;
    /// [`VmError::OutOfFuel`] if the optional budget is exhausted.
    pub fn run(mut self) -> Result<VmOutcome, VmError> {
        // Create the global regions (ids 0..n) and the main frame.
        for name in &self.prog.global_infinite {
            let _ = self.rt.letregion(*name);
        }
        if self.rt.config.generational.is_some() {
            assert_eq!(
                self.rt.region_depth(),
                1,
                "the generational baseline needs exactly one program region"
            );
            let _ = self.rt.letregion(u32::MAX); // the tenured generation
        }
        let env0 = if self.rt.config.tagged { scalar(0) } else { 0 };
        self.push_frame(self.prog.main, env0, &[], &[], usize::MAX);
        let mut pc = self.prog.label_addrs[self.prog.funs[self.prog.main as usize].entry];

        macro_rules! raise_builtin {
            ($self:ident, $pc:ident, $exn:expr) => {{
                let v = scalar($exn.0 as i64);
                match $self.do_raise(v) {
                    Some(new_pc) => {
                        $pc = new_pc;
                        continue;
                    }
                    None => {
                        return Err(VmError::UncaughtException(
                            $self.prog.exn_names[$exn.0 as usize].clone(),
                        ));
                    }
                }
            }};
        }

        loop {
            self.instructions += 1;
            if let Some(f) = self.fuel {
                if self.instructions > f {
                    return Err(VmError::OutOfFuel);
                }
            }
            let ins = &self.prog.code[pc];
            pc += 1;
            match ins {
                Instr::PushConst(w) => self.push(*w),
                Instr::PushStr(s) => {
                    let w = self.rt.intern_const_str(s);
                    self.push(w);
                }
                Instr::PushReal(x, at) => {
                    let bits = x.to_bits();
                    let v = self.alloc_at(*at, Tag::real(), &[bits]);
                    self.push(v);
                }
                Instr::Load(i) => {
                    let v = self.local(*i);
                    self.push(v);
                }
                Instr::Store(i) => {
                    let v = self.pop();
                    self.set_local(*i, v);
                }
                Instr::Pop => {
                    self.pop();
                }
                Instr::MkRecord { n, at } => {
                    let at = *at;
                    let n = *n as usize;
                    let start = self.rt.stack.len() - n;
                    let fields: Vec<Word> = self.rt.stack.drain(start..).collect();
                    let v = self.alloc_at(at, Tag::record(n as u32), &fields);
                    self.push(v);
                }
                Instr::Select(i) => {
                    let v = self.pop();
                    let w = self.rt.field(v, *i as u64);
                    self.push(w);
                }
                Instr::Spread { n } => {
                    let v = self.pop();
                    for i in 0..*n {
                        let w = self.rt.field(v, i as u64);
                        self.push(w);
                    }
                }
                Instr::MkCon { ctor, n, disc, at } => {
                    let at = *at;
                    let n = *n as usize;
                    let start = self.rt.stack.len() - n;
                    let mut fields: Vec<Word> = self.rt.stack.drain(start..).collect();
                    if *disc {
                        fields.insert(0, scalar(*ctor as i64));
                    }
                    let tag = Tag::con(*ctor as u32, fields.len() as u32);
                    let v = self.alloc_at(at, tag, &fields);
                    self.push(v);
                }
                Instr::DeConAdj => {
                    let v = self.pop();
                    self.push(ptr(ptr_addr(v) + 1));
                }
                Instr::SwitchCon { disc, arms, default } => {
                    let v = self.pop();
                    let ctor: u32 = if !is_ptr(v) {
                        scalar_val(v) as u32
                    } else {
                        match disc {
                            Disc::Tag => {
                                Tag::decode(self.rt.read_addr(ptr_addr(v))).info
                            }
                            Disc::Field0 => {
                                scalar_val(self.rt.read_addr(ptr_addr(v))) as u32
                            }
                            Disc::Single(c) => *c,
                            Disc::Enum => unreachable!("boxed value in enum datatype"),
                        }
                    };
                    let target = arms
                        .iter()
                        .find(|(c, _)| *c == ctor)
                        .map(|(_, l)| *l)
                        .unwrap_or(*default);
                    pc = self.prog.label_addrs[target];
                }
                Instr::SwitchInt { arms, default } => {
                    let v = self.pop();
                    let n = self.rt.untag_int(v);
                    let target = arms
                        .iter()
                        .find(|(k, _)| *k == n)
                        .map(|(_, l)| *l)
                        .unwrap_or(*default);
                    pc = self.prog.label_addrs[target];
                }
                Instr::SwitchStr { arms, default } => {
                    let v = self.pop();
                    let s = self.rt.str_val(v);
                    let target = arms
                        .iter()
                        .find(|(k, _)| k == s)
                        .map(|(_, l)| *l)
                        .unwrap_or(*default);
                    pc = self.prog.label_addrs[target];
                }
                Instr::SwitchExn { arms, default } => {
                    let v = self.pop();
                    let id = self.exn_id(v);
                    let target = arms
                        .iter()
                        .find(|(k, _)| *k == id)
                        .map(|(_, l)| *l)
                        .unwrap_or(*default);
                    pc = self.prog.label_addrs[target];
                }
                Instr::Jump(l) => pc = self.prog.label_addrs[*l],
                Instr::JumpIfFalse(l) => {
                    let v = self.pop();
                    if self.rt.untag_int(v) == 0 {
                        pc = self.prog.label_addrs[*l];
                    }
                }
                Instr::Unreachable => unreachable!("exhaustive switch fell through"),
                Instr::Prim { p, at } => match self.do_prim(*p, *at) {
                    Ok(()) => {}
                    Err(exn) => raise_builtin!(self, pc, exn),
                },
                Instr::RegHandle(slot) => {
                    let r = self.region_of(*slot);
                    let w = self.rt.tag_int(r.0 as i64);
                    self.push(w);
                }
                Instr::Call { label, nargs, nformals, tail } => {
                    let n = *nargs as usize;
                    let nf = *nformals as usize;
                    let sp = self.rt.stack.len();
                    let args: Vec<Word> = self.rt.stack.drain(sp - n..).collect();
                    let sp = self.rt.stack.len();
                    let rhandles: Vec<Word> = self.rt.stack.drain(sp - nf..).collect();
                    let env = self.pop();
                    let fun = self.prog.entry_of[label];
                    let ret = if *tail {
                        let f = self.frames.pop().unwrap();
                        debug_assert!(f.regions.is_empty(), "tail call with open regions");
                        self.rt.stack.truncate(f.base);
                        f.ret_pc
                    } else {
                        pc
                    };
                    self.push_frame(fun, env, &rhandles, &args, ret);
                    pc = self.prog.label_addrs[*label];
                }
                Instr::CallClos { nargs, tail } => {
                    let n = *nargs as usize;
                    let sp = self.rt.stack.len();
                    let args: Vec<Word> = self.rt.stack.drain(sp - n..).collect();
                    let clos = self.pop();
                    let label = scalar_val(self.rt.field(clos, 0)) as usize;
                    let fun = self.prog.entry_of[&label];
                    let ret = if *tail {
                        let f = self.frames.pop().unwrap();
                        debug_assert!(f.regions.is_empty(), "tail call with open regions");
                        self.rt.stack.truncate(f.base);
                        f.ret_pc
                    } else {
                        pc
                    };
                    self.push_frame(fun, clos, &[], &args, ret);
                    pc = self.prog.label_addrs[label];
                }
                Instr::EnterViaPair { nformals } => {
                    let pair = self.local(0);
                    let shared = self.rt.field(pair, 1);
                    self.set_local(0, shared);
                    let mut formals = Vec::with_capacity(*nformals as usize);
                    for i in 0..*nformals {
                        let w = self.rt.field(pair, 2 + i as u64);
                        formals.push(RegionId(self.rt.untag_int(w) as u32));
                    }
                    self.frame_mut().formal_regions = formals;
                }
                Instr::Ret => {
                    let result = self.pop();
                    let f = self.frames.pop().expect("return without frame");
                    debug_assert!(f.regions.is_empty(), "return with open regions");
                    self.rt.stack.truncate(f.base);
                    self.push(result);
                    pc = f.ret_pc;
                }
                Instr::GcCheck => {
                    if let Some(pol) = self.rt.config.generational {
                        let nursery = &self.rt.regions[0];
                        if nursery.pages >= pol.nursery_pages {
                            self.collect_generational(pol);
                        }
                    } else if self.rt.gc_needed && self.rt.config.gc_enabled {
                        self.collect();
                    }
                }
                Instr::LetRegion { names } => {
                    for name in names {
                        let id = self.rt.letregion(*name);
                        self.frame_mut().regions.push(id);
                    }
                }
                Instr::EndRegions(n) => {
                    for _ in 0..*n {
                        self.rt.endregion();
                        self.frame_mut().regions.pop();
                    }
                }
                Instr::PushHandler { handler } => {
                    self.handlers.push(Handler {
                        target: self.prog.label_addrs[*handler],
                        frame_idx: self.frames.len() - 1,
                        stack_len: self.rt.stack.len(),
                        region_depth: self.rt.region_depth(),
                        regions_len: self.frame().regions.len(),
                    });
                }
                Instr::PopHandler => {
                    self.handlers.pop().expect("handler stack underflow");
                }
                Instr::MkExn { exn, has_arg, at } => {
                    if !*has_arg {
                        self.push(scalar(*exn as i64));
                    } else {
                        let arg = self.pop();
                        let tag = Tag::exn(*exn, 1);
                        let fields: Vec<Word> = if self.rt.config.tagged {
                            vec![arg]
                        } else {
                            vec![scalar(*exn as i64), arg]
                        };
                        let v =
                            self.alloc_at(at.expect("carrying exception needs a place"), tag, &fields);
                        self.push(v);
                    }
                }
                Instr::DeExn => {
                    let v = self.pop();
                    let off = if self.rt.config.tagged { 0 } else { 1 };
                    let w = self.rt.field(v, off);
                    self.push(w);
                }
                Instr::Raise => {
                    let v = self.pop();
                    match self.do_raise(v) {
                        Some(new_pc) => pc = new_pc,
                        None => {
                            let id = self.exn_id(v);
                            return Err(VmError::UncaughtException(
                                self.prog.exn_names[id as usize].clone(),
                            ));
                        }
                    }
                }
                Instr::Halt => {
                    let result = self.pop();
                    let mut stats = self.rt.stats.clone();
                    stats.observe_bytes(self.rt.mem_bytes());
                    return Ok(VmOutcome {
                        result,
                        output: self.output,
                        instructions: self.instructions,
                        stats,
                        rt: self.rt,
                    });
                }
            }
        }
    }

    fn exn_id(&self, v: Word) -> u32 {
        if !is_ptr(v) {
            scalar_val(v) as u32
        } else if self.rt.config.tagged {
            Tag::decode(self.rt.read_addr(ptr_addr(v))).info
        } else {
            scalar_val(self.rt.read_addr(ptr_addr(v))) as u32
        }
    }

    /// Unwinds to the innermost handler; returns its code address, or
    /// `None` if the exception is uncaught. The in-flight exception value
    /// is treated as a GC root if a collection happens later (it is pushed
    /// on the handler's operand stack immediately).
    fn do_raise(&mut self, exn_val: Word) -> Option<usize> {
        let h = self.handlers.pop()?;
        self.rt.pop_regions_to(h.region_depth);
        self.frames.truncate(h.frame_idx + 1);
        self.frame_mut().regions.truncate(h.regions_len);
        self.rt.stack.truncate(h.stack_len);
        self.push(exn_val);
        Some(h.target)
    }

    fn roots(&self) -> Vec<usize> {
        let mut roots = Vec::new();
        for (i, f) in self.frames.iter().enumerate() {
            let op_end = self
                .frames
                .get(i + 1)
                .map(|g| g.base)
                .unwrap_or(self.rt.stack.len());
            roots.extend(f.locals..f.locals + f.nlocals);
            roots.extend(f.locals + f.nlocals..op_end);
        }
        roots
    }

    /// One baseline collection: minor promotion, plus a major semispace
    /// pass when the tenured generation outgrew its budget.
    fn collect_generational(&mut self, pol: kit_runtime::config::GenPolicy) {
        let roots = self.roots();
        let tenured_pages = self.rt.regions[1].pages;
        let major = tenured_pages
            >= pol.nursery_pages.max(self.rt.stats.last_live_pages * pol.major_growth);
        let mut remembered = std::mem::take(&mut self.remembered);
        gc::collect_gen(
            &mut self.rt,
            &roots,
            &mut remembered,
            RegionId(0),
            RegionId(1),
            major,
        );
    }

    /// Runs the Cheney-for-regions collector with all frames' locals and
    /// operand ranges as roots.
    fn collect(&mut self) {
        let roots = self.roots();
        gc::collect(&mut self.rt, &roots, &mut []);
    }

    // ------------------------------------------------------------- prims

    fn do_prim(&mut self, p: Prim, at: Option<RegSlot>) -> Result<(), kit_lambda::ty::ExnId> {
        use Prim::*;
        macro_rules! binop {
            () => {{
                let b = self.pop();
                let a = self.pop();
                (a, b)
            }};
        }
        macro_rules! int2 {
            () => {{
                let (a, b) = binop!();
                (self.rt.untag_int(a), self.rt.untag_int(b))
            }};
        }
        macro_rules! real2 {
            () => {{
                let (a, b) = binop!();
                (self.rt.real_val(a), self.rt.real_val(b))
            }};
        }
        macro_rules! push_int {
            ($v:expr) => {{
                let w = self.rt.tag_int($v);
                self.push(w);
            }};
        }
        macro_rules! push_bool {
            ($v:expr) => {
                push_int!($v as i64)
            };
        }
        macro_rules! push_real {
            ($v:expr) => {{
                let bits = ($v).to_bits();
                let w = self.alloc_at(at.expect("real result needs a place"), Tag::real(), &[bits]);
                self.push(w);
            }};
        }
        macro_rules! push_str {
            ($s:expr) => {{
                let slot = at.expect("string result needs a place");
                let r = self.region_of(slot);
                let w = self.rt.alloc_string(r, $s);
                self.push(w);
            }};
        }
        match p {
            IAdd | ISub | IMul => {
                let (a, b) = int2!();
                let v = match p {
                    IAdd => a.checked_add(b),
                    ISub => a.checked_sub(b),
                    _ => a.checked_mul(b),
                }
                .filter(|v| int_in_range(*v));
                match v {
                    Some(v) => push_int!(v),
                    None => return Err(EXN_OVERFLOW),
                }
            }
            IDiv | IMod => {
                let (a, b) = int2!();
                if b == 0 {
                    return Err(EXN_DIV);
                }
                let q = a.wrapping_div(b);
                let r = a.wrapping_rem(b);
                let adj = r != 0 && (r < 0) != (b < 0);
                push_int!(if p == IDiv {
                    if adj { q - 1 } else { q }
                } else if adj {
                    r + b
                } else {
                    r
                });
            }
            INeg => {
                let w = self.pop();
                let v = -self.rt.untag_int(w);
                if !int_in_range(v) {
                    return Err(EXN_OVERFLOW);
                }
                push_int!(v);
            }
            IAbs => {
                let w = self.pop();
                let v = self.rt.untag_int(w).abs();
                if !int_in_range(v) {
                    return Err(EXN_OVERFLOW);
                }
                push_int!(v);
            }
            ILt | ILe | IGt | IGe | IEq => {
                let (a, b) = int2!();
                push_bool!(match p {
                    ILt => a < b,
                    ILe => a <= b,
                    IGt => a > b,
                    IGe => a >= b,
                    _ => a == b,
                });
            }
            RAdd | RSub | RMul | RDiv => {
                let (a, b) = real2!();
                push_real!(match p {
                    RAdd => a + b,
                    RSub => a - b,
                    RMul => a * b,
                    _ => a / b,
                });
            }
            RNeg => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_real!(-v);
            }
            RAbs => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_real!(v.abs());
            }
            RLt | RLe | RGt | RGe | REq => {
                let (a, b) = real2!();
                push_bool!(match p {
                    RLt => a < b,
                    RLe => a <= b,
                    RGt => a > b,
                    RGe => a >= b,
                    _ => a == b,
                });
            }
            IntToReal => {
                let w = self.pop();
                let v = self.rt.untag_int(w) as f64;
                push_real!(v);
            }
            Floor => {
                let w = self.pop();
                let v = self.rt.real_val(w).floor() as i64;
                push_int!(v);
            }
            Trunc => {
                let w = self.pop();
                let v = self.rt.real_val(w).trunc() as i64;
                push_int!(v);
            }
            Sqrt | Sin | Cos | Atan | Ln | Exp => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_real!(match p {
                    Sqrt => v.sqrt(),
                    Sin => v.sin(),
                    Cos => v.cos(),
                    Atan => v.atan(),
                    Ln => v.ln(),
                    _ => v.exp(),
                });
            }
            StrEq | StrLt => {
                let (a, b) = binop!();
                let sa = self.rt.str_val(a);
                let sb = self.rt.str_val(b);
                let r = if p == StrEq { sa == sb } else { sa < sb };
                push_bool!(r);
            }
            StrConcat => {
                let (a, b) = binop!();
                let s = format!("{}{}", self.rt.str_val(a), self.rt.str_val(b));
                push_str!(s);
            }
            StrSize => {
                let v = self.pop();
                let n = self.rt.str_val(v).len() as i64;
                push_int!(n);
            }
            StrSub => {
                let (a, b) = binop!();
                let i = self.rt.untag_int(b);
                let bytes = self.rt.str_val(a).as_bytes();
                if i < 0 || i as usize >= bytes.len() {
                    return Err(EXN_SUBSCRIPT);
                }
                push_int!(bytes[i as usize] as i64);
            }
            ItoS => {
                let w0 = self.pop();
                let v = self.rt.untag_int(w0);
                push_str!(fmt_sml_int(v));
            }
            RtoS => {
                let w = self.pop();
                let v = self.rt.real_val(w);
                push_str!(fmt_sml_real(v));
            }
            Chr => {
                let w0 = self.pop();
                let v = self.rt.untag_int(w0);
                if !(0..=255).contains(&v) {
                    return Err(EXN_SUBSCRIPT);
                }
                push_str!(((v as u8) as char).to_string());
            }
            Print => {
                let v = self.pop();
                let s = self.rt.str_val(v).to_string();
                self.output.push_str(&s);
                push_int!(0); // unit
            }
            RefNew => {
                let v = self.pop();
                let w = self.alloc_at(
                    at.expect("ref needs a place"),
                    Tag::reference(),
                    &[v],
                );
                self.push(w);
            }
            RefGet => {
                let r = self.pop();
                let v = self.rt.field(r, 0);
                self.push(v);
            }
            RefSet => {
                let (r, v) = binop!();
                self.rt.set_field(r, 0, v);
                if self.rt.config.generational.is_some() {
                    let addr = ptr_addr(r) + self.rt.hdr_words();
                    self.remembered.push(addr);
                }
                push_int!(0);
            }
            RefEq | ArrEq => {
                let (a, b) = binop!();
                push_bool!(a == b);
            }
            ArrNew => {
                let (n, init) = binop!();
                let n = self.rt.untag_int(n);
                if n < 0 {
                    return Err(EXN_SIZE);
                }
                let slot = at.expect("array needs a place");
                let r = self.region_of(slot);
                let w = self.rt.alloc_array(r, n as usize, init);
                self.push(w);
            }
            ArrSub => {
                let (a, i) = binop!();
                let i = self.rt.untag_int(i);
                if i < 0 || i as usize >= self.rt.arr_len(a) {
                    return Err(EXN_SUBSCRIPT);
                }
                let v = self.rt.read_addr(self.rt.arr_elem_addr(a, i as usize));
                self.push(v);
            }
            ArrUpd => {
                let v = self.pop();
                let wi = self.pop();
                let i = self.rt.untag_int(wi);
                let a = self.pop();
                if i < 0 || i as usize >= self.rt.arr_len(a) {
                    return Err(EXN_SUBSCRIPT);
                }
                let addr = self.rt.arr_elem_addr(a, i as usize);
                self.rt.write_addr(addr, v);
                if self.rt.config.generational.is_some() {
                    self.remembered.push(addr);
                }
                push_int!(0);
            }
            ArrLen => {
                let a = self.pop();
                let n = self.rt.arr_len(a) as i64;
                push_int!(n);
            }
        }
        Ok(())
    }
}
