//! Post-compile link pass: rewrites the [`Instr`] stream into the
//! pre-resolved form the interpreter actually dispatches on.
//!
//! Linking does two things:
//!
//! 1. **Pre-resolution** — every control-flow operand becomes an absolute
//!    code address (`u32` pc). `Jump`/`JumpIfFalse`/switch arms/handlers
//!    lose the `label_addrs` indirection; `Call` additionally resolves its
//!    callee's function id at link time. Unknown calls (`CallClos`) read a
//!    label scalar out of the closure at runtime and go through the dense
//!    [`LinkedProgram::pc_of_label`]/[`LinkedProgram::fun_of_label`] tables
//!    instead of a hash map.
//! 2. **Fusion** — frequent pairs/triples/quads are collapsed into
//!    superinstructions (compare-and-branch `Load+Load+Prim+JumpIfFalse`
//!    and `Load+PushConst+Prim+JumpIfFalse`; `Load+Load+Prim`,
//!    `Load+PushConst+Prim`, `Load+Select+Store`; `PushConst+Prim`,
//!    `Load+Select`, `Store+Pop`, `PushConst+JumpIfFalse`), cutting
//!    dispatches on the hot path. A fused group never spans a *leader*
//!    (any pc bound in
//!    `label_addrs`), so every branch target remains the start of a linked
//!    instruction. `Call`/`CallClos` are never fused, so a return address
//!    (the pc after a non-tail call) is always a group start too.
//!
//! Fusion is semantics-preserving **including the instruction counter**:
//! each superinstruction reports the number of source instructions it
//! replaces via [`LInstr::cost`], so `VmOutcome::instructions` is identical
//! with fusion on or off.

use crate::instr::{Disc, Instr, Label, Program, RegSlot};
use kit_lambda::exp::Prim;

/// A linked instruction: operands pre-resolved to absolute pcs, hot
/// sequences fused. See [`Instr`] for per-variant semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum LInstr {
    PushConst(u64),
    PushStr(String),
    Spread {
        n: u16,
    },
    Unreachable,
    PushReal(f64, RegSlot),
    Load(u32),
    Store(u32),
    Pop,
    MkRecord {
        n: u16,
        at: RegSlot,
    },
    Select(u16),
    MkCon {
        ctor: u16,
        n: u16,
        disc: bool,
        at: RegSlot,
    },
    DeConAdj,
    SwitchCon {
        disc: Disc,
        arms: Box<[(u32, u32)]>,
        default: u32,
    },
    SwitchInt {
        arms: Box<[(i64, u32)]>,
        default: u32,
    },
    SwitchStr {
        arms: Box<[(String, u32)]>,
        default: u32,
    },
    SwitchExn {
        arms: Box<[(u32, u32)]>,
        default: u32,
    },
    Jump(u32),
    JumpIfFalse(u32),
    Prim {
        p: Prim,
        at: Option<RegSlot>,
    },
    RegHandle(RegSlot),
    /// Known call with the callee's function id and entry pc resolved at
    /// link time.
    Call {
        fun: u32,
        target: u32,
        nargs: u16,
        nformals: u16,
        tail: bool,
    },
    CallClos {
        nargs: u16,
        tail: bool,
    },
    EnterViaPair {
        nformals: u16,
    },
    Ret,
    GcCheck,
    LetRegion {
        names: Box<[u32]>,
    },
    EndRegions(u16),
    PushHandler {
        target: u32,
    },
    PopHandler,
    MkExn {
        exn: u32,
        has_arg: bool,
        at: Option<RegSlot>,
    },
    DeExn,
    Raise,
    Halt,
    // ------------------------------------------------- superinstructions
    /// `Load a; Load b; Prim p` (cost 3).
    LoadLoadPrim {
        a: u32,
        b: u32,
        p: Prim,
        at: Option<RegSlot>,
    },
    /// `PushConst k; Prim p` (cost 2).
    PushConstPrim {
        k: u64,
        p: Prim,
        at: Option<RegSlot>,
    },
    /// `Load i; Select sel` (cost 2) — reads the field without the
    /// intermediate operand push.
    LoadSelect {
        i: u32,
        sel: u16,
    },
    /// `Store i; Pop` (cost 2).
    StorePop {
        i: u32,
    },
    /// `PushConst k; JumpIfFalse target` (cost 2) — constant condition,
    /// no operand traffic.
    PushConstJumpIfFalse {
        k: u64,
        target: u32,
    },
    /// `Load i; PushConst k; Prim p` (cost 3) — the `n - 1` shape of
    /// recursive argument arithmetic.
    LoadConstPrim {
        i: u32,
        k: u64,
        p: Prim,
        at: Option<RegSlot>,
    },
    /// `Load i; Select sel; Store j` (cost 3) — pattern-match
    /// destructuring of a box field straight into a local.
    LoadSelectStore {
        i: u32,
        sel: u16,
        j: u32,
    },
    /// `Load a; Load b; Prim p; JumpIfFalse target` (cost 4) — the
    /// two-operand compare-and-branch heading most loops.
    LoadLoadPrimJump {
        a: u32,
        b: u32,
        p: Prim,
        at: Option<RegSlot>,
        target: u32,
    },
    /// `Load i; PushConst k; Prim p; JumpIfFalse target` (cost 4) —
    /// compare-against-constant-and-branch (`if n < 2 ...`).
    LoadConstPrimJump {
        i: u32,
        k: u64,
        p: Prim,
        at: Option<RegSlot>,
        target: u32,
    },
}

impl LInstr {
    /// Number of source instructions this linked instruction stands for.
    /// Summing `cost()` over executed instructions reproduces the unfused
    /// instruction count exactly.
    #[inline]
    pub fn cost(&self) -> u64 {
        match self {
            LInstr::LoadLoadPrimJump { .. } | LInstr::LoadConstPrimJump { .. } => 4,
            LInstr::LoadLoadPrim { .. }
            | LInstr::LoadConstPrim { .. }
            | LInstr::LoadSelectStore { .. } => 3,
            LInstr::PushConstPrim { .. }
            | LInstr::LoadSelect { .. }
            | LInstr::StorePop { .. }
            | LInstr::PushConstJumpIfFalse { .. } => 2,
            _ => 1,
        }
    }
}

/// A program in linked form, ready for dispatch.
#[derive(Debug, Clone)]
pub struct LinkedProgram {
    /// Linked instruction stream (absolute `u32` pc operands).
    pub code: Vec<LInstr>,
    /// Function id → entry pc.
    pub entry_pc: Vec<u32>,
    /// Label id → linked pc (`u32::MAX` if unbound). Used by `CallClos`,
    /// whose target label is only known at runtime (closure field 0).
    pub pc_of_label: Vec<u32>,
    /// Label id → function id (`u32::MAX` if the label is not a function
    /// entry). The dense replacement for `Program::entry_of`.
    pub fun_of_label: Vec<u32>,
    /// Number of superinstructions emitted (0 with fusion off).
    pub fused: u64,
}

/// Length of the fused group starting at `i` (1 = no fusion). Interior
/// instructions must not be leaders, or a branch could land mid-group.
fn fusible_len(code: &[Instr], leader: &[bool], i: usize) -> usize {
    if i + 3 < code.len() && !leader[i + 1] && !leader[i + 2] && !leader[i + 3] {
        match (&code[i], &code[i + 1], &code[i + 2], &code[i + 3]) {
            (Instr::Load(_), Instr::Load(_), Instr::Prim { .. }, Instr::JumpIfFalse(_))
            | (Instr::Load(_), Instr::PushConst(_), Instr::Prim { .. }, Instr::JumpIfFalse(_)) => {
                return 4
            }
            _ => {}
        }
    }
    if i + 2 < code.len() && !leader[i + 1] && !leader[i + 2] {
        match (&code[i], &code[i + 1], &code[i + 2]) {
            (Instr::Load(_), Instr::Load(_), Instr::Prim { .. })
            | (Instr::Load(_), Instr::PushConst(_), Instr::Prim { .. })
            | (Instr::Load(_), Instr::Select(_), Instr::Store(_)) => return 3,
            _ => {}
        }
    }
    if i + 1 < code.len() && !leader[i + 1] {
        match (&code[i], &code[i + 1]) {
            (Instr::PushConst(_), Instr::Prim { .. })
            | (Instr::Load(_), Instr::Select(_))
            | (Instr::Store(_), Instr::Pop)
            | (Instr::PushConst(_), Instr::JumpIfFalse(_)) => return 2,
            _ => {}
        }
    }
    1
}

/// Links `prog`, optionally fusing superinstructions.
pub fn link(prog: &Program, fuse: bool) -> LinkedProgram {
    let code = &prog.code;
    let n = code.len();

    // Leaders: every bound label address. Return addresses need no entry —
    // calls are never fused, so the pc after a call starts a group.
    let mut leader = vec![false; n];
    for &a in &prog.label_addrs {
        if a < n {
            leader[a] = true;
        }
    }

    // Pass 1: choose groups (greedy, longest first) and map old → new pcs.
    let mut new_pc_of_old = vec![u32::MAX; n];
    let mut group_len = vec![0u8; n];
    let mut i = 0;
    let mut npc = 0u32;
    while i < n {
        let len = if fuse {
            fusible_len(code, &leader, i)
        } else {
            1
        };
        new_pc_of_old[i] = npc;
        group_len[i] = len as u8;
        npc += 1;
        i += len;
    }

    let resolve = |l: Label| -> u32 {
        let addr = prog.label_addrs[l];
        debug_assert!(addr < n, "branch to unbound label {l}");
        debug_assert_ne!(new_pc_of_old[addr], u32::MAX, "branch into a fused group");
        new_pc_of_old[addr]
    };

    // Pass 2: emit with remapped targets.
    let mut out = Vec::with_capacity(npc as usize);
    let mut fused = 0u64;
    let mut i = 0;
    while i < n {
        let len = group_len[i] as usize;
        match len {
            4 => {
                let li = match (&code[i], &code[i + 1], &code[i + 2], &code[i + 3]) {
                    (
                        Instr::Load(a),
                        Instr::Load(b),
                        Instr::Prim { p, at },
                        Instr::JumpIfFalse(l),
                    ) => LInstr::LoadLoadPrimJump {
                        a: *a,
                        b: *b,
                        p: *p,
                        at: *at,
                        target: resolve(*l),
                    },
                    (
                        Instr::Load(j),
                        Instr::PushConst(k),
                        Instr::Prim { p, at },
                        Instr::JumpIfFalse(l),
                    ) => LInstr::LoadConstPrimJump {
                        i: *j,
                        k: *k,
                        p: *p,
                        at: *at,
                        target: resolve(*l),
                    },
                    _ => unreachable!("pass 1 chose an invalid quad"),
                };
                out.push(li);
                fused += 1;
            }
            3 => {
                let li = match (&code[i], &code[i + 1], &code[i + 2]) {
                    (Instr::Load(a), Instr::Load(b), Instr::Prim { p, at }) => {
                        LInstr::LoadLoadPrim {
                            a: *a,
                            b: *b,
                            p: *p,
                            at: *at,
                        }
                    }
                    (Instr::Load(j), Instr::PushConst(k), Instr::Prim { p, at }) => {
                        LInstr::LoadConstPrim {
                            i: *j,
                            k: *k,
                            p: *p,
                            at: *at,
                        }
                    }
                    (Instr::Load(j), Instr::Select(sel), Instr::Store(d)) => {
                        LInstr::LoadSelectStore {
                            i: *j,
                            sel: *sel,
                            j: *d,
                        }
                    }
                    _ => unreachable!("pass 1 chose an invalid triple"),
                };
                out.push(li);
                fused += 1;
            }
            2 => {
                let li = match (&code[i], &code[i + 1]) {
                    (Instr::PushConst(k), Instr::Prim { p, at }) => LInstr::PushConstPrim {
                        k: *k,
                        p: *p,
                        at: *at,
                    },
                    (Instr::Load(j), Instr::Select(sel)) => LInstr::LoadSelect { i: *j, sel: *sel },
                    (Instr::Store(j), Instr::Pop) => LInstr::StorePop { i: *j },
                    (Instr::PushConst(k), Instr::JumpIfFalse(l)) => LInstr::PushConstJumpIfFalse {
                        k: *k,
                        target: resolve(*l),
                    },
                    _ => unreachable!("pass 1 chose an invalid pair"),
                };
                out.push(li);
                fused += 1;
            }
            _ => out.push(link_one(prog, &code[i], &resolve)),
        }
        i += len;
    }

    let entry_pc = prog.funs.iter().map(|f| resolve(f.entry)).collect();
    let pc_of_label = prog
        .label_addrs
        .iter()
        .map(|&a| if a < n { new_pc_of_old[a] } else { u32::MAX })
        .collect();
    let mut fun_of_label = vec![u32::MAX; prog.label_addrs.len()];
    for (&l, &f) in &prog.entry_of {
        fun_of_label[l] = f;
    }

    LinkedProgram {
        code: out,
        entry_pc,
        pc_of_label,
        fun_of_label,
        fused,
    }
}

fn link_one(prog: &Program, ins: &Instr, resolve: &dyn Fn(Label) -> u32) -> LInstr {
    match ins {
        Instr::PushConst(w) => LInstr::PushConst(*w),
        Instr::PushStr(s) => LInstr::PushStr(s.clone()),
        Instr::Spread { n } => LInstr::Spread { n: *n },
        Instr::Unreachable => LInstr::Unreachable,
        Instr::PushReal(x, at) => LInstr::PushReal(*x, *at),
        Instr::Load(i) => LInstr::Load(*i),
        Instr::Store(i) => LInstr::Store(*i),
        Instr::Pop => LInstr::Pop,
        Instr::MkRecord { n, at } => LInstr::MkRecord { n: *n, at: *at },
        Instr::Select(i) => LInstr::Select(*i),
        Instr::MkCon { ctor, n, disc, at } => LInstr::MkCon {
            ctor: *ctor,
            n: *n,
            disc: *disc,
            at: *at,
        },
        Instr::DeConAdj => LInstr::DeConAdj,
        Instr::SwitchCon {
            disc,
            arms,
            default,
        } => LInstr::SwitchCon {
            disc: *disc,
            arms: arms.iter().map(|(c, l)| (*c, resolve(*l))).collect(),
            default: resolve(*default),
        },
        Instr::SwitchInt { arms, default } => LInstr::SwitchInt {
            arms: arms.iter().map(|(k, l)| (*k, resolve(*l))).collect(),
            default: resolve(*default),
        },
        Instr::SwitchStr { arms, default } => LInstr::SwitchStr {
            arms: arms.iter().map(|(s, l)| (s.clone(), resolve(*l))).collect(),
            default: resolve(*default),
        },
        Instr::SwitchExn { arms, default } => LInstr::SwitchExn {
            arms: arms.iter().map(|(e, l)| (*e, resolve(*l))).collect(),
            default: resolve(*default),
        },
        Instr::Jump(l) => LInstr::Jump(resolve(*l)),
        Instr::JumpIfFalse(l) => LInstr::JumpIfFalse(resolve(*l)),
        Instr::Prim { p, at } => LInstr::Prim { p: *p, at: *at },
        Instr::RegHandle(slot) => LInstr::RegHandle(*slot),
        Instr::Call {
            label,
            nargs,
            nformals,
            tail,
        } => LInstr::Call {
            fun: prog.entry_of[label],
            target: resolve(*label),
            nargs: *nargs,
            nformals: *nformals,
            tail: *tail,
        },
        Instr::CallClos { nargs, tail } => LInstr::CallClos {
            nargs: *nargs,
            tail: *tail,
        },
        Instr::EnterViaPair { nformals } => LInstr::EnterViaPair {
            nformals: *nformals,
        },
        Instr::Ret => LInstr::Ret,
        Instr::GcCheck => LInstr::GcCheck,
        Instr::LetRegion { names } => LInstr::LetRegion {
            names: names.clone().into_boxed_slice(),
        },
        Instr::EndRegions(n) => LInstr::EndRegions(*n),
        Instr::PushHandler { handler } => LInstr::PushHandler {
            target: resolve(*handler),
        },
        Instr::PopHandler => LInstr::PopHandler,
        Instr::MkExn { exn, has_arg, at } => LInstr::MkExn {
            exn: *exn,
            has_arg: *has_arg,
            at: *at,
        },
        Instr::DeExn => LInstr::DeExn,
        Instr::Raise => LInstr::Raise,
        Instr::Halt => LInstr::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::FunInfo;
    use kit_lambda::ty::{DataEnv, LTy};

    fn mini_program(code: Vec<Instr>, label_addrs: Vec<usize>) -> Program {
        Program {
            code,
            label_addrs,
            funs: vec![FunInfo {
                entry: 0,
                nlocals: 4,
                nfinite: 0,
                name: "<main>".into(),
            }],
            entry_of: [(0usize, 0u32)].into_iter().collect(),
            main: 0,
            global_infinite: vec![],
            exn_names: vec![],
            result_ty: LTy::Int,
            data: DataEnv::default(),
        }
    }

    #[test]
    fn fuses_load_load_prim_and_remaps_targets() {
        // label 0 -> pc 0, label 1 -> pc 5 (the Halt).
        let prog = mini_program(
            vec![
                Instr::GcCheck, // pc 0 (leader)
                Instr::Load(1), // pc 1 ┐
                Instr::Load(2), // pc 2 │ fused (cost 3)
                Instr::Prim {
                    p: Prim::IAdd,
                    at: None,
                }, // pc 3 ┘
                Instr::Jump(1), // pc 4
                Instr::Halt,    // pc 5 (leader)
            ],
            vec![0, 5],
        );
        let linked = link(&prog, true);
        assert_eq!(linked.fused, 1);
        assert_eq!(linked.code.len(), 4);
        assert_eq!(
            linked.code[1],
            LInstr::LoadLoadPrim {
                a: 1,
                b: 2,
                p: Prim::IAdd,
                at: None
            }
        );
        // Old pc 5 (Halt) is the 4th linked instruction.
        assert_eq!(linked.code[2], LInstr::Jump(3));
        assert_eq!(linked.pc_of_label[1], 3);
        let total: u64 = linked.code.iter().map(LInstr::cost).sum();
        assert_eq!(
            total,
            prog.code.len() as u64,
            "costs cover every source instruction"
        );
    }

    #[test]
    fn leaders_block_fusion() {
        // A label bound to the Select keeps Load+Select unfused.
        let prog = mini_program(
            vec![
                Instr::Load(0),   // pc 0
                Instr::Select(1), // pc 1 (leader: label 1)
                Instr::Halt,      // pc 2
            ],
            vec![0, 1],
        );
        let linked = link(&prog, true);
        assert_eq!(linked.fused, 0);
        assert_eq!(linked.code.len(), 3);
        assert_eq!(linked.pc_of_label[1], 1);
    }

    #[test]
    fn fusion_off_is_one_to_one() {
        let prog = mini_program(
            vec![
                Instr::Load(1),
                Instr::Load(2),
                Instr::Prim {
                    p: Prim::IAdd,
                    at: None,
                },
                Instr::Halt,
            ],
            vec![0],
        );
        let linked = link(&prog, false);
        assert_eq!(linked.fused, 0);
        assert_eq!(linked.code.len(), prog.code.len());
    }
}
