//! Post-compile link pass: rewrites the [`Instr`] stream into the
//! pre-resolved form the interpreter actually dispatches on.
//!
//! Linking does two things:
//!
//! 1. **Pre-resolution** — every control-flow operand becomes an absolute
//!    code address (`u32` pc). `Jump`/`JumpIfFalse`/switch arms/handlers
//!    lose the `label_addrs` indirection; `Call` additionally resolves its
//!    callee's function id at link time. Unknown calls (`CallClos`) read a
//!    label scalar out of the closure at runtime and go through the dense
//!    [`LinkedProgram::pc_of_label`]/[`LinkedProgram::fun_of_label`] tables
//!    instead of a hash map.
//! 2. **Fusion** — frequent pairs/triples/quads are collapsed into the
//!    superinstructions of [`FUSION_CANDIDATES`] (the hand-picked tier-1
//!    set plus the profile-selected tier-2 additions; regenerate with
//!    `bench-summary --profile-fusion`), cutting dispatches on the hot
//!    path. A fused group never spans a *leader* (any pc bound in
//!    `label_addrs`), so every branch target remains the start of a linked
//!    instruction. `Call`/`CallClos` are never fused, so a return address
//!    (the pc after a non-tail call) is always a group start too.
//!
//! Fusion is semantics-preserving **including the instruction counter**:
//! each superinstruction reports the number of source instructions it
//! replaces via [`LInstr::cost`], so `VmOutcome::instructions` is identical
//! with fusion on or off.

use crate::fusion_table::{FuseKind, Opk, FUSION_CANDIDATES};
use crate::instr::{Disc, Instr, Label, Program, RegSlot};
use kit_lambda::exp::Prim;

/// Which fusion candidates the link pass may emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fusion {
    /// No superinstructions (branch targets are still pre-resolved) —
    /// the differential-testing reference.
    Off,
    /// The hand-picked PR 1 set only (tier 1 of
    /// [`FUSION_CANDIDATES`]) — the A/B baseline against
    /// `BENCH_PR1.json`.
    Hand,
    /// Every candidate in the generated table.
    #[default]
    Full,
}

impl Fusion {
    fn max_tier(self) -> u8 {
        match self {
            Fusion::Off => 0,
            Fusion::Hand => 1,
            Fusion::Full => 3,
        }
    }
}

/// A linked instruction: operands pre-resolved to absolute pcs, hot
/// sequences fused. See [`Instr`] for per-variant semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum LInstr {
    PushConst(u64),
    PushStr(String),
    Spread {
        n: u16,
    },
    Unreachable,
    PushReal(f64, RegSlot),
    Load(u32),
    Store(u32),
    Pop,
    MkRecord {
        n: u16,
        at: RegSlot,
    },
    Select(u16),
    MkCon {
        ctor: u16,
        n: u16,
        disc: bool,
        at: RegSlot,
    },
    DeConAdj,
    SwitchCon {
        disc: Disc,
        arms: Box<[(u32, u32)]>,
        default: u32,
    },
    SwitchInt {
        arms: Box<[(i64, u32)]>,
        default: u32,
    },
    SwitchStr {
        arms: Box<[(String, u32)]>,
        default: u32,
    },
    SwitchExn {
        arms: Box<[(u32, u32)]>,
        default: u32,
    },
    Jump(u32),
    JumpIfFalse(u32),
    Prim {
        p: Prim,
        at: Option<RegSlot>,
    },
    RegHandle(RegSlot),
    /// Known call with the callee's function id and entry pc resolved at
    /// link time.
    Call {
        fun: u32,
        target: u32,
        nargs: u16,
        nformals: u16,
        tail: bool,
    },
    CallClos {
        nargs: u16,
        tail: bool,
    },
    EnterViaPair {
        nformals: u16,
    },
    Ret,
    GcCheck,
    LetRegion {
        names: Box<[u32]>,
    },
    EndRegions(u16),
    PushHandler {
        target: u32,
    },
    PopHandler,
    MkExn {
        exn: u32,
        has_arg: bool,
        at: Option<RegSlot>,
    },
    DeExn,
    Raise,
    Halt,
    // ------------------------------------------------- superinstructions
    /// `Load a; Load b; Prim p` (cost 3).
    LoadLoadPrim {
        a: u32,
        b: u32,
        p: Prim,
        at: Option<RegSlot>,
    },
    /// `PushConst k; Prim p` (cost 2).
    PushConstPrim {
        k: u64,
        p: Prim,
        at: Option<RegSlot>,
    },
    /// `Load i; Select sel` (cost 2) — reads the field without the
    /// intermediate operand push.
    LoadSelect {
        i: u32,
        sel: u16,
    },
    /// `Store i; Pop` (cost 2).
    StorePop {
        i: u32,
    },
    /// `PushConst k; JumpIfFalse target` (cost 2) — constant condition,
    /// no operand traffic.
    PushConstJumpIfFalse {
        k: u64,
        target: u32,
    },
    /// `Load i; PushConst k; Prim p` (cost 3) — the `n - 1` shape of
    /// recursive argument arithmetic.
    LoadConstPrim {
        i: u32,
        k: u64,
        p: Prim,
        at: Option<RegSlot>,
    },
    /// `Load i; Select sel; Store j` (cost 3) — pattern-match
    /// destructuring of a box field straight into a local.
    LoadSelectStore {
        i: u32,
        sel: u16,
        j: u32,
    },
    /// `Load a; Load b; Prim p; JumpIfFalse target` (cost 4) — the
    /// two-operand compare-and-branch heading most loops.
    LoadLoadPrimJump {
        a: u32,
        b: u32,
        p: Prim,
        at: Option<RegSlot>,
        target: u32,
    },
    /// `Load i; PushConst k; Prim p; JumpIfFalse target` (cost 4) —
    /// compare-against-constant-and-branch (`if n < 2 ...`).
    LoadConstPrimJump {
        i: u32,
        k: u64,
        p: Prim,
        at: Option<RegSlot>,
        target: u32,
    },
    // ------------------------- tier 2 (profile-selected, `--profile-fusion`)
    /// `Store j; Load i; Select sel` (cost 3) — bind a match scrutinee and
    /// read its first field, the hottest measured triple.
    StoreLoadSelect {
        j: u32,
        i: u32,
        sel: u16,
    },
    /// `Load i; Prim p; JumpIfFalse target` (cost 3) — compare-and-branch
    /// whose first operand is already on the stack.
    LoadPrimJump {
        i: u32,
        p: Prim,
        at: Option<RegSlot>,
        target: u32,
    },
    /// `Select sel; PushConst k; Prim p` (cost 3) — field-vs-constant
    /// arithmetic on an operand already on the stack.
    SelectConstPrim {
        sel: u16,
        k: u64,
        p: Prim,
        at: Option<RegSlot>,
    },
    /// `Store j; Load i` (cost 2) — the hottest measured pair: bind a
    /// value, then immediately read another local (or re-read the same).
    StoreLoad {
        j: u32,
        i: u32,
    },
    /// `Load a; Load b` (cost 2) — two-operand setup ahead of calls and
    /// allocation.
    LoadLoad {
        a: u32,
        b: u32,
    },
    /// `Prim p; JumpIfFalse target` (cost 2) — compare-and-branch with
    /// both operands already on the stack.
    PrimJump {
        p: Prim,
        at: Option<RegSlot>,
        target: u32,
    },
    /// `Select sel; Store j` (cost 2) — store one field of a record that
    /// is already on the stack.
    SelectStore {
        sel: u16,
        j: u32,
    },
    /// `Load i; Store j` (cost 2) — local-to-local copy, no stack
    /// traffic.
    LoadStore {
        i: u32,
        j: u32,
    },
    /// `Load i; SwitchCon {..}` (cost 2) — branch on a constructor held
    /// in a local.
    LoadSwitchCon {
        i: u32,
        disc: Disc,
        arms: Box<[(u32, u32)]>,
        default: u32,
    },
    /// `GcCheck; Load i` (cost 2) — the function-entry safepoint fused
    /// with the first argument load.
    GcCheckLoad {
        i: u32,
    },
    /// `RegHandle a; RegHandle b` (cost 2) — push two region handles, the
    /// common preamble of region-polymorphic calls.
    RegHandleRegHandle {
        a: RegSlot,
        b: RegSlot,
    },
    // --------------------------- tier 3 (uncovered-triple fixups)
    /// `Select sel; Store j; Load i` (cost 3) — store one field of a
    /// record already on the stack, then load the next operand.
    SelectStoreLoad {
        sel: u16,
        j: u32,
        i: u32,
    },
    /// `GcCheck; Load i; SwitchCon {..}` (cost 3) — the function-entry
    /// safepoint of a constructor-dispatching function fused with its
    /// scrutinee load and branch.
    GcCheckLoadSwitchCon {
        i: u32,
        disc: Disc,
        arms: Box<[(u32, u32)]>,
        default: u32,
    },
    /// `RegHandle a; RegHandle b; Load i` (cost 3) — two region handles
    /// plus the first value argument of a region-polymorphic call.
    RegHandleRegHandleLoad {
        a: RegSlot,
        b: RegSlot,
        i: u32,
    },
    /// `RegHandle r; Load i; Load j` (cost 3) — one region handle plus
    /// the first two value arguments of a region-polymorphic call.
    RegHandleLoadLoad {
        r: RegSlot,
        i: u32,
        j: u32,
    },
}

impl LInstr {
    /// Number of source instructions this linked instruction stands for.
    /// Summing `cost()` over executed instructions reproduces the unfused
    /// instruction count exactly.
    #[inline]
    pub fn cost(&self) -> u64 {
        match self {
            LInstr::LoadLoadPrimJump { .. } | LInstr::LoadConstPrimJump { .. } => 4,
            LInstr::LoadLoadPrim { .. }
            | LInstr::LoadConstPrim { .. }
            | LInstr::LoadSelectStore { .. }
            | LInstr::StoreLoadSelect { .. }
            | LInstr::LoadPrimJump { .. }
            | LInstr::SelectConstPrim { .. }
            | LInstr::SelectStoreLoad { .. }
            | LInstr::GcCheckLoadSwitchCon { .. }
            | LInstr::RegHandleRegHandleLoad { .. }
            | LInstr::RegHandleLoadLoad { .. } => 3,
            LInstr::PushConstPrim { .. }
            | LInstr::LoadSelect { .. }
            | LInstr::StorePop { .. }
            | LInstr::PushConstJumpIfFalse { .. }
            | LInstr::StoreLoad { .. }
            | LInstr::LoadLoad { .. }
            | LInstr::PrimJump { .. }
            | LInstr::SelectStore { .. }
            | LInstr::LoadStore { .. }
            | LInstr::LoadSwitchCon { .. }
            | LInstr::GcCheckLoad { .. }
            | LInstr::RegHandleRegHandle { .. } => 2,
            _ => 1,
        }
    }
}

/// A program in linked form, ready for dispatch.
#[derive(Debug, Clone)]
pub struct LinkedProgram {
    /// Linked instruction stream (absolute `u32` pc operands).
    pub code: Vec<LInstr>,
    /// Function id → entry pc.
    pub entry_pc: Vec<u32>,
    /// Label id → linked pc (`u32::MAX` if unbound). Used by `CallClos`,
    /// whose target label is only known at runtime (closure field 0).
    pub pc_of_label: Vec<u32>,
    /// Label id → function id (`u32::MAX` if the label is not a function
    /// entry). The dense replacement for `Program::entry_of`.
    pub fun_of_label: Vec<u32>,
    /// Number of superinstructions emitted (0 with fusion off).
    pub fused: u64,
}

/// The pattern kind of a source instruction, if fusion patterns can refer
/// to it at all.
fn opk_of(ins: &Instr) -> Option<Opk> {
    Some(match ins {
        Instr::Load(_) => Opk::Load,
        Instr::Store(_) => Opk::Store,
        Instr::Pop => Opk::Pop,
        Instr::PushConst(_) => Opk::PushConst,
        Instr::Select(_) => Opk::Select,
        Instr::Prim { .. } => Opk::Prim,
        Instr::JumpIfFalse(_) => Opk::JumpIfFalse,
        Instr::SwitchCon { .. } => Opk::SwitchCon,
        Instr::GcCheck => Opk::GcCheck,
        Instr::RegHandle(_) => Opk::RegHandle,
        _ => return None,
    })
}

/// The fusion candidate matching at `i`, if any — the first (longest,
/// by table ordering) enabled pattern whose kinds match at adjacent pcs
/// with no interior leader; a branch could land mid-group otherwise.
fn match_at(
    code: &[Instr],
    leader: &[bool],
    i: usize,
    max_tier: u8,
) -> Option<&'static crate::fusion_table::Pattern> {
    'pat: for pat in FUSION_CANDIDATES {
        if pat.tier > max_tier || i + pat.seq.len() > code.len() {
            continue;
        }
        for j in 1..pat.seq.len() {
            if leader[i + j] {
                continue 'pat;
            }
        }
        for (j, k) in pat.seq.iter().enumerate() {
            if opk_of(&code[i + j]) != Some(*k) {
                continue 'pat;
            }
        }
        return Some(pat);
    }
    None
}

/// Builds the superinstruction for a matched pattern from its source
/// window. A pattern's kinds guarantee the shapes destructured here.
/// Shared with the register-stream re-fusion pass in [`crate::register`],
/// which resolves labels by identity (its targets are already pcs).
pub(crate) fn build_fused(kind: FuseKind, w: &[Instr], resolve: &dyn Fn(Label) -> u32) -> LInstr {
    match kind {
        FuseKind::LoadLoadPrimJump => match (&w[0], &w[1], &w[2], &w[3]) {
            (Instr::Load(a), Instr::Load(b), Instr::Prim { p, at }, Instr::JumpIfFalse(l)) => {
                LInstr::LoadLoadPrimJump {
                    a: *a,
                    b: *b,
                    p: *p,
                    at: *at,
                    target: resolve(*l),
                }
            }
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::LoadConstPrimJump => match (&w[0], &w[1], &w[2], &w[3]) {
            (Instr::Load(i), Instr::PushConst(k), Instr::Prim { p, at }, Instr::JumpIfFalse(l)) => {
                LInstr::LoadConstPrimJump {
                    i: *i,
                    k: *k,
                    p: *p,
                    at: *at,
                    target: resolve(*l),
                }
            }
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::LoadLoadPrim => match (&w[0], &w[1], &w[2]) {
            (Instr::Load(a), Instr::Load(b), Instr::Prim { p, at }) => LInstr::LoadLoadPrim {
                a: *a,
                b: *b,
                p: *p,
                at: *at,
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::LoadConstPrim => match (&w[0], &w[1], &w[2]) {
            (Instr::Load(i), Instr::PushConst(k), Instr::Prim { p, at }) => LInstr::LoadConstPrim {
                i: *i,
                k: *k,
                p: *p,
                at: *at,
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::LoadSelectStore => match (&w[0], &w[1], &w[2]) {
            (Instr::Load(i), Instr::Select(sel), Instr::Store(j)) => LInstr::LoadSelectStore {
                i: *i,
                sel: *sel,
                j: *j,
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::PushConstPrim => match (&w[0], &w[1]) {
            (Instr::PushConst(k), Instr::Prim { p, at }) => LInstr::PushConstPrim {
                k: *k,
                p: *p,
                at: *at,
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::LoadSelect => match (&w[0], &w[1]) {
            (Instr::Load(i), Instr::Select(sel)) => LInstr::LoadSelect { i: *i, sel: *sel },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::StorePop => match (&w[0], &w[1]) {
            (Instr::Store(i), Instr::Pop) => LInstr::StorePop { i: *i },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::PushConstJumpIfFalse => match (&w[0], &w[1]) {
            (Instr::PushConst(k), Instr::JumpIfFalse(l)) => LInstr::PushConstJumpIfFalse {
                k: *k,
                target: resolve(*l),
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::StoreLoadSelect => match (&w[0], &w[1], &w[2]) {
            (Instr::Store(j), Instr::Load(i), Instr::Select(sel)) => LInstr::StoreLoadSelect {
                j: *j,
                i: *i,
                sel: *sel,
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::LoadPrimJump => match (&w[0], &w[1], &w[2]) {
            (Instr::Load(i), Instr::Prim { p, at }, Instr::JumpIfFalse(l)) => {
                LInstr::LoadPrimJump {
                    i: *i,
                    p: *p,
                    at: *at,
                    target: resolve(*l),
                }
            }
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::SelectConstPrim => match (&w[0], &w[1], &w[2]) {
            (Instr::Select(sel), Instr::PushConst(k), Instr::Prim { p, at }) => {
                LInstr::SelectConstPrim {
                    sel: *sel,
                    k: *k,
                    p: *p,
                    at: *at,
                }
            }
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::StoreLoad => match (&w[0], &w[1]) {
            (Instr::Store(j), Instr::Load(i)) => LInstr::StoreLoad { j: *j, i: *i },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::LoadLoad => match (&w[0], &w[1]) {
            (Instr::Load(a), Instr::Load(b)) => LInstr::LoadLoad { a: *a, b: *b },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::SelectStore => match (&w[0], &w[1]) {
            (Instr::Select(sel), Instr::Store(j)) => LInstr::SelectStore { sel: *sel, j: *j },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::LoadStore => match (&w[0], &w[1]) {
            (Instr::Load(i), Instr::Store(j)) => LInstr::LoadStore { i: *i, j: *j },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::LoadSwitchCon => match (&w[0], &w[1]) {
            (
                Instr::Load(i),
                Instr::SwitchCon {
                    disc,
                    arms,
                    default,
                },
            ) => LInstr::LoadSwitchCon {
                i: *i,
                disc: *disc,
                arms: arms.iter().map(|(c, l)| (*c, resolve(*l))).collect(),
                default: resolve(*default),
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::GcCheckLoad => match (&w[0], &w[1]) {
            (Instr::GcCheck, Instr::Load(i)) => LInstr::GcCheckLoad { i: *i },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::RegHandleRegHandle => match (&w[0], &w[1]) {
            (Instr::RegHandle(a), Instr::RegHandle(b)) => {
                LInstr::RegHandleRegHandle { a: *a, b: *b }
            }
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::SelectStoreLoad => match (&w[0], &w[1], &w[2]) {
            (Instr::Select(sel), Instr::Store(j), Instr::Load(i)) => LInstr::SelectStoreLoad {
                sel: *sel,
                j: *j,
                i: *i,
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::GcCheckLoadSwitchCon => match (&w[0], &w[1], &w[2]) {
            (
                Instr::GcCheck,
                Instr::Load(i),
                Instr::SwitchCon {
                    disc,
                    arms,
                    default,
                },
            ) => LInstr::GcCheckLoadSwitchCon {
                i: *i,
                disc: *disc,
                arms: arms.iter().map(|(c, l)| (*c, resolve(*l))).collect(),
                default: resolve(*default),
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::RegHandleRegHandleLoad => match (&w[0], &w[1], &w[2]) {
            (Instr::RegHandle(a), Instr::RegHandle(b), Instr::Load(i)) => {
                LInstr::RegHandleRegHandleLoad {
                    a: *a,
                    b: *b,
                    i: *i,
                }
            }
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::RegHandleLoadLoad => match (&w[0], &w[1], &w[2]) {
            (Instr::RegHandle(r), Instr::Load(i), Instr::Load(j)) => LInstr::RegHandleLoadLoad {
                r: *r,
                i: *i,
                j: *j,
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
        FuseKind::PrimJump => match (&w[0], &w[1]) {
            (Instr::Prim { p, at }, Instr::JumpIfFalse(l)) => LInstr::PrimJump {
                p: *p,
                at: *at,
                target: resolve(*l),
            },
            _ => unreachable!("pattern/constructor mismatch for {kind:?}"),
        },
    }
}

/// Links `prog`, fusing the selected superinstruction set.
pub fn link(prog: &Program, fusion: Fusion) -> LinkedProgram {
    let code = &prog.code;
    let n = code.len();

    // Leaders: every bound label address. Return addresses need no entry —
    // calls are never fused, so the pc after a call starts a group.
    let mut leader = vec![false; n];
    for &a in &prog.label_addrs {
        if a < n {
            leader[a] = true;
        }
    }

    // Pass 1: choose groups (greedy, longest first) and map old → new pcs.
    let max_tier = fusion.max_tier();
    let mut new_pc_of_old = vec![u32::MAX; n];
    let mut group_len = vec![0u8; n];
    let mut group_kind = vec![None::<FuseKind>; n];
    let mut i = 0;
    let mut npc = 0u32;
    while i < n {
        let pat = if max_tier > 0 {
            match_at(code, &leader, i, max_tier)
        } else {
            None
        };
        let len = pat.map_or(1, |p| p.seq.len());
        new_pc_of_old[i] = npc;
        group_len[i] = len as u8;
        group_kind[i] = pat.map(|p| p.out);
        npc += 1;
        i += len;
    }

    let resolve = |l: Label| -> u32 {
        let addr = prog.label_addrs[l];
        debug_assert!(addr < n, "branch to unbound label {l}");
        debug_assert_ne!(new_pc_of_old[addr], u32::MAX, "branch into a fused group");
        new_pc_of_old[addr]
    };

    // Pass 2: emit with remapped targets.
    let mut out = Vec::with_capacity(npc as usize);
    let mut fused = 0u64;
    let mut i = 0;
    while i < n {
        let len = group_len[i] as usize;
        match group_kind[i] {
            Some(kind) => {
                out.push(build_fused(kind, &code[i..i + len], &resolve));
                fused += 1;
            }
            None => out.push(link_one(prog, &code[i], &resolve)),
        }
        i += len;
    }

    let entry_pc = prog.funs.iter().map(|f| resolve(f.entry)).collect();
    let pc_of_label = prog
        .label_addrs
        .iter()
        .map(|&a| if a < n { new_pc_of_old[a] } else { u32::MAX })
        .collect();
    let mut fun_of_label = vec![u32::MAX; prog.label_addrs.len()];
    for (&l, &f) in &prog.entry_of {
        fun_of_label[l] = f;
    }

    LinkedProgram {
        code: out,
        entry_pc,
        pc_of_label,
        fun_of_label,
        fused,
    }
}

fn link_one(prog: &Program, ins: &Instr, resolve: &dyn Fn(Label) -> u32) -> LInstr {
    match ins {
        Instr::PushConst(w) => LInstr::PushConst(*w),
        Instr::PushStr(s) => LInstr::PushStr(s.clone()),
        Instr::Spread { n } => LInstr::Spread { n: *n },
        Instr::Unreachable => LInstr::Unreachable,
        Instr::PushReal(x, at) => LInstr::PushReal(*x, *at),
        Instr::Load(i) => LInstr::Load(*i),
        Instr::Store(i) => LInstr::Store(*i),
        Instr::Pop => LInstr::Pop,
        Instr::MkRecord { n, at } => LInstr::MkRecord { n: *n, at: *at },
        Instr::Select(i) => LInstr::Select(*i),
        Instr::MkCon { ctor, n, disc, at } => LInstr::MkCon {
            ctor: *ctor,
            n: *n,
            disc: *disc,
            at: *at,
        },
        Instr::DeConAdj => LInstr::DeConAdj,
        Instr::SwitchCon {
            disc,
            arms,
            default,
        } => LInstr::SwitchCon {
            disc: *disc,
            arms: arms.iter().map(|(c, l)| (*c, resolve(*l))).collect(),
            default: resolve(*default),
        },
        Instr::SwitchInt { arms, default } => LInstr::SwitchInt {
            arms: arms.iter().map(|(k, l)| (*k, resolve(*l))).collect(),
            default: resolve(*default),
        },
        Instr::SwitchStr { arms, default } => LInstr::SwitchStr {
            arms: arms.iter().map(|(s, l)| (s.clone(), resolve(*l))).collect(),
            default: resolve(*default),
        },
        Instr::SwitchExn { arms, default } => LInstr::SwitchExn {
            arms: arms.iter().map(|(e, l)| (*e, resolve(*l))).collect(),
            default: resolve(*default),
        },
        Instr::Jump(l) => LInstr::Jump(resolve(*l)),
        Instr::JumpIfFalse(l) => LInstr::JumpIfFalse(resolve(*l)),
        Instr::Prim { p, at } => LInstr::Prim { p: *p, at: *at },
        Instr::RegHandle(slot) => LInstr::RegHandle(*slot),
        Instr::Call {
            label,
            nargs,
            nformals,
            tail,
        } => LInstr::Call {
            fun: prog.entry_of[label],
            target: resolve(*label),
            nargs: *nargs,
            nformals: *nformals,
            tail: *tail,
        },
        Instr::CallClos { nargs, tail } => LInstr::CallClos {
            nargs: *nargs,
            tail: *tail,
        },
        Instr::EnterViaPair { nformals } => LInstr::EnterViaPair {
            nformals: *nformals,
        },
        Instr::Ret => LInstr::Ret,
        Instr::GcCheck => LInstr::GcCheck,
        Instr::LetRegion { names } => LInstr::LetRegion {
            names: names.clone().into_boxed_slice(),
        },
        Instr::EndRegions(n) => LInstr::EndRegions(*n),
        Instr::PushHandler { handler } => LInstr::PushHandler {
            target: resolve(*handler),
        },
        Instr::PopHandler => LInstr::PopHandler,
        Instr::MkExn { exn, has_arg, at } => LInstr::MkExn {
            exn: *exn,
            has_arg: *has_arg,
            at: *at,
        },
        Instr::DeExn => LInstr::DeExn,
        Instr::Raise => LInstr::Raise,
        Instr::Halt => LInstr::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::FunInfo;
    use kit_lambda::ty::{DataEnv, LTy};

    fn mini_program(code: Vec<Instr>, label_addrs: Vec<usize>) -> Program {
        Program {
            code,
            label_addrs,
            funs: vec![FunInfo {
                entry: 0,
                nlocals: 4,
                nfinite: 0,
                name: "<main>".into(),
            }],
            entry_of: [(0usize, 0u32)].into_iter().collect(),
            main: 0,
            global_infinite: vec![],
            exn_names: vec![],
            result_ty: LTy::Int,
            data: DataEnv::default(),
        }
    }

    #[test]
    fn fuses_load_load_prim_and_remaps_targets() {
        // label 0 -> pc 0, label 1 -> pc 5 (the Halt).
        let prog = mini_program(
            vec![
                // Not fusible (`GcCheck` would fuse with the load now
                // that `GcCheckLoad` is a candidate).
                Instr::DeConAdj, // pc 0 (leader)
                Instr::Load(1),  // pc 1 ┐
                Instr::Load(2),  // pc 2 │ fused (cost 3)
                Instr::Prim {
                    p: Prim::IAdd,
                    at: None,
                }, // pc 3 ┘
                Instr::Jump(1),  // pc 4
                Instr::Halt,     // pc 5 (leader)
            ],
            vec![0, 5],
        );
        let linked = link(&prog, Fusion::Full);
        assert_eq!(linked.fused, 1);
        assert_eq!(linked.code.len(), 4);
        assert_eq!(
            linked.code[1],
            LInstr::LoadLoadPrim {
                a: 1,
                b: 2,
                p: Prim::IAdd,
                at: None
            }
        );
        // Old pc 5 (Halt) is the 4th linked instruction.
        assert_eq!(linked.code[2], LInstr::Jump(3));
        assert_eq!(linked.pc_of_label[1], 3);
        let total: u64 = linked.code.iter().map(LInstr::cost).sum();
        assert_eq!(
            total,
            prog.code.len() as u64,
            "costs cover every source instruction"
        );
    }

    #[test]
    fn leaders_block_fusion() {
        // A label bound to the Select keeps Load+Select unfused.
        let prog = mini_program(
            vec![
                Instr::Load(0),   // pc 0
                Instr::Select(1), // pc 1 (leader: label 1)
                Instr::Halt,      // pc 2
            ],
            vec![0, 1],
        );
        let linked = link(&prog, Fusion::Full);
        assert_eq!(linked.fused, 0);
        assert_eq!(linked.code.len(), 3);
        assert_eq!(linked.pc_of_label[1], 1);
    }

    #[test]
    fn fusion_off_is_one_to_one() {
        let prog = mini_program(
            vec![
                Instr::Load(1),
                Instr::Load(2),
                Instr::Prim {
                    p: Prim::IAdd,
                    at: None,
                },
                Instr::Halt,
            ],
            vec![0],
        );
        let linked = link(&prog, Fusion::Off);
        assert_eq!(linked.fused, 0);
        assert_eq!(linked.code.len(), prog.code.len());
    }
}
