//! Struct-of-arrays translation of the linked form for direct-threaded
//! dispatch.
//!
//! [`translate`] turns a [`LinkedProgram`] into a [`ThreadedCode`]: one
//! dense opcode byte per instruction ([`Op`]) plus a parallel array of
//! pre-decoded fixed-size operands ([`Args`]). Variable-sized payloads
//! (switch tables, string literals, `letregion` name lists) move into side
//! tables indexed through an operand slot, so the arrays the dispatch loop
//! touches are compact and cache-dense. The execution engine itself — the
//! `const` handler table indexed by `Op` — lives next to the classic match
//! loop in [`crate::vm`]; this module owns the data layout and the exact
//! [`Op::cost`] accounting that keeps instruction totals bit-identical
//! across dispatch modes.
//!
//! [`ThreadedCode::rebuild`] reconstructs the [`LInstr`] for any pc, which
//! the disassembler and the round-trip tests use to prove the translation
//! lossless.

use crate::instr::{Disc, RegSlot};
use crate::link::{LInstr, LinkedProgram};
use kit_lambda::exp::Prim;
use std::fmt;

/// Dense opcode of the threaded engine: the handler-table index. One
/// variant per [`LInstr`] variant, in the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    PushConst = 0,
    PushStr,
    Spread,
    Unreachable,
    PushReal,
    Load,
    Store,
    Pop,
    MkRecord,
    Select,
    MkCon,
    DeConAdj,
    SwitchCon,
    SwitchInt,
    SwitchStr,
    SwitchExn,
    Jump,
    JumpIfFalse,
    Prim,
    RegHandle,
    Call,
    CallClos,
    EnterViaPair,
    Ret,
    GcCheck,
    LetRegion,
    EndRegions,
    PushHandler,
    PopHandler,
    MkExn,
    DeExn,
    Raise,
    Halt,
    // ------------------------------------------------- superinstructions
    LoadLoadPrim,
    PushConstPrim,
    LoadSelect,
    StorePop,
    PushConstJumpIfFalse,
    LoadConstPrim,
    LoadSelectStore,
    LoadLoadPrimJump,
    LoadConstPrimJump,
    // ------------------------------- tier-2 (profile-selected) additions
    StoreLoadSelect,
    LoadPrimJump,
    SelectConstPrim,
    StoreLoad,
    LoadLoad,
    PrimJump,
    SelectStore,
    LoadStore,
    LoadSwitchCon,
    GcCheckLoad,
    RegHandleRegHandle,
    // ------------------------------- tier-3 (uncovered-triple) additions
    SelectStoreLoad,
    GcCheckLoadSwitchCon,
    RegHandleRegHandleLoad,
    RegHandleLoadLoad,
    // ----------------------- register-form opcodes (no LInstr counterpart)
    //
    // Emitted only by the register translator in [`crate::regalloc`]; they
    // take operands straight from locals/immediates instead of the operand
    // stack. Their per-pc instruction charge is *dynamic* (the number of
    // stack ops each occurrence replaces) and lives in
    // [`crate::register::RegCode::costs`], not in [`Op::cost`].
    /// Three-address primitive: operands from locals/consts/stack, result
    /// pushed or stored to a local.
    RPrim,
    /// [`Op::RPrim`] fused with a conditional branch on its result.
    RPrimJump,
    /// Conditional branch on a local, no operand push.
    RJumpIfFalse,
    /// Store an immediate constant into a local.
    RStoreConst,
    /// Return with the result taken from a local or an immediate.
    RRet,
    /// Cost-accounting no-op: charges stack instructions whose effects
    /// were cancelled entirely (e.g. a dropped pending push).
    RNop,
}

/// Number of opcodes (size of the handler table).
pub const OP_COUNT: usize = Op::RNop as usize + 1;

impl Op {
    /// Every opcode, in discriminant order (`ALL[op as usize] == op`).
    pub const ALL: [Op; OP_COUNT] = [
        Op::PushConst,
        Op::PushStr,
        Op::Spread,
        Op::Unreachable,
        Op::PushReal,
        Op::Load,
        Op::Store,
        Op::Pop,
        Op::MkRecord,
        Op::Select,
        Op::MkCon,
        Op::DeConAdj,
        Op::SwitchCon,
        Op::SwitchInt,
        Op::SwitchStr,
        Op::SwitchExn,
        Op::Jump,
        Op::JumpIfFalse,
        Op::Prim,
        Op::RegHandle,
        Op::Call,
        Op::CallClos,
        Op::EnterViaPair,
        Op::Ret,
        Op::GcCheck,
        Op::LetRegion,
        Op::EndRegions,
        Op::PushHandler,
        Op::PopHandler,
        Op::MkExn,
        Op::DeExn,
        Op::Raise,
        Op::Halt,
        Op::LoadLoadPrim,
        Op::PushConstPrim,
        Op::LoadSelect,
        Op::StorePop,
        Op::PushConstJumpIfFalse,
        Op::LoadConstPrim,
        Op::LoadSelectStore,
        Op::LoadLoadPrimJump,
        Op::LoadConstPrimJump,
        Op::StoreLoadSelect,
        Op::LoadPrimJump,
        Op::SelectConstPrim,
        Op::StoreLoad,
        Op::LoadLoad,
        Op::PrimJump,
        Op::SelectStore,
        Op::LoadStore,
        Op::LoadSwitchCon,
        Op::GcCheckLoad,
        Op::RegHandleRegHandle,
        Op::SelectStoreLoad,
        Op::GcCheckLoadSwitchCon,
        Op::RegHandleRegHandleLoad,
        Op::RegHandleLoadLoad,
        Op::RPrim,
        Op::RPrimJump,
        Op::RJumpIfFalse,
        Op::RStoreConst,
        Op::RRet,
        Op::RNop,
    ];

    /// The opcode of a linked instruction.
    pub fn of(ins: &LInstr) -> Op {
        match ins {
            LInstr::PushConst(..) => Op::PushConst,
            LInstr::PushStr(..) => Op::PushStr,
            LInstr::Spread { .. } => Op::Spread,
            LInstr::Unreachable => Op::Unreachable,
            LInstr::PushReal(..) => Op::PushReal,
            LInstr::Load(..) => Op::Load,
            LInstr::Store(..) => Op::Store,
            LInstr::Pop => Op::Pop,
            LInstr::MkRecord { .. } => Op::MkRecord,
            LInstr::Select(..) => Op::Select,
            LInstr::MkCon { .. } => Op::MkCon,
            LInstr::DeConAdj => Op::DeConAdj,
            LInstr::SwitchCon { .. } => Op::SwitchCon,
            LInstr::SwitchInt { .. } => Op::SwitchInt,
            LInstr::SwitchStr { .. } => Op::SwitchStr,
            LInstr::SwitchExn { .. } => Op::SwitchExn,
            LInstr::Jump(..) => Op::Jump,
            LInstr::JumpIfFalse(..) => Op::JumpIfFalse,
            LInstr::Prim { .. } => Op::Prim,
            LInstr::RegHandle(..) => Op::RegHandle,
            LInstr::Call { .. } => Op::Call,
            LInstr::CallClos { .. } => Op::CallClos,
            LInstr::EnterViaPair { .. } => Op::EnterViaPair,
            LInstr::Ret => Op::Ret,
            LInstr::GcCheck => Op::GcCheck,
            LInstr::LetRegion { .. } => Op::LetRegion,
            LInstr::EndRegions(..) => Op::EndRegions,
            LInstr::PushHandler { .. } => Op::PushHandler,
            LInstr::PopHandler => Op::PopHandler,
            LInstr::MkExn { .. } => Op::MkExn,
            LInstr::DeExn => Op::DeExn,
            LInstr::Raise => Op::Raise,
            LInstr::Halt => Op::Halt,
            LInstr::LoadLoadPrim { .. } => Op::LoadLoadPrim,
            LInstr::PushConstPrim { .. } => Op::PushConstPrim,
            LInstr::LoadSelect { .. } => Op::LoadSelect,
            LInstr::StorePop { .. } => Op::StorePop,
            LInstr::PushConstJumpIfFalse { .. } => Op::PushConstJumpIfFalse,
            LInstr::LoadConstPrim { .. } => Op::LoadConstPrim,
            LInstr::LoadSelectStore { .. } => Op::LoadSelectStore,
            LInstr::LoadLoadPrimJump { .. } => Op::LoadLoadPrimJump,
            LInstr::LoadConstPrimJump { .. } => Op::LoadConstPrimJump,
            LInstr::StoreLoadSelect { .. } => Op::StoreLoadSelect,
            LInstr::LoadPrimJump { .. } => Op::LoadPrimJump,
            LInstr::SelectConstPrim { .. } => Op::SelectConstPrim,
            LInstr::StoreLoad { .. } => Op::StoreLoad,
            LInstr::LoadLoad { .. } => Op::LoadLoad,
            LInstr::PrimJump { .. } => Op::PrimJump,
            LInstr::SelectStore { .. } => Op::SelectStore,
            LInstr::LoadStore { .. } => Op::LoadStore,
            LInstr::LoadSwitchCon { .. } => Op::LoadSwitchCon,
            LInstr::GcCheckLoad { .. } => Op::GcCheckLoad,
            LInstr::RegHandleRegHandle { .. } => Op::RegHandleRegHandle,
            LInstr::SelectStoreLoad { .. } => Op::SelectStoreLoad,
            LInstr::GcCheckLoadSwitchCon { .. } => Op::GcCheckLoadSwitchCon,
            LInstr::RegHandleRegHandleLoad { .. } => Op::RegHandleRegHandleLoad,
            LInstr::RegHandleLoadLoad { .. } => Op::RegHandleLoadLoad,
        }
    }

    /// Source instructions this opcode accounts for — must agree with
    /// [`LInstr::cost`] so fuel, instruction totals and the GC schedule
    /// are bit-identical across dispatch modes (the round-trip test
    /// asserts the two never drift apart).
    #[inline]
    pub const fn cost(self) -> u64 {
        match self {
            Op::LoadLoadPrimJump | Op::LoadConstPrimJump => 4,
            Op::LoadLoadPrim
            | Op::LoadConstPrim
            | Op::LoadSelectStore
            | Op::StoreLoadSelect
            | Op::LoadPrimJump
            | Op::SelectConstPrim
            | Op::SelectStoreLoad
            | Op::GcCheckLoadSwitchCon
            | Op::RegHandleRegHandleLoad
            | Op::RegHandleLoadLoad => 3,
            Op::PushConstPrim
            | Op::LoadSelect
            | Op::StorePop
            | Op::PushConstJumpIfFalse
            | Op::StoreLoad
            | Op::LoadLoad
            | Op::PrimJump
            | Op::SelectStore
            | Op::LoadStore
            | Op::LoadSwitchCon
            | Op::GcCheckLoad
            | Op::RegHandleRegHandle => 2,
            _ => 1,
        }
    }

    /// The mnemonic (the `LInstr` variant name).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::PushConst => "PushConst",
            Op::PushStr => "PushStr",
            Op::Spread => "Spread",
            Op::Unreachable => "Unreachable",
            Op::PushReal => "PushReal",
            Op::Load => "Load",
            Op::Store => "Store",
            Op::Pop => "Pop",
            Op::MkRecord => "MkRecord",
            Op::Select => "Select",
            Op::MkCon => "MkCon",
            Op::DeConAdj => "DeConAdj",
            Op::SwitchCon => "SwitchCon",
            Op::SwitchInt => "SwitchInt",
            Op::SwitchStr => "SwitchStr",
            Op::SwitchExn => "SwitchExn",
            Op::Jump => "Jump",
            Op::JumpIfFalse => "JumpIfFalse",
            Op::Prim => "Prim",
            Op::RegHandle => "RegHandle",
            Op::Call => "Call",
            Op::CallClos => "CallClos",
            Op::EnterViaPair => "EnterViaPair",
            Op::Ret => "Ret",
            Op::GcCheck => "GcCheck",
            Op::LetRegion => "LetRegion",
            Op::EndRegions => "EndRegions",
            Op::PushHandler => "PushHandler",
            Op::PopHandler => "PopHandler",
            Op::MkExn => "MkExn",
            Op::DeExn => "DeExn",
            Op::Raise => "Raise",
            Op::Halt => "Halt",
            Op::LoadLoadPrim => "LoadLoadPrim",
            Op::PushConstPrim => "PushConstPrim",
            Op::LoadSelect => "LoadSelect",
            Op::StorePop => "StorePop",
            Op::PushConstJumpIfFalse => "PushConstJumpIfFalse",
            Op::LoadConstPrim => "LoadConstPrim",
            Op::LoadSelectStore => "LoadSelectStore",
            Op::LoadLoadPrimJump => "LoadLoadPrimJump",
            Op::LoadConstPrimJump => "LoadConstPrimJump",
            Op::StoreLoadSelect => "StoreLoadSelect",
            Op::LoadPrimJump => "LoadPrimJump",
            Op::SelectConstPrim => "SelectConstPrim",
            Op::StoreLoad => "StoreLoad",
            Op::LoadLoad => "LoadLoad",
            Op::PrimJump => "PrimJump",
            Op::SelectStore => "SelectStore",
            Op::LoadStore => "LoadStore",
            Op::LoadSwitchCon => "LoadSwitchCon",
            Op::GcCheckLoad => "GcCheckLoad",
            Op::RegHandleRegHandle => "RegHandleRegHandle",
            Op::SelectStoreLoad => "SelectStoreLoad",
            Op::GcCheckLoadSwitchCon => "GcCheckLoadSwitchCon",
            Op::RegHandleRegHandleLoad => "RegHandleRegHandleLoad",
            Op::RegHandleLoadLoad => "RegHandleLoadLoad",
            Op::RPrim => "RPrim",
            Op::RPrimJump => "RPrimJump",
            Op::RJumpIfFalse => "RJumpIfFalse",
            Op::RStoreConst => "RStoreConst",
            Op::RRet => "RRet",
            Op::RNop => "RNop",
        }
    }
}

/// Pre-decoded fixed-size operands of one threaded instruction. Field use
/// is per-opcode (documented at [`translate`]); unused fields are zeroed.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// 64-bit immediate (constants, real bits).
    pub k: u64,
    /// First `u32` operand (local slot, function id, side-table index,
    /// exception id).
    pub a: u32,
    /// Second `u32` operand (local slot).
    pub b: u32,
    /// Branch target / call entry pc.
    pub t: u32,
    /// First `u16` operand (field counts, select index; operand-mode
    /// nibbles of the register prims — see `crate::register`).
    pub n: u16,
    /// Second `u16` operand (region-formal count, store slot of triples,
    /// destination local of `RPrim`).
    pub m: u16,
    /// Boolean operand (tail call, discriminant word, has-arg,
    /// `RPrim` result-goes-to-local).
    pub flag: bool,
    /// Primitive operation (meaningful for prim opcodes only).
    pub p: Prim,
    /// Allocation place, if any.
    pub at: Option<RegSlot>,
    /// Second region slot (`RegHandleRegHandle` only).
    pub at2: Option<RegSlot>,
}

impl Args {
    pub(crate) fn zero() -> Args {
        Args {
            k: 0,
            a: 0,
            b: 0,
            t: 0,
            n: 0,
            m: 0,
            flag: false,
            p: Prim::IAdd,
            at: None,
            at2: None,
        }
    }
}

/// Switch side-table row: `(arms, default pc)`.
pub type SwitchRows<K> = (Box<[(K, u32)]>, u32);

/// A program in threaded (struct-of-arrays) form: what
/// [`DispatchMode::Threaded`](crate::vm::DispatchMode) executes.
#[derive(Debug, Clone)]
pub struct ThreadedCode {
    /// Opcode stream (handler-table indices), parallel to `args`.
    pub ops: Vec<Op>,
    /// Pre-decoded operands, parallel to `ops`.
    pub args: Vec<Args>,
    /// String literals (`PushStr`), indexed by `a`.
    pub strs: Vec<String>,
    /// Constructor switches: `(disc, arms, default)`, indexed by `a`.
    pub con_switches: Vec<(Disc, SwitchRows<u32>)>,
    /// Integer switches, indexed by `a`.
    pub int_switches: Vec<SwitchRows<i64>>,
    /// String switches, indexed by `a`.
    pub str_switches: Vec<SwitchRows<String>>,
    /// Exception switches, indexed by `a`.
    pub exn_switches: Vec<SwitchRows<u32>>,
    /// `letregion` name lists, indexed by `a`.
    pub names: Vec<Box<[u32]>>,
    /// Function id → entry pc (from the linked program).
    pub entry_pc: Vec<u32>,
    /// Label id → pc (for `CallClos`).
    pub pc_of_label: Vec<u32>,
    /// Label id → function id (for `CallClos`).
    pub fun_of_label: Vec<u32>,
    /// Superinstructions in the stream (copied from the link pass).
    pub fused: u64,
}

/// Translates a linked program into threaded struct-of-arrays form.
///
/// Field assignments per opcode (see [`Args`]): `PushConst{k}`,
/// `PushStr{a=str}`, `Spread{n}`, `PushReal{k=bits, at}`, `Load{a}`,
/// `Store{a}`, `MkRecord{n, at}`, `Select{n}`, `MkCon{a=ctor, n,
/// flag=disc, at}`, switches `{a=table}`, `Jump{t}`, `JumpIfFalse{t}`,
/// `Prim{p, at}`, `RegHandle{at}`, `Call{a=fun, t, n=nargs, m=nformals,
/// flag=tail}`, `CallClos{n, flag}`, `EnterViaPair{n}`, `LetRegion{a}`,
/// `EndRegions{n}`, `PushHandler{t}`, `MkExn{a=exn, flag, at}`, and the
/// superinstructions `LoadLoadPrim{a, b, p, at}`, `PushConstPrim{k, p,
/// at}`, `LoadSelect{a, n}`, `StorePop{a}`, `PushConstJumpIfFalse{k, t}`,
/// `LoadConstPrim{a, k, p, at}`, `LoadSelectStore{a, n, m=j}`,
/// `LoadLoadPrimJump{a, b, p, at, t}`, `LoadConstPrimJump{a, k, p, at,
/// t}`, `StoreLoadSelect{a=j, b=i, n=sel}`, `LoadPrimJump{a, p, at, t}`,
/// `SelectConstPrim{n=sel, k, p, at}`, `StoreLoad{a=j, b=i}`,
/// `LoadLoad{a, b}`, `PrimJump{p, at, t}`, `SelectStoreLoad{n=sel, a=j,
/// b=i}`, `GcCheckLoadSwitchCon{b=i, a=table}`,
/// `RegHandleRegHandleLoad{at, at2, a=i}`.
pub fn translate(linked: LinkedProgram) -> ThreadedCode {
    let LinkedProgram {
        code,
        entry_pc,
        pc_of_label,
        fun_of_label,
        fused,
    } = linked;
    let mut t = ThreadedCode::empty(entry_pc, pc_of_label, fun_of_label);
    t.fused = fused;
    t.ops.reserve(code.len());
    t.args.reserve(code.len());
    for ins in code {
        t.push_linstr(ins);
    }
    t
}

impl ThreadedCode {
    /// An empty stream sharing the linked program's label tables — the
    /// starting point for both [`translate`] and the register translator
    /// in [`crate::regalloc`].
    pub fn empty(
        entry_pc: Vec<u32>,
        pc_of_label: Vec<u32>,
        fun_of_label: Vec<u32>,
    ) -> ThreadedCode {
        ThreadedCode {
            ops: Vec::new(),
            args: Vec::new(),
            strs: Vec::new(),
            con_switches: Vec::new(),
            int_switches: Vec::new(),
            str_switches: Vec::new(),
            exn_switches: Vec::new(),
            names: Vec::new(),
            entry_pc,
            pc_of_label,
            fun_of_label,
            fused: 0,
        }
    }

    /// Appends one linked instruction, encoding its operands into [`Args`]
    /// and moving variable-sized payloads into the side tables.
    pub fn push_linstr(&mut self, ins: LInstr) {
        let t = self;
        let op = Op::of(&ins);
        let mut x = Args::zero();
        match ins {
            LInstr::PushConst(k) => x.k = k,
            LInstr::PushStr(s) => {
                x.a = t.strs.len() as u32;
                t.strs.push(s);
            }
            LInstr::Spread { n } => x.n = n,
            LInstr::Unreachable
            | LInstr::Pop
            | LInstr::DeConAdj
            | LInstr::Ret
            | LInstr::GcCheck
            | LInstr::PopHandler
            | LInstr::DeExn
            | LInstr::Raise
            | LInstr::Halt => {}
            LInstr::PushReal(r, at) => {
                x.k = r.to_bits();
                x.at = Some(at);
            }
            LInstr::Load(i) | LInstr::Store(i) => x.a = i,
            LInstr::MkRecord { n, at } => {
                x.n = n;
                x.at = Some(at);
            }
            LInstr::Select(i) => x.n = i,
            LInstr::MkCon { ctor, n, disc, at } => {
                x.a = ctor as u32;
                x.n = n;
                x.flag = disc;
                x.at = Some(at);
            }
            LInstr::SwitchCon {
                disc,
                arms,
                default,
            } => {
                x.a = t.con_switches.len() as u32;
                t.con_switches.push((disc, (arms, default)));
            }
            LInstr::SwitchInt { arms, default } => {
                x.a = t.int_switches.len() as u32;
                t.int_switches.push((arms, default));
            }
            LInstr::SwitchStr { arms, default } => {
                x.a = t.str_switches.len() as u32;
                t.str_switches.push((arms, default));
            }
            LInstr::SwitchExn { arms, default } => {
                x.a = t.exn_switches.len() as u32;
                t.exn_switches.push((arms, default));
            }
            LInstr::Jump(target) | LInstr::JumpIfFalse(target) => x.t = target,
            LInstr::Prim { p, at } => {
                x.p = p;
                x.at = at;
            }
            LInstr::RegHandle(slot) => x.at = Some(slot),
            LInstr::Call {
                fun,
                target,
                nargs,
                nformals,
                tail,
            } => {
                x.a = fun;
                x.t = target;
                x.n = nargs;
                x.m = nformals;
                x.flag = tail;
            }
            LInstr::CallClos { nargs, tail } => {
                x.n = nargs;
                x.flag = tail;
            }
            LInstr::EnterViaPair { nformals } => x.n = nformals,
            LInstr::LetRegion { names } => {
                x.a = t.names.len() as u32;
                t.names.push(names);
            }
            LInstr::EndRegions(n) => x.n = n,
            LInstr::PushHandler { target } => x.t = target,
            LInstr::MkExn { exn, has_arg, at } => {
                x.a = exn;
                x.flag = has_arg;
                x.at = at;
            }
            LInstr::LoadLoadPrim { a, b, p, at } => {
                x.a = a;
                x.b = b;
                x.p = p;
                x.at = at;
            }
            LInstr::PushConstPrim { k, p, at } => {
                x.k = k;
                x.p = p;
                x.at = at;
            }
            LInstr::LoadSelect { i, sel } => {
                x.a = i;
                x.n = sel;
            }
            LInstr::StorePop { i } => x.a = i,
            LInstr::PushConstJumpIfFalse { k, target } => {
                x.k = k;
                x.t = target;
            }
            LInstr::LoadConstPrim { i, k, p, at } => {
                x.a = i;
                x.k = k;
                x.p = p;
                x.at = at;
            }
            LInstr::LoadSelectStore { i, sel, j } => {
                x.a = i;
                x.n = sel;
                x.m = j as u16;
                debug_assert_eq!(x.m as u32, j, "store slot exceeds u16");
            }
            LInstr::LoadLoadPrimJump {
                a,
                b,
                p,
                at,
                target,
            } => {
                x.a = a;
                x.b = b;
                x.p = p;
                x.at = at;
                x.t = target;
            }
            LInstr::LoadConstPrimJump {
                i,
                k,
                p,
                at,
                target,
            } => {
                x.a = i;
                x.k = k;
                x.p = p;
                x.at = at;
                x.t = target;
            }
            LInstr::StoreLoadSelect { j, i, sel } => {
                x.a = j;
                x.b = i;
                x.n = sel;
            }
            LInstr::LoadPrimJump { i, p, at, target } => {
                x.a = i;
                x.p = p;
                x.at = at;
                x.t = target;
            }
            LInstr::SelectConstPrim { sel, k, p, at } => {
                x.n = sel;
                x.k = k;
                x.p = p;
                x.at = at;
            }
            LInstr::StoreLoad { j, i } => {
                x.a = j;
                x.b = i;
            }
            LInstr::LoadLoad { a, b } => {
                x.a = a;
                x.b = b;
            }
            LInstr::PrimJump { p, at, target } => {
                x.p = p;
                x.at = at;
                x.t = target;
            }
            LInstr::SelectStore { sel, j } => {
                x.n = sel;
                x.a = j;
            }
            LInstr::LoadStore { i, j } => {
                x.a = i;
                x.b = j;
            }
            LInstr::LoadSwitchCon {
                i,
                disc,
                arms,
                default,
            } => {
                x.b = i;
                x.a = t.con_switches.len() as u32;
                t.con_switches.push((disc, (arms, default)));
            }
            LInstr::GcCheckLoad { i } => x.a = i,
            LInstr::RegHandleRegHandle { a, b } => {
                x.at = Some(a);
                x.at2 = Some(b);
            }
            LInstr::SelectStoreLoad { sel, j, i } => {
                x.n = sel;
                x.a = j;
                x.b = i;
            }
            LInstr::GcCheckLoadSwitchCon {
                i,
                disc,
                arms,
                default,
            } => {
                x.b = i;
                x.a = t.con_switches.len() as u32;
                t.con_switches.push((disc, (arms, default)));
            }
            LInstr::RegHandleRegHandleLoad { a, b, i } => {
                x.at = Some(a);
                x.at2 = Some(b);
                x.a = i;
            }
            LInstr::RegHandleLoadLoad { r, i, j } => {
                x.at = Some(r);
                x.a = i;
                x.b = j;
            }
        }
        t.ops.push(op);
        t.args.push(x);
    }

    /// Reconstructs the linked instruction at `pc` (the inverse of
    /// [`translate`]; used by the disassembler and the round-trip tests).
    pub fn rebuild(&self, pc: usize) -> LInstr {
        let x = &self.args[pc];
        match self.ops[pc] {
            Op::PushConst => LInstr::PushConst(x.k),
            Op::PushStr => LInstr::PushStr(self.strs[x.a as usize].clone()),
            Op::Spread => LInstr::Spread { n: x.n },
            Op::Unreachable => LInstr::Unreachable,
            Op::PushReal => LInstr::PushReal(f64::from_bits(x.k), x.at.unwrap()),
            Op::Load => LInstr::Load(x.a),
            Op::Store => LInstr::Store(x.a),
            Op::Pop => LInstr::Pop,
            Op::MkRecord => LInstr::MkRecord {
                n: x.n,
                at: x.at.unwrap(),
            },
            Op::Select => LInstr::Select(x.n),
            Op::MkCon => LInstr::MkCon {
                ctor: x.a as u16,
                n: x.n,
                disc: x.flag,
                at: x.at.unwrap(),
            },
            Op::DeConAdj => LInstr::DeConAdj,
            Op::SwitchCon => {
                let (disc, (arms, default)) = &self.con_switches[x.a as usize];
                LInstr::SwitchCon {
                    disc: *disc,
                    arms: arms.clone(),
                    default: *default,
                }
            }
            Op::SwitchInt => {
                let (arms, default) = &self.int_switches[x.a as usize];
                LInstr::SwitchInt {
                    arms: arms.clone(),
                    default: *default,
                }
            }
            Op::SwitchStr => {
                let (arms, default) = &self.str_switches[x.a as usize];
                LInstr::SwitchStr {
                    arms: arms.clone(),
                    default: *default,
                }
            }
            Op::SwitchExn => {
                let (arms, default) = &self.exn_switches[x.a as usize];
                LInstr::SwitchExn {
                    arms: arms.clone(),
                    default: *default,
                }
            }
            Op::Jump => LInstr::Jump(x.t),
            Op::JumpIfFalse => LInstr::JumpIfFalse(x.t),
            Op::Prim => LInstr::Prim { p: x.p, at: x.at },
            Op::RegHandle => LInstr::RegHandle(x.at.unwrap()),
            Op::Call => LInstr::Call {
                fun: x.a,
                target: x.t,
                nargs: x.n,
                nformals: x.m,
                tail: x.flag,
            },
            Op::CallClos => LInstr::CallClos {
                nargs: x.n,
                tail: x.flag,
            },
            Op::EnterViaPair => LInstr::EnterViaPair { nformals: x.n },
            Op::Ret => LInstr::Ret,
            Op::GcCheck => LInstr::GcCheck,
            Op::LetRegion => LInstr::LetRegion {
                names: self.names[x.a as usize].clone(),
            },
            Op::EndRegions => LInstr::EndRegions(x.n),
            Op::PushHandler => LInstr::PushHandler { target: x.t },
            Op::PopHandler => LInstr::PopHandler,
            Op::MkExn => LInstr::MkExn {
                exn: x.a,
                has_arg: x.flag,
                at: x.at,
            },
            Op::DeExn => LInstr::DeExn,
            Op::Raise => LInstr::Raise,
            Op::Halt => LInstr::Halt,
            Op::LoadLoadPrim => LInstr::LoadLoadPrim {
                a: x.a,
                b: x.b,
                p: x.p,
                at: x.at,
            },
            Op::PushConstPrim => LInstr::PushConstPrim {
                k: x.k,
                p: x.p,
                at: x.at,
            },
            Op::LoadSelect => LInstr::LoadSelect { i: x.a, sel: x.n },
            Op::StorePop => LInstr::StorePop { i: x.a },
            Op::PushConstJumpIfFalse => LInstr::PushConstJumpIfFalse {
                k: x.k,
                target: x.t,
            },
            Op::LoadConstPrim => LInstr::LoadConstPrim {
                i: x.a,
                k: x.k,
                p: x.p,
                at: x.at,
            },
            Op::LoadSelectStore => LInstr::LoadSelectStore {
                i: x.a,
                sel: x.n,
                j: x.m as u32,
            },
            Op::LoadLoadPrimJump => LInstr::LoadLoadPrimJump {
                a: x.a,
                b: x.b,
                p: x.p,
                at: x.at,
                target: x.t,
            },
            Op::LoadConstPrimJump => LInstr::LoadConstPrimJump {
                i: x.a,
                k: x.k,
                p: x.p,
                at: x.at,
                target: x.t,
            },
            Op::StoreLoadSelect => LInstr::StoreLoadSelect {
                j: x.a,
                i: x.b,
                sel: x.n,
            },
            Op::LoadPrimJump => LInstr::LoadPrimJump {
                i: x.a,
                p: x.p,
                at: x.at,
                target: x.t,
            },
            Op::SelectConstPrim => LInstr::SelectConstPrim {
                sel: x.n,
                k: x.k,
                p: x.p,
                at: x.at,
            },
            Op::StoreLoad => LInstr::StoreLoad { j: x.a, i: x.b },
            Op::LoadLoad => LInstr::LoadLoad { a: x.a, b: x.b },
            Op::PrimJump => LInstr::PrimJump {
                p: x.p,
                at: x.at,
                target: x.t,
            },
            Op::SelectStore => LInstr::SelectStore { sel: x.n, j: x.a },
            Op::LoadStore => LInstr::LoadStore { i: x.a, j: x.b },
            Op::LoadSwitchCon => {
                let (disc, (arms, default)) = &self.con_switches[x.a as usize];
                LInstr::LoadSwitchCon {
                    i: x.b,
                    disc: *disc,
                    arms: arms.clone(),
                    default: *default,
                }
            }
            Op::GcCheckLoad => LInstr::GcCheckLoad { i: x.a },
            Op::RegHandleRegHandle => LInstr::RegHandleRegHandle {
                a: x.at.unwrap(),
                b: x.at2.unwrap(),
            },
            Op::SelectStoreLoad => LInstr::SelectStoreLoad {
                sel: x.n,
                j: x.a,
                i: x.b,
            },
            Op::GcCheckLoadSwitchCon => {
                let (disc, (arms, default)) = &self.con_switches[x.a as usize];
                LInstr::GcCheckLoadSwitchCon {
                    i: x.b,
                    disc: *disc,
                    arms: arms.clone(),
                    default: *default,
                }
            }
            Op::RegHandleRegHandleLoad => LInstr::RegHandleRegHandleLoad {
                a: x.at.unwrap(),
                b: x.at2.unwrap(),
                i: x.a,
            },
            Op::RegHandleLoadLoad => LInstr::RegHandleLoadLoad {
                r: x.at.unwrap(),
                i: x.a,
                j: x.b,
            },
            op @ (Op::RPrim
            | Op::RPrimJump
            | Op::RJumpIfFalse
            | Op::RStoreConst
            | Op::RRet
            | Op::RNop) => {
                // Register-form opcodes have no LInstr counterpart; the
                // register disassembler decodes them via
                // `crate::register::RegCode::decode` instead.
                panic!(
                    "rebuild: register opcode {} has no linked form",
                    op.mnemonic()
                )
            }
        }
    }
}

/// Dynamic opcode-sequence counters — the VM's fusion counting mode.
///
/// Counts pairs and triples of *fallthrough-adjacent* executed
/// instructions (consecutive pcs), which are exactly the sequences the
/// link pass could fuse; transitions taken via a branch are excluded.
/// Collected with fusion off so base opcodes are visible, and dumped by
/// `bench-summary --profile-fusion` to regenerate the candidate table in
/// `crates/kam/src/fusion_table.rs`.
#[derive(Clone)]
pub struct FusionProfile {
    pairs: Vec<u64>,   // OP_COUNT^2, row-major
    triples: Vec<u64>, // OP_COUNT^3
    last_pc: usize,
    last2_pc: usize,
    last_op: usize,
    last2_op: usize,
}

impl Default for FusionProfile {
    fn default() -> Self {
        FusionProfile {
            pairs: vec![0; OP_COUNT * OP_COUNT],
            triples: vec![0; OP_COUNT * OP_COUNT * OP_COUNT],
            // Sentinels no real pc is adjacent to.
            last_pc: usize::MAX - 8,
            last2_pc: usize::MAX - 8,
            last_op: 0,
            last2_op: 0,
        }
    }
}

impl FusionProfile {
    /// Records one executed instruction at `pc`.
    #[inline]
    pub fn step(&mut self, pc: usize, op: Op) {
        let o = op as usize;
        if pc == self.last_pc.wrapping_add(1) {
            self.pairs[self.last_op * OP_COUNT + o] += 1;
            if self.last_pc == self.last2_pc.wrapping_add(1) {
                self.triples[(self.last2_op * OP_COUNT + self.last_op) * OP_COUNT + o] += 1;
            }
        }
        self.last2_pc = self.last_pc;
        self.last2_op = self.last_op;
        self.last_pc = pc;
        self.last_op = o;
    }

    /// Accumulates another run's counts (for cross-benchmark aggregation).
    pub fn merge(&mut self, other: &FusionProfile) {
        for (a, b) in self.pairs.iter_mut().zip(&other.pairs) {
            *a += b;
        }
        for (a, b) in self.triples.iter_mut().zip(&other.triples) {
            *a += b;
        }
    }

    /// Executed adjacent pairs, hottest first.
    pub fn hot_pairs(&self) -> Vec<([Op; 2], u64)> {
        let mut v: Vec<([Op; 2], u64)> = self
            .pairs
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| ([Op::ALL[i / OP_COUNT], Op::ALL[i % OP_COUNT]], n))
            .collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v
    }

    /// Executed adjacent triples, hottest first.
    pub fn hot_triples(&self) -> Vec<([Op; 3], u64)> {
        let mut v: Vec<([Op; 3], u64)> = self
            .triples
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                (
                    [
                        Op::ALL[i / (OP_COUNT * OP_COUNT)],
                        Op::ALL[(i / OP_COUNT) % OP_COUNT],
                        Op::ALL[i % OP_COUNT],
                    ],
                    n,
                )
            })
            .collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v
    }
}

// The matrices are megabytes of mostly-zero counters; summarize instead
// of dumping them into every `VmOutcome` debug print.
impl fmt::Debug for FusionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FusionProfile")
            .field("pairs", &self.hot_pairs().len())
            .field("triples", &self.hot_triples().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_covers_the_enum() {
        // `Op` is `repr(u8)` with sequential discriminants; the handler
        // table is indexed by `op as usize`, so the last variant pins the
        // size.
        assert_eq!(OP_COUNT, 63);
        assert_eq!(Op::Halt as usize, 32);
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(*op as usize, i, "ALL out of discriminant order");
        }
    }

    #[test]
    fn profile_counts_only_adjacent_pcs() {
        let mut p = FusionProfile::default();
        p.step(10, Op::Load);
        p.step(11, Op::Select); // adjacent: pair
        p.step(12, Op::Store); // adjacent: pair + triple
        p.step(40, Op::Load); // branch taken: no pair
        p.step(41, Op::Ret); // adjacent again, but no triple
        let pairs = p.hot_pairs();
        assert_eq!(pairs.len(), 3);
        for want in [
            ([Op::Load, Op::Select], 1),
            ([Op::Select, Op::Store], 1),
            ([Op::Load, Op::Ret], 1),
        ] {
            assert!(pairs.contains(&want), "missing {want:?}");
        }
        assert_eq!(
            p.hot_triples(),
            vec![([Op::Load, Op::Select, Op::Store], 1)]
        );
    }
}
