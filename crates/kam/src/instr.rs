//! Bytecode instruction set of the abstract machine.

use kit_lambda::exp::Prim;
use kit_lambda::ty::LTy;

/// A label id, resolved to a code address through
/// [`Program::label_addrs`].
pub type Label = usize;

/// How a place (region variable) is resolved at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegSlot {
    /// Global region: index into the program's global region list (also
    /// its runtime region id, since globals are created first and never
    /// popped).
    Global(u32),
    /// `letregion`-bound infinite region: index into the current frame's
    /// region list.
    Local(u32),
    /// Formal region parameter of the current function.
    Formal(u32),
    /// Region handle captured in the current closure (field index).
    EnvReg(u32),
    /// Finite region: word offset of the slot in the current frame's
    /// finite area.
    Finite(u32),
}

/// How a datatype's constructors are discriminated at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disc {
    /// Boxed values carry the constructor index in the tag word (tagged
    /// mode).
    Tag,
    /// Boxed values carry a scalar discriminant in word 0 (untagged mode,
    /// several boxed constructors).
    Field0,
    /// No runtime discriminant on boxed values: the datatype has exactly
    /// one boxed constructor, whose index is given.
    Single(u32),
    /// All constructors are nullary scalars.
    Enum,
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push a precomputed constant word (tagged int/bool/unit, code label
    /// scalar).
    PushConst(u64),
    /// Push a constant string (interned into the data segment; never
    /// traversed by the collector).
    PushStr(String),
    /// Pop a tuple pointer and push its `n` fields (used to build a
    /// constructor block from a non-syntactic tuple argument).
    Spread {
        /// Field count.
        n: u16,
    },
    /// Trap for exhaustive switches with no default (never executed).
    Unreachable,
    /// Push a boxed real allocated at the place.
    PushReal(f64, RegSlot),
    /// Push the value of local slot `n`.
    Load(u32),
    /// Pop into local slot `n`.
    Store(u32),
    /// Pop and discard.
    Pop,
    /// Pop `n` fields (last on top) and allocate a record at the place.
    /// Used for tuples, closures (field 0 = code label scalar) and shared
    /// closures.
    MkRecord {
        /// Field count.
        n: u16,
        /// Allocation place.
        at: RegSlot,
    },
    /// Push field `i` of the box on top of the stack.
    Select(u16),
    /// Pop `n` fields and allocate a constructor block.
    MkCon {
        /// Constructor index.
        ctor: u16,
        /// Field count (inlined tuple components).
        n: u16,
        /// Store a scalar discriminant word (untagged multi-boxed).
        disc: bool,
        /// Allocation place.
        at: RegSlot,
    },
    /// Adjust a constructor pointer past its discriminant word (untagged
    /// multi-boxed datatypes); identity otherwise — not emitted then.
    DeConAdj,
    /// Pop a constructor value and branch on its constructor index.
    SwitchCon {
        /// How boxed values are discriminated.
        disc: Disc,
        /// `(constructor, target)` pairs.
        arms: Vec<(u32, Label)>,
        /// Fallthrough target.
        default: Label,
    },
    /// Pop an int and branch.
    SwitchInt {
        /// `(value, target)` pairs.
        arms: Vec<(i64, Label)>,
        /// Fallthrough target.
        default: Label,
    },
    /// Pop a string and branch.
    SwitchStr {
        /// `(constant, target)` pairs.
        arms: Vec<(String, Label)>,
        /// Fallthrough target.
        default: Label,
    },
    /// Pop an exception value and branch on its constructor.
    SwitchExn {
        /// `(exception id, target)` pairs.
        arms: Vec<(u32, Label)>,
        /// Fallthrough target.
        default: Label,
    },
    /// Unconditional jump.
    Jump(Label),
    /// Pop a bool; jump if false.
    JumpIfFalse(Label),
    /// Primitive application; pops the arguments, pushes the result.
    /// Allocating primitives carry their place.
    Prim {
        /// The operation.
        p: Prim,
        /// Allocation place for allocating primitives.
        at: Option<RegSlot>,
    },
    /// Push the region handle (scalar) for a place — used to pass actual
    /// regions at region-polymorphic calls and into closures.
    RegHandle(RegSlot),
    /// Known call: stack holds `[env, rhandles.., args..]` (args on top).
    Call {
        /// Entry point.
        label: Label,
        /// Value arguments.
        nargs: u16,
        /// Region arguments.
        nformals: u16,
        /// Reuse the current frame (tail call).
        tail: bool,
    },
    /// Unknown call: stack holds `[closure, args..]`; the code label is
    /// field 0 of the closure, the environment is the closure itself.
    CallClos {
        /// Value arguments.
        nargs: u16,
        /// Reuse the current frame (tail call).
        tail: bool,
    },
    /// Stub entry for an escaping region-polymorphic function: the
    /// environment is a pair `[stub_label, shared, rhandles..]`; unpack it
    /// and fall through to the main entry.
    EnterViaPair {
        /// Number of packed region handles.
        nformals: u16,
    },
    /// Return the top of stack to the caller.
    Ret,
    /// Function prologue: safe point (collect if requested).
    GcCheck,
    /// Push `n` infinite regions (profiling names given).
    LetRegion {
        /// Region variable names, for the profiler.
        names: Vec<u32>,
    },
    /// Pop the newest `n` infinite regions of this frame.
    EndRegions(u16),
    /// Install an exception handler running at `handler`.
    PushHandler {
        /// Handler entry.
        handler: Label,
    },
    /// Remove the most recent handler.
    PopHandler,
    /// Pop `[arg?]`, allocate/produce an exception value.
    MkExn {
        /// Exception id.
        exn: u32,
        /// Whether an argument is popped.
        has_arg: bool,
        /// Allocation place for carrying exceptions.
        at: Option<RegSlot>,
    },
    /// Push the argument of the exception value on top of the stack.
    DeExn,
    /// Pop an exception value and raise it.
    Raise,
    /// Terminate with the top of stack as the program result.
    Halt,
}

/// Metadata for one compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunInfo {
    /// Entry label.
    pub entry: Label,
    /// Number of local slots (including slot 0 = environment and the
    /// parameter slots).
    pub nlocals: u32,
    /// Words of finite-region space in the frame.
    pub nfinite: u32,
    /// Display name.
    pub name: String,
}

/// A compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Flat instruction stream.
    pub code: Vec<Instr>,
    /// Label id → code address.
    pub label_addrs: Vec<usize>,
    /// Per-function frame metadata, indexed by the function id stored at
    /// `entry_of`.
    pub funs: Vec<FunInfo>,
    /// Map from entry label to function id (parallel to `funs`).
    pub entry_of: std::collections::HashMap<Label, u32>,
    /// Top-level "function" (program body) id.
    pub main: u32,
    /// Global regions: `(name, finite?)`; finite globals give (name, slot).
    pub global_infinite: Vec<u32>,
    /// Exception names for diagnostics.
    pub exn_names: Vec<String>,
    /// Result type, for rendering the final value.
    pub result_ty: LTy,
    /// Datatype environment (for rendering).
    pub data: kit_lambda::ty::DataEnv,
}
