//! Per-run register translation: the symbolic-stack pass behind
//! [`crate::register::translate`].
//!
//! The translator walks one *run* (a maximal leader-free interval of the
//! unfused linked stream) with a symbolic model of the operand-stack top:
//! a stack of *pending* values ([`PVal`]) that have been pushed in source
//! order but not yet materialized. `Load`/`PushConst` only push a pending
//! entry; consumers then fold their operands straight out of the model —
//! a `Prim` becomes a three-address [`Op::RPrim`], a `Store` of a pending
//! local becomes a register-to-register `LoadStore`, a `JumpIfFalse` of a
//! pending local becomes [`Op::RJumpIfFalse`] — and anything the model
//! cannot absorb *flushes*: pending entries are emitted as real
//! `Load`/`PushConst` instructions, oldest first, so the physical stack
//! always holds a prefix of the conceptual stack and never reorders.
//!
//! Two invariants carry the equivalence proof:
//!
//! 1. **Cost preservation.** Every emitted instruction charges the number
//!    of source instructions it stands for; elided pushes defer their
//!    cost onto the consumer (or onto a trailing [`Op::RNop`] when a
//!    `Pop` annihilates a pending value and nothing follows in the run).
//!    Summing the cost stream reproduces the unfused instruction count
//!    exactly, so fuel, stats, and the GC schedule match the stack
//!    engines bit for bit.
//! 2. **Observation points see the physical stack.** The runtime samples
//!    `mem_bytes()` — which includes the operand stack — inside
//!    allocation paths, at collections, and at frame pushes; exception
//!    unwinding snapshots the stack too. Every instruction that can
//!    allocate, collect, call, raise, or branch therefore flushes all
//!    pending entries below its folded operands before it executes, so
//!    the physical stack at every observable instant equals the stack
//!    machine's.
//!
//! Barrier instructions (calls, switches, allocation, region ops,
//! handler ops, `Raise`, `Halt`, `GcCheck`, `RegHandle`) flush everything
//! and are emitted verbatim. Local-overwrite hazards are handled at the
//! only non-barrier writers (`Store` folds and prim store-folds): any
//! pending read of the overwritten slot is flushed first, so a pending
//! `Local` never goes stale.

use crate::link::LInstr;
use crate::register::RegCode;
use crate::threaded::{Args, Op};
use kit_lambda::exp::Prim;

/// A value pushed in source order but not yet materialized on the
/// physical operand stack. Pending entries always sit *above* every
/// physical entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PVal {
    /// The value of local slot `i` at push time (kept valid by the
    /// overwrite-hazard flushes).
    Local(u32),
    /// An immediate word.
    Const(u64),
}

/// Operand-mode nibble for `RPrim`/`RPrimJump` (`Args::n` holds
/// `amode | bmode << 4`).
const MODE_LOCAL: u16 = 1;
const MODE_CONST: u16 = 2;

struct RunTranslator<'a> {
    out: &'a mut RegCode,
    /// Symbolic stack top (oldest first).
    pend: Vec<PVal>,
    /// Cost owed by annihilated push/pop pairs, absorbed by the next
    /// emission (or a trailing `RNop`).
    carry: u32,
}

impl RunTranslator<'_> {
    /// Emits a base or fused instruction through the normal SoA encoder.
    fn emit(&mut self, ins: LInstr, cost: u32) {
        self.out.code.push_linstr(ins);
        self.out.costs.push(cost + std::mem::take(&mut self.carry));
    }

    /// Emits a register-form op (no `LInstr` equivalent).
    fn emit_reg(&mut self, op: Op, x: Args, cost: u32) {
        self.out.code.ops.push(op);
        self.out.code.args.push(x);
        self.out.costs.push(cost + std::mem::take(&mut self.carry));
    }

    fn flush_one(&mut self, pv: PVal) {
        match pv {
            PVal::Local(i) => self.emit(LInstr::Load(i), 1),
            PVal::Const(k) => self.emit(LInstr::PushConst(k), 1),
        }
    }

    /// Materializes all pending entries except the top `keep`, oldest
    /// first, preserving the conceptual stack order.
    fn flush_below(&mut self, keep: usize) {
        let cut = self.pend.len() - keep;
        let mut pend = std::mem::take(&mut self.pend);
        for pv in pend.drain(..cut) {
            self.flush_one(pv);
        }
        self.pend = pend;
    }

    fn flush_all(&mut self) {
        self.flush_below(0);
    }

    /// Overwrite-hazard flush before a write to local `j`: materializes
    /// the pending prefix up to and including the last pending read of
    /// `j`, so no stale `Local(j)` survives the write. Entries above it
    /// stay pending (they read other slots or constants).
    fn flush_through_local(&mut self, j: u32) {
        if let Some(idx) = self.pend.iter().rposition(|&pv| pv == PVal::Local(j)) {
            let mut pend = std::mem::take(&mut self.pend);
            for pv in pend.drain(..=idx) {
                self.flush_one(pv);
            }
            self.pend = pend;
        }
    }

    /// Translates a `Prim`, folding up to two pending operands and an
    /// adjacent `Store`/`JumpIfFalse`. Returns the number of source
    /// instructions consumed (1 or 2).
    fn prim(&mut self, p: Prim, at: Option<crate::instr::RegSlot>, next: Option<&LInstr>) -> usize {
        let raising = can_raise(p);
        let mut keep = prim_arity(p).min(2).min(self.pend.len());
        // Only one immediate slot (`Args::k`): with two pending
        // constants, materialize everything below the top one.
        if keep == 2
            && matches!(self.pend[self.pend.len() - 1], PVal::Const(_))
            && matches!(self.pend[self.pend.len() - 2], PVal::Const(_))
        {
            self.flush_below(1);
            keep = 1;
        }
        // Everything below the folded operands is materialized: an
        // allocating prim observes the stack (peak bytes), a raising
        // prim unwinds it, and an unfolded result pushes onto it — all
        // three need the physical stack to match the stack machine's.
        self.flush_below(keep);

        // Fold a following `Store`/`JumpIfFalse`. Never on raising
        // prims: the folded tail would be charged (and skipped) on the
        // exception path. Operand folds stay legal there — the handler
        // stages folded operands back onto the stack before `do_prim`,
        // so the raise point is unchanged.
        let store_j = match next {
            Some(LInstr::Store(j)) if !raising && *j <= u16::MAX as u32 => Some(*j),
            _ => None,
        };
        let jump_t = match next {
            Some(LInstr::JumpIfFalse(t)) if !raising && store_j.is_none() => Some(*t),
            _ => None,
        };

        if keep == 0 {
            // No pending operands: the plain (or pair-fused) op already
            // expresses this.
            return match jump_t {
                Some(target) => {
                    self.emit(LInstr::PrimJump { p, at, target }, 2);
                    2
                }
                None if store_j.is_none() => {
                    self.emit(LInstr::Prim { p, at }, 1);
                    1
                }
                None => {
                    // Store-fold with both operands physical.
                    let mut x = Args::zero();
                    x.p = p;
                    x.at = at;
                    x.flag = true;
                    x.m = store_j.unwrap() as u16;
                    self.emit_reg(Op::RPrim, x, 2);
                    2
                }
            };
        }

        let mut x = Args::zero();
        x.p = p;
        x.at = at;
        // B is the top-of-stack operand; unary prims use the B slot only.
        let bm = match self.pend.pop().unwrap() {
            PVal::Local(i) => {
                x.b = i;
                MODE_LOCAL
            }
            PVal::Const(k) => {
                x.k = k;
                MODE_CONST
            }
        };
        let am = if keep == 2 {
            match self.pend.pop().unwrap() {
                PVal::Local(i) => {
                    x.a = i;
                    MODE_LOCAL
                }
                PVal::Const(k) => {
                    x.k = k;
                    MODE_CONST
                }
            }
        } else {
            0
        };
        x.n = am | (bm << 4);
        let folded = keep as u32;
        match (store_j, jump_t) {
            (Some(j), _) => {
                x.flag = true;
                x.m = j as u16;
                self.emit_reg(Op::RPrim, x, folded + 2);
                2
            }
            (None, Some(t)) => {
                x.t = t;
                self.emit_reg(Op::RPrimJump, x, folded + 2);
                2
            }
            (None, None) => {
                self.emit_reg(Op::RPrim, x, folded + 1);
                1
            }
        }
    }
}

/// Translates the run `code[start..end]` (leader-free after `start`),
/// appending to `out`. The symbolic stack starts and ends empty: runs
/// begin at branch targets, where only physical values exist, and every
/// run-exiting instruction flushes.
pub(crate) fn translate_run(code: &[LInstr], start: usize, end: usize, out: &mut RegCode) {
    let mut t = RunTranslator {
        out,
        pend: Vec::new(),
        carry: 0,
    };
    let mut pc = start;
    while pc < end {
        // Lookahead for tail folds, bounded by the run (a fold across a
        // leader would swallow a branch target).
        let next = if pc + 1 < end {
            Some(&code[pc + 1])
        } else {
            None
        };
        let mut consumed = 1;
        match &code[pc] {
            LInstr::Load(i) => t.pend.push(PVal::Local(*i)),
            LInstr::PushConst(k) => t.pend.push(PVal::Const(*k)),
            LInstr::Pop => {
                if t.pend.pop().is_some() {
                    // A pending push and its pop annihilate; their two
                    // source instructions are charged to the next
                    // emission.
                    t.carry += 2;
                } else {
                    t.emit(LInstr::Pop, 1);
                }
            }
            LInstr::Store(j) => {
                let j = *j;
                match t.pend.pop() {
                    Some(PVal::Local(i)) => {
                        t.flush_through_local(j);
                        t.emit(LInstr::LoadStore { i, j }, 2);
                    }
                    Some(PVal::Const(k)) => {
                        t.flush_through_local(j);
                        let mut x = Args::zero();
                        x.k = k;
                        x.a = j;
                        t.emit_reg(Op::RStoreConst, x, 2);
                    }
                    None => t.emit(LInstr::Store(j), 1),
                }
            }
            LInstr::Select(sel) => {
                let sel = *sel;
                let store_j = match next {
                    Some(LInstr::Store(j)) => Some(*j),
                    _ => None,
                };
                // A pending constant can't be selected from in well-typed
                // code; materialize and treat the operand as physical.
                let top_local = match t.pend.last() {
                    Some(PVal::Local(i)) => Some(*i),
                    Some(PVal::Const(_)) => {
                        t.flush_all();
                        None
                    }
                    None => None,
                };
                match (top_local, store_j) {
                    (Some(i), Some(j)) if j <= u16::MAX as u32 => {
                        t.pend.pop();
                        t.flush_through_local(j);
                        t.emit(LInstr::LoadSelectStore { i, sel, j }, 3);
                        consumed = 2;
                    }
                    (Some(i), _) => {
                        t.pend.pop();
                        // The field value is pushed physically; nothing
                        // pending may remain below it.
                        t.flush_all();
                        t.emit(LInstr::LoadSelect { i, sel }, 2);
                    }
                    (None, Some(j)) if t.pend.is_empty() => {
                        t.emit(LInstr::SelectStore { sel, j }, 2);
                        consumed = 2;
                    }
                    (None, _) => {
                        t.flush_all();
                        t.emit(LInstr::Select(sel), 1);
                    }
                }
            }
            LInstr::Prim { p, at } => {
                consumed = t.prim(*p, *at, next);
            }
            LInstr::JumpIfFalse(target) => {
                let target = *target;
                match t.pend.pop() {
                    Some(PVal::Local(i)) => {
                        t.flush_all();
                        let mut x = Args::zero();
                        x.a = i;
                        x.t = target;
                        t.emit_reg(Op::RJumpIfFalse, x, 2);
                    }
                    Some(PVal::Const(k)) => {
                        t.flush_all();
                        t.emit(LInstr::PushConstJumpIfFalse { k, target }, 2);
                    }
                    None => t.emit(LInstr::JumpIfFalse(target), 1),
                }
            }
            LInstr::SwitchCon {
                disc,
                arms,
                default,
            } => match t.pend.pop() {
                Some(PVal::Local(i)) => {
                    t.flush_all();
                    t.emit(
                        LInstr::LoadSwitchCon {
                            i,
                            disc: *disc,
                            arms: arms.clone(),
                            default: *default,
                        },
                        2,
                    );
                }
                other => {
                    if let Some(pv) = other {
                        t.pend.push(pv);
                    }
                    t.flush_all();
                    t.emit(
                        LInstr::SwitchCon {
                            disc: *disc,
                            arms: arms.clone(),
                            default: *default,
                        },
                        1,
                    );
                }
            },
            LInstr::Ret => match t.pend.pop() {
                Some(PVal::Local(i)) => {
                    t.flush_all();
                    let mut x = Args::zero();
                    x.n = 1;
                    x.a = i;
                    t.emit_reg(Op::RRet, x, 2);
                }
                Some(PVal::Const(k)) => {
                    t.flush_all();
                    let mut x = Args::zero();
                    x.n = 2;
                    x.k = k;
                    t.emit_reg(Op::RRet, x, 2);
                }
                None => t.emit(LInstr::Ret, 1),
            },
            LInstr::GcCheck => {
                // Safe point: the collector walks the stack, so the
                // physical state must be exact — and is, after a full
                // flush. The hot dispatch-shaped triple is fused.
                t.flush_all();
                let fused = if pc + 2 < end {
                    match (&code[pc + 1], &code[pc + 2]) {
                        (
                            LInstr::Load(i),
                            LInstr::SwitchCon {
                                disc,
                                arms,
                                default,
                            },
                        ) => {
                            t.emit(
                                LInstr::GcCheckLoadSwitchCon {
                                    i: *i,
                                    disc: *disc,
                                    arms: arms.clone(),
                                    default: *default,
                                },
                                3,
                            );
                            true
                        }
                        _ => false,
                    }
                } else {
                    false
                };
                if fused {
                    consumed = 3;
                } else {
                    t.emit(LInstr::GcCheck, 1);
                }
            }
            LInstr::RegHandle(a) => {
                // `region_of` reads the live region pools, so handles
                // can't be deferred; pair the common double-push.
                t.flush_all();
                if let Some(LInstr::RegHandle(b)) = next {
                    t.emit(LInstr::RegHandleRegHandle { a: *a, b: *b }, 2);
                    consumed = 2;
                } else {
                    t.emit(LInstr::RegHandle(*a), 1);
                }
            }
            // Everything else is a barrier: it allocates, collects,
            // calls, raises, branches indirectly, or manipulates
            // regions/handlers — all of which observe the physical
            // stack. Flush and emit verbatim.
            ins => {
                debug_assert_eq!(ins.cost(), 1, "translator expects an unfused stream");
                t.flush_all();
                t.emit(ins.clone(), 1);
            }
        }
        pc += consumed;
    }
    t.flush_all();
    if t.carry > 0 {
        t.emit_reg(Op::RNop, Args::zero(), 0);
    }
}

/// Operand count of a prim (how many stack slots it pops).
fn prim_arity(p: Prim) -> usize {
    use Prim::*;
    match p {
        IAdd | ISub | IMul | IDiv | IMod | ILt | ILe | IGt | IGe | IEq | RAdd | RSub | RMul
        | RDiv | RLt | RLe | RGt | RGe | REq | StrEq | StrLt | StrConcat | StrSub | ArrNew
        | ArrSub | RefSet | RefEq | ArrEq => 2,
        INeg | IAbs | RNeg | RAbs | IntToReal | Floor | Trunc | Sqrt | Sin | Cos | Atan | Ln
        | Exp | StrSize | ItoS | RtoS | Chr | Print | RefNew | RefGet | ArrLen => 1,
        ArrUpd => 3,
    }
}

/// Prims whose `do_prim` can return a builtin exception (the `Err`
/// arms in [`crate::vm`]): overflow/div on int arithmetic, subscript
/// on string/array indexing, size on array allocation.
fn can_raise(p: Prim) -> bool {
    use Prim::*;
    matches!(
        p,
        IAdd | ISub | IMul | INeg | IAbs | IDiv | IMod | StrSub | Chr | ArrNew | ArrSub | ArrUpd
    )
}
