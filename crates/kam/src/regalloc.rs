//! Register translation: the symbolic-stack pass behind
//! [`crate::register::translate`].
//!
//! The translator walks one *run* (a maximal leader-free interval of the
//! unfused linked stream) with a symbolic model of the operand-stack top:
//! a stack of *pending* values ([`PVal`]) that have been pushed in source
//! order but not yet materialized. `Load`/`PushConst` only push a pending
//! entry; consumers then fold their operands straight out of the model —
//! a `Prim` becomes a three-address [`Op::RPrim`], a `Store` of a pending
//! local becomes a register-to-register `LoadStore`, a `JumpIfFalse` of a
//! pending local becomes [`Op::RJumpIfFalse`] — and anything the model
//! cannot absorb *flushes*: pending entries are emitted as real
//! `Load`/`PushConst` instructions, oldest first, so the physical stack
//! always holds a prefix of the conceptual stack and never reorders.
//!
//! Since PR 4 the model also crosses basic-block edges. A function-level
//! dataflow pass ([`FlowShapes`]) computes, for every leader, the
//! *entry shape*: the pending suffix that every predecessor agrees to
//! leave unmaterialized across the edge. The meet is the longest common
//! suffix under value equality (only suffixes are reachable by partial
//! flushes — flushing always materializes oldest-first), and the lattice
//! starts at ⊤ (unreached) and only shrinks toward the always-safe empty
//! shape, so a block reached along disagreeing paths simply falls back
//! to a flush on the offending edges. Entry-style leaders (function
//! entries, `CallClos` labels, handler targets, the rarely-taken switch
//! families) are pinned empty: their frames or unwind snapshots start
//! from a bare physical stack.
//!
//! Two invariants carry the equivalence proof:
//!
//! 1. **Cost preservation.** Every emitted instruction charges the number
//!    of source instructions it stands for; elided pushes defer their
//!    cost onto the consumer (or onto a trailing [`Op::RNop`] when a
//!    `Pop` annihilates a pending value and nothing follows in the run).
//!    An entry that crosses an edge still pending defers its charge into
//!    the successor block, which consumes or flushes it; on every dynamic
//!    path each source instruction is charged exactly once, so fuel,
//!    stats, and the GC schedule match the stack engines bit for bit.
//!    Statically this is the per-run equation checked after every run:
//!    `sum(costs) == run length + seeded entries - deferred entries`.
//! 2. **Observation points see the physical stack.** The runtime samples
//!    `mem_bytes()` — which includes the operand stack — inside
//!    allocation paths, at collections, and at frame pushes; exception
//!    unwinding snapshots the stack too. Every instruction that can
//!    allocate, collect, call, or raise therefore flushes all pending
//!    entries below its folded operands before it executes, so the
//!    physical stack at every observable instant equals the stack
//!    machine's. Plain branches are *not* observation points: they
//!    neither allocate nor unwind, so agreed entries may stay pending
//!    across them.
//!
//! Barrier instructions (calls, allocation, region ops, handler ops,
//! `Raise`, `Halt`, `GcCheck`, `RegHandle`) flush everything and are
//! emitted verbatim — no pending entry ever crosses a frame boundary or
//! a safe point. Local-overwrite hazards are handled at the only
//! non-barrier writers (`Store` folds and prim store-folds): any pending
//! read of the overwritten slot is flushed first, so a pending `Local`
//! never goes stale — including entries seeded across an edge, because
//! they sit in the same pending stack and the hazard scan sees them.

use crate::link::LInstr;
use crate::register::RegCode;
use crate::threaded::{Args, Op};
use kit_lambda::exp::Prim;

/// A value pushed in source order but not yet materialized on the
/// physical operand stack. Pending entries always sit *above* every
/// physical entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PVal {
    /// The value of local slot `i` at push time (kept valid by the
    /// overwrite-hazard flushes).
    Local(u32),
    /// An immediate word.
    Const(u64),
}

/// Length of the longest common suffix of two pending shapes — the only
/// meet a stack discipline admits, since partial flushes materialize
/// oldest-first and can only expose suffixes.
fn common_suffix(a: &[PVal], b: &[PVal]) -> usize {
    let mut k = 0;
    while k < a.len() && k < b.len() && a[a.len() - 1 - k] == b[b.len() - 1 - k] {
        k += 1;
    }
    k
}

/// Block-entry pending shapes for one translation: the function-level
/// dataflow state. `None` is ⊤ (leader not yet reached); shapes only
/// shrink under [`FlowShapes::edge`], and the empty shape is the
/// always-safe bottom (every predecessor flushes fully).
pub(crate) struct FlowShapes {
    shapes: Vec<Option<Vec<PVal>>>,
    /// Frozen during the emission pass: edges assert the settled shape
    /// instead of meeting into it.
    frozen: bool,
    /// Set while translating the dead tail of a run (code after an
    /// in-run terminator, e.g. a `Jump` behind a `Raise`): such edges
    /// never execute and must not shrink live shapes.
    muted: bool,
    /// Set when a meet changed some shape (fixpoint detection).
    changed: bool,
}

impl FlowShapes {
    pub(crate) fn new(n: usize) -> FlowShapes {
        FlowShapes {
            shapes: vec![None; n],
            frozen: false,
            muted: false,
            changed: false,
        }
    }

    pub(crate) fn set_muted(&mut self, muted: bool) {
        self.muted = muted;
    }

    /// Pins `pc`'s entry shape to empty. Entry-style leaders (function
    /// entries, `CallClos` labels, handler targets, `SwitchInt`/`Str`/
    /// `Exn` arms) always start from a bare physical stack.
    pub(crate) fn pin_empty(&mut self, pc: u32) {
        if let Some(s) = self.shapes.get_mut(pc as usize) {
            *s = Some(Vec::new());
        }
    }

    /// Whether `pc` has been reached by any edge (or pin) so far.
    pub(crate) fn reached(&self, pc: usize) -> bool {
        self.shapes[pc].is_some()
    }

    /// The pending stack a run starts with: its leader's entry shape.
    pub(crate) fn seed(&self, pc: usize) -> Vec<PVal> {
        self.shapes[pc].clone().unwrap_or_default()
    }

    pub(crate) fn start_round(&mut self) {
        self.changed = false;
    }

    pub(crate) fn changed(&self) -> bool {
        self.changed
    }

    pub(crate) fn freeze(&mut self) {
        self.frozen = true;
    }

    /// The safety net if the fixpoint cap trips: every shape collapses
    /// to empty, reproducing per-run translation (every edge flushes).
    pub(crate) fn reset_to_empty(&mut self) {
        for s in &mut self.shapes {
            *s = Some(Vec::new());
        }
    }

    /// Routes one edge. Returns how many of the youngest `pend` entries
    /// may stay pending across it; the caller flushes the rest.
    ///
    /// While iterating, this meets `pend` into the target's entry shape
    /// (longest common suffix). When frozen, it checks the settled shape
    /// is a suffix of `pend` and degrades to a full flush otherwise —
    /// only edges out of flow-unreachable code can disagree, and those
    /// never execute.
    pub(crate) fn edge(&mut self, target: u32, pend: &[PVal]) -> usize {
        let slot = &mut self.shapes[target as usize];
        if self.frozen || self.muted {
            return match slot {
                Some(s) if common_suffix(s, pend) == s.len() => s.len(),
                _ => 0,
            };
        }
        let keep = match slot {
            None => pend.len(),
            Some(s) => common_suffix(s, pend),
        };
        if slot.as_ref().map(Vec::len) != Some(keep) {
            *slot = Some(pend[pend.len() - keep..].to_vec());
            self.changed = true;
        }
        keep
    }

    /// Routes a multi-target edge (a switch). All arms must agree on one
    /// carried shape — the flush happens once, before the dispatch — so
    /// the carry is the minimum over the per-arm meets, re-registered
    /// with every arm.
    pub(crate) fn edge_multi<I>(&mut self, targets: I, pend: &[PVal]) -> usize
    where
        I: Iterator<Item = u32> + Clone,
    {
        let mut keep = pend.len();
        for t in targets.clone() {
            keep = keep.min(self.edge(t, pend));
        }
        if !self.frozen && !self.muted && keep < pend.len() {
            let view = &pend[pend.len() - keep..];
            for t in targets {
                self.edge(t, view);
            }
        }
        keep
    }
}

/// Whether `ins` never falls through to the next pc — the run-exit edge
/// set is then fully routed by the instruction's own arm. Folds never
/// change this: the last source instruction of a run decides.
pub(crate) fn is_terminator(ins: &LInstr) -> bool {
    matches!(
        ins,
        LInstr::Jump(_)
            | LInstr::Ret
            | LInstr::Raise
            | LInstr::Halt
            | LInstr::Unreachable
            | LInstr::SwitchCon { .. }
            | LInstr::SwitchInt { .. }
            | LInstr::SwitchStr { .. }
            | LInstr::SwitchExn { .. }
            | LInstr::Call { tail: true, .. }
            | LInstr::CallClos { tail: true, .. }
    )
}

/// Operand-mode nibble for `RPrim`/`RPrimJump` (`Args::n` holds
/// `amode | bmode << 4`).
const MODE_LOCAL: u16 = 1;
const MODE_CONST: u16 = 2;

struct RunTranslator<'a> {
    out: &'a mut RegCode,
    /// Symbolic stack top (oldest first).
    pend: Vec<PVal>,
    /// Cost owed by annihilated push/pop pairs, absorbed by the next
    /// emission (or a trailing `RNop`).
    carry: u32,
}

impl RunTranslator<'_> {
    /// Emits a base or fused instruction through the normal SoA encoder.
    fn emit(&mut self, ins: LInstr, cost: u32) {
        self.out.code.push_linstr(ins);
        self.out.costs.push(cost + std::mem::take(&mut self.carry));
        self.out.flushed.push(false);
    }

    /// Emits a register-form op (no `LInstr` equivalent).
    fn emit_reg(&mut self, op: Op, x: Args, cost: u32) {
        self.out.code.ops.push(op);
        self.out.code.args.push(x);
        self.out.costs.push(cost + std::mem::take(&mut self.carry));
        self.out.flushed.push(false);
    }

    fn flush_one(&mut self, pv: PVal) {
        match pv {
            PVal::Local(i) => self.emit(LInstr::Load(i), 1),
            PVal::Const(k) => self.emit(LInstr::PushConst(k), 1),
        }
        *self.out.flushed.last_mut().expect("just emitted") = true;
    }

    /// Materializes all pending entries except the top `keep`, oldest
    /// first, preserving the conceptual stack order.
    fn flush_below(&mut self, keep: usize) {
        let cut = self.pend.len() - keep;
        let mut pend = std::mem::take(&mut self.pend);
        for pv in pend.drain(..cut) {
            self.flush_one(pv);
        }
        self.pend = pend;
    }

    fn flush_all(&mut self) {
        self.flush_below(0);
    }

    /// Overwrite-hazard flush before a write to local `j`: materializes
    /// the pending prefix up to and including the last pending read of
    /// `j`, so no stale `Local(j)` survives the write. Entries above it
    /// stay pending (they read other slots or constants).
    fn flush_through_local(&mut self, j: u32) {
        self.flush_through_local_below(j, 0);
    }

    /// Like [`Self::flush_through_local`], but the top `keep` entries are
    /// a prim's folded operands — read before the write happens — and are
    /// exempt from the hazard scan.
    fn flush_through_local_below(&mut self, j: u32, keep: usize) {
        let limit = self.pend.len() - keep;
        if let Some(idx) = self.pend[..limit]
            .iter()
            .rposition(|&pv| pv == PVal::Local(j))
        {
            let mut pend = std::mem::take(&mut self.pend);
            for pv in pend.drain(..=idx) {
                self.flush_one(pv);
            }
            self.pend = pend;
        }
    }

    /// Translates a `Prim`, folding up to two pending operands and an
    /// adjacent `Store`/`JumpIfFalse`. Returns the number of source
    /// instructions consumed (1 or 2).
    fn prim(
        &mut self,
        p: Prim,
        at: Option<crate::instr::RegSlot>,
        next: Option<&LInstr>,
        flow: &mut FlowShapes,
    ) -> usize {
        let raising = can_raise(p);
        let mut keep = prim_arity(p).min(2).min(self.pend.len());
        // Only one immediate slot (`Args::k`): with two pending
        // constants, materialize everything below the top one.
        if keep == 2
            && matches!(self.pend[self.pend.len() - 1], PVal::Const(_))
            && matches!(self.pend[self.pend.len() - 2], PVal::Const(_))
        {
            self.flush_below(1);
            keep = 1;
        }

        // Fold a following `Store`/`JumpIfFalse`. Never on raising
        // prims: the folded tail would be charged (and skipped) on the
        // exception path. Operand folds stay legal there — the handler
        // stages folded operands back onto the stack before `do_prim`,
        // so the raise point is unchanged.
        let store_j = match next {
            Some(LInstr::Store(j)) if !raising && *j <= u16::MAX as u32 => Some(*j),
            _ => None,
        };
        let jump_t = match next {
            Some(LInstr::JumpIfFalse(t)) if !raising && store_j.is_none() => Some(*t),
            _ => None,
        };

        // A fully folded, non-raising, non-allocating prim (result into a
        // local or a branch) touches neither the stack nor any
        // observation point, so carried entries below its operands may
        // stay pending. Every other shape materializes them: an
        // allocating prim observes the stack (peak bytes), a raising prim
        // unwinds it, and an unfolded result pushes onto it.
        let carries = !raising && at.is_none() && (store_j.is_some() || jump_t.is_some());
        if !carries {
            self.flush_below(keep);
        } else if let Some(j) = store_j {
            self.flush_through_local_below(j, keep);
        }

        if keep == 0 {
            // No pending operands: the plain (or pair-fused) op already
            // expresses this.
            return match jump_t {
                Some(target) => {
                    flow.edge(target, &[]);
                    self.emit(LInstr::PrimJump { p, at, target }, 2);
                    2
                }
                None if store_j.is_none() => {
                    self.emit(LInstr::Prim { p, at }, 1);
                    1
                }
                None => {
                    // Store-fold with both operands physical.
                    let mut x = Args::zero();
                    x.p = p;
                    x.at = at;
                    x.flag = true;
                    x.m = store_j.unwrap() as u16;
                    self.emit_reg(Op::RPrim, x, 2);
                    2
                }
            };
        }

        let mut x = Args::zero();
        x.p = p;
        x.at = at;
        // B is the top-of-stack operand; unary prims use the B slot only.
        let bm = match self.pend.pop().unwrap() {
            PVal::Local(i) => {
                x.b = i;
                MODE_LOCAL
            }
            PVal::Const(k) => {
                x.k = k;
                MODE_CONST
            }
        };
        let am = if keep == 2 {
            match self.pend.pop().unwrap() {
                PVal::Local(i) => {
                    x.a = i;
                    MODE_LOCAL
                }
                PVal::Const(k) => {
                    x.k = k;
                    MODE_CONST
                }
            }
        } else {
            0
        };
        x.n = am | (bm << 4);
        let folded = keep as u32;
        match (store_j, jump_t) {
            (Some(j), _) => {
                x.flag = true;
                x.m = j as u16;
                self.emit_reg(Op::RPrim, x, folded + 2);
                2
            }
            (None, Some(t)) => {
                // Carried entries cross both the taken edge and the
                // fallthrough; flush down to the shape the target agreed
                // to first.
                let edge_keep = flow.edge(t, &self.pend);
                self.flush_below(edge_keep);
                x.t = t;
                self.emit_reg(Op::RPrimJump, x, folded + 2);
                2
            }
            (None, None) => {
                self.emit_reg(Op::RPrim, x, folded + 1);
                1
            }
        }
    }
}

/// Translates the run `code[start..end]` (leader-free after `start`),
/// appending to `out`. The symbolic stack starts as the leader's entry
/// shape from `flow` and routes every outgoing edge back through `flow`,
/// so agreed entries stay in register form across branches. Used both to
/// simulate (fixpoint rounds into a scratch `RegCode`) and to emit
/// (frozen `flow`): the two phases run the same code, so they cannot
/// disagree.
pub(crate) fn translate_run(
    code: &[LInstr],
    start: usize,
    end: usize,
    out: &mut RegCode,
    flow: &mut FlowShapes,
) {
    let seed = flow.seed(start);
    let seed_len = seed.len() as u64;
    let first = out.costs.len();
    flow.set_muted(false);
    let mut t = RunTranslator {
        out,
        pend: seed,
        carry: 0,
    };
    let mut pc = start;
    while pc < end {
        // Lookahead for tail folds, bounded by the run (a fold across a
        // leader would swallow a branch target).
        let next = if pc + 1 < end {
            Some(&code[pc + 1])
        } else {
            None
        };
        let mut consumed = 1;
        match &code[pc] {
            LInstr::Load(i) => t.pend.push(PVal::Local(*i)),
            LInstr::PushConst(k) => t.pend.push(PVal::Const(*k)),
            LInstr::Pop => {
                if t.pend.pop().is_some() {
                    // A pending push and its pop annihilate; their two
                    // source instructions are charged to the next
                    // emission.
                    t.carry += 2;
                } else {
                    t.emit(LInstr::Pop, 1);
                }
            }
            LInstr::Store(j) => {
                let j = *j;
                match t.pend.pop() {
                    Some(PVal::Local(i)) => {
                        t.flush_through_local(j);
                        t.emit(LInstr::LoadStore { i, j }, 2);
                    }
                    Some(PVal::Const(k)) => {
                        t.flush_through_local(j);
                        let mut x = Args::zero();
                        x.k = k;
                        x.a = j;
                        t.emit_reg(Op::RStoreConst, x, 2);
                    }
                    None => t.emit(LInstr::Store(j), 1),
                }
            }
            LInstr::Select(sel) => {
                let sel = *sel;
                let store_j = match next {
                    Some(LInstr::Store(j)) => Some(*j),
                    _ => None,
                };
                // A pending constant can't be selected from in well-typed
                // code; materialize and treat the operand as physical.
                let top_local = match t.pend.last() {
                    Some(PVal::Local(i)) => Some(*i),
                    Some(PVal::Const(_)) => {
                        t.flush_all();
                        None
                    }
                    None => None,
                };
                match (top_local, store_j) {
                    (Some(i), Some(j)) if j <= u16::MAX as u32 => {
                        t.pend.pop();
                        t.flush_through_local(j);
                        t.emit(LInstr::LoadSelectStore { i, sel, j }, 3);
                        consumed = 2;
                    }
                    (Some(i), _) => {
                        t.pend.pop();
                        // The field value is pushed physically; nothing
                        // pending may remain below it.
                        t.flush_all();
                        t.emit(LInstr::LoadSelect { i, sel }, 2);
                    }
                    (None, Some(j)) if t.pend.is_empty() => {
                        t.emit(LInstr::SelectStore { sel, j }, 2);
                        consumed = 2;
                    }
                    (None, _) => {
                        t.flush_all();
                        t.emit(LInstr::Select(sel), 1);
                    }
                }
            }
            LInstr::Prim { p, at } => {
                consumed = t.prim(*p, *at, next, flow);
            }
            LInstr::Jump(target) => {
                // Plain branch: not an observation point. Flush down to
                // the shape the target agreed with all predecessors and
                // carry the rest across the edge.
                let target = *target;
                let keep = flow.edge(target, &t.pend);
                t.flush_below(keep);
                t.emit(LInstr::Jump(target), 1);
            }
            LInstr::JumpIfFalse(target) => {
                let target = *target;
                match t.pend.pop() {
                    Some(PVal::Local(i)) => {
                        let keep = flow.edge(target, &t.pend);
                        t.flush_below(keep);
                        let mut x = Args::zero();
                        x.a = i;
                        x.t = target;
                        t.emit_reg(Op::RJumpIfFalse, x, 2);
                    }
                    Some(PVal::Const(k)) => {
                        let keep = flow.edge(target, &t.pend);
                        t.flush_below(keep);
                        t.emit(LInstr::PushConstJumpIfFalse { k, target }, 2);
                    }
                    None => {
                        // The condition is physical, so nothing is
                        // pending below it either.
                        flow.edge(target, &[]);
                        t.emit(LInstr::JumpIfFalse(target), 1);
                    }
                }
            }
            LInstr::SwitchCon {
                disc,
                arms,
                default,
            } => {
                // The dispatch itself observes nothing; entries below
                // the scrutinee may carry if every arm agrees.
                let targets = arms
                    .iter()
                    .map(|&(_, pc)| pc)
                    .chain(std::iter::once(*default));
                match t.pend.pop() {
                    Some(PVal::Local(i)) => {
                        let keep = flow.edge_multi(targets, &t.pend);
                        t.flush_below(keep);
                        t.emit(
                            LInstr::LoadSwitchCon {
                                i,
                                disc: *disc,
                                arms: arms.clone(),
                                default: *default,
                            },
                            2,
                        );
                    }
                    other => {
                        if let Some(pv) = other {
                            t.pend.push(pv);
                        }
                        // The scrutinee is popped physically, so nothing
                        // may stay pending below it.
                        t.flush_all();
                        flow.edge_multi(targets, &[]);
                        t.emit(
                            LInstr::SwitchCon {
                                disc: *disc,
                                arms: arms.clone(),
                                default: *default,
                            },
                            1,
                        );
                    }
                }
            }
            LInstr::Ret => match t.pend.pop() {
                Some(PVal::Local(i)) => {
                    t.flush_all();
                    let mut x = Args::zero();
                    x.n = 1;
                    x.a = i;
                    t.emit_reg(Op::RRet, x, 2);
                }
                Some(PVal::Const(k)) => {
                    t.flush_all();
                    let mut x = Args::zero();
                    x.n = 2;
                    x.k = k;
                    t.emit_reg(Op::RRet, x, 2);
                }
                None => t.emit(LInstr::Ret, 1),
            },
            LInstr::GcCheck => {
                // Safe point: the collector walks the stack, so the
                // physical state must be exact — and is, after a full
                // flush. The hot dispatch-shaped triple is fused.
                t.flush_all();
                let fused = if pc + 2 < end {
                    match (&code[pc + 1], &code[pc + 2]) {
                        (
                            LInstr::Load(i),
                            LInstr::SwitchCon {
                                disc,
                                arms,
                                default,
                            },
                        ) => {
                            // Register the arm edges even though nothing
                            // carries: a shape met from another
                            // predecessor must still shrink to empty.
                            let targets = arms
                                .iter()
                                .map(|&(_, pc)| pc)
                                .chain(std::iter::once(*default));
                            flow.edge_multi(targets, &[]);
                            t.emit(
                                LInstr::GcCheckLoadSwitchCon {
                                    i: *i,
                                    disc: *disc,
                                    arms: arms.clone(),
                                    default: *default,
                                },
                                3,
                            );
                            true
                        }
                        _ => false,
                    }
                } else {
                    false
                };
                if fused {
                    consumed = 3;
                } else {
                    t.emit(LInstr::GcCheck, 1);
                }
            }
            LInstr::RegHandle(a) => {
                // `region_of` reads the live region pools, so handles
                // can't be deferred; pair the common double-push.
                t.flush_all();
                if let Some(LInstr::RegHandle(b)) = next {
                    t.emit(LInstr::RegHandleRegHandle { a: *a, b: *b }, 2);
                    consumed = 2;
                } else {
                    t.emit(LInstr::RegHandle(*a), 1);
                }
            }
            // Everything else is a barrier: it allocates, collects,
            // calls, raises, branches indirectly, or manipulates
            // regions/handlers — all of which observe the physical
            // stack. Flush and emit verbatim. (The rarely-taken switch
            // families land here; their arms are pinned empty.)
            ins => {
                debug_assert_eq!(ins.cost(), 1, "translator expects an unfused stream");
                t.flush_all();
                t.emit(ins.clone(), 1);
            }
        }
        pc += consumed;
        // Code behind an in-run terminator (a `Jump` emitted after a
        // `Raise`, say) is dead: translate it, but stop its edges from
        // shrinking live shapes.
        if is_terminator(&code[pc - 1]) {
            flow.set_muted(true);
        }
    }
    // Run exit. A terminator routed (or flushed) its edges in its own
    // arm; otherwise control falls through to the next leader — an edge
    // like any other.
    if !is_terminator(&code[end - 1]) {
        if end < code.len() {
            let keep = flow.edge(end as u32, &t.pend);
            t.flush_below(keep);
        } else {
            t.flush_all();
        }
    }
    if t.carry > 0 {
        t.emit_reg(Op::RNop, Args::zero(), 0);
    }
    let deferred = t.pend.len() as u64;
    t.out.seeded += seed_len;
    t.out.deferred += deferred;
    debug_assert_eq!(
        t.out.costs[first..].iter().map(|&c| c as u64).sum::<u64>() + deferred,
        (end - start) as u64 + seed_len,
        "run cost must cover its own instructions plus the consumed seed"
    );
}

/// Operand count of a prim (how many stack slots it pops).
fn prim_arity(p: Prim) -> usize {
    use Prim::*;
    match p {
        IAdd | ISub | IMul | IDiv | IMod | ILt | ILe | IGt | IGe | IEq | RAdd | RSub | RMul
        | RDiv | RLt | RLe | RGt | RGe | REq | StrEq | StrLt | StrConcat | StrSub | ArrNew
        | ArrSub | RefSet | RefEq | ArrEq => 2,
        INeg | IAbs | RNeg | RAbs | IntToReal | Floor | Trunc | Sqrt | Sin | Cos | Atan | Ln
        | Exp | StrSize | ItoS | RtoS | Chr | Print | RefNew | RefGet | ArrLen => 1,
        ArrUpd => 3,
    }
}

/// Prims whose `do_prim` can return a builtin exception (the `Err`
/// arms in [`crate::vm`]): overflow/div on int arithmetic, subscript
/// on string/array indexing, size on array allocation.
fn can_raise(p: Prim) -> bool {
    use Prim::*;
    matches!(
        p,
        IAdd | ISub | IMul | INeg | IAbs | IDiv | IMod | StrSub | Chr | ArrNew | ArrSub | ArrUpd
    )
}
