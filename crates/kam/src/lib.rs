//! Code generation and the abstract machine (paper §3, "Register
//! allocation and instruction selection" — here targeting the ML Kit's
//! bytecode backend rather than x86; see DESIGN.md §4).
//!
//! [`compile()`](compile()) translates RegionExp into stack-machine bytecode whose
//! memory is managed entirely by [`kit_runtime`]: activation records hold
//! locals, operand stack, *finite regions* and the (Rust-side) region
//! environment of `letregion`-bound regions; region-polymorphic calls pass
//! region handles; closures capture both free variables and free region
//! handles (the ML Kit's region vectors).
//!
//! [`vm::Vm`] executes the bytecode with safe points at function entry:
//! when the runtime's free-list drops below the threshold, the next
//! function entry runs the Cheney-for-regions collector with the frames'
//! locals and operand stacks as the root set. (The paper notes that the ML
//! Kit includes *all* top-level variables in the root set and only
//! collects at function entry — both faithfully reproduced here.)
//!
//! Constructor representation follows the ML Kit's untagged scheme:
//! nullary constructors are scalars; a datatype with exactly one boxed
//! constructor needs no runtime discriminant (a cons cell is 2 words
//! untagged, 3 tagged — the ~50% list overhead of Table 1); datatypes with
//! several boxed constructors store a discriminant word in untagged mode,
//! while in tagged mode the tag word carries the constructor index.

pub mod compile;
pub mod disasm;
pub mod fusion_table;
pub mod instr;
pub mod link;
pub mod regalloc;
pub mod register;
pub mod render;
pub mod threaded;
pub mod vm;

pub use compile::compile;
pub use instr::Program;
pub use link::{link, Fusion, LInstr, LinkedProgram};
pub use register::{RSrc, RegCode, RegInstr};
pub use threaded::{FusionProfile, ThreadedCode};
pub use vm::{DispatchMode, Executable, Vm, VmError, VmOutcome};
