//! Register-form code: the post-link translation behind
//! [`DispatchMode::Register`](crate::vm::DispatchMode).
//!
//! [`translate`] rewrites an *unfused* [`LinkedProgram`] into a
//! virtual-register stream: each function body is split at its leaders
//! (branch targets and entries) into runs, and each run goes through the
//! symbolic-stack pass in [`crate::regalloc`], which keeps values in the
//! locals array ("infinite virtual registers" — every local slot is one)
//! and emits three-address ops instead of push/pop traffic. The result
//! reuses the threaded engine's struct-of-arrays layout
//! ([`ThreadedCode`]) plus a parallel per-pc cost stream: register ops
//! replace a *variable* number of stack ops, so their instruction charge
//! can't live in the static [`Op::cost`](crate::threaded::Op::cost)
//! table.
//!
//! The translation renumbers pcs (folded instructions disappear), so a
//! second pass remaps every branch operand, switch row, entry point, and
//! label address. All control-flow targets are leaders, and leaders are
//! never folded into a predecessor, so the remap is total.

use crate::instr::RegSlot;
use crate::link::{LInstr, LinkedProgram};
use crate::regalloc;
use crate::threaded::{Op, ThreadedCode};
use kit_lambda::exp::Prim;

/// A program in register form: the SoA stream plus its dynamic cost
/// table. `code.ops`/`code.args` may contain the six register-only
/// opcodes, which [`ThreadedCode::rebuild`] refuses — use
/// [`RegCode::decode`] instead.
pub struct RegCode {
    /// The instruction stream, in the threaded engine's layout (pcs are
    /// register-form coordinates; label tables already remapped).
    pub code: ThreadedCode,
    /// Per-pc instruction charge: the number of source (stack)
    /// instructions each op stands for. Sums to the unfused source
    /// length.
    pub costs: Vec<u32>,
    /// Source instructions folded away (`source len - ops.len()`).
    pub folded: u64,
}

/// Translates an unfused linked program into register form.
pub fn translate(linked: &LinkedProgram) -> RegCode {
    debug_assert_eq!(
        linked.fused, 0,
        "register translation expects a Fusion::Off stream"
    );
    let n = linked.code.len();

    // Leaders: every branch target or entry. Runs are the maximal
    // leader-free intervals; the symbolic stack never crosses one.
    let mut leader = vec![false; n];
    if n > 0 {
        leader[0] = true;
    }
    for &pc in linked.pc_of_label.iter().chain(&linked.entry_pc) {
        if (pc as usize) < n {
            leader[pc as usize] = true;
        }
    }

    let mut out = RegCode {
        code: ThreadedCode::empty(
            linked.entry_pc.clone(),
            linked.pc_of_label.clone(),
            linked.fun_of_label.clone(),
        ),
        costs: Vec::with_capacity(n),
        folded: 0,
    };

    // Pass 1: translate each run, recording where its leader landed.
    let mut new_pc_of_old = vec![u32::MAX; n];
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && !leader[end] {
            end += 1;
        }
        new_pc_of_old[start] = out.code.ops.len() as u32;
        regalloc::translate_run(&linked.code, start, end, &mut out);
        start = end;
    }
    debug_assert_eq!(
        out.costs.iter().map(|&c| c as u64).sum::<u64>(),
        n as u64,
        "cost stream must cover every source instruction"
    );
    out.folded = (n - out.code.ops.len()) as u64;

    // Pass 2: remap every pc operand to register-form coordinates.
    // Every target is a leader, so the lookup can't hit `u32::MAX`.
    let remap = |pc: u32| -> u32 {
        let new = new_pc_of_old[pc as usize];
        debug_assert_ne!(new, u32::MAX, "branch target {pc} is not a leader");
        new
    };
    for (op, x) in out.code.ops.iter().zip(out.code.args.iter_mut()) {
        match op {
            Op::Jump
            | Op::JumpIfFalse
            | Op::PushConstJumpIfFalse
            | Op::PushHandler
            | Op::Call
            | Op::PrimJump
            | Op::RPrimJump
            | Op::RJumpIfFalse => x.t = remap(x.t),
            _ => {}
        }
    }
    for (_, (arms, default)) in &mut out.code.con_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for (arms, default) in &mut out.code.int_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for (arms, default) in &mut out.code.str_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for (arms, default) in &mut out.code.exn_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for pc in &mut out.code.entry_pc {
        *pc = remap(*pc);
    }
    for pc in &mut out.code.pc_of_label {
        if *pc != u32::MAX {
            *pc = remap(*pc);
        }
    }
    out
}

/// Where a register-prim operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RSrc {
    /// Popped from the operand stack (the stack-machine default).
    Stack,
    /// Read from local slot `i`.
    Local(u32),
    /// The immediate word.
    Const(u64),
}

/// Decoded register-form instruction, for the disassembler and tests.
/// Base and fused ops decode through [`ThreadedCode::rebuild`].
#[derive(Debug, Clone, PartialEq)]
pub enum RegInstr {
    /// Three-address primitive; `dst` is `Some(j)` when the result is
    /// stored straight to local `j` instead of pushed.
    RPrim {
        a: RSrc,
        b: RSrc,
        p: Prim,
        at: Option<RegSlot>,
        dst: Option<u32>,
    },
    /// Primitive fused with `JumpIfFalse target` on its result.
    RPrimJump {
        a: RSrc,
        b: RSrc,
        p: Prim,
        at: Option<RegSlot>,
        target: u32,
    },
    /// Branch if local `cond` is false.
    RJumpIfFalse { cond: u32, target: u32 },
    /// `locals[j] = k`.
    RStoreConst { k: u64, j: u32 },
    /// Return local `i`.
    RRetLocal { i: u32 },
    /// Return the immediate `k`.
    RRetConst { k: u64 },
    /// Cost-accounting no-op.
    RNop,
    /// Any non-register op, reconstructed as its linked form.
    Base(LInstr),
}

impl RegCode {
    /// Decodes the instruction at `pc` (the register-form counterpart of
    /// [`ThreadedCode::rebuild`]).
    pub fn decode(&self, pc: usize) -> RegInstr {
        let x = &self.code.args[pc];
        let src = |mode: u16, local: u32| match mode & 0xf {
            0 => RSrc::Stack,
            1 => RSrc::Local(local),
            _ => RSrc::Const(x.k),
        };
        match self.code.ops[pc] {
            Op::RPrim => RegInstr::RPrim {
                a: src(x.n, x.a),
                b: src(x.n >> 4, x.b),
                p: x.p,
                at: x.at,
                dst: x.flag.then_some(x.m as u32),
            },
            Op::RPrimJump => RegInstr::RPrimJump {
                a: src(x.n, x.a),
                b: src(x.n >> 4, x.b),
                p: x.p,
                at: x.at,
                target: x.t,
            },
            Op::RJumpIfFalse => RegInstr::RJumpIfFalse {
                cond: x.a,
                target: x.t,
            },
            Op::RStoreConst => RegInstr::RStoreConst { k: x.k, j: x.a },
            Op::RRet => {
                if x.n == 1 {
                    RegInstr::RRetLocal { i: x.a }
                } else {
                    RegInstr::RRetConst { k: x.k }
                }
            }
            Op::RNop => RegInstr::RNop,
            _ => RegInstr::Base(self.code.rebuild(pc)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{link, Fusion};
    use crate::vm::DispatchMode;
    use kit_runtime::{Rt, RtConfig};

    fn compile(src: &str) -> crate::instr::Program {
        let mut lprog = kit_typing::compile_str(src).expect("typecheck");
        kit_lambda::opt::optimize(&mut lprog, &Default::default());
        let rprog = kit_region::infer(&lprog, kit_region::RegionOptions::regions_only());
        crate::compile(&rprog, true)
    }

    const FIB: &str = "
        fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
        val it = fib 17
    ";

    #[test]
    fn costs_cover_every_source_instruction() {
        let prog = compile(FIB);
        let linked = link(&prog, Fusion::Off);
        let r = translate(&linked);
        let total: u64 = r.costs.iter().map(|&c| c as u64).sum();
        assert_eq!(total, linked.code.len() as u64);
        assert_eq!(r.folded, linked.code.len() as u64 - r.code.ops.len() as u64);
        assert!(r.folded > 0, "fib should fold plenty of stack traffic");
    }

    #[test]
    fn register_engine_matches_stack_engine() {
        let prog = compile(FIB);
        let m = crate::vm::Vm::new(&prog, Rt::new(RtConfig::default()))
            .run()
            .expect("match engine");
        let r = crate::vm::Vm::new(&prog, Rt::new(RtConfig::default()))
            .with_dispatch(DispatchMode::Register)
            .run()
            .expect("register engine");
        assert_eq!(m.result, r.result);
        assert_eq!(m.instructions, r.instructions);
        assert_eq!(m.stats.gc_count, r.stats.gc_count);
        assert_eq!(m.stats.words_allocated, r.stats.words_allocated);
    }

    #[test]
    fn decode_register_ops() {
        let prog = compile(FIB);
        let linked = link(&prog, Fusion::Off);
        let r = translate(&linked);
        let mut saw_rprim = false;
        for pc in 0..r.code.ops.len() {
            match r.decode(pc) {
                RegInstr::RPrim { a, b, .. } | RegInstr::RPrimJump { a, b, .. } => {
                    saw_rprim = true;
                    // B physical implies A physical (translator invariant).
                    if b == RSrc::Stack {
                        assert_eq!(a, RSrc::Stack);
                    }
                }
                RegInstr::Base(ins) => {
                    assert_eq!(crate::threaded::Op::of(&ins), r.code.ops[pc]);
                }
                _ => {}
            }
        }
        assert!(saw_rprim, "fib folds compares/arithmetic into RPrim(Jump)");
    }
}
