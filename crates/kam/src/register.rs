//! Register-form code: the post-link translation behind
//! [`DispatchMode::Register`](crate::vm::DispatchMode) and
//! [`DispatchMode::RegisterFused`](crate::vm::DispatchMode).
//!
//! [`translate`] rewrites an *unfused* [`LinkedProgram`] into a
//! virtual-register stream: each function body is split at its leaders
//! (branch targets and entries) into runs, and each run goes through the
//! symbolic-stack pass in [`crate::regalloc`], which keeps values in the
//! locals array ("infinite virtual registers" — every local slot is one)
//! and emits three-address ops instead of push/pop traffic. Block-entry
//! shapes come from a function-level fixpoint (see
//! [`crate::regalloc::FlowShapes`]): the translator first *simulates*
//! every reachable run into a scratch stream until the shapes every
//! branch carries across its edges stop changing, then re-runs the same
//! pass frozen to emit the final stream — simulation and emission share
//! one code path, so they cannot disagree. The result reuses the
//! threaded engine's struct-of-arrays layout ([`ThreadedCode`]) plus a
//! parallel per-pc cost stream: register ops replace a *variable* number
//! of stack ops, so their instruction charge can't live in the static
//! [`Op::cost`](crate::threaded::Op::cost) table.
//!
//! The translation renumbers pcs (folded instructions disappear), so a
//! second pass remaps every branch operand, switch row, entry point, and
//! label address. All control-flow targets are leaders, and leaders are
//! never folded into a predecessor, so the remap is total.
//!
//! [`fuse`] then optionally stacks the profile-selected superinstruction
//! set on top: the register stream still contains base-op sequences
//! (flushed loads before calls, entry safepoints, local copies around
//! barriers) that the link-time fusion pass would have merged, so a
//! second greedy pass over the emitted ops re-applies
//! [`FUSION_CANDIDATES`] wherever a window of base ops matches with no
//! interior branch target. Merged ops charge the sum of their windows'
//! costs, keeping the dynamic instruction accounting bit-identical.

use crate::fusion_table::{Opk, Pattern, FUSION_CANDIDATES};
use crate::instr::{Instr, RegSlot};
use crate::link::{build_fused, LInstr, LinkedProgram};
use crate::regalloc::{self, FlowShapes, PVal};
use crate::threaded::{Op, ThreadedCode};
use kit_lambda::exp::Prim;

/// A program in register form: the SoA stream plus its dynamic cost
/// table. `code.ops`/`code.args` may contain the six register-only
/// opcodes, which [`ThreadedCode::rebuild`] refuses — use
/// [`RegCode::decode`] instead.
#[derive(Debug)]
pub struct RegCode {
    /// The instruction stream, in the threaded engine's layout (pcs are
    /// register-form coordinates; label tables already remapped).
    pub code: ThreadedCode,
    /// Per-pc instruction charge: the number of source (stack)
    /// instructions each op stands for. Sums to the unfused source
    /// length plus seeded minus deferred entries (each deferred entry's
    /// charge moves into the successor block that consumes it).
    pub costs: Vec<u32>,
    /// Source instructions folded away (`source len - ops.len()`).
    pub folded: u64,
    /// Per-pc marker: this op materializes a pending value (a flush).
    /// Parallel to `code.ops`; for the disassembler.
    pub flushed: Vec<bool>,
    /// Non-empty block-entry shapes, as `(register pc, shape)` — the
    /// values each leader receives still in register form. Oldest first.
    pub entry_shapes: Vec<(u32, Vec<RSrc>)>,
    /// Total pending entries seeded into runs across block edges.
    pub seeded: u64,
    /// Total pending entries deferred out of runs across block edges.
    pub deferred: u64,
}

impl RegCode {
    fn empty(code: ThreadedCode) -> RegCode {
        RegCode {
            code,
            costs: Vec::new(),
            folded: 0,
            flushed: Vec::new(),
            entry_shapes: Vec::new(),
            seeded: 0,
            deferred: 0,
        }
    }
}

/// Fixpoint round cap. Shapes shrink toward empty under the suffix
/// meet, so real programs settle in a handful of rounds; past the cap
/// every shape collapses to empty (exactly the per-run translation),
/// which is always sound.
const MAX_ROUNDS: usize = 64;

/// Translates an unfused linked program into register form.
pub fn translate(linked: &LinkedProgram) -> RegCode {
    debug_assert_eq!(
        linked.fused, 0,
        "register translation expects a Fusion::Off stream"
    );
    let n = linked.code.len();

    // Leaders: every branch target or entry. Runs are the maximal
    // leader-free intervals; the symbolic stack crosses them only via
    // the negotiated entry shapes.
    let mut leader = vec![false; n];
    if n > 0 {
        leader[0] = true;
    }
    for &pc in linked.pc_of_label.iter().chain(&linked.entry_pc) {
        if (pc as usize) < n {
            leader[pc as usize] = true;
        }
    }
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && !leader[end] {
            end += 1;
        }
        runs.push((start, end));
        start = end;
    }

    // Entry-style leaders start from a bare physical stack: function
    // entries (fresh frame), `CallClos`-reachable labels, handler
    // targets (the unwinder truncates the stack to a snapshot), and the
    // switch families the translator treats as barriers.
    let mut flow = FlowShapes::new(n);
    if n > 0 {
        flow.pin_empty(0);
    }
    for &pc in &linked.entry_pc {
        flow.pin_empty(pc);
    }
    for (l, &f) in linked.fun_of_label.iter().enumerate() {
        if f != u32::MAX {
            let pc = linked.pc_of_label[l];
            if pc != u32::MAX {
                flow.pin_empty(pc);
            }
        }
    }
    for ins in &linked.code {
        match ins {
            LInstr::PushHandler { target } => flow.pin_empty(*target),
            LInstr::SwitchInt { arms, default } => {
                for &(_, t) in arms.iter() {
                    flow.pin_empty(t);
                }
                flow.pin_empty(*default);
            }
            LInstr::SwitchStr { arms, default } => {
                for (_, t) in arms.iter() {
                    flow.pin_empty(*t);
                }
                flow.pin_empty(*default);
            }
            LInstr::SwitchExn { arms, default } => {
                for &(_, t) in arms.iter() {
                    flow.pin_empty(t);
                }
                flow.pin_empty(*default);
            }
            _ => {}
        }
    }

    // Fixpoint: simulate every flow-reachable run with the real
    // translator into a throwaway stream, meeting each branch's pending
    // suffix into its targets, until no shape changes.
    let mut rounds = 0;
    loop {
        flow.start_round();
        let mut scratch = RegCode::empty(ThreadedCode::empty(Vec::new(), Vec::new(), Vec::new()));
        for &(s, e) in &runs {
            if flow.reached(s) {
                regalloc::translate_run(&linked.code, s, e, &mut scratch, &mut flow);
            }
        }
        if !flow.changed() {
            break;
        }
        rounds += 1;
        if rounds > MAX_ROUNDS {
            flow.reset_to_empty();
            break;
        }
    }
    flow.freeze();

    let mut out = RegCode::empty(ThreadedCode::empty(
        linked.entry_pc.clone(),
        linked.pc_of_label.clone(),
        linked.fun_of_label.clone(),
    ));
    out.costs.reserve(n);

    // Pass 1: emit each run against the frozen shapes, recording where
    // its leader landed and what it receives in register form.
    let mut new_pc_of_old = vec![u32::MAX; n];
    for &(s, e) in &runs {
        let new_pc = out.code.ops.len() as u32;
        new_pc_of_old[s] = new_pc;
        let seed = flow.seed(s);
        if !seed.is_empty() {
            let shape = seed
                .iter()
                .map(|pv| match *pv {
                    PVal::Local(i) => RSrc::Local(i),
                    PVal::Const(k) => RSrc::Const(k),
                })
                .collect();
            out.entry_shapes.push((new_pc, shape));
        }
        regalloc::translate_run(&linked.code, s, e, &mut out, &mut flow);
    }
    debug_assert_eq!(
        out.costs.iter().map(|&c| c as u64).sum::<u64>() + out.deferred,
        n as u64 + out.seeded,
        "cost stream must cover every source instruction not in flight"
    );
    out.folded = (n as u64).saturating_sub(out.code.ops.len() as u64);

    // Pass 2: remap every pc operand to register-form coordinates.
    // Every target is a leader, so the lookup can't hit `u32::MAX`.
    let remap = |pc: u32| -> u32 {
        let new = new_pc_of_old[pc as usize];
        debug_assert_ne!(new, u32::MAX, "branch target {pc} is not a leader");
        new
    };
    for (op, x) in out.code.ops.iter().zip(out.code.args.iter_mut()) {
        match op {
            Op::Jump
            | Op::JumpIfFalse
            | Op::PushConstJumpIfFalse
            | Op::PushHandler
            | Op::Call
            | Op::PrimJump
            | Op::RPrimJump
            | Op::RJumpIfFalse => x.t = remap(x.t),
            _ => {}
        }
    }
    for (_, (arms, default)) in &mut out.code.con_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for (arms, default) in &mut out.code.int_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for (arms, default) in &mut out.code.str_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for (arms, default) in &mut out.code.exn_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for pc in &mut out.code.entry_pc {
        *pc = remap(*pc);
    }
    for pc in &mut out.code.pc_of_label {
        if *pc != u32::MAX {
            *pc = remap(*pc);
        }
    }
    out
}

/// The pattern kind of a register-stream op, if fusion patterns can
/// refer to it. Register-only and already-fused opcodes return `None`
/// and act as match barriers.
fn opk_of_op(op: Op) -> Option<Opk> {
    Some(match op {
        Op::Load => Opk::Load,
        Op::Store => Opk::Store,
        Op::Pop => Opk::Pop,
        Op::PushConst => Opk::PushConst,
        Op::Select => Opk::Select,
        Op::Prim => Opk::Prim,
        Op::JumpIfFalse => Opk::JumpIfFalse,
        Op::SwitchCon => Opk::SwitchCon,
        Op::GcCheck => Opk::GcCheck,
        Op::RegHandle => Opk::RegHandle,
        _ => return None,
    })
}

/// Converts a rebuilt base op back to source form for the shared fusion
/// constructor. Branch targets are already register-form pcs, carried
/// through `Label` and resolved by identity.
fn as_instr(ins: &LInstr) -> Instr {
    match ins {
        LInstr::Load(i) => Instr::Load(*i),
        LInstr::Store(j) => Instr::Store(*j),
        LInstr::Pop => Instr::Pop,
        LInstr::PushConst(k) => Instr::PushConst(*k),
        LInstr::Select(sel) => Instr::Select(*sel),
        LInstr::Prim { p, at } => Instr::Prim { p: *p, at: *at },
        LInstr::JumpIfFalse(t) => Instr::JumpIfFalse(*t as usize),
        LInstr::SwitchCon {
            disc,
            arms,
            default,
        } => Instr::SwitchCon {
            disc: *disc,
            arms: arms.iter().map(|&(c, t)| (c, t as usize)).collect(),
            default: *default as usize,
        },
        LInstr::GcCheck => Instr::GcCheck,
        LInstr::RegHandle(r) => Instr::RegHandle(*r),
        other => unreachable!("non-pattern op {other:?} in a fusion window"),
    }
}

/// The longest fusion candidate matching the register stream at `i`:
/// adjacent base ops of the right kinds with no interior leader.
fn match_window(code: &ThreadedCode, leader: &[bool], i: usize) -> Option<&'static Pattern> {
    'pat: for pat in FUSION_CANDIDATES {
        if i + pat.seq.len() > code.ops.len() {
            continue;
        }
        for j in 1..pat.seq.len() {
            if leader[i + j] {
                continue 'pat;
            }
        }
        for (j, k) in pat.seq.iter().enumerate() {
            if opk_of_op(code.ops[i + j]) != Some(*k) {
                continue 'pat;
            }
        }
        return Some(pat);
    }
    None
}

/// Re-fuses a register stream: greedily merges base-op windows matching
/// [`FUSION_CANDIDATES`] into superinstructions, yielding the
/// `register_fused` configuration. Strictly additive over [`translate`]
/// — unmatched ops are copied verbatim — and cost-preserving: a merged
/// op charges the sum of its window, so dynamic instruction totals and
/// the GC schedule are untouched.
pub fn fuse(r: RegCode) -> RegCode {
    let n = r.code.ops.len();

    // Leaders in register coordinates: anywhere control can land. A
    // window may never span one. (Return addresses need no marking: no
    // pattern contains a call, so `pc+1` of a call is never interior.)
    let mut leader = vec![false; n];
    let mark = |pc: u32, leader: &mut Vec<bool>| {
        if (pc as usize) < n {
            leader[pc as usize] = true;
        }
    };
    if n > 0 {
        leader[0] = true;
    }
    for (op, x) in r.code.ops.iter().zip(&r.code.args) {
        match op {
            Op::Jump
            | Op::JumpIfFalse
            | Op::PushConstJumpIfFalse
            | Op::PushHandler
            | Op::Call
            | Op::PrimJump
            | Op::RPrimJump
            | Op::RJumpIfFalse => mark(x.t, &mut leader),
            _ => {}
        }
    }
    for (_, (arms, default)) in &r.code.con_switches {
        for &(_, t) in arms.iter() {
            mark(t, &mut leader);
        }
        mark(*default, &mut leader);
    }
    for (arms, default) in &r.code.int_switches {
        for &(_, t) in arms.iter() {
            mark(t, &mut leader);
        }
        mark(*default, &mut leader);
    }
    for (arms, default) in &r.code.str_switches {
        for (_, t) in arms.iter() {
            mark(*t, &mut leader);
        }
        mark(*default, &mut leader);
    }
    for (arms, default) in &r.code.exn_switches {
        for &(_, t) in arms.iter() {
            mark(t, &mut leader);
        }
        mark(*default, &mut leader);
    }
    for &pc in &r.code.entry_pc {
        mark(pc, &mut leader);
    }
    for &pc in &r.code.pc_of_label {
        if pc != u32::MAX {
            mark(pc, &mut leader);
        }
    }

    // Keep the side tables: verbatim-copied ops index into them, and
    // `push_linstr` appends fresh rows for rebuilt windows. Rows are
    // remapped wholesale below, stale or not.
    let mut code = r.code.clone();
    code.ops = Vec::with_capacity(n);
    code.args = Vec::with_capacity(n);
    let mut out = RegCode::empty(code);
    out.folded = r.folded;
    out.seeded = r.seeded;
    out.deferred = r.deferred;

    let mut new_pc_of_old = vec![u32::MAX; n];
    let mut merged: u64 = 0;
    let mut i = 0;
    while i < n {
        new_pc_of_old[i] = out.code.ops.len() as u32;
        if let Some(pat) = match_window(&r.code, &leader, i) {
            let len = pat.seq.len();
            let w: Vec<Instr> = (i..i + len)
                .map(|pc| as_instr(&r.code.rebuild(pc)))
                .collect();
            let fused = build_fused(pat.out, &w, &|l| l as u32);
            out.code.push_linstr(fused);
            out.costs.push(r.costs[i..i + len].iter().sum());
            out.flushed.push(r.flushed[i..i + len].iter().any(|&b| b));
            merged += len as u64 - 1;
            i += len;
        } else {
            out.code.ops.push(r.code.ops[i]);
            out.code.args.push(r.code.args[i]);
            out.costs.push(r.costs[i]);
            out.flushed.push(r.flushed[i]);
            i += 1;
        }
    }
    out.code.fused = merged;
    out.folded += merged;

    // Remap pcs once more: merged windows shifted everything after them.
    // Every branch target is a leader, so it was never window-interior.
    let remap = |pc: u32| -> u32 {
        let new = new_pc_of_old[pc as usize];
        debug_assert_ne!(new, u32::MAX, "re-fusion target {pc} is not a leader");
        new
    };
    for (op, x) in out.code.ops.iter().zip(out.code.args.iter_mut()) {
        match op {
            Op::Jump
            | Op::JumpIfFalse
            | Op::PushConstJumpIfFalse
            | Op::PushHandler
            | Op::Call
            | Op::PrimJump
            | Op::RPrimJump
            | Op::RJumpIfFalse
            | Op::LoadLoadPrimJump
            | Op::LoadConstPrimJump
            | Op::LoadPrimJump => x.t = remap(x.t),
            _ => {}
        }
    }
    for (_, (arms, default)) in &mut out.code.con_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for (arms, default) in &mut out.code.int_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for (arms, default) in &mut out.code.str_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for (arms, default) in &mut out.code.exn_switches {
        for (_, t) in arms.iter_mut() {
            *t = remap(*t);
        }
        *default = remap(*default);
    }
    for pc in &mut out.code.entry_pc {
        *pc = remap(*pc);
    }
    for pc in &mut out.code.pc_of_label {
        if *pc != u32::MAX {
            *pc = remap(*pc);
        }
    }
    out.entry_shapes = r
        .entry_shapes
        .into_iter()
        .map(|(pc, shape)| (remap(pc), shape))
        .collect();
    out
}

/// Where a register-prim operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RSrc {
    /// Popped from the operand stack (the stack-machine default).
    Stack,
    /// Read from local slot `i`.
    Local(u32),
    /// The immediate word.
    Const(u64),
}

/// Decoded register-form instruction, for the disassembler and tests.
/// Base and fused ops decode through [`ThreadedCode::rebuild`].
#[derive(Debug, Clone, PartialEq)]
pub enum RegInstr {
    /// Three-address primitive; `dst` is `Some(j)` when the result is
    /// stored straight to local `j` instead of pushed.
    RPrim {
        a: RSrc,
        b: RSrc,
        p: Prim,
        at: Option<RegSlot>,
        dst: Option<u32>,
    },
    /// Primitive fused with `JumpIfFalse target` on its result.
    RPrimJump {
        a: RSrc,
        b: RSrc,
        p: Prim,
        at: Option<RegSlot>,
        target: u32,
    },
    /// Branch if local `cond` is false.
    RJumpIfFalse { cond: u32, target: u32 },
    /// `locals[j] = k`.
    RStoreConst { k: u64, j: u32 },
    /// Return local `i`.
    RRetLocal { i: u32 },
    /// Return the immediate `k`.
    RRetConst { k: u64 },
    /// Cost-accounting no-op.
    RNop,
    /// Any non-register op, reconstructed as its linked form.
    Base(LInstr),
}

impl RegCode {
    /// Decodes the instruction at `pc` (the register-form counterpart of
    /// [`ThreadedCode::rebuild`]).
    pub fn decode(&self, pc: usize) -> RegInstr {
        let x = &self.code.args[pc];
        let src = |mode: u16, local: u32| match mode & 0xf {
            0 => RSrc::Stack,
            1 => RSrc::Local(local),
            _ => RSrc::Const(x.k),
        };
        match self.code.ops[pc] {
            Op::RPrim => RegInstr::RPrim {
                a: src(x.n, x.a),
                b: src(x.n >> 4, x.b),
                p: x.p,
                at: x.at,
                dst: x.flag.then_some(x.m as u32),
            },
            Op::RPrimJump => RegInstr::RPrimJump {
                a: src(x.n, x.a),
                b: src(x.n >> 4, x.b),
                p: x.p,
                at: x.at,
                target: x.t,
            },
            Op::RJumpIfFalse => RegInstr::RJumpIfFalse {
                cond: x.a,
                target: x.t,
            },
            Op::RStoreConst => RegInstr::RStoreConst { k: x.k, j: x.a },
            Op::RRet => {
                if x.n == 1 {
                    RegInstr::RRetLocal { i: x.a }
                } else {
                    RegInstr::RRetConst { k: x.k }
                }
            }
            Op::RNop => RegInstr::RNop,
            _ => RegInstr::Base(self.code.rebuild(pc)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{link, Fusion};
    use crate::vm::DispatchMode;
    use kit_runtime::{Rt, RtConfig};

    fn compile(src: &str) -> crate::instr::Program {
        let mut lprog = kit_typing::compile_str(src).expect("typecheck");
        kit_lambda::opt::optimize(&mut lprog, &Default::default());
        let rprog = kit_region::infer(&lprog, kit_region::RegionOptions::regions_only());
        crate::compile(&rprog, true)
    }

    const FIB: &str = "
        fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
        val it = fib 17
    ";

    const GUARDED_LOOP: &str = "
        exception Bound
        fun go (i, acc) =
          if i = 0 then acc
          else
            let
              val a = (acc + i) mod 1048573
              val _ = if a < 0 then raise Bound else ()
            in
              go (i - 1, a)
            end
        val it = go (5000, 1)
    ";

    #[test]
    fn costs_cover_every_source_instruction() {
        for src in [FIB, GUARDED_LOOP] {
            let prog = compile(src);
            let linked = link(&prog, Fusion::Off);
            let r = translate(&linked);
            let total: u64 = r.costs.iter().map(|&c| c as u64).sum();
            // Deferred entries move their charge across block edges;
            // the static books balance per translation, not per pc.
            assert_eq!(total + r.deferred, linked.code.len() as u64 + r.seeded);
            assert_eq!(r.folded, linked.code.len() as u64 - r.code.ops.len() as u64);
            assert!(r.folded > 0, "plenty of stack traffic should fold");
        }
    }

    #[test]
    fn register_engine_matches_stack_engine() {
        for dispatch in [DispatchMode::Register, DispatchMode::RegisterFused] {
            for src in [FIB, GUARDED_LOOP] {
                let prog = compile(src);
                let m = crate::vm::Vm::new(&prog, Rt::new(RtConfig::default()))
                    .run()
                    .expect("match engine");
                let r = crate::vm::Vm::new(&prog, Rt::new(RtConfig::default()))
                    .with_dispatch(dispatch)
                    .run()
                    .expect("register engine");
                assert_eq!(m.result, r.result);
                assert_eq!(m.instructions, r.instructions);
                assert_eq!(m.stats.gc_count, r.stats.gc_count);
                assert_eq!(m.stats.words_allocated, r.stats.words_allocated);
            }
        }
    }

    #[test]
    fn decode_register_ops() {
        let prog = compile(FIB);
        let linked = link(&prog, Fusion::Off);
        let r = translate(&linked);
        let mut saw_rprim = false;
        for pc in 0..r.code.ops.len() {
            match r.decode(pc) {
                RegInstr::RPrim { a, b, .. } | RegInstr::RPrimJump { a, b, .. } => {
                    saw_rprim = true;
                    // B physical implies A physical (translator invariant).
                    if b == RSrc::Stack {
                        assert_eq!(a, RSrc::Stack);
                    }
                }
                RegInstr::Base(ins) => {
                    assert_eq!(crate::threaded::Op::of(&ins), r.code.ops[pc]);
                }
                _ => {}
            }
        }
        assert!(saw_rprim, "fib folds compares/arithmetic into RPrim(Jump)");
    }

    #[test]
    fn refusion_merges_and_preserves_costs() {
        let prog = compile(FIB);
        let linked = link(&prog, Fusion::Off);
        let r = translate(&linked);
        let plain_total: u64 = r.costs.iter().map(|&c| c as u64).sum();
        let f = fuse(r);
        let fused_total: u64 = f.costs.iter().map(|&c| c as u64).sum();
        assert_eq!(
            plain_total, fused_total,
            "re-fusion must not change charges"
        );
        assert!(f.code.fused > 0, "fib leaves fusible base windows");
        // Decode must survive the merge (base + fused + register ops).
        for pc in 0..f.code.ops.len() {
            let _ = f.decode(pc);
        }
    }

    #[test]
    fn cross_block_carry_defers_entries() {
        // The guard pattern leaves a unit-if join whose entries carry.
        let prog = compile(GUARDED_LOOP);
        let linked = link(&prog, Fusion::Off);
        let r = translate(&linked);
        assert!(
            r.seeded > 0 && r.deferred > 0,
            "the guard join should receive a carried entry (seeded {}, deferred {})",
            r.seeded,
            r.deferred
        );
        assert!(!r.entry_shapes.is_empty());
        for (pc, shape) in &r.entry_shapes {
            assert!((*pc as usize) < r.code.ops.len());
            assert!(!shape.is_empty());
        }
    }
}
