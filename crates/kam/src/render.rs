//! Type-directed rendering of machine values, used by the differential
//! tests to compare the VM against the reference evaluator (which renders
//! its values in the identical canonical format — see `kit::render_oracle`).

use kit_lambda::eval::{fmt_sml_int, fmt_sml_real};
use kit_lambda::ty::{ConId, DataEnv, LTy, SchemeTy};
use kit_runtime::value::{is_ptr, ptr_addr, scalar_val, Tag, Word};
use kit_runtime::Rt;

/// Renders a machine value of type `ty` canonically.
pub fn render_value(rt: &Rt, v: Word, ty: &LTy, data: &DataEnv) -> String {
    render(rt, v, ty, data, 0)
}

fn render(rt: &Rt, v: Word, ty: &LTy, data: &DataEnv, depth: u32) -> String {
    if depth > 50 {
        return "...".to_string();
    }
    match ty {
        LTy::Int => fmt_sml_int(rt.untag_int(v)),
        LTy::Bool => if rt.untag_int(v) != 0 {
            "true"
        } else {
            "false"
        }
        .to_string(),
        LTy::Unit => "()".to_string(),
        LTy::Real => fmt_sml_real(rt.real_val(v)),
        LTy::Str => format!("{:?}", rt.str_val(v)),
        LTy::Tuple(ts) => {
            let fields: Vec<String> = ts
                .iter()
                .enumerate()
                .map(|(i, t)| render(rt, rt.field(v, i as u64), t, data, depth + 1))
                .collect();
            format!("({})", fields.join(", "))
        }
        LTy::Arrow(_, _) => "<fn>".to_string(),
        LTy::Ref(t) => format!("ref {}", render(rt, rt.field(v, 0), t, data, depth + 1)),
        LTy::Array(t) => {
            let n = rt.arr_len(v);
            let elems: Vec<String> = (0..n.min(20))
                .map(|i| {
                    let w = rt.read_addr(rt.arr_elem_addr(v, i));
                    render(rt, w, t, data, depth + 1)
                })
                .collect();
            format!("<array {n}>[{}]", elems.join(", "))
        }
        LTy::Exn => "<exn>".to_string(),
        LTy::TyVar(_) => "<poly>".to_string(),
        LTy::Con(tycon, targs) => {
            let dt = data.get(*tycon);
            let (ctor, boxed) = if !is_ptr(v) {
                (scalar_val(v) as u32, false)
            } else if rt.config.tagged {
                (Tag::decode(rt.read_addr(ptr_addr(v))).info, true)
            } else {
                let boxed_count = dt.boxed_count();
                if boxed_count == 1 {
                    let c = dt
                        .constructors
                        .iter()
                        .position(|c| c.arg.is_some())
                        .unwrap() as u32;
                    (c, true)
                } else {
                    (scalar_val(rt.read_addr(ptr_addr(v))) as u32, true)
                }
            };
            let cinfo = &dt.constructors[ctor as usize];
            if !boxed {
                return cinfo.name.clone();
            }
            // Inline fields: adjust for the untagged discriminant word.
            let disc_off = u64::from(!rt.config.tagged && dt.boxed_count() > 1);
            let arg_s = match &cinfo.arg {
                Some(SchemeTy::Tuple(ts)) => {
                    let fields: Vec<String> = ts
                        .iter()
                        .enumerate()
                        .map(|(i, s)| {
                            let t = s.instantiate(targs);
                            render(rt, rt.field(v, disc_off + i as u64), &t, data, depth + 1)
                        })
                        .collect();
                    format!("({})", fields.join(", "))
                }
                Some(s) => {
                    let t = s.instantiate(targs);
                    format!(
                        "({})",
                        render(rt, rt.field(v, disc_off), &t, data, depth + 1)
                    )
                }
                None => unreachable!("boxed nullary constructor"),
            };
            format!("{}{arg_s}", cinfo.name)
        }
    }
}

/// Convenience: `true` when `ConId` indexes a value-carrying constructor.
pub fn carries(data: &DataEnv, tycon: kit_lambda::ty::TyConId, con: ConId) -> bool {
    data.get(tycon).constructors[con.0 as usize].arg.is_some()
}
