//! Criterion benches over the paper's benchmark programs and modes.
//!
//! Groups:
//! * `modes/<prog>` — wall-clock per mode (`r`, `rt`, `gt`, `rgt`,
//!   baseline) on a scaled-down workload: the statistical counterpart of
//!   Tables 1/2/4.
//! * `ablation/heap_to_live` — the §4.4 knob: execution time of a
//!   GC-heavy program as the heap-to-live ratio varies.
//! * `ablation/page_size` — region page size sweep (§2.4 allows 2^n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kit::{Compiler, Mode};
use kit_bench::programs::by_name;
use kit_runtime::RtConfig;

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("modes");
    g.sample_size(10);
    for name in ["fib", "msort", "kitlife", "tyan", "professor"] {
        let b = by_name(name).expect("benchmark");
        let src = b.source_scaled(b.test_scale);
        for mode in Mode::ALL_WITH_BASELINE {
            let compiler = Compiler::new(mode);
            let prog = compiler.compile_source(&src).expect("compile");
            g.bench_with_input(
                BenchmarkId::new(name, mode.suffix()),
                &prog,
                |bch, prog| {
                    bch.iter(|| compiler.run_program(prog).expect("run").instructions)
                },
            );
        }
    }
    g.finish();
}

fn bench_heap_to_live(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/heap_to_live");
    g.sample_size(10);
    let b = by_name("tyan").expect("tyan");
    let src = b.source_scaled(b.test_scale);
    for ratio in [2.0_f64, 3.0, 5.0, 8.0] {
        let cfg = RtConfig { heap_to_live_ratio: ratio, ..RtConfig::rgt() };
        let compiler = Compiler::new(Mode::Rgt).with_config(cfg);
        let prog = compiler.compile_source(&src).expect("compile");
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{ratio}")),
            &prog,
            |bch, prog| bch.iter(|| compiler.run_program(prog).expect("run").instructions),
        );
    }
    g.finish();
}

fn bench_page_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/page_size");
    g.sample_size(10);
    let b = by_name("msort").expect("msort");
    let src = b.source_scaled(b.test_scale);
    for log2 in [6_u32, 8, 10] {
        let cfg = RtConfig { page_words_log2: log2, ..RtConfig::rgt() };
        let compiler = Compiler::new(Mode::Rgt).with_config(cfg);
        let prog = compiler.compile_source(&src).expect("compile");
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{log2}w")),
            &prog,
            |bch, prog| bch.iter(|| compiler.run_program(prog).expect("run").instructions),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_modes, bench_heap_to_live, bench_page_size);
criterion_main!(benches);
