//! Dependency-free wall-clock benches over the paper's programs and modes
//! (`cargo bench -p kit-bench`). The build is offline, so this is a plain
//! `harness = false` binary instead of Criterion: each case is run a few
//! times and the median is reported.
//!
//! Groups:
//! * `modes/<prog>` — wall-clock per mode (`r`, `rt`, `gt`, `rgt`,
//!   baseline) on a scaled-down workload: the statistical counterpart of
//!   Tables 1/2/4.
//! * `ablation/heap_to_live` — the §4.4 knob: execution time of a
//!   GC-heavy program as the heap-to-live ratio varies.
//! * `ablation/page_size` — region page size sweep (§2.4 allows 2^n).

use kit::{Compiler, Mode};
use kit_bench::programs::by_name;
use kit_runtime::RtConfig;
use std::time::{Duration, Instant};

const SAMPLES: usize = 5;

fn measure(compiler: &Compiler, prog: &kit::Program) -> (Duration, u64) {
    let mut times = Vec::with_capacity(SAMPLES);
    let mut instructions = 0;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let out = compiler.run_program(prog).expect("run");
        times.push(t0.elapsed());
        instructions = out.instructions;
    }
    times.sort();
    (times[times.len() / 2], instructions)
}

fn report(group: &str, case: &str, compiler: &Compiler, prog: &kit::Program) {
    let (median, instructions) = measure(compiler, prog);
    let mips = instructions as f64 / median.as_secs_f64() / 1e6;
    println!(
        "{group}/{case:<12} median {median:>12?}  {instructions:>12} instr  {mips:>8.2} Minstr/s"
    );
}

fn bench_modes() {
    for name in ["fib", "msort", "kitlife", "tyan", "professor"] {
        let b = by_name(name).expect("benchmark");
        let src = b.source_scaled(b.test_scale);
        for mode in Mode::ALL_WITH_BASELINE {
            let compiler = Compiler::new(mode);
            let prog = compiler.compile_source(&src).expect("compile");
            report(&format!("modes/{name}"), mode.suffix(), &compiler, &prog);
        }
    }
}

fn bench_heap_to_live() {
    let b = by_name("tyan").expect("tyan");
    let src = b.source_scaled(b.test_scale);
    for ratio in [2.0_f64, 3.0, 5.0, 8.0] {
        let cfg = RtConfig {
            heap_to_live_ratio: ratio,
            ..RtConfig::rgt()
        };
        let compiler = Compiler::new(Mode::Rgt).with_config(cfg);
        let prog = compiler.compile_source(&src).expect("compile");
        report(
            "ablation/heap_to_live",
            &format!("{ratio}"),
            &compiler,
            &prog,
        );
    }
}

fn bench_page_size() {
    let b = by_name("msort").expect("msort");
    let src = b.source_scaled(b.test_scale);
    for log2 in [6_u32, 8, 10] {
        let cfg = RtConfig {
            page_words_log2: log2,
            ..RtConfig::rgt()
        };
        let compiler = Compiler::new(Mode::Rgt).with_config(cfg);
        let prog = compiler.compile_source(&src).expect("compile");
        report(
            "ablation/page_size",
            &format!("2^{log2}w"),
            &compiler,
            &prog,
        );
    }
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    bench_modes();
    bench_heap_to_live();
    bench_page_size();
}
