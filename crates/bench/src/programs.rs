//! The benchmark programs (paper Fig. 3).
//!
//! Faithful ports of the paper's micro/small benchmarks and behavioural
//! analogs for its large SML applications — same allocation character,
//! scaled to the interpreter (DESIGN.md §3 has the per-program mapping).

/// A deterministic in-tree pseudo-random number generator (SplitMix64,
/// Steele et al., OOPSLA 2014). The container builds offline, so workload
/// generation and the randomized tests cannot pull `rand` from crates.io;
/// this 40-line generator is statistically plenty for shuffling benchmark
/// inputs and driving property tests, and — unlike an external dependency —
/// guarantees bit-identical workloads on every toolchain.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection-free multiply-shift (Lemire); bias is < 2^-32 for the
        // small bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `i64` in `[lo, hi)`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo.wrapping_add(self.below((hi - lo) as u64) as i64)
    }

    /// A random boolean.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Name as in the paper's Fig. 3.
    pub name: &'static str,
    /// MiniML source (first declaration is `val scale = N`).
    pub src: &'static str,
    /// One-line description (mirrors Fig. 3).
    pub description: &'static str,
    /// Default scale (the `val scale` value in the source).
    pub default_scale: i64,
    /// Scale used by fast test runs.
    pub test_scale: i64,
}

impl Benchmark {
    /// The source with `val scale` replaced by `n`.
    pub fn source_scaled(&self, n: i64) -> String {
        let mut out = String::with_capacity(self.src.len());
        let mut done = false;
        for line in self.src.lines() {
            if !done && line.trim_start().starts_with("val scale =") {
                out.push_str(&format!("val scale = {n}"));
                done = true;
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        assert!(done, "benchmark {} has no `val scale` line", self.name);
        out
    }
}

macro_rules! bench {
    ($name:literal, $file:literal, $desc:literal, $default:literal, $test:literal) => {
        Benchmark {
            name: $name,
            src: include_str!(concat!("programs/", $file)),
            description: $desc,
            default_scale: $default,
            test_scale: $test,
        }
    };
}

/// All benchmarks, in the paper's Fig. 3 order.
pub fn all() -> Vec<Benchmark> {
    vec![
        bench!(
            "vliw",
            "vliw.sml",
            "VLIW instruction scheduler (analog)",
            45,
            4
        ),
        bench!(
            "logic",
            "logic.sml",
            "logic-programming interpreter (analog)",
            9,
            5
        ),
        bench!("zebra", "zebra.sml", "solves the zebra puzzle", 2, 1),
        bench!(
            "tyan",
            "tyan.sml",
            "Grobner-basis-style polynomial algebra (analog)",
            55,
            4
        ),
        bench!("tsp", "tsp.sml", "traveling salesman problem", 140, 25),
        bench!("mpuz", "mpuz.sml", "Emacs M-x mpuz puzzle", 300, 20),
        bench!(
            "dlx",
            "dlx.sml",
            "DLX RISC instruction simulation",
            12000,
            300
        ),
        bench!("ratio", "ratio.sml", "image analysis (analog)", 34, 12),
        bench!("lexgen", "lexgen.sml", "lexer generation (analog)", 130, 10),
        bench!("mlyacc", "mlyacc.sml", "parser generation (analog)", 55, 5),
        bench!(
            "simple",
            "simple.sml",
            "spherical fluid dynamics (analog)",
            110,
            10
        ),
        bench!(
            "professor",
            "professor.sml",
            "puzzle by exhaustive search",
            5,
            1
        ),
        bench!("fib", "fib.sml", "the Fibonacci micro-benchmark", 24, 15),
        bench!("tak", "tak.sml", "the Tak micro-benchmark", 7, 5),
        bench!(
            "msort",
            "msort.sml",
            "sorting pseudo-random integers",
            4000,
            300
        ),
        bench!("kitlife", "kitlife.sml", "the game of life", 24, 4),
        bench!("kitkb", "kitkb.sml", "Knuth-Bendix-style completion", 60, 6),
        // Branch-heavy additions (not in the paper's Fig. 3): values live
        // across basic-block edges, the cells straight-line register
        // allocation wins nothing on.
        bench!(
            "machine",
            "machine.sml",
            "datatype-coded stack-machine interpreter",
            2500,
            25
        ),
        bench!(
            "accum",
            "accum.sml",
            "loop with accumulators live across the back-edge",
            1500,
            30
        ),
        // Mutation-heavy addition for the collector comparison: a live
        // table of ref'd lists overwritten through `:=`, so collections
        // copy a large live set and updates cross the write barrier.
        bench!(
            "churn",
            "churn.sml",
            "ref-cell churn over a large live table",
            400,
            20
        ),
        // PR 8 mutation-heavy additions: both keep every ref reachable
        // for the whole run, so region inference parks all allocation in
        // one long-lived region and only the collector reclaims — the
        // workloads where the paper's combination earns its keep.
        bench!(
            "interp",
            "interp.sml",
            "interpreter-in-interpreter with a mutable store",
            6000,
            60
        ),
        bench!(
            "book",
            "book.sml",
            "order-book/state-machine churn over ref'd price levels",
            12000,
            120
        ),
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_paper_programs_plus_five_additions() {
        assert_eq!(all().len(), 22);
    }

    #[test]
    fn every_program_parses() {
        for b in all() {
            kit_syntax_check(&b);
        }
    }

    fn kit_syntax_check(b: &Benchmark) {
        if let Err(e) = kit::Compiler::new(kit::Mode::R).compile_source(b.src) {
            panic!("{} does not compile: {e}", b.name);
        }
    }

    #[test]
    fn scaling_rewrites_the_scale_line() {
        let b = by_name("fib").unwrap();
        let s = b.source_scaled(5);
        assert!(s.contains("val scale = 5\n"));
        assert!(!s.contains(&format!("val scale = {}", b.default_scale)));
    }
}
