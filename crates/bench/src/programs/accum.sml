(* accum — a tight loop whose three accumulators are all live across the
   back-edge, with a conditional bounds guard (`raise` on one arm, unit on
   the other) joining back into the loop body: the carry pattern the
   cross-block register pass exists for. *)
val scale = 1500
exception Bound
fun go (i, a, b, c) =
  if i = 0 then a + b * 3 + c * 7
  else
    let val a2 = (a + i) mod 1048573
        val b2 = (b + a2) mod 65521
        val c2 = if b2 > c then b2 - c else c - b2
        val _ = if a2 < 0 then raise Bound else ()
    in go (i - 1, a2, b2, c2) end
fun runs (0, acc) = acc
  | runs (n, acc) =
      runs (n - 1, (acc + (go (2000, n, n * 2, 1) handle Bound => 0)) mod 999983)
val it = runs (scale, 0)
