(* tak — the Takeuchi micro-benchmark (paper: tak).
   Uses only the runtime stack for allocation. *)
val scale = 7
fun tak (x, y, z) =
  if y >= x then z
  else tak (tak (x - 1, y, z), tak (y - 1, z, x), tak (z - 1, x, y))
val it = tak (scale + 11, scale + 5, scale)
