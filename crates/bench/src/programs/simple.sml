(* simple — spherical fluid-dynamics analog (paper: simple): Jacobi
   relaxation over real arrays, the float-crunching workload. *)
val scale = 110
val n = 64
fun mk v = array (n, v)
fun relax (src, dst) =
  let
    fun go i =
      if i >= n - 1 then ()
      else
        (aupdate (dst, i,
           (asub (src, i - 1) + 2.0 * asub (src, i) + asub (src, i + 1)) / 4.0);
         go (i + 1))
  in go 1 end
fun iterate (0, a, b) = a
  | iterate (k, a, b) = (relax (a, b); iterate (k - 1, b, a))
fun setup i a =
  if i >= n then a else (aupdate (a, i, real ((i * 13) mod 50) / 7.0); setup (i + 1) a)
val final = iterate (scale, setup 0 (mk 0.0), mk 0.0)
fun total (i, acc) = if i >= n then acc else total (i + 1, acc + asub (final, i))
val it = floor (total (0, 0.0))
