(* tyan — Grobner-basis-flavoured symbolic polynomial algebra (paper:
   tyan). Long-lived growing coefficient lists defeat region inference. *)
val scale = 55
fun padd (nil, q) = q
  | padd (p, nil) = p
  | padd (a :: p, b :: q) = (a + b) mod 1000003 :: padd (p, q)
fun pscale (k, nil) = nil
  | pscale (k, a :: p) = (k * a) mod 1000003 :: pscale (k, p)
fun pshift p = 0 :: p
fun pmul (nil, q) = nil
  | pmul (a :: p, q) = padd (pscale (a, q), pshift (pmul (p, q)))
fun ppow (p, 0) = [1]
  | ppow (p, n) = pmul (p, ppow (p, n - 1))
fun psum (nil) = 0
  | psum (a :: p) = (a + psum p) mod 1000003
(* The basis is held in a global ref and repeatedly extended/replaced:
   superseded polynomials become garbage in the global region, which only
   the collector reclaims — the paper's tyan leans on the GC (92.3%). *)
val basis = ref (nil : int list list)
fun work (0, acc) = acc
  | work (n, acc) =
      let
        val base = [1, 2, 3, n mod 7 + 1]
        val big = ppow (base, 9)
        val bigger = pmul (big, big)
        val _ = basis := bigger :: (case !basis of a :: b :: _ => [a, b] | other => other)
      in
        work (n - 1, (acc + psum bigger) mod 1000003)
      end
val it = work (scale, 0) + length (!basis)
