(* interp — interpreter-in-interpreter: a small higher-order language
   (de Bruijn lambdas, a mutable store) evaluated by a SwitchCon-heavy
   eval loop. Every evaluation allocates closure and environment conses
   that die with the iteration, while the store keeps *closures* alive
   across iterations — their captured environments chain back into
   earlier iterations' regions, the lifetime shape pure region inference
   cannot reclaim (everything lands in one long-lived region and only
   the collector gets the garbage back). *)
val scale = 6000
datatype e =
    K of int
  | V of int
  | Add of e * e
  | Mul of e * e
  | Sub of e * e
  | Iff of e * e * e
  | Lam of e
  | App of e * e
  | LetE of e * e
  | Get of int
  | Put of int * e
datatype v = VI of int | VC of e * v list
exception Stuck
val store = array (8, VI 0)
fun num (VI n) = n
  | num _ = raise Stuck
fun lookup (x :: _, 0) = x
  | lookup (_ :: r, n) = lookup (r, n - 1)
  | lookup (nil, _) = raise Stuck
fun eval (K n, env) = VI n
  | eval (V i, env) = lookup (env, i)
  | eval (Add (a, b), env) =
      VI ((num (eval (a, env)) + num (eval (b, env))) mod 1000003)
  | eval (Mul (a, b), env) =
      VI ((num (eval (a, env)) * num (eval (b, env))) mod 1000003)
  | eval (Sub (a, b), env) = VI (num (eval (a, env)) - num (eval (b, env)))
  | eval (Iff (c, t, f), env) =
      if num (eval (c, env)) > 0 then eval (t, env) else eval (f, env)
  | eval (Lam b, env) = VC (b, env)
  | eval (App (f, a), env) =
      (case eval (f, env) of
         VC (b, cenv) => eval (b, eval (a, env) :: cenv)
       | _ => raise Stuck)
  | eval (LetE (a, b), env) = eval (b, eval (a, env) :: env)
  | eval (Get i, env) = asub (store, i)
  | eval (Put (i, a), env) =
      let val x = eval (a, env)
          val _ = aupdate (store, i, x)
      in x end
(* fn f => fn x => f (f x) *)
val twice = Lam (Lam (App (V 1, App (V 1, V 0))))
val p0 = App (App (twice, Lam (Add (V 0, K 7))), Get 0)
val p1 = LetE (Lam (Mul (V 0, K 3)), App (V 0, Add (Get 1, K 5)))
val p2 = App (App (twice, Lam (Put (2, Add (Get 2, V 0)))), K 1)
val p3 =
  Iff (Sub (Get 0, Get 1),
       App (Lam (Mul (V 0, V 0)), Get 1),
       Add (Get 0, K 11))
(* Store a closure whose environment captures this iteration's values;
   it is applied again several iterations later. *)
val p4 = LetE (Add (Get 0, K 13), Put (3, Lam (Add (V 0, V 1))))
val p5 = App (Get 3, Add (Get 1, K 9))
fun pick i =
  let val k = i mod 6
  in
    if k = 0 then p0
    else if k = 1 then p1
    else if k = 2 then p2
    else if k = 3 then p3
    else if k = 4 then p4
    else p5
  end
fun run (i, acc) =
  if i < 1 then acc
  else
    let val r = (num (eval (pick i, nil))) handle Stuck => ~1
        val _ = aupdate (store, 0, VI ((r + acc) mod 1000003))
        val _ = aupdate (store, 1, VI (i mod 97))
    in run (i - 1, (acc * 31 + r) mod 1000003) end
val it = run (scale, 1)
