(* mlyacc — parser-generator analog (paper: mlyacc): LR(0) item-set closure
   and goto construction for a small expression grammar, with item sets as
   lists. Mixed lifetimes: the growing state table is long-lived, closure
   scratch is short-lived. *)
val scale = 55
(* Grammar: E -> E + T | T ; T -> T * F | F ; F -> ( E ) | id
   productions as (lhs, rhs) with symbols: 0=E 1=T 2=F 3=+ 4=* 5=( 6=) 7=id *)
val prods = [(0, [0, 3, 1]), (0, [1]), (1, [1, 4, 2]), (1, [2]), (2, [5, 0, 6]), (2, [7])]
fun item_eq ((p1 : int, d1 : int), (p2, d2)) = p1 = p2 andalso d1 = d2
fun memb (i, nil) = false
  | memb (i, j :: js) = item_eq (i, j) orelse memb (i, js)
fun nth_prod n = nth (prods, n)
fun sym_after (p, d) =
  let val (_, rhs) = nth_prod p
  in if d >= length rhs then ~1 else nth (rhs, d) end
fun closure items =
  let
    fun expand (nil, acc, changed) = (acc, changed)
      | expand (i :: rest, acc, changed) =
          let
            val s = sym_after i
            fun addprods (n, acc, changed) =
              if n >= length prods then (acc, changed)
              else
                let val (lhs, _) = nth_prod n
                in
                  if lhs = s andalso not (memb ((n, 0), acc))
                  then addprods (n + 1, (n, 0) :: acc, true)
                  else addprods (n + 1, acc, changed)
                end
            val (acc2, ch2) = if s >= 0 andalso s <= 2 then addprods (0, acc, changed)
                              else (acc, changed)
          in expand (rest, acc2, ch2) end
    fun fix items =
      let val (its, changed) = expand (items, items, false)
      in if changed then fix its else its end
  in fix items end
fun goto (items, sym) =
  closure (map (fn (p, d) => (p, d + 1))
               (filter (fn i => sym_after i = sym) items))
fun build (0, acc) = acc
  | build (n, acc) =
      let
        val s0 = closure [(0, 0)]
        fun explore (sym, acc) =
          if sym > 7 then acc
          else explore (sym + 1, acc + length (goto (s0, sym)))
      in build (n - 1, acc + explore (0, 0) + length s0) end
val it = build (scale, 0)
