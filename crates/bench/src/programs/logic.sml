(* logic — a backtracking logic-programming interpreter analog (paper:
   logic, from the SML/NJ suite). Solves append/3 queries by unification
   with deep, shared, long-lived term structures: region inference reclaims
   almost nothing here and the collector does the work. *)
val scale = 9
datatype tm = Var of int | Fn0 of int | Fn2 of int * tm * tm
datatype res = None | Some of (int * tm) list
fun walk (Var v, env) =
      let
        fun look nil = Var v
          | look ((w, t) :: rest) = if w = v then t else look rest
      in
        case look env of
          Var w => if w = v then Var v else walk (Var w, env)
        | t => t
      end
  | walk (t, env) = t
fun unify (a, b, env) =
  case (walk (a, env), walk (b, env)) of
    (Var v, t) => Some ((v, t) :: env)
  | (t, Var v) => Some ((v, t) :: env)
  | (Fn0 f, Fn0 g) => if f = g then Some env else None
  | (Fn2 (f, x1, x2), Fn2 (g, y1, y2)) =>
      if f = g then
        (case unify (x1, y1, env) of
           None => None
         | Some e2 => unify (x2, y2, e2))
      else None
  | (_, _) => None
fun numlist (0, acc) = acc
  | numlist (n, acc) = numlist (n - 1, Fn2 (99, Fn0 n, acc))
fun solve_append (xs, ys, zs, env, fresh, k) =
  (* append(nil, Y, Y). *)
  (case unify (xs, Fn0 0, env) of
     None => 0
   | Some e1 =>
       (case unify (ys, zs, e1) of
          None => 0
        | Some e2 => k e2)) +
  (* append([H|T], Y, [H|R]) :- append(T, Y, R). *)
  (let
     val h = Var fresh
     val t = Var (fresh + 1)
     val r = Var (fresh + 2)
   in
     case unify (xs, Fn2 (99, h, t), env) of
       None => 0
     | Some e1 =>
         (case unify (zs, Fn2 (99, h, r), e1) of
            None => 0
          | Some e2 => solve_append (t, ys, r, e2, fresh + 3, k))
   end)
(* Successful bindings are retained in a global trail whose older entries
   are repeatedly dropped: the live prefix survives in the global region
   while the dropped tail is garbage only the collector can reclaim —
   the paper's logic keeps region inference near 0%. *)
val trail = ref (nil : (int * tm) list list)
fun keep env = (trail := env :: !trail; 1)
fun trim xs = if length xs > 40 then take (xs, 20) else xs
fun splits n =
  let val full = numlist (n, Fn0 0)
      val found = solve_append (Var 1, Var 2, full, nil, 100, keep)
  in trail := trim (!trail); found end
fun iter (0, acc) = acc
  | iter (k, acc) = iter (k - 1, acc + splits scale)
val it = iter (200, 0) + length (!trail)
