(* book — order-book/state-machine churn. Two arrays of price levels,
   each level a ref holding a resting (id, qty) list; a deterministic
   LCG drives place/match/cancel actions. Every ref is reachable for the
   whole run, so region inference puts all the cons cells into one
   long-lived region — but matches pop orders off the front and cancels
   rebuild the level list, so most cells die almost immediately and only
   the collector can reclaim them. *)
val scale = 12000
val npx = 32
val bids = array (npx, ref nil)
val asks = array (npx, ref nil)
fun reinit i =
  if i < npx then
    let val _ = aupdate (bids, i, ref nil)
        val _ = aupdate (asks, i, ref nil)
    in reinit (i + 1) end
  else ()
val _ = reinit 0
fun rnd s = (s * 48271) mod 2147483647
fun place (tbl, px, id, q) =
  let val r = asub (tbl, px)
  in r := (id, q) :: !r end
fun cancel (tbl, px, id) =
  let val r = asub (tbl, px)
      fun del nil = nil
        | del ((i, q) :: t) = if i - id = 0 then t else (i, q) :: del t
  in r := del (!r) end
(* Consume up to q quantity off the front of lst; returns the remaining
   level and the notional filled. *)
fun fill (lst, q, acc) =
  case lst of
    nil => (lst, acc)
  | (i, oq) :: t =>
      if q <= 0 then (lst, acc)
      else if oq <= q then fill (t, q - oq, (acc + i * oq) mod 1000003)
      else ((i, oq - q) :: t, (acc + i * q) mod 1000003)
fun match (tbl, px, q) =
  let val r = asub (tbl, px)
      val (rest, got) = fill (!r, q, 0)
      val _ = r := rest
  in got end
fun qtys lst = foldl (fn ((_, q), a) => a + q) 0 lst
fun depthsum (tbl, i, acc) =
  if i < npx then depthsum (tbl, i + 1, (acc + qtys (!(asub (tbl, i)))) mod 1000003)
  else acc
fun run (i, s, acc) =
  if i < 1 then acc
  else
    let val s = rnd s
        val px = s mod npx
        val q = s mod 13 + 1
        val act = (s div 7) mod 5
        val acc =
          if act = 0 then (place (bids, px, i, q); acc)
          else if act = 1 then (place (asks, px, i, q); acc)
          else if act = 2 then (acc + match (asks, px, q)) mod 1000003
          else if act = 3 then (acc + match (bids, px, q)) mod 1000003
          else (cancel (bids, px, i - (s mod 50)); cancel (asks, px, i - (s mod 97)); acc)
        val acc =
          if i mod 64 = 0 then (acc + depthsum (bids, 0, 0) + depthsum (asks, 0, 0)) mod 1000003
          else acc
    in run (i - 1, s, acc) end
val it = run (scale, 20260808, 0)
