(* kitkb — Knuth-Bendix-style term rewriting (paper: kitkb). A completion-
   flavoured workload: repeatedly rewrite group-theory terms to normal form
   with a fixed confluent rule set, allocating many intermediate terms. *)
val scale = 60
datatype term = V of int | E | I of term | M of term * term
fun size_t (V _) = 1
  | size_t E = 1
  | size_t (I t) = 1 + size_t t
  | size_t (M (a, b)) = 1 + size_t a + size_t b
(* One parallel rewrite step with the classical group rules. *)
fun rw (M (E, x)) = rw x
  | rw (M (x, E)) = rw x
  | rw (M (I x, M (y, z))) = if teq (x, y) then rw z else keep2i (x, y, z)
  | rw (M (I x, y)) = if teq (x, y) then E else M (I (rw x), rw y)
  | rw (M (M (x, y), z)) = rw (M (x, M (y, z)))
  | rw (M (x, y)) = M (rw x, rw y)
  | rw (I E) = E
  | rw (I (I x)) = rw x
  | rw (I (M (x, y))) = rw (M (I y, I x))
  | rw (I x) = I (rw x)
  | rw t = t
and keep2i (x, y, z) = M (I (rw x), M (rw y, rw z))
and teq (V a, V b) = a = b
  | teq (E, E) = true
  | teq (I a, I b) = teq (a, b)
  | teq (M (a, b), M (c, d)) = teq (a, c) andalso teq (b, d)
  | teq (_, _) = false
fun norm (t, 0) = t
  | norm (t, n) = let val t2 = rw t in if teq (t, t2) then t else norm (t2, n - 1) end
(* Generate pseudo-random terms. *)
fun gen (depth, seed) =
  if depth = 0 then (V (seed mod 3), (seed * 75 + 74) mod 2147483648)
  else
    let val s1 = (seed * 1103515245 + 12345) mod 2147483648
    in
      case s1 mod 3 of
        0 => let val (t, s2) = gen (depth - 1, s1) in (I t, s2) end
      | 1 => let val (a, s2) = gen (depth - 1, s1)
                 val (b, s3) = gen (depth - 1, s2)
             in (M (a, b), s3) end
      | _ => (V (s1 mod 5), s1)
    end
fun work (0, seed, acc) = acc
  | work (n, seed, acc) =
      let
        val (t, s2) = gen (7, seed)
        val nf = norm (M (t, M (I t, t)), 30)
      in
        work (n - 1, s2, acc + size_t nf)
      end
val it = work (scale, 1, 0)
