(* dlx — a DLX-style RISC instruction-set simulator (paper: DLX): a
   fetch/decode/execute loop over an array-coded program with registers. *)
val scale = 12000
val ADD = 0 val ADDI = 1 val SUB = 2 val BEQZ = 3 val BNEZ = 4
val LW = 5 val SW = 6 val J = 7 val HALT = 8
(* Encoded program: computes sum of mem[0..31] into r2 in a loop. *)
val prog = array (32, (HALT, 0, 0, 0))
val mem = array (64, 0)
val regs = array (8, 0)
fun init i =
  if i >= 32 then ()
  else (aupdate (mem, i, i * 3 mod 17); init (i + 1))
val _ = init 0
(* r1 = index, r2 = acc, r3 = limit *)
val _ = aupdate (prog, 0, (ADDI, 1, 0, 0))   (* r1 := 0 *)
val _ = aupdate (prog, 1, (ADDI, 2, 0, 0))   (* r2 := 0 *)
val _ = aupdate (prog, 2, (ADDI, 3, 0, 32))  (* r3 := 32 *)
val _ = aupdate (prog, 3, (LW, 4, 1, 0))     (* r4 := mem[r1] *)
val _ = aupdate (prog, 4, (ADD, 2, 2, 4))    (* r2 += r4 *)
val _ = aupdate (prog, 5, (ADDI, 1, 1, 1))   (* r1 += 1 *)
val _ = aupdate (prog, 6, (SUB, 5, 1, 3))    (* r5 := r1 - r3 *)
val _ = aupdate (prog, 7, (BNEZ, 5, 0, 3))   (* if r5 <> 0 goto 3 *)
val _ = aupdate (prog, 8, (HALT, 0, 0, 0))
fun rd r = asub (regs, r)
fun wr (r, v) = if r = 0 then () else aupdate (regs, r, v)
fun exec pc =
  let val (op_, a, b, c) = asub (prog, pc)
  in
    if op_ = HALT then rd 2
    else if op_ = ADD then (wr (a, rd b + rd c); exec (pc + 1))
    else if op_ = ADDI then (wr (a, rd b + c); exec (pc + 1))
    else if op_ = SUB then (wr (a, rd b - rd c); exec (pc + 1))
    else if op_ = LW then (wr (a, asub (mem, rd b + c)); exec (pc + 1))
    else if op_ = SW then (aupdate (mem, rd b + c, rd a); exec (pc + 1))
    else if op_ = BEQZ then (if rd a = 0 then exec c else exec (pc + 1))
    else if op_ = BNEZ then (if rd a <> 0 then exec c else exec (pc + 1))
    else if op_ = J then exec c
    else 0
  end
fun runs (0, acc) = acc
  | runs (n, acc) = runs (n - 1, acc + exec 0)
val it = runs (scale, 0) mod 1000000
