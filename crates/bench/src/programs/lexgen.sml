(* lexgen — lexer-generator analog (paper: lexgen): NFA-to-DFA subset
   construction over a synthetic automaton, with state sets as sorted int
   lists and a worklist algorithm. *)
val scale = 130
fun insert (x : int, nil) = [x]
  | insert (x, y :: ys) =
      if x = y then y :: ys else if x < y then x :: y :: ys else y :: insert (x, ys)
fun union (nil, s) = s
  | union (x :: xs, s) = union (xs, insert (x, s))
fun seteq (nil : int list, nil : int list) = true
  | seteq (x :: xs, y :: ys) = x = y andalso seteq (xs, ys)
  | seteq (_, _) = false
(* Synthetic NFA: from state q on symbol a, go to {(q*2+a) mod N, (q+3) mod N}. *)
fun delta (n, q, a) = insert ((q * 2 + a) mod n, [(q + 3 + a) mod n])
fun move (n, nil, a) = nil
  | move (n, q :: qs, a) = union (delta (n, q, a), move (n, qs, a))
fun lookup (s, nil, i) = ~1
  | lookup (s, t :: ts, i) = if seteq (s, t) then i else lookup (s, ts, i + 1)
fun subset n =
  let
    fun go (nil, seen, edges) = (length seen, edges)
      | go (s :: work, seen, edges) =
          let
            val t0 = move (n, s, 0)
            val t1 = move (n, s, 1)
            fun add (t, (work, seen, extra)) =
                if lookup (t, seen, 0) >= 0 then (work, seen, extra)
                else (t :: work, seen @ [t], extra + 1)
            val (w1, s1, e1) = add (t0, (work, seen, 0))
            val (w2, s2, e2) = add (t1, (w1, s1, e1))
          in
            go (w2, s2, edges + 2)
          end
  in go ([[0]], [[0]], 0) end
fun iter (0, acc) = acc
  | iter (k, acc) =
      let val (states, edges) = subset (k mod 17 + 8)
      in iter (k - 1, acc + states + edges) end
val it = iter (scale, 0)
