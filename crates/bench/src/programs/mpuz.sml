(* mpuz — the Emacs M-x mpuz multiplication-puzzle benchmark: exhaustive
   digit assignment for a letter multiplication, checking consistency. *)
val scale = 300
fun digits_ok (a, b) =
  let
    val p = a * b
    val d1 = p mod 10
    val d2 = (p div 10) mod 10
    val d3 = (p div 100) mod 10
  in
    d1 <> d2 andalso d2 <> d3 andalso d1 <> d3 andalso p < 1000 andalso p > 99
  end
fun search (0, found) = found
  | search (n, found) =
      let
        val a = n mod 90 + 10
        val b = n mod 9 + 1
      in
        search (n - 1, if digits_ok (a, b) then found + 1 else found)
      end
fun outer (0, acc) = acc
  | outer (k, acc) = outer (k - 1, acc + search (900, 0))
val it = outer (scale, 0)
