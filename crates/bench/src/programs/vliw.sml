(* vliw — VLIW instruction-scheduler analog (paper: vliw): greedy list
   scheduling of a dependence DAG into wide issue slots. *)
val scale = 45
fun lcg s = (s * 1103515245 + 12345) mod 2147483648
(* instructions: (id, latency, deps) with deps a list of earlier ids *)
fun geninstrs (0, s, acc) = acc
  | geninstrs (n, s, acc) =
      let
        val s1 = lcg s
        val s2 = lcg s1
        val id = n
        val lat = s1 mod 3 + 1
        val deps = if id <= 2 then nil
                   else [(s1 mod (id - 1)) + 1, (s2 mod (id - 1)) + 1]
      in geninstrs (n - 1, s2, (id, lat, deps) :: acc) end
fun ready_time (id : int, nil) = 0
  | ready_time (id, (i, t) :: rest) = if i = id then t else ready_time (id, rest)
fun max_ready (nil, done) = 0
  | max_ready (d :: ds, done) = max (ready_time (d, done), max_ready (ds, done))
fun schedule (nil, done, cycles) = cycles
  | schedule ((id, lat, deps) :: rest, done, cycles) =
      let
        val start = max_ready (deps, done)
        val finish = start + lat
      in
        schedule (rest, (id, finish) :: done, max (cycles, finish))
      end
fun iter (0, acc) = acc
  | iter (k, acc) =
      let val instrs = geninstrs (60, k * 77 + 1, nil)
      in iter (k - 1, acc + schedule (instrs, nil, 0)) end
val it = iter (scale, 0)
