(* kitlife — the game of life on a list of live cells (paper: kitlife,
   region-optimised: each generation is built afresh and the old one dies). *)
val scale = 24
fun memb (x : int, y : int, nil) = false
  | memb (x, y, (a, b) :: rest) =
      (x = a andalso y = b) orelse memb (x, y, rest)
fun neighbours (x, y) =
  [(x-1, y-1), (x, y-1), (x+1, y-1),
   (x-1, y),             (x+1, y),
   (x-1, y+1), (x, y+1), (x+1, y+1)]
fun count (cell, board) =
  length (filter (fn (a, b) => memb (a, b, board)) (neighbours cell))
fun survivors (nil, board) = nil
  | survivors (c :: cs, board) =
      let val n = count (c, board)
      in if n = 2 orelse n = 3 then c :: survivors (cs, board)
         else survivors (cs, board)
      end
fun candidates (nil, acc) = acc
  | candidates (c :: cs, acc) = candidates (cs, neighbours c @ acc)
fun dedup (nil, acc) = acc
  | dedup ((x, y) :: rest, acc) =
      if memb (x, y, acc) then dedup (rest, acc) else dedup (rest, (x, y) :: acc)
fun births (board) =
  let
    val cand = dedup (candidates (board, nil), nil)
  in
    filter (fn (a, b) => not (memb (a, b, board)) andalso count ((a, b), board) = 3) cand
  end
fun step board = survivors (board, board) @ births board
fun run (0, board) = board
  | run (n, board) = run (n - 1, step board)
(* An R-pentomino-ish seed. *)
val seed = [(10, 10), (11, 10), (9, 11), (10, 11), (10, 12)]
val final = run (scale, seed)
val it = length final
