(* churn — mutation-heavy heap pressure for the collector comparison:
   three tables of ref cells (with distinct element types, so region
   inference gives each its own spine/cell regions and the parallel
   collector has several comparably-sized regions to hand out) hold
   lists that stay live across the whole run, while the loop keeps
   overwriting slots through `:=`. Every collection therefore copies a
   large live set spread over many regions, and every update crosses
   the write barrier — the sliced collector's hard case. The checksum
   reads old values before dropping them, so a barrier or evacuation
   bug changes the answer. *)
val scale = 600
val slots = 32
val live = 400
val nil2 = (0, 0) :: []
val nil3 = (0, 0, 0) :: []
val nil4 = ((0, 0), 0) :: []
val ta = array (slots, ref nil2)
val tb = array (slots, ref nil3)
val tc = array (slots, ref nil4)
fun inits i =
  if i < slots then
    (aupdate (ta, i, ref nil2); aupdate (tb, i, ref nil3);
     aupdate (tc, i, ref nil4); inits (i + 1))
  else ()
val _ = inits 0
fun build2 n acc = if n < 1 then acc else build2 (n - 1) ((n, n * 3) :: acc)
fun build3 n acc =
  if n < 1 then acc else build3 (n - 1) ((n, n * 3, n * 5) :: acc)
fun build4 n acc =
  if n < 1 then acc else build4 (n - 1) (((n, n * 2), n * 7) :: acc)
fun sum2 xs =
  let fun go ([], acc) = acc
        | go ((a, b) :: t, acc) = go (t, (acc + a + b) mod 1000003)
  in go (xs, 0) end
fun sum3 xs =
  let fun go ([], acc) = acc
        | go ((a, b, c) :: t, acc) = go (t, (acc + a + b + c) mod 1000003)
  in go (xs, 0) end
fun sum4 xs =
  let fun go ([], acc) = acc
        | go (((a, b), c) :: t, acc) = go (t, (acc + a + b + c) mod 1000003)
  in go (xs, 0) end
fun churn (k, seed, check) =
  if k < 1 then check
  else
    let val i = seed mod slots
        val which = (seed div 7) mod 3
        val old =
          if which = 0 then
            let val r = asub (ta, i)
                val s = sum2 (!r)
                val _ = r := build2 live nil2
            in s end
          else if which = 1 then
            let val r = asub (tb, i)
                val s = sum3 (!r)
                val _ = r := build3 live nil3
            in s end
          else
            let val r = asub (tc, i)
                val s = sum4 (!r)
                val _ = r := build4 live nil4
            in s end
        val seed2 = (seed * 48271 + 11) mod 2147483647
    in churn (k - 1, seed2, (check + old) mod 1000003) end
val it = churn (scale, 42, 0)
