(* professor — solves a scheduling puzzle by exhaustive search (paper:
   professor). Generates huge numbers of short-lived lists, the classic
   "region inference reclaims 90%" workload of Fig. 4. *)
val scale = 5
fun perms (nil : int list) = [nil]
  | perms xs =
      let
        fun rm (y : int, nil) = nil
          | rm (y, z :: zs) = if y = z then zs else z :: rm (y, zs)
        fun expand nil = nil
          | expand (x :: rest) =
              map (fn p => x :: p) (perms (rm (x, xs))) @ expand rest
      in expand xs end
fun ok nil = true
  | ok (x :: rest) =
      let
        fun clash (_, nil, _) = false
          | clash (a, b :: more, d) =
              a = b + d orelse a = b - d orelse clash (a, more, d + 1)
      in not (clash (x, rest, 1)) andalso ok rest end
fun count (nil, acc) = acc
  | count (p :: ps, acc) = count (ps, if ok p then acc + 1 else acc)
fun iter (0, acc) = acc
  | iter (k, acc) = iter (k - 1, acc + count (perms [1,2,3,4,5,6], 0))
val it = iter (scale, 0)
