(* zebra — the zebra/Einstein puzzle by constraint-pruned exhaustive search
   over house assignments (paper: zebra). List- and closure-heavy. *)
val scale = 2
fun perms (nil : int list) = [nil]
  | perms xs =
      let
        fun rm (y : int, nil) = nil
          | rm (y, z :: zs) = if y = z then zs else z :: rm (y, zs)
        fun expand nil = nil
          | expand (x :: rest) =
              map (fn p => x :: p) (perms (rm (x, xs))) @ expand rest
      in expand xs end
fun idx (x : int, y :: ys, i) = if x = y then i else idx (x, ys, i + 1)
  | idx (_, nil, _) = ~1
fun right_of (a, b, xs, ys) = idx (a, xs, 0) = idx (b, ys, 0) + 1
fun same_house (a, b, xs, ys) = idx (a, xs, 0) = idx (b, ys, 0)
fun next_to (a, b, xs, ys) =
  let val d = idx (a, xs, 0) - idx (b, ys, 0) in d = 1 orelse d = ~1 end
(* colours: 1..5, nations: 1..5, drinks: 1..5 *)
fun solve () =
  let
    val cs = filter (fn c => right_of (2, 1, c, c)) (perms [1,2,3,4,5])
    fun try nil = 0
      | try (c :: rest) =
          let
            val ns = filter (fn n => same_house (1, 1, n, c) andalso
                                     next_to (2, 3, n, n)) (perms [1,2,3,4,5])
            fun inner nil = try rest
              | inner (n :: more) =
                  let
                    val ds = filter (fn d => same_house (3, 3, d, n) andalso
                                             idx (2, d, 0) = 2) (perms [1,2,3,4,5])
                  in length ds + inner more end
          in inner ns end
  in try cs end
fun iter (0, acc) = acc
  | iter (k, acc) = iter (k - 1, acc + solve ())
val it = iter (scale, 0)
