(* msort — merge sort of pseudo-random integers (paper: sorting 100,000
   integers; scaled). Region-friendly: intermediate lists die quickly. *)
val scale = 4000
fun split (nil, a, b) = (a, b)
  | split (x :: rest, a, b) = split (rest, x :: b, a)
fun merge (nil, ys) = ys
  | merge (xs, nil) = xs
  | merge (x :: xs, y :: ys) =
      if x <= y then x :: merge (xs, y :: ys) else y :: merge (x :: xs, ys)
fun msort nil = nil
  | msort [x] = [x]
  | msort xs = let val (a, b) = split (xs, nil, nil) in merge (msort a, msort b) end
fun mk (0, seed, acc) = acc
  | mk (n, seed, acc) =
      let val s = (seed * 1103515245 + 12345) mod 2147483648
      in mk (n - 1, s, s mod 100000 :: acc) end
val input = mk (scale, 42, nil)
val sorted = msort input
fun check (x :: y :: rest) = if x <= y then check (y :: rest) else 0
  | check _ = 1
val it = check sorted * length sorted
