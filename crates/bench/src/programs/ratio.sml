(* ratio — image analysis (paper: ratio): a 2D array-of-reals pipeline
   computing a smoothed intensity ratio. Array/large-object heavy. *)
val scale = 34
val w = scale
val h = scale
fun mk () =
  let
    val img = array (w * h, 0.0)
    fun fill i =
      if i >= w * h then img
      else (aupdate (img, i, real ((i * 37) mod 255) / 255.0); fill (i + 1))
  in fill 0 end
fun at (img, x, y) = asub (img, y * w + x)
fun blur img =
  let
    val out = array (w * h, 0.0)
    fun go (x, y) =
      if y >= h - 1 then out
      else if x >= w - 1 then go (1, y + 1)
      else
        let
          val s = at (img, x-1, y) + at (img, x+1, y) + at (img, x, y-1)
                + at (img, x, y+1) + at (img, x, y)
        in
          aupdate (out, y * w + x, s / 5.0);
          go (x + 1, y)
        end
  in go (1, 1) end
fun bright img =
  let
    fun go (i, n) =
      if i >= w * h then n
      else go (i + 1, if asub (img, i) > 0.5 then n + 1 else n)
  in go (0, 0) end
fun pipeline (0, acc) = acc
  | pipeline (n, acc) =
      let val img = mk ()
          val b = blur (blur img)
      in pipeline (n - 1, acc + bright b) end
val it = pipeline (6, 0)
