(* machine — a datatype-coded stack-machine interpreter: every opcode is
   a constructor, so the dispatch `case` is a SwitchCon whose arms all
   jump back to the loop head with (pc, sp) live across the edge — the
   shape straight-line register allocation wins nothing on. *)
val scale = 2500
datatype tok =
    Push of int | Add | Sub | Dup | Swap | Over | Drop
  | Jnz of int | Done
exception Crash
val code = array (16, Done)
(* sum 1..n: stack is (acc, i); body rotates with Swap/Over. *)
val _ = aupdate (code, 0, Push 0)    (* acc *)
val _ = aupdate (code, 1, Push 40)   (* i — patched per run *)
val _ = aupdate (code, 2, Dup)       (* loop: acc i i *)
val _ = aupdate (code, 3, Jnz 6)     (* body if i <> 0 *)
val _ = aupdate (code, 4, Drop)      (* acc *)
val _ = aupdate (code, 5, Done)
val _ = aupdate (code, 6, Swap)      (* i acc *)
val _ = aupdate (code, 7, Over)      (* i acc i *)
val _ = aupdate (code, 8, Add)       (* i acc+i *)
val _ = aupdate (code, 9, Swap)      (* acc+i i *)
val _ = aupdate (code, 10, Push 1)
val _ = aupdate (code, 11, Sub)      (* acc' i-1 *)
val _ = aupdate (code, 12, Push 1)
val _ = aupdate (code, 13, Jnz 2)    (* back-edge *)
val stksz = 16
val stk = array (stksz, 0)
fun push (sp, v) =
  if sp >= stksz then raise Crash else (aupdate (stk, sp, v); sp + 1)
fun peek sp = if sp < 1 then raise Crash else asub (stk, sp - 1)
fun step (pc, sp) =
  case asub (code, pc) of
    Push k => step (pc + 1, push (sp, k))
  | Add =>
      let val b = peek sp
          val a = peek (sp - 1)
          val _ = aupdate (stk, sp - 2, a + b)
      in step (pc + 1, sp - 1) end
  | Sub =>
      let val b = peek sp
          val a = peek (sp - 1)
          val _ = aupdate (stk, sp - 2, a - b)
      in step (pc + 1, sp - 1) end
  | Dup => step (pc + 1, push (sp, peek sp))
  | Swap =>
      let val b = peek sp
          val a = peek (sp - 1)
          val _ = aupdate (stk, sp - 2, b)
          val _ = aupdate (stk, sp - 1, a)
      in step (pc + 1, sp) end
  | Over => step (pc + 1, push (sp, peek (sp - 1)))
  | Drop => if sp < 1 then raise Crash else step (pc + 1, sp - 1)
  | Jnz t => if peek sp <> 0 then step (t, sp - 1) else step (pc + 1, sp - 1)
  | Done => peek sp
fun runs (0, acc) = acc
  | runs (n, acc) =
      let val _ = aupdate (code, 1, Push (20 + n mod 17))
          val r = step (0, 0) handle Crash => ~1
      in runs (n - 1, (acc + r) mod 1048573) end
val it = runs (scale, 0)
