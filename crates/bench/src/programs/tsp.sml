(* tsp — travelling-salesman via nearest-neighbour tour over random real
   coordinates (paper: tsp). Real-heavy: every arithmetic result is boxed. *)
val scale = 140
fun lcg s = (s * 1103515245 + 12345) mod 2147483648
fun gen (0, s, acc) = acc
  | gen (n, s, acc) =
      let val s1 = lcg s
          val s2 = lcg s1
          val x = real (s1 mod 1000) / 10.0
          val y = real (s2 mod 1000) / 10.0
      in gen (n - 1, s2, (x, y) :: acc) end
fun dist ((x1, y1), (x2, y2)) =
  let val dx = x1 - x2
      val dy = y1 - y2
  in sqrt (dx * dx + dy * dy) end
fun nearest (p, nil, best, bd) = (best, bd)
  | nearest (p, c :: cs, best, bd) =
      let val d = dist (p, c)
      in if d < bd then nearest (p, cs, c, d) else nearest (p, cs, best, bd) end
fun removec (c : real * real, nil) = nil
  | removec ((cx, cy), (x, y) :: rest) =
      if cx = x andalso cy = y then rest else (x, y) :: removec ((cx, cy), rest)
fun tour (p, nil, total) = total
  | tour (p, cities, total) =
      let val (c, d) = nearest (p, cities, hd cities, 1000000.0)
      in tour (c, removec (c, cities), total + d) end
val cities = gen (scale, 7, nil)
val it = floor (tour ((0.0, 0.0), cities, 0.0))
