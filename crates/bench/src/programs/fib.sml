(* fib — the Fibonacci micro-benchmark (paper: fib35, scaled).
   Uses only the runtime stack for allocation. *)
val scale = 24
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
val it = fib scale
