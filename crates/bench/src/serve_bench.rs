//! Shared harness for benchmarking the multi-tenant server (`kit-serve`):
//! mix parsing, load points, and the JSON rows `bench-summary --serve`
//! and the `loadgen` binary both emit (so BENCH_PR9.json and ad-hoc load
//! runs report identical numbers).

use crate::programs::by_name;
use kit::{DispatchMode, Mode};
use kit_serve::load::{LoadProgram, LoadReport, LoadSpec};
use std::fmt::Write as _;
use std::net::SocketAddr;

/// The default serve mix: the paper benchmarks scaled so one request
/// costs on the order of a millisecond — a multi-tenant service's
/// request, not a batch job. `name:scale` entries as accepted by
/// [`parse_mix`].
pub const DEFAULT_MIX: &str = "fib:12,tak:4,churn:10,interp:30,book:60";

/// One load point of the serve benchmark.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Row label in the JSON output.
    pub label: String,
    /// Concurrent in-flight sessions.
    pub sessions: usize,
    /// TCP connections carrying them.
    pub conns: usize,
    /// Total requests issued.
    pub requests: usize,
}

/// Parses a mix spec: comma-separated
/// `name[:scale][:fuel=N][:pages=N][:deadline=MS][:tenant=ID]` entries
/// over the Fig. 3 benchmark set. A bare number annotation is the scale;
/// `fuel=`/`pages=` set per-request quotas, `deadline=` a wall-clock
/// budget in milliseconds, and `tenant=` the tenant id the entry's
/// requests are attributed to (for rate-limit and fair-shed runs).
///
/// # Errors
///
/// Returns a message naming the offending entry.
pub fn parse_mix(
    spec: &str,
    mode: Mode,
    dispatch: DispatchMode,
) -> Result<Vec<LoadProgram>, String> {
    let mut mix = Vec::new();
    for entry in spec.split(',').filter(|s| !s.is_empty()) {
        let mut parts = entry.split(':');
        let name = parts.next().expect("split yields at least one part");
        let bench = by_name(name).ok_or_else(|| format!("unknown benchmark {name:?}"))?;
        let mut scale = bench.test_scale;
        let mut fuel = None;
        let mut pages = None;
        let mut deadline_ms = None;
        let mut tenant = String::new();
        for part in parts {
            if let Some(v) = part.strip_prefix("fuel=") {
                fuel = Some(v.parse().map_err(|_| format!("{entry}: bad fuel {v:?}"))?);
            } else if let Some(v) = part.strip_prefix("pages=") {
                pages = Some(v.parse().map_err(|_| format!("{entry}: bad pages {v:?}"))?);
            } else if let Some(v) = part.strip_prefix("deadline=") {
                deadline_ms = Some(
                    v.parse()
                        .map_err(|_| format!("{entry}: bad deadline {v:?}"))?,
                );
            } else if let Some(v) = part.strip_prefix("tenant=") {
                tenant = v.to_string();
            } else {
                scale = part
                    .parse()
                    .map_err(|_| format!("{entry}: bad scale {part:?}"))?;
            }
        }
        mix.push(LoadProgram {
            name: entry.to_string(),
            mode,
            dispatch,
            fuel,
            max_heap_pages: pages,
            deadline_ms,
            tenant,
            src: bench.source_scaled(scale),
        });
    }
    if mix.is_empty() {
        return Err("empty mix".to_string());
    }
    Ok(mix)
}

/// Runs one load point against a running server.
///
/// # Errors
///
/// Propagates the load driver's error (socket failure or a per-program
/// counter mismatch).
pub fn run_point(
    addr: SocketAddr,
    point: &ServePoint,
    mix: &[LoadProgram],
) -> Result<LoadReport, String> {
    kit_serve::load::run_load(&LoadSpec {
        addr,
        requests: point.requests,
        sessions: point.sessions,
        conns: point.conns,
        mix: mix.to_vec(),
    })
}

/// Prints a human-readable report for one load point.
pub fn print_report(point: &ServePoint, workers: usize, report: &LoadReport) {
    eprintln!(
        "{:<12} {:>6} sessions {:>4} conns {:>4} workers {:>7} reqs: \
         {:>9.0} req/s  p50 {:>7.2}ms  p99 {:>7.2}ms",
        point.label,
        point.sessions,
        point.conns,
        workers,
        report.requests,
        report.rps,
        report.p50_ms,
        report.p99_ms,
    );
    if report.shed + report.rate_limited + report.deadline_exceeded > 0 {
        eprintln!(
            "    overload: {} shed, {} rate-limited, {} deadline-exceeded, queue depth p99 {}",
            report.shed, report.rate_limited, report.deadline_exceeded, report.queue_depth_p99,
        );
    }
    for p in &report.per_program {
        eprintln!(
            "    {:<22} {:>6} reqs  {:?}  {:>10} instr  {:>3} gcs  gc {:>7.2}ms total  \
             p99 {:>7.2}ms{}",
            p.name,
            p.requests,
            p.status,
            p.instructions,
            p.gc_count,
            p.gc_time_ns as f64 / 1e6,
            p.p99_ms,
            if p.shed + p.rate_limited + p.deadline_exceeded > 0 {
                format!(
                    "  ({} shed, {} limited, {} deadline)",
                    p.shed, p.rate_limited, p.deadline_exceeded
                )
            } else {
                String::new()
            },
        );
    }
    let gc: Vec<String> = report
        .per_worker_gc_ns
        .iter()
        .map(|(w, ns)| format!("w{w}={:.2}ms", *ns as f64 / 1e6))
        .collect();
    eprintln!("    per-worker gc: {}", gc.join(" "));
}

/// Renders one JSON row of the `"serve"` array.
pub fn json_row(point: &ServePoint, workers: usize, report: &LoadReport) -> String {
    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"label\": \"{}\", \"sessions\": {}, \"conns\": {}, \"workers\": {}, \
         \"requests\": {}, \"wall_ms\": {:.1}, \"rps\": {:.0}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \
         \"shed\": {}, \"rate_limited\": {}, \"deadline_exceeded\": {}, \
         \"queue_depth_p99\": {}, \"programs\": [",
        point.label,
        point.sessions,
        point.conns,
        workers,
        report.requests,
        report.wall.as_secs_f64() * 1e3,
        report.rps,
        report.p50_ms,
        report.p99_ms,
        report.mean_ms,
        report.shed,
        report.rate_limited,
        report.deadline_exceeded,
        report.queue_depth_p99,
    );
    for (i, p) in report.per_program.iter().enumerate() {
        let _ = write!(
            row,
            "{}{{\"name\": \"{}\", \"status\": \"{:?}\", \"requests\": {}, \
             \"executed\": {}, \"shed\": {}, \"rate_limited\": {}, \
             \"deadline_exceeded\": {}, \
             \"instructions\": {}, \"gc_count\": {}, \"gc_copied_words\": {}, \
             \"gc_time_ns\": {}, \"peak_bytes\": {}, \"p99_ms\": {:.3}}}",
            if i > 0 { ", " } else { "" },
            p.name,
            p.status,
            p.requests,
            p.executed,
            p.shed,
            p.rate_limited,
            p.deadline_exceeded,
            p.instructions,
            p.gc_count,
            p.gc_copied_words,
            p.gc_time_ns,
            p.peak_bytes,
            p.p99_ms,
        );
    }
    row.push_str("], \"worker_gc_ns\": [");
    for (i, (_, ns)) in report.per_worker_gc_ns.iter().enumerate() {
        let _ = write!(row, "{}{}", if i > 0 { ", " } else { "" }, ns);
    }
    row.push_str("]}");
    row
}

/// Wraps serve rows into the BENCH_PR9-style document.
pub fn json_document(rows: &[String]) -> String {
    let mut json = String::from("{\n  \"serve\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str("    ");
        json.push_str(row);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}
