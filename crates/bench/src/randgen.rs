//! Random program generator and N-way engine differential, shared by the
//! `randomized` integration test (a short fixed-seed run in CI) and the
//! `soak` binary (arbitrarily long runs with config fuzzing).
//!
//! Two generator surfaces (DESIGN.md §6h):
//!
//! * [`Surface::Int`] — the original int-expression generator: `div`/`mod`
//!   with dynamically-zero divisors, overflow-prone arithmetic, user
//!   exceptions raised conditionally deep inside expressions, and
//!   `handle` chains, all inside a recursive driver. Kept bit-for-bit so
//!   historical soak seeds stay reproducible.
//! * [`Surface::Full`] — a type-directed generator over the whole MiniML
//!   surface: recursive and mutually recursive functions (region-
//!   polymorphic list/tree/shape builders called from many allocation
//!   sites), user datatypes with `SwitchCon`-heavy matches, lists,
//!   tuples, refs, arrays (including ones past the large-object
//!   threshold), strings, reals, deep nested `handle` chains, and
//!   finite-region tuple bindings held live across allocating
//!   subexpressions — the collector's hard cases (paper §2.2–2.5) that
//!   int-only programs never reach.
//!
//! Every generated program is well-typed by construction: expressions are
//! drawn type-directed against a fixed world (two datatypes, two user
//! exceptions, three mutable globals, and a set of generated functions
//! with known signatures), and every recursion is structural or driven by
//! a counter that call sites clamp with `mod`, so programs terminate in
//! well under the differential's fuel budget.

use crate::programs::SplitMix64;
use kit::{Compiler, DispatchMode, Error, Fusion, Mode, Outcome};
use kit_runtime::config::GenPolicy;
use kit_runtime::RtConfig;

/// The engines checked against the `Match` reference. Every generated
/// program must behave identically — result, output, instruction total,
/// and GC/alloc statistics — under all four dispatch modes.
pub const DIFF_ENGINES: [DispatchMode; 3] = [
    DispatchMode::Threaded,
    DispatchMode::Register,
    DispatchMode::RegisterFused,
];

/// Which grammar [`program`] draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// The original int-expression generator (PR 3/4 seeds reproduce).
    Int,
    /// The full-MiniML generator (datatypes, arrays, strings, reals,
    /// refs, large objects, nested handlers).
    Full,
}

impl Surface {
    /// Parses a `--surface` flag value.
    pub fn parse(s: &str) -> Option<Surface> {
        match s {
            "int" => Some(Surface::Int),
            "full" => Some(Surface::Full),
            _ => None,
        }
    }
}

/// One random program drawn from `surface`.
pub fn program(rng: &mut SplitMix64, surface: Surface) -> String {
    match surface {
        Surface::Int => program_int(rng),
        Surface::Full => program_full(rng),
    }
}

// ------------------------------------------------------------------------
// Int surface (the PR 3 generator, unchanged)
// ------------------------------------------------------------------------

/// A random int leaf: a variable, a small constant, or (rarely) a
/// constant big enough that products overflow the 63-bit int range.
fn leaf(rng: &mut SplitMix64, vars: &[&str]) -> String {
    match rng.below(6) {
        0 | 1 if !vars.is_empty() => vars[rng.below(vars.len() as u64) as usize].to_string(),
        2 => "1073741823".to_string(),
        _ => {
            let n = rng.range_i64(-20, 100);
            if n < 0 {
                format!("~{}", -n)
            } else {
                n.to_string()
            }
        }
    }
}

/// A random int expression over `vars`, biased toward partial operations
/// and exception traffic.
fn int_expr(rng: &mut SplitMix64, vars: &[&str], depth: u32) -> String {
    if depth == 0 {
        return leaf(rng, vars);
    }
    let a = int_expr(rng, vars, depth - 1);
    let b = int_expr(rng, vars, depth - 1);
    match rng.below(16) {
        0..=2 => leaf(rng, vars),
        3..=5 => {
            let op = ["+", "-", "*"][rng.below(3) as usize];
            format!("({a} {op} {b})")
        }
        // Partial ops: the divisor is frequently zero at runtime.
        6 => format!("({a} div ({b} mod 3))"),
        7 => format!("({a} mod ({b} mod 5))"),
        8 => format!("(if {a} < {b} then {a} else {b})"),
        9 => format!("(let val y = {a} in (y + {b}) end)"),
        10 => format!("((fn q => q + {a}) {b})"),
        11 => format!("(fst ({a}, {b}) + snd ({b}, {a}))"),
        12 => format!("(hd [{a}, {b}] + length [{b}])"),
        // A conditionally-raised user exception carrying a payload.
        13 => format!(
            "(if {a} < {} then raise Boom ({b}) else {b})",
            leaf(rng, vars)
        ),
        // Handlers over a raising subexpression.
        _ => {
            let h1 = leaf(rng, vars);
            let h2 = leaf(rng, vars);
            format!("(({a}) handle Div => {h1} | Overflow => {h2} | Boom k => (k mod 9001))")
        }
    }
}

/// One random int-surface program: a generated function applied many
/// times by a recursive driver, every call under a handler chain so
/// raising and non-raising iterations interleave.
fn program_int(rng: &mut SplitMix64) -> String {
    let body = int_expr(rng, &["x0", "x1"], 3);
    let seed = int_expr(rng, &[], 2);
    let iters = 10 + rng.below(20);
    format!(
        "exception Boom of int\n\
         fun f (x0, x1) = {body}\n\
         fun go n acc =\n\
         \u{20}  if n < 1 then acc\n\
         \u{20}  else go (n - 1) (((acc * 3 + f (n, acc)) handle Div => ~1 | Overflow => ~2 | Boom k => (k + acc) mod 65537) mod 100003)\n\
         val it = go {iters} (({seed}) handle Overflow => 7 | Div => 11)\n"
    )
}

// ------------------------------------------------------------------------
// Full surface (type-directed)
// ------------------------------------------------------------------------

/// Types the full-surface generator draws expressions at.
///
/// `Tree` and `Shape` are the two fixed user datatypes every full-surface
/// program declares; `Shape` has four constructors so its matches compile
/// to the jump-table `SwitchCon` form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Bool,
    Real,
    Str,
    /// `int list`
    IntList,
    /// `(int * int) list`
    PairList,
    /// `datatype tree = Leaf | Node of tree * int * tree`
    Tree,
    /// `datatype shape = Nul | Pt of int * int | Ln of shape * int
    ///  | Qd of shape * shape * shape`
    Shape,
    /// `int ref`
    IntRef,
}

/// Signature of a generated top-level function.
#[derive(Clone)]
struct FnSig {
    name: String,
    params: Vec<Ty>,
    ret: Ty,
    /// The parameter driving recursion depth, with the modulus call
    /// sites clamp it by (`(arg) mod m`), so every call terminates after
    /// a few unrollings no matter what argument expression is drawn.
    bounded: Option<(usize, u64)>,
}

/// Number of slots in the `cells` global (an `(int ref) array`).
const CELLS: u64 = 12;

struct Gen<'r> {
    rng: &'r mut SplitMix64,
    /// Functions generated so far; bodies may call any of these.
    fns: Vec<FnSig>,
    /// Fresh-variable counter (`v0`, `v1`, ...).
    fresh: u32,
    /// Remaining calls to generated functions in the current top-level
    /// body. Bounds the dynamic call tree: generated functions call each
    /// other, and without a budget a chain of builders multiplies their
    /// loop counts.
    calls: u32,
    /// Length of the `biga` global array (always past the large-object
    /// threshold of 128 words).
    big_len: u64,
}

impl<'r> Gen<'r> {
    fn new(rng: &'r mut SplitMix64) -> Self {
        let big_len = 130 + rng.below(250);
        Gen {
            rng,
            fns: Vec::new(),
            fresh: 0,
            calls: 0,
            big_len,
        }
    }

    fn fresh(&mut self) -> String {
        self.fresh += 1;
        format!("v{}", self.fresh)
    }

    /// A mostly-safe index expression into an array of length `len`: three
    /// times out of four wrapped into range, otherwise left to raise
    /// `Subscript` when the draw lands outside.
    fn idx(&mut self, env: &mut Vec<(String, Ty)>, len: u64, d: u32) -> String {
        let e = self.expr(env, Ty::Int, d.min(1));
        if self.rng.below(4) < 3 {
            format!("((({e}) mod {len} + {len}) mod {len})")
        } else {
            format!("(({e}) mod {})", len + 3)
        }
    }

    /// A random in-scope variable of type `ty`.
    fn var(&mut self, env: &[(String, Ty)], ty: Ty) -> Option<String> {
        let vars: Vec<&String> = env
            .iter()
            .filter(|(_, t)| *t == ty)
            .map(|(n, _)| n)
            .collect();
        if vars.is_empty() {
            None
        } else {
            Some(vars[self.rng.below(vars.len() as u64) as usize].clone())
        }
    }

    /// A call to a generated function returning `ty`, if one exists and
    /// the call budget allows. Bounded parameters are clamped at the call
    /// site so recursion terminates.
    fn call(&mut self, env: &mut Vec<(String, Ty)>, ty: Ty, d: u32) -> Option<String> {
        if self.calls == 0 {
            return None;
        }
        let cands: Vec<usize> = (0..self.fns.len())
            .filter(|&i| self.fns[i].ret == ty)
            .collect();
        if cands.is_empty() {
            return None;
        }
        self.calls -= 1;
        let f = self.fns[cands[self.rng.below(cands.len() as u64) as usize]].clone();
        let mut args = Vec::new();
        for (i, &p) in f.params.iter().enumerate() {
            let mut a = self.expr(env, p, d.saturating_sub(1));
            if let Some((bi, m)) = f.bounded {
                if bi == i {
                    a = format!("(({a}) mod {m})");
                }
            }
            args.push(a);
        }
        Some(format!("({} ({}))", f.name, args.join(", ")))
    }

    /// A leaf (depth-0) expression of type `ty`.
    fn leaf(&mut self, env: &[(String, Ty)], ty: Ty) -> String {
        if self.rng.below(2) == 0 {
            if let Some(v) = self.var(env, ty) {
                return v;
            }
        }
        match ty {
            Ty::Int => match self.rng.below(8) {
                0 => "1073741823".to_string(),
                _ => {
                    let n = self.rng.range_i64(-9, 60);
                    if n < 0 {
                        format!("~{}", -n)
                    } else {
                        n.to_string()
                    }
                }
            },
            Ty::Bool => if self.rng.bool() { "true" } else { "false" }.to_string(),
            Ty::Real => ["0.5", "~1.25", "3.0", "0.125", "2.75", "~0.0625"]
                [self.rng.below(6) as usize]
                .to_string(),
            Ty::Str => ["\"\"", "\"ab\"", "\"kit\"", "\"xyzzy\"", "\"!\""]
                [self.rng.below(5) as usize]
                .to_string(),
            Ty::IntList => match self.rng.below(3) {
                0 => "nil".to_string(),
                1 => format!("[{}]", self.rng.below(50)),
                _ => format!("[{}, {}]", self.rng.below(50), self.rng.below(50)),
            },
            Ty::PairList => match self.rng.below(2) {
                0 => "nil".to_string(),
                _ => format!("[({}, {})]", self.rng.below(50), self.rng.below(50)),
            },
            Ty::Tree => "Leaf".to_string(),
            Ty::Shape => match self.rng.below(2) {
                0 => "Nul".to_string(),
                _ => format!("(Pt ({}, {}))", self.rng.below(40), self.rng.below(40)),
            },
            Ty::IntRef => format!("(ref {})", self.rng.below(64)),
        }
    }

    /// A random expression of type `ty`, at most `d` productions deep.
    fn expr(&mut self, env: &mut Vec<(String, Ty)>, ty: Ty, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, ty);
        }
        if let Some(c) = (self.rng.below(8) == 0)
            .then(|| self.call(env, ty, d))
            .flatten()
        {
            return c;
        }
        match ty {
            Ty::Int => self.int(env, d),
            Ty::Bool => self.boolean(env, d),
            Ty::Real => self.real(env, d),
            Ty::Str => self.string(env, d),
            Ty::IntList => self.int_list(env, d),
            Ty::PairList => self.pair_list(env, d),
            Ty::Tree => self.tree(env, d),
            Ty::Shape => self.shape(env, d),
            Ty::IntRef => self.int_ref(env, d),
        }
    }

    fn int(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, Ty::Int);
        }
        match self.rng.below(30) {
            0..=2 => self.leaf(env, Ty::Int),
            3..=5 => {
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                let op = ["+", "-", "*"][self.rng.below(3) as usize];
                format!("({a} {op} {b})")
            }
            // Partial ops: the divisor is frequently zero at runtime.
            6 => {
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                format!("({a} div ({b} mod 3))")
            }
            7 => {
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                format!("({a} mod ({b} mod 5))")
            }
            8 => {
                let c = self.expr(env, Ty::Bool, d - 1);
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                format!("(if {c} then {a} else {b})")
            }
            // A finite-region tuple held live *across* an allocating
            // subexpression: `fst` is read before the middle expression
            // runs (and possibly collects), `snd` after — so the boxed
            // pair sits on the stack through the GC and must be constant-
            // marked, scanned in place, and unmarked (paper §2.5).
            9 => {
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                let v = self.fresh();
                // `v` is a pair, outside the generator's type lattice —
                // it stays out of `env` and is only read through
                // `fst`/`snd` around the (possibly allocating) middle.
                let mid = self.expr(env, Ty::Int, d - 1);
                format!("(let val {v} = ({a}, {b}) in ((fst {v}) + ({mid}) + (snd {v})) end)")
            }
            10 => {
                let v = self.fresh();
                let bind_ty = [Ty::Int, Ty::IntList, Ty::Str, Ty::Tree][self.rng.below(4) as usize];
                let rhs = self.expr(env, bind_ty, d - 1);
                env.push((v.clone(), bind_ty));
                let body = self.int(env, d - 1);
                env.pop();
                format!("(let val {v} = {rhs} in {body} end)")
            }
            // Nested function declaration (a fresh region-polymorphic
            // closure per evaluation).
            11 => {
                let q = self.fresh();
                let z = self.fresh();
                env.push((z.clone(), Ty::Int));
                let fb = self.int(env, d - 1);
                env.pop();
                let arg = self.expr(env, Ty::Int, d - 1);
                format!("(let fun {q} {z} = {fb} in {q} ({arg}) end)")
            }
            // Dense int switch.
            12 => {
                let s = self.expr(env, Ty::Int, d - 1);
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                let c = self.expr(env, Ty::Int, d - 1);
                format!("(case ({s}) mod 4 of 0 => {a} | 1 => {b} | _ => {c})")
            }
            // String match (string patterns + ground equality).
            13 => {
                let s = self.expr(env, Ty::Str, d - 1);
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                format!("(case {s} of \"ab\" => {a} | \"\" => {b} | _ => 1)")
            }
            // List/pair-list destructuring.
            14 => {
                let l = self.expr(env, Ty::IntList, d - 1);
                let a = self.expr(env, Ty::Int, d - 1);
                let h = self.fresh();
                let t = self.fresh();
                env.push((h.clone(), Ty::Int));
                let b = self.int(env, d - 1);
                env.pop();
                format!("(case {l} of nil => {a} | {h} :: {t} => ({b}) + length {t})")
            }
            15 => {
                let l = self.expr(env, Ty::PairList, d - 1);
                let a = self.expr(env, Ty::Int, d - 1);
                let p = self.fresh();
                let q = self.fresh();
                env.push((p.clone(), Ty::Int));
                env.push((q.clone(), Ty::Int));
                let b = self.int(env, d - 1);
                env.pop();
                env.pop();
                format!("(case {l} of nil => {a} | ({p}, {q}) :: _ => {b})")
            }
            // Datatype matches (SwitchCon).
            16 => {
                let t = self.expr(env, Ty::Tree, d - 1);
                let a = self.expr(env, Ty::Int, d - 1);
                let v = self.fresh();
                env.push((v.clone(), Ty::Int));
                let b = self.int(env, d - 1);
                env.pop();
                format!("(case {t} of Leaf => {a} | Node (_, {v}, _) => {b})")
            }
            17 => {
                let s = self.expr(env, Ty::Shape, d - 1);
                let a = self.expr(env, Ty::Int, d - 1);
                let x = self.fresh();
                env.push((x.clone(), Ty::Int));
                let b = self.int(env, d - 1);
                env.pop();
                format!(
                    "(case {s} of Nul => {a} | Pt ({x}, _) => {b} \
                     | Ln (_, k) => k + 1 | Qd (_, _, _) => 4)"
                )
            }
            18 => match self.call(env, Ty::Int, d) {
                Some(c) => c,
                None => self.leaf(env, Ty::Int),
            },
            // List observers from the prelude.
            19 => {
                let l = self.expr(env, Ty::IntList, d - 1);
                match self.rng.below(4) {
                    0 => format!("(length ({l}))"),
                    1 => format!("(hd ({l}))"),
                    2 => {
                        let i = self.expr(env, Ty::Int, 1);
                        format!("(nth ({l}, ({i}) mod 5))")
                    }
                    _ => {
                        let z = self.fresh();
                        let w = self.fresh();
                        env.push((z.clone(), Ty::Int));
                        env.push((w.clone(), Ty::Int));
                        let b = self.int(env, d - 1);
                        env.pop();
                        env.pop();
                        format!("(foldl (fn ({z}, {w}) => {b}) 1 ({l}))")
                    }
                }
            }
            // Real observers (the only way a real reaches the checksum).
            20 => {
                let r = self.expr(env, Ty::Real, d - 1);
                let f = ["floor", "trunc"][self.rng.below(2) as usize];
                format!("(({f} (({r}) * 0.5)) mod 8191)")
            }
            // String observers.
            21 => {
                let s = self.expr(env, Ty::Str, d - 1);
                match self.rng.below(3) {
                    0 => format!("(size ({s}))"),
                    _ => {
                        let i = self.expr(env, Ty::Int, 1);
                        format!("(strsub (({s}) ^ \"z\", (({i}) mod 3)))")
                    }
                }
            }
            // Array traffic: the fixed large-object global, or a fresh
            // local array (sometimes itself past the large-object
            // threshold) written then read back.
            22 => {
                let i = self.idx(env, self.big_len, d);
                format!("(asub (biga, {i}))")
            }
            23 => {
                let ar = self.fresh();
                let n = if self.rng.below(3) == 0 {
                    // Past the large-object threshold: allocated in the
                    // large-object space, traversed in place by the GC.
                    130 + self.rng.below(120)
                } else {
                    2 + self.rng.below(24)
                };
                let init = self.expr(env, Ty::Int, d - 1);
                let wr = self.expr(env, Ty::Int, d - 1);
                let i = self.idx(env, n, d);
                let j = self.idx(env, n, d);
                format!(
                    "(let val {ar} = array ({n}, {init}) in \
                     (aupdate ({ar}, {i}, {wr}); asub ({ar}, {j}) + alength {ar}) end)"
                )
            }
            // Ref cells: globals (`cells`) and locals.
            24 => {
                let r = self.expr(env, Ty::IntRef, d - 1);
                format!("(!({r}))")
            }
            // Unit-effect sequencing (mutation, output).
            25 => {
                let u = self.unit(env, d - 1);
                let a = self.expr(env, Ty::Int, d - 1);
                format!("(({u}); {a})")
            }
            // `while` over a local ref.
            26 => {
                let w = self.fresh();
                let k = 1 + self.rng.below(6);
                let u = self.unit(env, d - 1);
                format!(
                    "(let val {w} = ref 0 in \
                     (while !{w} < {k} do (({u}); {w} := !{w} + 1); !{w}) end)"
                )
            }
            // Conditionally-raised exceptions, both user ones.
            27 => {
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                let k = self.rng.below(40);
                if self.rng.bool() {
                    format!("(if {a} < {k} then raise Boom ({b}) else {b})")
                } else {
                    // The payload is a heap-allocated string whose
                    // lifetime crosses the handler frame.
                    format!("(if {a} < {k} then raise Crash (itos ({b})) else {b})")
                }
            }
            // Handler chains: random arm subsets over a raising body, so
            // some raises are caught here, some a frame up, some never.
            _ => {
                let a = self.expr(env, Ty::Int, d - 1);
                let mut arms = Vec::new();
                if self.rng.bool() {
                    arms.push("Div => 3".to_string());
                }
                if self.rng.bool() {
                    arms.push("Overflow => 5".to_string());
                }
                if self.rng.bool() {
                    arms.push("Subscript => 7".to_string());
                }
                let h = self.expr(env, Ty::Int, d - 1);
                let v = self.fresh();
                match self.rng.below(3) {
                    0 => arms.push(format!("Boom {v} => (({v} + ({h})) mod 9001)")),
                    1 => arms.push(format!("Crash {v} => (size {v} + ({h}))")),
                    _ => arms.push(format!("_ => ({h})")),
                }
                format!("(({a}) handle {})", arms.join(" | "))
            }
        }
    }

    fn boolean(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, Ty::Bool);
        }
        match self.rng.below(10) {
            0 => self.leaf(env, Ty::Bool),
            1..=3 => {
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                let op = ["<", "<=", ">", ">=", "=", "<>"][self.rng.below(6) as usize];
                format!("({a} {op} {b})")
            }
            4 => {
                let a = self.expr(env, Ty::Real, d - 1);
                let b = self.expr(env, Ty::Real, d - 1);
                let op = ["<", "<="][self.rng.below(2) as usize];
                format!("({a} {op} {b})")
            }
            5 => {
                let a = self.expr(env, Ty::Str, d - 1);
                let b = self.expr(env, Ty::Str, d - 1);
                let op = ["<", "="][self.rng.below(2) as usize];
                format!("({a} {op} {b})")
            }
            6 => {
                let l = self.expr(env, Ty::IntList, d - 1);
                format!("(null ({l}))")
            }
            7 => {
                let a = self.expr(env, Ty::Bool, d - 1);
                format!("(not {a})")
            }
            _ => {
                let a = self.expr(env, Ty::Bool, d - 1);
                let b = self.expr(env, Ty::Bool, d - 1);
                let op = ["andalso", "orelse"][self.rng.below(2) as usize];
                format!("({a} {op} {b})")
            }
        }
    }

    fn real(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, Ty::Real);
        }
        match self.rng.below(8) {
            0 | 1 => self.leaf(env, Ty::Real),
            2..=4 => {
                let a = self.expr(env, Ty::Real, d - 1);
                let b = self.expr(env, Ty::Real, d - 1);
                let op = ["+", "-", "*", "/"][self.rng.below(4) as usize];
                format!("({a} {op} {b})")
            }
            5 => {
                let a = self.expr(env, Ty::Int, d - 1);
                format!("(real (({a}) mod 1024))")
            }
            6 => {
                let c = self.expr(env, Ty::Bool, d - 1);
                let a = self.expr(env, Ty::Real, d - 1);
                let b = self.expr(env, Ty::Real, d - 1);
                format!("(if {c} then {a} else {b})")
            }
            _ => match self.call(env, Ty::Real, d) {
                Some(c) => c,
                None => self.leaf(env, Ty::Real),
            },
        }
    }

    fn string(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, Ty::Str);
        }
        match self.rng.below(8) {
            0 | 1 => self.leaf(env, Ty::Str),
            2 | 3 => {
                let a = self.expr(env, Ty::Str, d - 1);
                let b = self.expr(env, Ty::Str, d - 1);
                format!("({a} ^ {b})")
            }
            4 | 5 => {
                let a = self.expr(env, Ty::Int, d - 1);
                format!("(itos ({a}))")
            }
            6 => {
                let r = self.expr(env, Ty::Real, d - 1);
                format!("(rtos (real (floor (({r}) * 4.0))))")
            }
            _ => match self.call(env, Ty::Str, d) {
                Some(c) => c,
                None => self.leaf(env, Ty::Str),
            },
        }
    }

    fn int_list(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, Ty::IntList);
        }
        match self.rng.below(12) {
            0 | 1 => self.leaf(env, Ty::IntList),
            2 => {
                let a = self.expr(env, Ty::Int, d - 1);
                let l = self.expr(env, Ty::IntList, d - 1);
                format!("(({a}) :: {l})")
            }
            3 => {
                let a = self.expr(env, Ty::IntList, d - 1);
                let b = self.expr(env, Ty::IntList, d - 1);
                format!("(({a}) @ ({b}))")
            }
            4 => {
                let l = self.expr(env, Ty::IntList, d - 1);
                format!("(rev ({l}))")
            }
            5 => {
                let l = self.expr(env, Ty::IntList, d - 1);
                format!("(tl ({l}))")
            }
            6 => {
                let z = self.fresh();
                env.push((z.clone(), Ty::Int));
                let b = self.int(env, d - 1);
                env.pop();
                let l = self.expr(env, Ty::IntList, d - 1);
                format!("(map (fn {z} => {b}) ({l}))")
            }
            7 => {
                let z = self.fresh();
                env.push((z.clone(), Ty::Int));
                let b = self.boolean(env, d - 1);
                env.pop();
                let l = self.expr(env, Ty::IntList, d - 1);
                format!("(filter (fn {z} => {b}) ({l}))")
            }
            8 => {
                let a = self.expr(env, Ty::Int, 1);
                format!("(upto (1, ({a}) mod 20))")
            }
            9 => {
                let l = self.expr(env, Ty::IntList, d - 1);
                let n = self.expr(env, Ty::Int, 1);
                let f = ["take", "drop"][self.rng.below(2) as usize];
                format!("({f} (({l}), ({n}) mod 4))")
            }
            10 => "(!lbox)".to_string(),
            _ => match self.call(env, Ty::IntList, d) {
                Some(c) => c,
                None => self.leaf(env, Ty::IntList),
            },
        }
    }

    fn pair_list(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, Ty::PairList);
        }
        match self.rng.below(8) {
            0 | 1 => self.leaf(env, Ty::PairList),
            2 => {
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                let l = self.expr(env, Ty::PairList, d - 1);
                format!("((({a}), ({b})) :: {l})")
            }
            3 => {
                let z = self.fresh();
                env.push((z.clone(), Ty::Int));
                let x = self.int(env, d - 1);
                env.pop();
                let l = self.expr(env, Ty::IntList, d - 1);
                format!("(map (fn {z} => (({x}), {z})) ({l}))")
            }
            4 => {
                let l = self.expr(env, Ty::PairList, d - 1);
                format!("(rev ({l}))")
            }
            5 => {
                let p = self.fresh();
                let q = self.fresh();
                env.push((p.clone(), Ty::Int));
                env.push((q.clone(), Ty::Int));
                let b = self.boolean(env, d - 1);
                env.pop();
                env.pop();
                let l = self.expr(env, Ty::PairList, d - 1);
                format!("(filter (fn ({p}, {q}) => {b}) ({l}))")
            }
            _ => match self.call(env, Ty::PairList, d) {
                Some(c) => c,
                None => self.leaf(env, Ty::PairList),
            },
        }
    }

    fn tree(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, Ty::Tree);
        }
        match self.rng.below(6) {
            0 | 1 => self.leaf(env, Ty::Tree),
            2 | 3 => {
                let l = self.expr(env, Ty::Tree, d - 1);
                let v = self.expr(env, Ty::Int, d - 1);
                let r = self.expr(env, Ty::Tree, d - 1);
                format!("(Node ({l}, {v}, {r}))")
            }
            _ => match self.call(env, Ty::Tree, d) {
                Some(c) => c,
                None => self.leaf(env, Ty::Tree),
            },
        }
    }

    fn shape(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, Ty::Shape);
        }
        match self.rng.below(8) {
            0 | 1 => self.leaf(env, Ty::Shape),
            2 => {
                let a = self.expr(env, Ty::Int, d - 1);
                let b = self.expr(env, Ty::Int, d - 1);
                format!("(Pt ({a}, {b}))")
            }
            3 => {
                let s = self.expr(env, Ty::Shape, d - 1);
                let k = self.expr(env, Ty::Int, d - 1);
                format!("(Ln ({s}, {k}))")
            }
            4 | 5 => {
                let a = self.expr(env, Ty::Shape, d - 1);
                let b = self.expr(env, Ty::Shape, d - 1);
                let c = self.expr(env, Ty::Shape, d - 1);
                format!("(Qd ({a}, {b}, {c}))")
            }
            _ => match self.call(env, Ty::Shape, d) {
                Some(c) => c,
                None => self.leaf(env, Ty::Shape),
            },
        }
    }

    fn int_ref(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        if d == 0 {
            return self.leaf(env, Ty::IntRef);
        }
        match self.rng.below(4) {
            0 => self.leaf(env, Ty::IntRef),
            1 | 2 => {
                let i = self.idx(env, CELLS, d);
                format!("(asub (cells, {i}))")
            }
            _ => {
                let a = self.expr(env, Ty::Int, d - 1);
                format!("(ref ({a}))")
            }
        }
    }

    /// A unit-valued effect: array/ref mutation (write-barrier traffic
    /// under the sliced collector, remembered-set traffic under the
    /// generational baseline) or, rarely, output.
    fn unit(&mut self, env: &mut Vec<(String, Ty)>, d: u32) -> String {
        match self.rng.below(12) {
            0..=2 => {
                let i = self.idx(env, self.big_len, d);
                let a = self.expr(env, Ty::Int, d.min(1));
                format!("(aupdate (biga, {i}, {a}))")
            }
            3 | 4 => {
                let i = self.idx(env, CELLS, d);
                let a = self.expr(env, Ty::Int, d.min(1));
                format!("(aupdate (cells, {i}, ref ({a})))")
            }
            5..=7 => {
                let r = self.int_ref(env, d.min(1));
                let a = self.expr(env, Ty::Int, d.min(1));
                format!("(({r}) := ({a}))")
            }
            8 | 9 => {
                let l = self.expr(env, Ty::IntList, d.min(1));
                format!("(lbox := ({l}))")
            }
            10 => {
                let s = self.expr(env, Ty::Str, d.min(1));
                format!("(print ({s}))")
            }
            _ => {
                let a = self.expr(env, Ty::Int, d.min(1));
                format!("(ignore ({a}))")
            }
        }
    }

    // ------------------------------------------------- top-level functions

    /// Emits one generated top-level function of a random kind and
    /// registers its signature for later call sites.
    fn emit_fn(&mut self, out: &mut String, kind: u64) {
        self.calls = 3;
        let i = self.fns.len();
        match kind {
            // Counter-driven scalar recursion (one self-call, `a`
            // strictly decreasing).
            0 => {
                let name = format!("fsc{i}");
                let mut env = vec![("a".to_string(), Ty::Int), ("b".to_string(), Ty::Int)];
                let base = self.expr(&mut env, Ty::Int, 2);
                let pre = self.expr(&mut env, Ty::Int, 2);
                let arg = self.expr(&mut env, Ty::Int, 1);
                let op = ["+", "-", "*"][self.rng.below(3) as usize];
                out.push_str(&format!(
                    "fun {name} (a, b) = if a < 1 then {base} \
                     else ((({pre}) {op} {name} (a - 1, {arg})) mod 65521)\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::Int, Ty::Int],
                    ret: Ty::Int,
                    bounded: Some((0, 7)),
                });
            }
            // Structural list fold.
            1 => {
                let name = format!("fls{i}");
                let mut env = Vec::new();
                let base = self.expr(&mut env, Ty::Int, 2);
                env.push(("h".to_string(), Ty::Int));
                let step = self.expr(&mut env, Ty::Int, 2);
                out.push_str(&format!(
                    "fun {name} zs = case zs of nil => {base} \
                     | h :: t => ((({step}) + {name} t) mod 65521)\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::IntList],
                    ret: Ty::Int,
                    bounded: None,
                });
            }
            // Structural tree fold.
            2 => {
                let name = format!("ftr{i}");
                let mut env = Vec::new();
                let base = self.expr(&mut env, Ty::Int, 2);
                env.push(("v".to_string(), Ty::Int));
                let step = self.expr(&mut env, Ty::Int, 2);
                out.push_str(&format!(
                    "fun {name} t = case t of Leaf => {base} \
                     | Node (l, v, r) => ((({step}) + {name} l + {name} r) mod 65521)\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::Tree],
                    ret: Ty::Int,
                    bounded: None,
                });
            }
            // Four-arm shape fold (SwitchCon-heavy).
            3 => {
                let name = format!("fsh{i}");
                let mut env = Vec::new();
                let base = self.expr(&mut env, Ty::Int, 2);
                env.push(("x".to_string(), Ty::Int));
                env.push(("y".to_string(), Ty::Int));
                let pt = self.expr(&mut env, Ty::Int, 2);
                env.truncate(1);
                let ln = self.expr(&mut env, Ty::Int, 2);
                out.push_str(&format!(
                    "fun {name} s = case s of\n\
                     \u{20}   Nul => {base}\n\
                     \u{20} | Pt (x, y) => {pt}\n\
                     \u{20} | Ln (u, x) => ((({ln}) + {name} u) mod 65521)\n\
                     \u{20} | Qd (u, v, w) => (({name} u + {name} v + {name} w) mod 65521)\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::Shape],
                    ret: Ty::Int,
                    bounded: None,
                });
            }
            // Region-polymorphic list builder.
            4 => {
                let name = format!("fbl{i}");
                let mut env = vec![("k".to_string(), Ty::Int), ("s".to_string(), Ty::Int)];
                let elem = self.expr(&mut env, Ty::Int, 2);
                let next = self.expr(&mut env, Ty::Int, 1);
                out.push_str(&format!(
                    "fun {name} (k, s) = if k < 1 then nil \
                     else (({elem}) :: {name} (k - 1, (({next}) mod 97)))\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::Int, Ty::Int],
                    ret: Ty::IntList,
                    bounded: Some((0, 12)),
                });
            }
            // Region-polymorphic pair-list builder.
            5 => {
                let name = format!("fbp{i}");
                let mut env = vec![("k".to_string(), Ty::Int), ("s".to_string(), Ty::Int)];
                let x = self.expr(&mut env, Ty::Int, 2);
                let y = self.expr(&mut env, Ty::Int, 1);
                out.push_str(&format!(
                    "fun {name} (k, s) = if k < 1 then nil \
                     else ((({x}), ({y})) :: {name} (k - 1, s + 3))\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::Int, Ty::Int],
                    ret: Ty::PairList,
                    bounded: Some((0, 10)),
                });
            }
            // Tree builder (two recursive calls; depth clamped to 4).
            6 => {
                let name = format!("fbt{i}");
                let mut env = vec![("dd".to_string(), Ty::Int), ("s".to_string(), Ty::Int)];
                let v = self.expr(&mut env, Ty::Int, 2);
                let r = self.expr(&mut env, Ty::Int, 1);
                out.push_str(&format!(
                    "fun {name} (dd, s) = if dd < 1 then Leaf \
                     else Node ({name} (dd - 1, s + 1), ({v}), {name} (dd - 1, (({r}) mod 97)))\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::Int, Ty::Int],
                    ret: Ty::Tree,
                    bounded: Some((0, 4)),
                });
            }
            // Shape builder mixing all four constructors.
            7 => {
                let name = format!("fbs{i}");
                let mut env = vec![("dd".to_string(), Ty::Int), ("s".to_string(), Ty::Int)];
                let p = self.expr(&mut env, Ty::Int, 1);
                let k = self.expr(&mut env, Ty::Int, 1);
                out.push_str(&format!(
                    "fun {name} (dd, s) =\n\
                     \u{20} if dd < 1 then Pt (s, ({p}))\n\
                     \u{20} else (case ((s) mod 3 + 3) mod 3 of\n\
                     \u{20}     0 => Ln ({name} (dd - 1, s + 1), ({k}))\n\
                     \u{20}   | 1 => Qd ({name} (dd - 1, s + 1), {name} (dd - 1, s + 2), Nul)\n\
                     \u{20}   | _ => (if s < 9 then Nul else {name} (dd - 1, s div 2)))\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::Int, Ty::Int],
                    ret: Ty::Shape,
                    bounded: Some((0, 4)),
                });
            }
            // String builder: every iteration allocates (strings live in
            // the large-object space).
            8 => {
                let name = format!("fsb{i}");
                let mut env = vec![("k".to_string(), Ty::Int)];
                let piece = self.expr(&mut env, Ty::Str, 2);
                out.push_str(&format!(
                    "fun {name} (k, s) = if k < 1 then s \
                     else {name} (k - 1, (s ^ ({piece})))\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::Int, Ty::Str],
                    ret: Ty::Str,
                    bounded: Some((0, 5)),
                });
            }
            // Real accumulator (boxed floats through the collector).
            9 => {
                let name = format!("frl{i}");
                let mut env = vec![("k".to_string(), Ty::Int), ("x".to_string(), Ty::Real)];
                let step = self.expr(&mut env, Ty::Real, 2);
                out.push_str(&format!(
                    "fun {name} (k, x) = if k < 1 then x \
                     else {name} (k - 1, ((x + ({step})) * 0.5))\n"
                ));
                self.fns.push(FnSig {
                    name,
                    params: vec![Ty::Int, Ty::Real],
                    ret: Ty::Real,
                    bounded: Some((0, 6)),
                });
            }
            // A mutually recursive pair.
            _ => {
                let na = format!("fma{i}");
                let nb = format!("fmb{i}");
                let mut env = vec![("k".to_string(), Ty::Int)];
                let b0 = self.expr(&mut env, Ty::Int, 2);
                let s0 = self.expr(&mut env, Ty::Int, 2);
                let b1 = self.expr(&mut env, Ty::Int, 2);
                let s1 = self.expr(&mut env, Ty::Int, 2);
                out.push_str(&format!(
                    "fun {na} k = if k < 1 then {b0} else ((({s0}) + {nb} (k - 1)) mod 65521)\n\
                     and {nb} k = if k < 1 then {b1} else ((({s1}) - {na} (k - 1)) mod 65521)\n"
                ));
                self.fns.push(FnSig {
                    name: na,
                    params: vec![Ty::Int],
                    ret: Ty::Int,
                    bounded: Some((0, 8)),
                });
                self.fns.push(FnSig {
                    name: nb,
                    params: vec![Ty::Int],
                    ret: Ty::Int,
                    bounded: Some((0, 8)),
                });
            }
        }
    }
}

/// One random full-surface program. See the module docs for the grammar;
/// the fixed skeleton is: two datatypes, two exceptions, three mutable
/// globals (a large-object array, an array of refs, a list ref), five to
/// nine generated functions (each kind at most once, builders always
/// present), a generated per-iteration `step`, and a recursive driver
/// whose handler chain catches everything so raising and non-raising
/// iterations interleave.
fn program_full(rng: &mut SplitMix64) -> String {
    let mut g = Gen::new(rng);
    let mut out = String::new();
    out.push_str("exception Boom of int\n");
    out.push_str("exception Crash of string\n");
    out.push_str("datatype tree = Leaf | Node of tree * int * tree\n");
    out.push_str(
        "datatype shape = Nul | Pt of int * int | Ln of shape * int \
         | Qd of shape * shape * shape\n",
    );
    out.push_str(&format!("val biga = array ({}, 7)\n", g.big_len));
    out.push_str(&format!("val cells = array ({CELLS}, ref 0)\n"));
    out.push_str("val lbox = ref [0]\n");

    // The allocating builders are always present (they are what makes
    // the program exercise the collector); the folds and scalar kinds
    // are drawn at random on top, in a shuffled order so call edges vary.
    let mut kinds = vec![4, 6, 7, 8];
    for k in [0, 1, 2, 3, 5, 9, 10] {
        if g.rng.below(3) < 2 {
            kinds.push(k);
        }
    }
    // Fisher-Yates over the kind list, driven by the program seed.
    for i in (1..kinds.len()).rev() {
        let j = g.rng.below(i as u64 + 1) as usize;
        kinds.swap(i, j);
    }
    for k in kinds {
        g.emit_fn(&mut out, k);
    }

    // The per-iteration step: a deep generated expression over the loop
    // counter and accumulator, with a generous call budget.
    g.calls = 8;
    let mut env = vec![("n".to_string(), Ty::Int), ("acc".to_string(), Ty::Int)];
    let step = g.expr(&mut env, Ty::Int, 4);
    out.push_str(&format!("fun step (n, acc) = {step}\n"));

    // The driver: every iteration runs under the full handler chain, so
    // an exception anywhere in `step` feeds back into the accumulator
    // instead of ending the program.
    out.push_str(
        "fun go n acc =\n\
         \u{20}  if n < 1 then acc\n\
         \u{20}  else go (n - 1) (((acc * 31 + step (n, acc)) \
         handle Div => ~1 | Overflow => ~2 | Subscript => ~3 | Size => ~4 \
         | Match => ~5 | Bind => ~6 | Boom k => ((k + acc) mod 65537) \
         | Crash s => (size s + acc)) mod 100003)\n",
    );

    // A final observation outside the loop reads the mutated globals
    // back, so a mis-evacuated cell or array element changes the result
    // even when every in-loop read happened to dodge it.
    g.calls = 4;
    let mut env = Vec::new();
    let tail = g.expr(&mut env, Ty::Int, 3);
    let iters = 8 + g.rng.below(16);
    let seed = g.rng.below(1000);
    out.push_str(&format!(
        "val tail = ((({tail}) \
         handle Div => 3 | Overflow => 5 | Subscript => 7 | Size => 11 \
         | Match => 13 | Bind => 17 | Boom k => (k mod 1009) \
         | Crash s => size s)) mod 100003\n\
         val it = (go {iters} {seed} + tail + asub (biga, 1) + !(asub (cells, 0)) \
         + (case !lbox of nil => 0 | h :: _ => h mod 8191)) mod 100003\n"
    ));
    out
}

// ------------------------------------------------------------------------
// Config fuzzing and the differential
// ------------------------------------------------------------------------

/// A random runtime configuration for `mode`: page size, initial heap,
/// shrink hysteresis, and (for the baseline mode) the generational
/// policy are all fuzzed. `with_config` forces the tagging/GC flags back
/// to the mode's requirements, so the result is always well-formed.
pub fn fuzz_config(rng: &mut SplitMix64, mode: Mode) -> RtConfig {
    let mut cfg = RtConfig {
        // 32..512-word pages; tiny pages force collections mid-expression.
        page_words_log2: 5 + rng.below(5) as u32,
        initial_pages: [2, 4, 8, 64][rng.below(4) as usize],
        heap_shrink_factor: [None, Some(1.0), Some(2.0), Some(4.0)][rng.below(4) as usize],
        ..RtConfig::default()
    };
    if mode == Mode::Baseline {
        cfg.generational = Some(GenPolicy {
            nursery_pages: [2, 8, 64][rng.below(3) as usize],
            major_growth: 2 + rng.below(3) as usize,
        });
    } else {
        // Collector-mode fuzzing. The four scheduling shapes are drawn
        // as *arms* rather than independently, so the parallel+sliced
        // combination — where the documented slice-over-workers
        // precedence (config.rs) must kick in — is exercised every few
        // cases instead of only when two independent draws coincide.
        // Every shape must leave the counters the differential compares
        // engine-invariant.
        match rng.below(8) {
            0..=2 => {} // serial, unsliced
            3 | 4 => cfg.gc_workers = [2, 4][rng.below(2) as usize],
            5 => cfg.gc_slice_budget_words = Some([32, 256][rng.below(2) as usize]),
            _ => {
                // Both axes set: slices must win and run serially.
                cfg.gc_workers = [2, 4][rng.below(2) as usize];
                cfg.gc_slice_budget_words = Some([32, 256][rng.below(2) as usize]);
            }
        }
    }
    // Wall-clock deadlines are drawn only at the two differential-safe
    // extremes: far-future (must be invisible — same counters as no
    // deadline at all) and already-expired (breaches at safe point 1 on
    // every engine, so the typed error is engine-identical). A deadline
    // that lands *mid-run* would make the outcome depend on host timing,
    // which a differential harness cannot tolerate.
    match rng.below(16) {
        14 => cfg.deadline = Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
        // `now` itself is already expired by the time the VM checks it.
        15 => cfg.deadline = Some(std::time::Instant::now()),
        _ => {}
    }
    cfg
}

fn run_once(
    src: &str,
    mode: Mode,
    dispatch: DispatchMode,
    cfg: Option<&RtConfig>,
    fuel: u64,
) -> Result<Outcome, Error> {
    let mut c = Compiler::new(mode)
        .with_dispatch(dispatch)
        .with_fusion(Fusion::Full)
        .with_fuel(fuel);
    if let Some(cfg) = cfg {
        c = c.with_config(cfg.clone());
    }
    c.run_source(src)
}

fn diff_outcomes(want: &Outcome, got: &Outcome) -> Option<String> {
    macro_rules! field {
        ($name:literal, $w:expr, $g:expr) => {
            if $w != $g {
                return Some(format!("{}: {:?} vs {:?}", $name, $w, $g));
            }
        };
    }
    field!("result", want.result, got.result);
    field!("output", want.output, got.output);
    field!("instructions", want.instructions, got.instructions);
    field!(
        "words allocated",
        want.stats.words_allocated,
        got.stats.words_allocated
    );
    field!("allocations", want.stats.allocations, got.stats.allocations);
    field!("#GC", want.stats.gc_count, got.stats.gc_count);
    field!(
        "copied words",
        want.stats.gc_copied_words,
        got.stats.gc_copied_words
    );
    field!("peak bytes", want.stats.peak_bytes, got.stats.peak_bytes);
    None
}

/// Runs `src` under `Match` dispatch (the reference) and every engine in
/// [`DIFF_ENGINES`], comparing results, output, instruction totals, and
/// GC/alloc statistics. `Err` carries enough context to reproduce the
/// divergence by hand (the engine, the field, and the full source).
pub fn differential(
    src: &str,
    mode: Mode,
    cfg: Option<&RtConfig>,
    fuel: u64,
) -> Result<(), String> {
    let reference = run_once(src, mode, DispatchMode::Match, cfg, fuel);
    for dispatch in DIFF_ENGINES {
        let out = run_once(src, mode, dispatch, cfg, fuel);
        let ctx = || {
            format!(
                "{mode} {dispatch:?} (cfg: {}) on\n{src}",
                cfg.map_or("default".to_string(), |c| format!(
                    "pages=2^{} init={} shrink={:?} gen={} workers={} slice={:?}",
                    c.page_words_log2,
                    c.initial_pages,
                    c.heap_shrink_factor,
                    c.generational.is_some(),
                    c.gc_workers,
                    c.gc_slice_budget_words
                ))
            )
        };
        match (&reference, &out) {
            (Ok(want), Ok(got)) => {
                if let Some(d) = diff_outcomes(want, got) {
                    return Err(format!("{}: {d}", ctx()));
                }
            }
            (Err(Error::Run(want)), Err(Error::Run(got))) => {
                if got != want {
                    return Err(format!("{}: error {got:?} vs {want:?}", ctx()));
                }
            }
            (want, got) => {
                return Err(format!("{}: engines disagree: {want:?} vs {got:?}", ctx()));
            }
        }
    }
    Ok(())
}

/// Runs `src` once per configuration in `cfgs` (under `Match` dispatch)
/// and compares the *mutator-visible* outcome: result, output,
/// instruction total, and words allocated. The GC counters are
/// deliberately excluded — the collection schedule is config-dependent
/// (a parallel flip copies the same objects on a different worker, a
/// sliced collection finishes at a later safe point), but none of that
/// may ever leak into what the program computes.
///
/// # Errors
///
/// `Err` names the diverging configuration and field, with the source.
pub fn mutator_equivalence(
    src: &str,
    mode: Mode,
    cfgs: &[(&str, &RtConfig)],
    fuel: u64,
) -> Result<(), String> {
    let (ref_name, ref_cfg) = cfgs[0];
    let reference = run_once(src, mode, DispatchMode::Match, Some(ref_cfg), fuel);
    for (name, cfg) in &cfgs[1..] {
        let out = run_once(src, mode, DispatchMode::Match, Some(cfg), fuel);
        let ctx = || format!("{mode} {name} vs {ref_name} on\n{src}");
        match (&reference, &out) {
            (Ok(want), Ok(got)) => {
                macro_rules! field {
                    ($f:literal, $w:expr, $g:expr) => {
                        if $w != $g {
                            return Err(format!("{}: {}: {:?} vs {:?}", ctx(), $f, $w, $g));
                        }
                    };
                }
                field!("result", want.result, got.result);
                field!("output", want.output, got.output);
                field!("instructions", want.instructions, got.instructions);
                field!(
                    "words allocated",
                    want.stats.words_allocated,
                    got.stats.words_allocated
                );
            }
            (Err(Error::Run(want)), Err(Error::Run(got))) => {
                if got != want {
                    return Err(format!("{}: error {got:?} vs {want:?}", ctx()));
                }
            }
            (want, got) => {
                return Err(format!("{}: configs disagree: {want:?} vs {got:?}", ctx()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every full-surface draw must be well-typed: a compile error here
    /// is a generator bug, not a runtime bug, and would silently turn
    /// soak cases into no-ops if the differential tolerated it.
    #[test]
    fn full_surface_programs_compile() {
        let mut rng = SplitMix64::new(0x5EED_0801);
        for case in 0..60 {
            let src = program(&mut rng, Surface::Full);
            if let Err(e) = Compiler::new(Mode::Rgt).compile_source(&src) {
                panic!("case {case} does not compile: {e}\n{src}");
            }
        }
    }

    /// The documented precedence (config.rs): when both `gc_workers > 1`
    /// and a slice budget are set, the sliced collector runs — serially.
    /// The run must be bit-identical to the same config with the worker
    /// count at 1, and must actually take the sliced path (`gc_slices`).
    #[test]
    fn slice_budget_takes_precedence_over_workers() {
        let src = "fun build 0 = nil | build n = (n, n * 7) :: build (n - 1)\n\
                   fun sum ([], a) = a | sum ((x, y) :: t, a) = sum (t, a + x + y)\n\
                   fun go (0, a) = a | go (k, a) = go (k - 1, (a + sum (build 120, 0)) mod 65521)\n\
                   val it = go (40, 0)";
        let base = RtConfig {
            initial_pages: 4,
            page_words_log2: 6,
            gc_slice_budget_words: Some(64),
            ..RtConfig::rgt()
        };
        let both = RtConfig {
            gc_workers: 4,
            ..base.clone()
        };
        let run = |cfg: &RtConfig| {
            Compiler::new(Mode::Rgt)
                .with_config(cfg.clone())
                .run_source(src)
                .unwrap()
        };
        let want = run(&base);
        let got = run(&both);
        assert!(
            got.stats.gc_slices > 0,
            "sliced collector did not run under workers=4 + slice budget"
        );
        assert_eq!(want.result, got.result);
        assert_eq!(want.instructions, got.instructions);
        assert_eq!(want.stats.gc_count, got.stats.gc_count);
        assert_eq!(want.stats.gc_slices, got.stats.gc_slices);
        assert_eq!(want.stats.gc_copied_words, got.stats.gc_copied_words);
        assert_eq!(want.stats.peak_bytes, got.stats.peak_bytes);
    }

    /// The deliberate parallel+sliced arm of `fuzz_config` must actually
    /// come up, for every non-baseline mode.
    #[test]
    fn fuzz_config_draws_workers_combined_with_slices() {
        let mut rng = SplitMix64::new(1);
        let mut combined = 0;
        for _ in 0..200 {
            let cfg = fuzz_config(&mut rng, Mode::Rgt);
            if cfg.gc_workers > 1 && cfg.gc_slice_budget_words.is_some() {
                combined += 1;
            }
        }
        assert!(
            combined >= 20,
            "parallel+sliced combination drawn only {combined}/200 times"
        );
    }
}
