//! Random program generator and N-way engine differential, shared by the
//! `randomized` integration test (a short fixed-seed run in CI) and the
//! `soak` binary (arbitrarily long runs with config fuzzing).
//!
//! The generator leans into the suspect areas: `div`/`mod` with
//! dynamically-zero divisors, overflow-prone arithmetic, user exceptions
//! raised conditionally deep inside expressions, and `handle` chains that
//! discriminate on builtin vs user constructors — all inside a recursive
//! driver so the same raise sites execute many times with different
//! operand stacks, under heap configurations small enough to force
//! collections mid-expression.

use crate::programs::SplitMix64;
use kit::{Compiler, DispatchMode, Error, Fusion, Mode, Outcome};
use kit_runtime::config::GenPolicy;
use kit_runtime::RtConfig;

/// The engines checked against the `Match` reference. Every generated
/// program must behave identically — result, output, instruction total,
/// and GC/alloc statistics — under all four dispatch modes.
pub const DIFF_ENGINES: [DispatchMode; 3] = [
    DispatchMode::Threaded,
    DispatchMode::Register,
    DispatchMode::RegisterFused,
];

/// A random int leaf: a variable, a small constant, or (rarely) a
/// constant big enough that products overflow the 63-bit int range.
fn leaf(rng: &mut SplitMix64, vars: &[&str]) -> String {
    match rng.below(6) {
        0 | 1 if !vars.is_empty() => vars[rng.below(vars.len() as u64) as usize].to_string(),
        2 => "1073741823".to_string(),
        _ => {
            let n = rng.range_i64(-20, 100);
            if n < 0 {
                format!("~{}", -n)
            } else {
                n.to_string()
            }
        }
    }
}

/// A random int expression over `vars`, biased toward partial operations
/// and exception traffic.
fn int_expr(rng: &mut SplitMix64, vars: &[&str], depth: u32) -> String {
    if depth == 0 {
        return leaf(rng, vars);
    }
    let a = int_expr(rng, vars, depth - 1);
    let b = int_expr(rng, vars, depth - 1);
    match rng.below(16) {
        0..=2 => leaf(rng, vars),
        3..=5 => {
            let op = ["+", "-", "*"][rng.below(3) as usize];
            format!("({a} {op} {b})")
        }
        // Partial ops: the divisor is frequently zero at runtime.
        6 => format!("({a} div ({b} mod 3))"),
        7 => format!("({a} mod ({b} mod 5))"),
        8 => format!("(if {a} < {b} then {a} else {b})"),
        9 => format!("(let val y = {a} in (y + {b}) end)"),
        10 => format!("((fn q => q + {a}) {b})"),
        11 => format!("(fst ({a}, {b}) + snd ({b}, {a}))"),
        12 => format!("(hd [{a}, {b}] + length [{b}])"),
        // A conditionally-raised user exception carrying a payload.
        13 => format!(
            "(if {a} < {} then raise Boom ({b}) else {b})",
            leaf(rng, vars)
        ),
        // Handlers over a raising subexpression.
        _ => {
            let h1 = leaf(rng, vars);
            let h2 = leaf(rng, vars);
            format!("(({a}) handle Div => {h1} | Overflow => {h2} | Boom k => (k mod 9001))")
        }
    }
}

/// One random program: a generated function applied many times by a
/// recursive driver, every call under a handler chain so raising and
/// non-raising iterations interleave.
pub fn program(rng: &mut SplitMix64) -> String {
    let body = int_expr(rng, &["x0", "x1"], 3);
    let seed = int_expr(rng, &[], 2);
    let iters = 10 + rng.below(20);
    format!(
        "exception Boom of int\n\
         fun f (x0, x1) = {body}\n\
         fun go n acc =\n\
         \u{20}  if n < 1 then acc\n\
         \u{20}  else go (n - 1) (((acc * 3 + f (n, acc)) handle Div => ~1 | Overflow => ~2 | Boom k => (k + acc) mod 65537) mod 100003)\n\
         val it = go {iters} (({seed}) handle Overflow => 7 | Div => 11)\n"
    )
}

/// A random runtime configuration for `mode`: page size, initial heap,
/// shrink hysteresis, and (for the baseline mode) the generational
/// policy are all fuzzed. `with_config` forces the tagging/GC flags back
/// to the mode's requirements, so the result is always well-formed.
pub fn fuzz_config(rng: &mut SplitMix64, mode: Mode) -> RtConfig {
    let mut cfg = RtConfig {
        // 32..512-word pages; tiny pages force collections mid-expression.
        page_words_log2: 5 + rng.below(5) as u32,
        initial_pages: [2, 4, 8, 64][rng.below(4) as usize],
        heap_shrink_factor: [None, Some(1.0), Some(2.0), Some(4.0)][rng.below(4) as usize],
        ..RtConfig::default()
    };
    if mode == Mode::Baseline {
        cfg.generational = Some(GenPolicy {
            nursery_pages: [2, 8, 64][rng.below(3) as usize],
            major_growth: 2 + rng.below(3) as usize,
        });
    } else {
        // Collector-mode fuzzing: parallel workers and the sliced
        // (bounded-pause) budget. Both must leave every counter the
        // differential compares engine-invariant; the sliced budget takes
        // precedence over workers when both are set (config.rs), so
        // drawing them independently also exercises that rule.
        cfg.gc_workers = [1, 1, 2, 4][rng.below(4) as usize];
        cfg.gc_slice_budget_words = [None, None, Some(32), Some(256)][rng.below(4) as usize];
    }
    cfg
}

fn run_once(
    src: &str,
    mode: Mode,
    dispatch: DispatchMode,
    cfg: Option<&RtConfig>,
    fuel: u64,
) -> Result<Outcome, Error> {
    let mut c = Compiler::new(mode)
        .with_dispatch(dispatch)
        .with_fusion(Fusion::Full)
        .with_fuel(fuel);
    if let Some(cfg) = cfg {
        c = c.with_config(cfg.clone());
    }
    c.run_source(src)
}

fn diff_outcomes(want: &Outcome, got: &Outcome) -> Option<String> {
    macro_rules! field {
        ($name:literal, $w:expr, $g:expr) => {
            if $w != $g {
                return Some(format!("{}: {:?} vs {:?}", $name, $w, $g));
            }
        };
    }
    field!("result", want.result, got.result);
    field!("output", want.output, got.output);
    field!("instructions", want.instructions, got.instructions);
    field!(
        "words allocated",
        want.stats.words_allocated,
        got.stats.words_allocated
    );
    field!("allocations", want.stats.allocations, got.stats.allocations);
    field!("#GC", want.stats.gc_count, got.stats.gc_count);
    field!(
        "copied words",
        want.stats.gc_copied_words,
        got.stats.gc_copied_words
    );
    field!("peak bytes", want.stats.peak_bytes, got.stats.peak_bytes);
    None
}

/// Runs `src` under `Match` dispatch (the reference) and every engine in
/// [`DIFF_ENGINES`], comparing results, output, instruction totals, and
/// GC/alloc statistics. `Err` carries enough context to reproduce the
/// divergence by hand (the engine, the field, and the full source).
pub fn differential(
    src: &str,
    mode: Mode,
    cfg: Option<&RtConfig>,
    fuel: u64,
) -> Result<(), String> {
    let reference = run_once(src, mode, DispatchMode::Match, cfg, fuel);
    for dispatch in DIFF_ENGINES {
        let out = run_once(src, mode, dispatch, cfg, fuel);
        let ctx = || {
            format!(
                "{mode} {dispatch:?} (cfg: {}) on\n{src}",
                cfg.map_or("default".to_string(), |c| format!(
                    "pages=2^{} init={} shrink={:?} gen={} workers={} slice={:?}",
                    c.page_words_log2,
                    c.initial_pages,
                    c.heap_shrink_factor,
                    c.generational.is_some(),
                    c.gc_workers,
                    c.gc_slice_budget_words
                ))
            )
        };
        match (&reference, &out) {
            (Ok(want), Ok(got)) => {
                if let Some(d) = diff_outcomes(want, got) {
                    return Err(format!("{}: {d}", ctx()));
                }
            }
            (Err(Error::Run(want)), Err(Error::Run(got))) => {
                if got != want {
                    return Err(format!("{}: error {got:?} vs {want:?}", ctx()));
                }
            }
            (want, got) => {
                return Err(format!("{}: engines disagree: {want:?} vs {got:?}", ctx()));
            }
        }
    }
    Ok(())
}

/// Runs `src` once per configuration in `cfgs` (under `Match` dispatch)
/// and compares the *mutator-visible* outcome: result, output,
/// instruction total, and words allocated. The GC counters are
/// deliberately excluded — the collection schedule is config-dependent
/// (a parallel flip copies the same objects on a different worker, a
/// sliced collection finishes at a later safe point), but none of that
/// may ever leak into what the program computes.
///
/// # Errors
///
/// `Err` names the diverging configuration and field, with the source.
pub fn mutator_equivalence(
    src: &str,
    mode: Mode,
    cfgs: &[(&str, &RtConfig)],
    fuel: u64,
) -> Result<(), String> {
    let (ref_name, ref_cfg) = cfgs[0];
    let reference = run_once(src, mode, DispatchMode::Match, Some(ref_cfg), fuel);
    for (name, cfg) in &cfgs[1..] {
        let out = run_once(src, mode, DispatchMode::Match, Some(cfg), fuel);
        let ctx = || format!("{mode} {name} vs {ref_name} on\n{src}");
        match (&reference, &out) {
            (Ok(want), Ok(got)) => {
                macro_rules! field {
                    ($f:literal, $w:expr, $g:expr) => {
                        if $w != $g {
                            return Err(format!("{}: {}: {:?} vs {:?}", ctx(), $f, $w, $g));
                        }
                    };
                }
                field!("result", want.result, got.result);
                field!("output", want.output, got.output);
                field!("instructions", want.instructions, got.instructions);
                field!(
                    "words allocated",
                    want.stats.words_allocated,
                    got.stats.words_allocated
                );
            }
            (Err(Error::Run(want)), Err(Error::Run(got))) => {
                if got != want {
                    return Err(format!("{}: error {got:?} vs {want:?}", ctx()));
                }
            }
            (want, got) => {
                return Err(format!("{}: configs disagree: {want:?} vs {got:?}", ctx()));
            }
        }
    }
    Ok(())
}
