//! Regenerates the paper's bootstrap (see kit-bench docs). Pass `--quick` for
//! the scaled-down test workload.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", kit_bench::tables::bootstrap(quick));
}
