//! Diagnostic probe for one benchmark: peak words by region (default),
//! or — with a leading `gc` argument — a quick collector A/B over
//! worker counts {1, 2, 4, 8} printing #GC, collection time, bytes
//! copied, max pause and wall time.
//!
//! Usage: `cargo run -p kit-bench --release --bin region_probe --
//!         [gc] [program] [scale]`
use kit::{Compiler, DispatchMode, Fusion, Mode};
use kit_bench::programs::by_name;
use kit_runtime::RtConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("gc") {
        return gc_ab(&args[2..]);
    }
    let name = args.get(1).cloned().unwrap_or_else(|| "churn".into());
    let scale = args.get(2).and_then(|s| s.parse::<i64>().ok()).unwrap_or(0);
    let b = by_name(&name).unwrap();
    let scale = if scale == 0 { b.default_scale } else { scale };
    let src = b.source_scaled(scale);
    let c = Compiler::new(Mode::Rgt).with_profiling();
    let out = c.run_source(&src).unwrap();
    let mut peak: std::collections::BTreeMap<u32, u64> = Default::default();
    for s in &out.profile {
        for (&r, &w) in &s.by_region {
            let e = peak.entry(r).or_default();
            *e = (*e).max(w);
        }
    }
    let mut v: Vec<_> = peak.iter().collect();
    v.sort_by_key(|(_, w)| std::cmp::Reverse(**w));
    println!("{name} scale {scale} peak words by region:");
    for (r, w) in v.iter().take(12) {
        println!("  region {r}: {w} words");
    }
}

fn gc_ab(args: &[String]) {
    let name = args.first().cloned().unwrap_or_else(|| "churn".into());
    let scale = args.get(1).and_then(|s| s.parse::<i64>().ok()).unwrap_or(0);
    let b = by_name(&name).unwrap();
    let scale = if scale == 0 { b.default_scale } else { scale };
    let src = b.source_scaled(scale);
    for workers in [1usize, 2, 4, 8] {
        let cfg = RtConfig {
            gc_workers: workers,
            ..RtConfig::default()
        };
        let c = Compiler::new(Mode::Rgt)
            .with_dispatch(DispatchMode::RegisterFused)
            .with_fusion(Fusion::Off)
            .with_config(cfg);
        let out = c.run_source(&src).unwrap();
        println!(
            "workers={workers}: #GC {:<3} gc {:>8.3}ms  copied {:>10}B  \
             max pause {:>8.3}ms  wall {:>8.3}ms",
            out.stats.gc_count,
            out.stats.gc_time_ns as f64 / 1e6,
            out.stats.gc_copied_words * 8,
            out.stats.gc_pause_max_ns as f64 / 1e6,
            out.wall.as_secs_f64() * 1e3,
        );
    }
}
