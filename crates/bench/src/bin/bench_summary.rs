//! Perf-trajectory snapshot: runs every benchmark of the paper's Fig. 3 in
//! all five execution modes and writes a machine-readable JSON summary
//! (default `BENCH_PR6.json`).
//!
//! By default each (program, mode) cell is measured under four interpreter
//! configurations, interleaved sample-by-sample so host throughput drift
//! cancels out of the A/B comparison:
//!
//! * `match_hand`    — PR 1 baseline: match-dispatch loop, hand fusion set
//! * `threaded_full` — PR 2 loop: direct-threaded dispatch, full fusion table
//! * `register`      — PR 3 engine: register-translated code (the translation
//!   subsumes stack-shuffle fusion, so its fusion setting is moot)
//! * `register_fused` — PR 4 engine: cross-block register translation with
//!   the profile-selected superinstruction set re-fused over the register
//!   stream
//!
//! The deterministic counters (instructions, words allocated, #GC, bytes
//! copied) are bit-identical across runs, machines *and configurations* —
//! the driver asserts this, which is the dispatch-equivalence acceptance
//! criterion. `instructions_per_sec` is the wall-clock throughput of the
//! abstract machine (best of `--samples N` runs, default 3) and is the
//! number PRs optimizing the interpreter hot path are judged by.
//!
//! Usage: `cargo run -p kit-bench --release --bin bench-summary --
//!         [--full] [--samples N] [--out PATH] [--jobs N]
//!         [--only prog,prog,...] [--modes r,rt,...]
//!         [--dispatch match|threaded|register|register_fused]
//!         [--fusion off|hand|full]
//!         [--gc-compare] [--profile-fusion]`
//!
//! `--only`/`--modes` restrict the sweep; `--dispatch`/`--fusion` replace
//! the three-way comparison with a single pinned configuration. `--jobs N`
//! shards (program, mode) cells across N worker threads — the interleaved
//! A/B stays intact because a cell never splits across shards.
//!
//! `--gc-compare` switches the comparison axis from dispatch engines to
//! *collector modes*: each (program, mode) cell runs under the serial
//! collector (`gc_serial`), the parallel collector with four workers
//! (`gc_par4`), and the sliced bounded-pause collector (`gc_sliced`),
//! all on the fastest dispatch engine. Every row reports `gc_time_ns`
//! and the pause quantiles (p50/p99/max from the runtime's log2 pause
//! histogram), taken as a coherent set from the sample with the least
//! collector time — the same best-of-N filter throughput gets — so the
//! JSON answers the two acceptance questions
//! directly: how much collection time the parallel flip saves, and how
//! far below the serial max pause the sliced p99 sits. Mutator-visible
//! counters (instructions, words allocated, the result) are asserted
//! identical across collector modes; the GC counters themselves differ
//! by design, since the schedule is mode-dependent. Modes default to
//! `rgt` (collector modes only matter when the collector runs).
//!
//! A note on the `peak_pages`/`peak_bytes` columns: since PR 6 the heap
//! materializes pages lazily (DESIGN.md §6g/§6h), and these counters
//! measure **materialized backing only** — virgin pages granted by the
//! sizing policy but never touched are not counted. BENCH_PR4.json and
//! earlier predate that change, so their peak columns read higher than
//! later files on identical programs; the drift is the accounting
//! definition, not a memory regression.
//!
//! `--profile-fusion` runs the suite in the VM's fusion counting mode
//! instead (fusion off, match dispatch, so base opcodes are visible),
//! aggregates dynamic pair/triple frequencies of fallthrough-adjacent
//! instructions, and prints the hot sequences plus a regenerated
//! `FUSION_CANDIDATES` table for `crates/kam/src/fusion_table.rs`.
//!
//! `--serve` switches to the multi-tenant server benchmark (DESIGN.md
//! §6i): an in-process `kit-serve` pool is driven at increasing
//! concurrency levels over the serve mix (`--mix`, default
//! [`kit_bench::serve_bench::DEFAULT_MIX`]) and the JSON (default
//! `BENCH_PR9.json`) gets a `"serve"` array with requests/sec, p50/p99
//! latency, per-program counters and per-worker collector time. Each
//! point's per-program counters are asserted uniform across all
//! responses, and a final standalone check demands bit-identical
//! instruction totals and GC counters against single-threaded runs.
//! `--sessions N` pins a single concurrency level; `--workers N` sizes
//! the pool.

use kit::{Compiler, DispatchMode, Fusion, FusionProfile, KamOp as Op, Mode};
use kit_bench::programs::{all, Benchmark};
use kit_kam::fusion_table::{Opk, FUSION_CANDIDATES};
use kit_runtime::RtConfig;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One interpreter configuration under measurement. `gc_workers` and
/// `gc_slice` select the collector mode (serial / parallel / sliced);
/// the dispatch-engine comparison leaves both at the serial defaults.
#[derive(Clone, Copy)]
struct Config {
    name: &'static str,
    dispatch: DispatchMode,
    fusion: Fusion,
    gc_workers: usize,
    gc_slice: Option<u64>,
}

impl Config {
    const fn dispatch_cmp(name: &'static str, dispatch: DispatchMode, fusion: Fusion) -> Config {
        Config {
            name,
            dispatch,
            fusion,
            gc_workers: 1,
            gc_slice: None,
        }
    }
}

const COMPARE: [Config; 4] = [
    Config::dispatch_cmp("match_hand", DispatchMode::Match, Fusion::Hand),
    Config::dispatch_cmp("threaded_full", DispatchMode::Threaded, Fusion::Full),
    Config::dispatch_cmp("register", DispatchMode::Register, Fusion::Off),
    Config::dispatch_cmp("register_fused", DispatchMode::RegisterFused, Fusion::Off),
];

/// The collector-mode comparison (`--gc-compare`): serial vs the
/// parallel flip (4 workers) vs the sliced bounded-pause collector, all
/// on the fastest dispatch engine so collection time dominates the A/B.
const GC_COMPARE: [Config; 3] = [
    Config {
        name: "gc_serial",
        dispatch: DispatchMode::RegisterFused,
        fusion: Fusion::Off,
        gc_workers: 1,
        gc_slice: None,
    },
    Config {
        name: "gc_par4",
        dispatch: DispatchMode::RegisterFused,
        fusion: Fusion::Off,
        gc_workers: 4,
        gc_slice: None,
    },
    Config {
        name: "gc_sliced",
        dispatch: DispatchMode::RegisterFused,
        fusion: Fusion::Off,
        gc_workers: 1,
        gc_slice: Some(4096),
    },
];

struct Row {
    program: String,
    mode: &'static str,
    config: &'static str,
    scale: i64,
    instructions: u64,
    instructions_per_sec: f64,
    words_allocated: u64,
    gc_count: u64,
    bytes_copied: u64,
    peak_pages: u64,
    peak_bytes: u64,
    gc_time_ns: u64,
    gc_pause_p50_ns: u64,
    gc_pause_p99_ns: u64,
    gc_pause_max_ns: u64,
    gc_slices: u64,
}

/// One (program, mode) work item: all configs run interleaved inside it.
struct Cell {
    bench: Benchmark,
    mode: Mode,
    scale: i64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let flag_val = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    if args.iter().any(|a| a == "--serve") {
        serve_summary(&args);
        return;
    }
    let samples = flag_val("--samples")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(3)
        .max(1);
    let jobs = flag_val("--jobs")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let out_path = flag_val("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());
    let csv_arg = |flag: &str| -> Option<Vec<String>> {
        flag_val(flag).map(|s| s.split(',').map(str::to_string).collect())
    };
    let only = csv_arg("--only");
    let gc_compare = args.iter().any(|a| a == "--gc-compare");
    // Collector modes only differ where the collector runs, so the GC
    // comparison defaults to the paper's combined mode.
    let modes = csv_arg("--modes").or_else(|| gc_compare.then(|| vec!["rgt".to_string()]));

    let dispatch = flag_val("--dispatch").map(|s| match s.as_str() {
        "match" => DispatchMode::Match,
        "threaded" => DispatchMode::Threaded,
        "register" => DispatchMode::Register,
        "register_fused" => DispatchMode::RegisterFused,
        other => panic!("--dispatch {other}: expected match|threaded|register|register_fused"),
    });
    let fusion = flag_val("--fusion").map(|s| match s.as_str() {
        "off" => Fusion::Off,
        "hand" => Fusion::Hand,
        "full" => Fusion::Full,
        other => panic!("--fusion {other}: expected off|hand|full"),
    });

    let cells: Vec<Cell> = all()
        .into_iter()
        .filter(|b| only.as_ref().is_none_or(|o| o.iter().any(|n| n == b.name)))
        .flat_map(|b| {
            let scale = if full { b.default_scale } else { b.test_scale };
            Mode::ALL_WITH_BASELINE
                .into_iter()
                .filter(|m| {
                    modes
                        .as_ref()
                        .is_none_or(|ms| ms.iter().any(|s| s == m.suffix()))
                })
                .map(move |mode| Cell {
                    bench: b,
                    mode,
                    scale,
                })
                .collect::<Vec<_>>()
        })
        .collect();

    if args.iter().any(|a| a == "--profile-fusion") {
        profile_fusion(&cells);
        return;
    }

    // Pinning either axis collapses the comparison to one configuration.
    let configs: Vec<Config> = if gc_compare {
        GC_COMPARE.to_vec()
    } else if dispatch.is_some() || fusion.is_some() {
        vec![Config {
            name: "pinned",
            dispatch: dispatch.unwrap_or_default(),
            fusion: fusion.unwrap_or_default(),
            gc_workers: 1,
            gc_slice: None,
        }]
    } else {
        COMPARE.to_vec()
    };

    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Vec<Row>, Duration)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(cells.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let t0 = Instant::now();
                let rows = run_cell(cell, &configs, samples, gc_compare);
                results.lock().unwrap().push((i, rows, t0.elapsed()));
            });
        }
    });

    let mut done = results.into_inner().unwrap();
    done.sort_by_key(|(i, ..)| *i);
    let serial: Duration = done.iter().map(|(_, _, d)| *d).sum();
    let rows: Vec<Row> = done.into_iter().flat_map(|(_, r, _)| r).collect();

    let mut json = String::from("{\n  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"program\": \"{}\", \"mode\": \"{}\", \"config\": \"{}\", \
             \"scale\": {}, \
             \"instructions\": {}, \"instructions_per_sec\": {:.0}, \
             \"words_allocated\": {}, \"gc_count\": {}, \"bytes_copied\": {}, \
             \"peak_pages\": {}, \"peak_bytes\": {}, \
             \"gc_time_ns\": {}, \"gc_pause_p50_ns\": {}, \"gc_pause_p99_ns\": {}, \
             \"gc_pause_max_ns\": {}, \"gc_slices\": {}}}",
            r.program,
            r.mode,
            r.config,
            r.scale,
            r.instructions,
            r.instructions_per_sec,
            r.words_allocated,
            r.gc_count,
            r.bytes_copied,
            r.peak_pages,
            r.peak_bytes,
            r.gc_time_ns,
            r.gc_pause_p50_ns,
            r.gc_pause_p99_ns,
            r.gc_pause_max_ns,
            r.gc_slices,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {} rows to {out_path}", rows.len());
    if jobs > 1 {
        eprintln!(
            "sharded {} cells over {jobs} threads: {:.1}s wall vs {:.1}s serial ({:.1}s saved)",
            cells.len(),
            started.elapsed().as_secs_f64(),
            serial.as_secs_f64(),
            (serial.saturating_sub(started.elapsed())).as_secs_f64(),
        );
    }
}

/// Runs every configuration over one (program, mode) cell, interleaving the
/// sample rounds (config A sample 1, config B sample 1, ..., A 2, B 2, ...)
/// so slow host drift hits all configurations equally.
///
/// With `gc_compare`, the configurations differ in *collector mode*
/// rather than dispatch engine, so the bit-identical assertion narrows
/// to the mutator-visible counters plus the result — a sliced
/// collection finishing at a later safe point legitimately changes
/// `#GC` and the copied-word total, but never the program's answer.
/// The five GC columns of a row, `(gc_time_ns, p50, p99, max, slices)`,
/// taken together from one sample.
type GcCols = (u64, u64, u64, u64, u64);

fn run_cell(cell: &Cell, configs: &[Config], samples: usize, gc_compare: bool) -> Vec<Row> {
    let src = cell.bench.source_scaled(cell.scale);
    let compilers: Vec<Compiler> = configs
        .iter()
        .map(|c| {
            let mut compiler = Compiler::new(cell.mode)
                .with_dispatch(c.dispatch)
                .with_fusion(c.fusion);
            if c.gc_workers != 1 || c.gc_slice.is_some() {
                compiler = compiler.with_config(RtConfig {
                    gc_workers: c.gc_workers,
                    gc_slice_budget_words: c.gc_slice,
                    ..RtConfig::default()
                });
            }
            compiler
        })
        .collect();
    let prog = compilers[0]
        .compile_source(&src)
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", cell.bench.name, cell.mode));
    let mut best: Vec<Option<kit::Outcome>> = (0..configs.len()).map(|_| None).collect();
    // GC timing gets the same best-of-N noise filter as throughput, from
    // its own winning sample: the fastest-wall run is not necessarily the
    // one with the least collector interference, and the five GC columns
    // must stay a coherent set from a single run.
    let mut best_gc: Vec<Option<GcCols>> = (0..configs.len()).map(|_| None).collect();
    for _ in 0..samples {
        for ((slot, gc_slot), compiler) in best.iter_mut().zip(&mut best_gc).zip(&compilers) {
            let out = compiler
                .run_program(&prog)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", cell.bench.name, cell.mode));
            if gc_slot.is_none_or(|(t, ..)| out.stats.gc_time_ns < t) {
                *gc_slot = Some((
                    out.stats.gc_time_ns,
                    out.stats.gc_pause_hist.quantile_ns(0.5).unwrap_or(0),
                    out.stats.gc_pause_hist.quantile_ns(0.99).unwrap_or(0),
                    out.stats.gc_pause_max_ns,
                    out.stats.gc_slices,
                ));
            }
            if slot.as_ref().is_none_or(|b| out.wall < b.wall) {
                *slot = Some(out);
            }
        }
    }
    let outs: Vec<kit::Outcome> = best.into_iter().map(Option::unwrap).collect();
    for (c, o) in configs.iter().zip(&outs).skip(1) {
        if gc_compare {
            // Collector equivalence: the mode may move the GC schedule
            // but never what the mutator computes.
            assert_eq!(
                (&o.result, o.instructions, o.stats.words_allocated),
                (
                    &outs[0].result,
                    outs[0].instructions,
                    outs[0].stats.words_allocated
                ),
                "{} [{}]: collector mode {} diverges from {}",
                cell.bench.name,
                cell.mode,
                c.name,
                configs[0].name,
            );
        } else {
            // Dispatch equivalence: the deterministic counters must not
            // depend on the dispatch engine or the fusion set.
            assert_eq!(
                (
                    o.instructions,
                    o.stats.words_allocated,
                    o.stats.gc_count,
                    o.stats.gc_copied_words
                ),
                (
                    outs[0].instructions,
                    outs[0].stats.words_allocated,
                    outs[0].stats.gc_count,
                    outs[0].stats.gc_copied_words
                ),
                "{} [{}]: config {} diverges from {}",
                cell.bench.name,
                cell.mode,
                c.name,
                configs[0].name,
            );
        }
    }
    configs
        .iter()
        .zip(outs)
        .zip(best_gc)
        .map(|((c, out), gc)| {
            let page_bytes = 256u64 * 8; // RtConfig default: 2^8 words/page
            let (gc_time_ns, p50, p99, pause_max_ns, slices) = gc.unwrap();
            eprintln!(
                "{:<10} {:<5} {:<14} {:>12} instr {:>10.2} Minstr/s  #GC {:<4} \
                 gc {:>7.2}ms  p99 {:>9}ns",
                cell.bench.name,
                cell.mode.suffix(),
                c.name,
                out.instructions,
                out.instructions as f64 / out.wall.as_secs_f64() / 1e6,
                out.stats.gc_count,
                gc_time_ns as f64 / 1e6,
                p99,
            );
            Row {
                program: cell.bench.name.to_string(),
                mode: cell.mode.suffix(),
                config: c.name,
                scale: cell.scale,
                instructions: out.instructions,
                instructions_per_sec: out.instructions as f64 / out.wall.as_secs_f64(),
                words_allocated: out.stats.words_allocated,
                gc_count: out.stats.gc_count,
                bytes_copied: out.stats.gc_copied_words * 8,
                peak_pages: (out.stats.peak_bytes as u64).div_ceil(page_bytes),
                peak_bytes: out.stats.peak_bytes as u64,
                gc_time_ns,
                gc_pause_p50_ns: p50,
                gc_pause_p99_ns: p99,
                gc_pause_max_ns: pause_max_ns,
                gc_slices: slices,
            }
        })
        .collect()
}

/// The `--serve` mode: drives an in-process `kit-serve` pool at
/// increasing concurrency over the serve mix, then floods a deliberately
/// under-provisioned pool to record the overload columns (shed,
/// rate_limited, deadline_exceeded, queue_depth_p99), and writes the
/// `"serve"` rows (default `BENCH_PR10.json`).
fn serve_summary(args: &[String]) {
    use kit_bench::serve_bench::{
        json_document, json_row, parse_mix, print_report, run_point, ServePoint, DEFAULT_MIX,
    };
    use kit_serve::server::{Server, ServerConfig};

    let flag_val = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let out_path = flag_val("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let workers = flag_val("--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, usize::from))
        .max(1);
    let dispatch = flag_val("--dispatch").map_or(DispatchMode::default(), |s| match s.as_str() {
        "match" => DispatchMode::Match,
        "threaded" => DispatchMode::Threaded,
        "register" => DispatchMode::Register,
        "register_fused" => DispatchMode::RegisterFused,
        other => panic!("--dispatch {other}: expected match|threaded|register|register_fused"),
    });
    let mix = parse_mix(
        flag_val("--mix").map_or(DEFAULT_MIX, String::as_str),
        Mode::Rgt,
        dispatch,
    )
    .unwrap_or_else(|e| panic!("--mix: {e}"));

    // Concurrency levels: the acceptance point (1k sessions) plus a 4k
    // point showing queueing behavior, unless --sessions pins one level.
    let points: Vec<ServePoint> = match flag_val("--sessions").and_then(|s| s.parse().ok()) {
        Some(sessions) => vec![point(sessions)],
        None => vec![point(1_000), point(4_000)],
    };

    // Headroom for the ordinary points: the queue bound stays out of the
    // way so these rows measure throughput, not shedding.
    let handle = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_cap: 16_384,
            ..ServerConfig::default()
        },
    )
    .expect("bind server")
    .spawn();
    let mut rows = Vec::with_capacity(points.len() + 1);
    for p in &points {
        let report = run_point(handle.addr(), p, &mix)
            .unwrap_or_else(|e| panic!("serve point {}: {e}", p.label));
        print_report(p, workers, &report);
        rows.push(json_row(p, workers, &report));
    }

    // The acceptance criterion: in-server counters bit-identical to
    // standalone single-threaded execution of the same programs.
    let checked = kit_serve::check_against_standalone(handle.addr(), &mix)
        .unwrap_or_else(|e| panic!("standalone check: {e}"));
    eprintln!(
        "standalone check: {} programs bit-identical to single-threaded runs",
        checked.len()
    );
    handle.shutdown();

    // The overload row: the same mix flooded at 4× the ordinary
    // concurrency into a deliberately tight queue, so the shed /
    // queue_depth_p99 columns show the admission layer working instead
    // of latency quietly collapsing.
    let flood_handle = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_cap: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind flood server")
    .spawn();
    let flood = ServePoint {
        label: "serve_flood".to_string(),
        sessions: 4_000,
        conns: 128,
        requests: 12_000,
    };
    let report = run_point(flood_handle.addr(), &flood, &mix)
        .unwrap_or_else(|e| panic!("serve point {}: {e}", flood.label));
    print_report(&flood, workers, &report);
    rows.push(json_row(&flood, workers, &report));
    let checked = kit_serve::check_against_standalone(flood_handle.addr(), &mix)
        .unwrap_or_else(|e| panic!("post-flood standalone check: {e}"));
    eprintln!(
        "post-flood check: {} programs bit-identical to single-threaded runs",
        checked.len()
    );
    flood_handle.shutdown();

    std::fs::write(&out_path, json_document(&rows))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {} serve rows to {out_path}", rows.len());
}

/// Standard shape of a serve load point: sessions spread over enough
/// connections to keep per-connection pipelines shallow, with enough
/// requests that the pool reaches steady state.
fn point(sessions: usize) -> kit_bench::serve_bench::ServePoint {
    kit_bench::serve_bench::ServePoint {
        label: format!("serve_{sessions}"),
        sessions,
        conns: (sessions / 16).clamp(1, 128),
        requests: (sessions * 3).max(6_000),
    }
}

/// The source-instruction kind a base opcode fuses as, if any.
fn opk_of(op: Op) -> Option<Opk> {
    Some(match op {
        Op::Load => Opk::Load,
        Op::Store => Opk::Store,
        Op::Pop => Opk::Pop,
        Op::PushConst => Opk::PushConst,
        Op::Select => Opk::Select,
        Op::Prim => Opk::Prim,
        Op::JumpIfFalse => Opk::JumpIfFalse,
        Op::SwitchCon => Opk::SwitchCon,
        Op::GcCheck => Opk::GcCheck,
        Op::RegHandle => Opk::RegHandle,
        _ => return None,
    })
}

/// Runs the cells in the VM's counting mode and prints the hot adjacent
/// sequences plus a regenerated `FUSION_CANDIDATES` table.
fn profile_fusion(cells: &[Cell]) {
    let mut total = Box::new(FusionProfile::default());
    for cell in cells {
        let src = cell.bench.source_scaled(cell.scale);
        let compiler = Compiler::new(cell.mode).with_fusion_profile();
        let prog = compiler
            .compile_source(&src)
            .unwrap_or_else(|e| panic!("{} [{}]: {e}", cell.bench.name, cell.mode));
        let out = compiler
            .run_program(&prog)
            .unwrap_or_else(|e| panic!("{} [{}]: {e}", cell.bench.name, cell.mode));
        let prof = out
            .fusion_profile
            .expect("counting mode must return a profile");
        total.merge(&prof);
        eprintln!(
            "{:<10} {:<5} profiled ({} instr)",
            cell.bench.name,
            cell.mode.suffix(),
            out.instructions
        );
    }

    let fusible = |ops: &[Op]| ops.iter().all(|&o| opk_of(o).is_some());
    println!("\n== hot adjacent pairs ==");
    for (ops, n) in total.hot_pairs().into_iter().take(24) {
        println!(
            "{:>14}  {};{}{}",
            n,
            ops[0].mnemonic(),
            ops[1].mnemonic(),
            if fusible(&ops) { "  [fusible]" } else { "" }
        );
    }
    println!("\n== hot adjacent triples ==");
    for (ops, n) in total.hot_triples().into_iter().take(24) {
        println!(
            "{:>14}  {};{};{}{}",
            n,
            ops[0].mnemonic(),
            ops[1].mnemonic(),
            ops[2].mnemonic(),
            if fusible(&ops) { "  [fusible]" } else { "" }
        );
    }

    // Regenerate the candidate table: current patterns with fresh counts.
    let count_of = |seq: &[Opk]| -> (u64, bool) {
        // The matrices hold pair/triple counts; a 4-long pattern's count is
        // approximated (upper bound) by the rarer of its two triples.
        let pair = |a: Opk, b: Opk| {
            total
                .hot_pairs()
                .iter()
                .find(|(ops, _)| opk_of(ops[0]) == Some(a) && opk_of(ops[1]) == Some(b))
                .map_or(0, |(_, n)| *n)
        };
        let triple = |a: Opk, b: Opk, c: Opk| {
            total
                .hot_triples()
                .iter()
                .find(|(ops, _)| {
                    opk_of(ops[0]) == Some(a)
                        && opk_of(ops[1]) == Some(b)
                        && opk_of(ops[2]) == Some(c)
                })
                .map_or(0, |(_, n)| *n)
        };
        match seq {
            [a, b] => (pair(*a, *b), true),
            [a, b, c] => (triple(*a, *b, *c), true),
            [a, b, c, d] => (triple(*a, *b, *c).min(triple(*b, *c, *d)), false),
            _ => (0, false),
        }
    };
    println!("\n== regenerated FUSION_CANDIDATES (paste into crates/kam/src/fusion_table.rs) ==");
    println!("pub static FUSION_CANDIDATES: &[Pattern] = &[");
    for p in FUSION_CANDIDATES {
        let (n, exact) = count_of(p.seq);
        let seq: Vec<String> = p.seq.iter().map(|k| format!("Opk::{k:?}")).collect();
        println!("    Pattern {{");
        println!("        seq: &[{}],", seq.join(", "));
        println!("        out: FuseKind::{:?},", p.out);
        println!("        tier: {},", p.tier);
        println!(
            "        dyn_count: {n},{}",
            if exact {
                ""
            } else {
                " // min of overlapping triples"
            }
        );
        println!("    }},");
    }
    println!("];");

    // Hot fusible sequences the table does not cover yet — implementation
    // candidates for the next tier.
    println!("\n== uncovered fusible sequences (tier-2 candidates) ==");
    let covered = |seq: &[Opk]| FUSION_CANDIDATES.iter().any(|p| p.seq == seq);
    let mut shown = 0;
    for (ops, n) in total.hot_triples() {
        let seq: Option<Vec<Opk>> = ops.iter().map(|&o| opk_of(o)).collect();
        if let Some(seq) = seq {
            if !covered(&seq) && shown < 12 {
                println!("{:>14}  {:?}", n, seq);
                shown += 1;
            }
        }
    }
    for (ops, n) in total.hot_pairs() {
        let seq: Option<Vec<Opk>> = ops.iter().map(|&o| opk_of(o)).collect();
        if let Some(seq) = seq {
            if !covered(&seq) && shown < 24 {
                println!("{:>14}  {:?}", n, seq);
                shown += 1;
            }
        }
    }
}
