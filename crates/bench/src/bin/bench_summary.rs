//! Perf-trajectory snapshot: runs every benchmark of the paper's Fig. 3 in
//! all five execution modes and writes a machine-readable JSON summary
//! (default `BENCH_PR1.json`).
//!
//! The deterministic counters (instructions, words allocated, #GC, bytes
//! copied) are bit-identical across runs and machines; `instructions_per_sec`
//! is the wall-clock throughput of the abstract machine (best of
//! `--samples N` runs, default 3) and is the number PRs optimizing the
//! interpreter hot path are judged by.
//!
//! Usage: `cargo run -p kit-bench --release --bin bench-summary --
//!         [--full] [--samples N] [--out PATH]
//!         [--only prog,prog,...] [--modes r,rt,...]`
//!
//! `--only`/`--modes` restrict the sweep — useful for interleaved A/B
//! timing of two builds, where each round must be short compared to the
//! host's throughput drift.

use kit::{Compiler, Mode};
use kit_bench::programs::all;
use std::fmt::Write as _;

struct Row {
    program: String,
    mode: &'static str,
    scale: i64,
    instructions: u64,
    instructions_per_sec: f64,
    words_allocated: u64,
    gc_count: u64,
    bytes_copied: u64,
    peak_pages: u64,
    peak_bytes: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(3)
        .max(1);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR1.json".to_string());
    let csv_arg = |flag: &str| -> Option<Vec<String>> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.split(',').map(str::to_string).collect())
    };
    let only = csv_arg("--only");
    let modes = csv_arg("--modes");

    let mut rows = Vec::new();
    for b in all() {
        if only
            .as_ref()
            .is_some_and(|o| !o.iter().any(|n| n == b.name))
        {
            continue;
        }
        let scale = if full { b.default_scale } else { b.test_scale };
        let src = b.source_scaled(scale);
        for mode in Mode::ALL_WITH_BASELINE {
            if modes
                .as_ref()
                .is_some_and(|m| !m.iter().any(|s| s == mode.suffix()))
            {
                continue;
            }
            let compiler = Compiler::new(mode);
            let prog = compiler
                .compile_source(&src)
                .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", b.name));
            // Best-of-N wall clock; counters are identical across samples.
            let mut best = None;
            for _ in 0..samples {
                let out = compiler
                    .run_program(&prog)
                    .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", b.name));
                let better = best
                    .as_ref()
                    .is_none_or(|b: &kit::Outcome| out.wall < b.wall);
                if better {
                    best = Some(out);
                }
            }
            let out = best.unwrap();
            let page_bytes = 256u64 * 8; // RtConfig default: 2^8 words/page
            rows.push(Row {
                program: b.name.to_string(),
                mode: mode.suffix(),
                scale,
                instructions: out.instructions,
                instructions_per_sec: out.instructions as f64 / out.wall.as_secs_f64(),
                words_allocated: out.stats.words_allocated,
                gc_count: out.stats.gc_count,
                bytes_copied: out.stats.gc_copied_words * 8,
                peak_pages: (out.stats.peak_bytes as u64).div_ceil(page_bytes),
                peak_bytes: out.stats.peak_bytes as u64,
            });
            eprintln!(
                "{:<10} {:<5} {:>12} instr {:>10.2} Minstr/s  #GC {}",
                b.name,
                mode.suffix(),
                out.instructions,
                out.instructions as f64 / out.wall.as_secs_f64() / 1e6,
                out.stats.gc_count,
            );
        }
    }

    let mut json = String::from("{\n  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"program\": \"{}\", \"mode\": \"{}\", \"scale\": {}, \
             \"instructions\": {}, \"instructions_per_sec\": {:.0}, \
             \"words_allocated\": {}, \"gc_count\": {}, \"bytes_copied\": {}, \
             \"peak_pages\": {}, \"peak_bytes\": {}}}",
            r.program,
            r.mode,
            r.scale,
            r.instructions,
            r.instructions_per_sec,
            r.words_allocated,
            r.gc_count,
            r.bytes_copied,
            r.peak_pages,
            r.peak_bytes,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {} rows to {out_path}", rows.len());
}
