//! Load generator for the `kit-serve` multi-tenant server.
//!
//! ```text
//! loadgen [--addr HOST:PORT]        # target a running server…
//!         [--workers N]             # …or spawn one in-process (default)
//!         [--sessions N]            # concurrent in-flight requests (default 1000)
//!         [--conns N]               # TCP connections (default 64)
//!         [--requests N]            # total requests (default 8×sessions)
//!         [--mix SPEC]              # name[:scale][:fuel=N][:pages=N],…
//!         [--mode r|rt|gt|rgt|smlnj] [--dispatch match|threaded|register|register_fused]
//!         [--check]                 # compare counters against standalone runs
//!         [--out PATH]              # write a {"serve": [row]} JSON document
//! ```
//!
//! Reports requests/sec, p50/p99 latency, per-program counter aggregates
//! (uniformity across responses is enforced by the driver) and collector
//! time per worker. `--check` additionally runs each mix program once on
//! a standalone, identically configured `Compiler` and demands
//! bit-identical instruction totals and GC counters.

use kit::{DispatchMode, Mode};
use kit_bench::serve_bench::{
    json_document, json_row, parse_mix, print_report, run_point, ServePoint, DEFAULT_MIX,
};
use kit_serve::server::{Server, ServerConfig};
use std::net::SocketAddr;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT | --workers N] [--sessions N] [--conns N] \
         [--requests N] [--mix SPEC] [--mode M] [--dispatch D] [--check] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_val = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    for (i, a) in args.iter().enumerate() {
        let known = [
            "--addr",
            "--workers",
            "--sessions",
            "--conns",
            "--requests",
            "--mix",
            "--mode",
            "--dispatch",
            "--check",
            "--out",
        ];
        let takes_value = |f: &str| f != "--check";
        if known.contains(&a.as_str()) {
            continue;
        }
        // Values of known value-taking flags are fine; anything else is a typo.
        let is_value = i > 0 && known.contains(&args[i - 1].as_str()) && takes_value(&args[i - 1]);
        if !is_value {
            eprintln!("loadgen: unknown argument {a:?}");
            usage();
        }
    }

    let parse_num = |flag: &str, default: usize| -> usize {
        flag_val(flag).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("loadgen: {flag} wants a number, got {s:?}");
                usage()
            })
        })
    };
    let sessions = parse_num("--sessions", 1000).max(1);
    let conns = parse_num("--conns", 64).max(1);
    let requests = parse_num("--requests", sessions.saturating_mul(8)).max(1);
    let mode = flag_val("--mode").map_or(Mode::Rgt, |s| {
        Mode::ALL_WITH_BASELINE
            .into_iter()
            .find(|m| m.suffix() == s)
            .unwrap_or_else(|| {
                eprintln!("loadgen: unknown mode {s:?}");
                usage()
            })
    });
    let dispatch = flag_val("--dispatch").map_or(DispatchMode::default(), |s| match s.as_str() {
        "match" => DispatchMode::Match,
        "threaded" => DispatchMode::Threaded,
        "register" => DispatchMode::Register,
        "register_fused" => DispatchMode::RegisterFused,
        other => {
            eprintln!("loadgen: unknown dispatch {other:?}");
            usage()
        }
    });
    let mix_spec = flag_val("--mix").map_or(DEFAULT_MIX, String::as_str);
    let mix = parse_mix(mix_spec, mode, dispatch).unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        usage()
    });

    // Either target a running server or host one in this process.
    let (addr, handle, workers): (SocketAddr, Option<kit_serve::ServerHandle>, usize) =
        match flag_val("--addr") {
            Some(a) => {
                let addr = a.parse().unwrap_or_else(|_| {
                    eprintln!("loadgen: bad --addr {a:?}");
                    usage()
                });
                (addr, None, 0)
            }
            None => {
                let workers = parse_num(
                    "--workers",
                    std::thread::available_parallelism().map_or(4, usize::from),
                )
                .max(1);
                let handle = Server::bind("127.0.0.1:0", ServerConfig { workers })
                    .unwrap_or_else(|e| {
                        eprintln!("loadgen: bind: {e}");
                        std::process::exit(1);
                    })
                    .spawn();
                (handle.addr(), Some(handle), workers)
            }
        };

    let point = ServePoint {
        label: format!("loadgen_{sessions}"),
        sessions,
        conns,
        requests,
    };
    let report = run_point(addr, &point, &mix).unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    });
    print_report(&point, workers, &report);

    if has("--check") {
        let rows = kit_serve::check_against_standalone(addr, &mix).unwrap_or_else(|e| {
            eprintln!("loadgen: check failed: {e}");
            std::process::exit(1);
        });
        for row in &rows {
            eprintln!("check {:<22} {}", row.name, row.summary);
        }
        eprintln!(
            "check: all {} programs bit-identical to standalone",
            rows.len()
        );
    }

    if let Some(out) = flag_val("--out") {
        let doc = json_document(&[json_row(&point, workers, &report)]);
        std::fs::write(out, doc).unwrap_or_else(|e| {
            eprintln!("loadgen: write {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {out}");
    }

    if let Some(h) = handle {
        h.shutdown();
    }
}
