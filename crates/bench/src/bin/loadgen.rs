//! Load generator for the `kit-serve` multi-tenant server.
//!
//! ```text
//! loadgen [--addr HOST:PORT]        # target a running server…
//!         [--workers N]             # …or spawn one in-process (default)
//!         [--sessions N]            # concurrent in-flight requests (default 1000)
//!         [--conns N]               # TCP connections (default 64)
//!         [--requests N]            # total requests (default 8×sessions)
//!         [--mix SPEC]              # name[:scale][:fuel=N][:pages=N][:deadline=MS][:tenant=ID],…
//!         [--mode r|rt|gt|rgt|smlnj] [--dispatch match|threaded|register|register_fused]
//!         [--queue-cap N]           # in-process server admission bound
//!         [--shed-policy newest|tenant-share]
//!         [--rate RPS[:BURST]]      # in-process per-tenant token bucket
//!         [--deadline-ms N]         # in-process server default deadline
//!         [--check]                 # compare counters against standalone runs
//!         [--chaos]                 # run adversarial clients alongside the load
//!         [--chaos-secs N]          # chaos duration (default 3)
//!         [--out PATH]              # write a {"serve": [row]} JSON document
//! ```
//!
//! Reports requests/sec, p50/p99 latency, per-program counter aggregates
//! (uniformity across *executed* responses is enforced by the driver;
//! shed/rate-limited/deadline outcomes are tallied) and collector time
//! per worker. `--check` additionally runs each mix program once on a
//! standalone, identically configured `Compiler` and demands
//! bit-identical instruction totals and GC counters.
//!
//! `--chaos` (in-process server only) throws slowloris writers,
//! mid-frame disconnects, malformed/oversized frames, stalled readers
//! and connection churn at the server *while* the healthy mix runs,
//! then proves availability with a fresh post-chaos burst and checks
//! the leak probes: the live-worker count and compile-cache size must
//! match their pre-chaos values, and open connections must settle to
//! zero.

use kit::{DispatchMode, Mode};
use kit_bench::chaos;
use kit_bench::serve_bench::{
    json_document, json_row, parse_mix, print_report, run_point, ServePoint, DEFAULT_MIX,
};
use kit_serve::server::{RateLimit, Server, ServerConfig, ShedPolicy};
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT | --workers N] [--sessions N] [--conns N] \
         [--requests N] [--mix SPEC] [--mode M] [--dispatch D] [--queue-cap N] \
         [--shed-policy newest|tenant-share] [--rate RPS[:BURST]] [--deadline-ms N] \
         [--check] [--chaos] [--chaos-secs N] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_val = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    for (i, a) in args.iter().enumerate() {
        let known = [
            "--addr",
            "--workers",
            "--sessions",
            "--conns",
            "--requests",
            "--mix",
            "--mode",
            "--dispatch",
            "--queue-cap",
            "--shed-policy",
            "--rate",
            "--deadline-ms",
            "--check",
            "--chaos",
            "--chaos-secs",
            "--out",
        ];
        let takes_value = |f: &str| f != "--check" && f != "--chaos";
        if known.contains(&a.as_str()) {
            continue;
        }
        // Values of known value-taking flags are fine; anything else is a typo.
        let is_value = i > 0 && known.contains(&args[i - 1].as_str()) && takes_value(&args[i - 1]);
        if !is_value {
            eprintln!("loadgen: unknown argument {a:?}");
            usage();
        }
    }

    let parse_num = |flag: &str, default: usize| -> usize {
        flag_val(flag).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("loadgen: {flag} wants a number, got {s:?}");
                usage()
            })
        })
    };
    let sessions = parse_num("--sessions", 1000).max(1);
    let conns = parse_num("--conns", 64).max(1);
    let requests = parse_num("--requests", sessions.saturating_mul(8)).max(1);
    let mode = flag_val("--mode").map_or(Mode::Rgt, |s| {
        Mode::ALL_WITH_BASELINE
            .into_iter()
            .find(|m| m.suffix() == s)
            .unwrap_or_else(|| {
                eprintln!("loadgen: unknown mode {s:?}");
                usage()
            })
    });
    let dispatch = flag_val("--dispatch").map_or(DispatchMode::default(), |s| match s.as_str() {
        "match" => DispatchMode::Match,
        "threaded" => DispatchMode::Threaded,
        "register" => DispatchMode::Register,
        "register_fused" => DispatchMode::RegisterFused,
        other => {
            eprintln!("loadgen: unknown dispatch {other:?}");
            usage()
        }
    });
    let mix_spec = flag_val("--mix").map_or(DEFAULT_MIX, String::as_str);
    let mix = parse_mix(mix_spec, mode, dispatch).unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        usage()
    });
    let chaos_mode = has("--chaos");

    // Either target a running server or host one in this process.
    let (addr, handle, workers): (SocketAddr, Option<kit_serve::ServerHandle>, usize) =
        match flag_val("--addr") {
            Some(a) => {
                if chaos_mode {
                    eprintln!("loadgen: --chaos needs the in-process server (its leak probes)");
                    usage();
                }
                let addr = a.parse().unwrap_or_else(|_| {
                    eprintln!("loadgen: bad --addr {a:?}");
                    usage()
                });
                (addr, None, 0)
            }
            None => {
                let workers = parse_num(
                    "--workers",
                    std::thread::available_parallelism().map_or(4, usize::from),
                )
                .max(1);
                let mut config = ServerConfig {
                    workers,
                    ..ServerConfig::default()
                };
                config.queue_cap = parse_num("--queue-cap", config.queue_cap).max(1);
                if let Some(policy) = flag_val("--shed-policy") {
                    config.shed_policy = match policy.as_str() {
                        "newest" => ShedPolicy::RejectNewest,
                        "tenant-share" => ShedPolicy::TenantShare,
                        other => {
                            eprintln!("loadgen: unknown shed policy {other:?}");
                            usage()
                        }
                    };
                }
                if let Some(rate) = flag_val("--rate") {
                    let (rps, burst) = match rate.split_once(':') {
                        Some((r, b)) => (r.parse(), b.parse()),
                        None => (rate.parse(), rate.parse()),
                    };
                    match (rps, burst) {
                        (Ok(rps), Ok(burst)) => {
                            config.rate_limit = Some(RateLimit { rps, burst });
                        }
                        _ => {
                            eprintln!("loadgen: --rate wants RPS[:BURST], got {rate:?}");
                            usage()
                        }
                    }
                }
                if flag_val("--deadline-ms").is_some() {
                    config.default_deadline_ms = Some(parse_num("--deadline-ms", 0) as u64);
                }
                if chaos_mode {
                    // Tight hygiene budgets so the adversaries are reaped
                    // within the smoke leg's lifetime.
                    config.idle_timeout = Duration::from_secs(2);
                    config.frame_timeout = Duration::from_millis(750);
                    config.write_timeout = Duration::from_secs(1);
                }
                let handle = Server::bind("127.0.0.1:0", config)
                    .unwrap_or_else(|e| {
                        eprintln!("loadgen: bind: {e}");
                        std::process::exit(1);
                    })
                    .spawn();
                (handle.addr(), Some(handle), workers)
            }
        };

    // Pre-chaos leak probes: warm the compile cache with one run of the
    // mix — plus the chaos victim program the adversaries submit — so
    // the cache size is at its steady state before the baseline is
    // recorded.
    let probes_before = handle.as_ref().filter(|_| chaos_mode).map(|h| {
        let warmup = ServePoint {
            label: "warmup".to_string(),
            sessions: 16,
            conns: 4,
            requests: mix.len().max(16),
        };
        run_point(addr, &warmup, &mix).unwrap_or_else(|e| {
            eprintln!("loadgen: warmup failed: {e}");
            std::process::exit(1);
        });
        chaos::prime(addr).unwrap_or_else(|e| {
            eprintln!("loadgen: cache prime failed: {e}");
            std::process::exit(1);
        });
        (h.live_workers(), h.cache_size())
    });

    let chaos_thread = chaos_mode.then(|| {
        let secs = parse_num("--chaos-secs", 3) as u64;
        std::thread::spawn(move || chaos::run_chaos(addr, Duration::from_secs(secs)))
    });

    let point = ServePoint {
        label: format!("loadgen_{sessions}"),
        sessions,
        conns,
        requests,
    };
    let report = run_point(addr, &point, &mix).unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    });
    print_report(&point, workers, &report);

    if let Some(t) = chaos_thread {
        let inflicted = t.join().unwrap_or_else(|_| {
            eprintln!("loadgen: chaos thread panicked");
            std::process::exit(1);
        });
        eprintln!(
            "chaos: {} slowloris, {} mid-frame disconnects, {} malformed, \
             {} stalled readers, {} churn cycles",
            inflicted.slowloris,
            inflicted.mid_frame_disconnects,
            inflicted.malformed,
            inflicted.stalled_readers,
            inflicted.churned,
        );

        // Availability: a fresh burst after the abuse must answer
        // correctly (the run_point uniformity checks are the assertion).
        let burst = ServePoint {
            label: "post_chaos".to_string(),
            sessions: 64,
            conns: 8,
            requests: 256,
        };
        let after = run_point(addr, &burst, &mix).unwrap_or_else(|e| {
            eprintln!("loadgen: post-chaos burst failed: {e}");
            std::process::exit(1);
        });
        print_report(&burst, workers, &after);

        // Leak probes: same worker pool, same cache, connections gone.
        let h = handle.as_ref().expect("chaos mode hosts the server");
        let (workers_before, cache_before) = probes_before.expect("probed before chaos");
        let workers_after = h.live_workers();
        if workers_after != workers_before {
            eprintln!(
                "loadgen: worker leak: {workers_before} workers before chaos, \
                 {workers_after} after"
            );
            std::process::exit(1);
        }
        let cache_after = h.cache_size();
        if cache_after != cache_before {
            eprintln!(
                "loadgen: cache leak: {cache_before} entries before chaos, {cache_after} after"
            );
            std::process::exit(1);
        }
        // Chaos connections are reaped on their hygiene budgets; give
        // the slowest (idle timeout, 2s) a grace period to settle.
        let settle_deadline = std::time::Instant::now() + Duration::from_secs(10);
        while h.open_connections() > 0 && std::time::Instant::now() < settle_deadline {
            std::thread::sleep(Duration::from_millis(50));
        }
        let open = h.open_connections();
        if open > 0 {
            eprintln!("loadgen: connection leak: {open} connections still open after chaos");
            std::process::exit(1);
        }
        eprintln!(
            "chaos: no leaks ({workers_after} workers, {cache_after} cached programs, \
             0 open connections)"
        );
    }

    if has("--check") {
        let rows = kit_serve::check_against_standalone(addr, &mix).unwrap_or_else(|e| {
            eprintln!("loadgen: check failed: {e}");
            std::process::exit(1);
        });
        for row in &rows {
            eprintln!("check {:<22} {}", row.name, row.summary);
        }
        eprintln!(
            "check: all {} programs bit-identical to standalone",
            rows.len()
        );
    }

    if let Some(out) = flag_val("--out") {
        let doc = json_document(&[json_row(&point, workers, &report)]);
        std::fs::write(out, doc).unwrap_or_else(|e| {
            eprintln!("loadgen: write {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {out}");
    }

    if let Some(h) = handle {
        h.shutdown();
    }
}
