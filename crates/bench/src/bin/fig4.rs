//! Regenerates the paper's fig4 (see kit-bench docs). Pass `--quick` for
//! the scaled-down test workload.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", kit_bench::tables::fig4(quick));
}
