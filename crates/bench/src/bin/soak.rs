//! Soak runner: the randomized 4-way engine differential from
//! `tests/randomized.rs`, promoted to a binary so it can run for
//! arbitrarily many cases with full configuration fuzzing — page size,
//! initial heap, `heap_shrink_factor` hysteresis, the generational
//! policy, and all four dispatch modes (`Match` reference vs `Threaded`,
//! `Register`, `RegisterFused`).
//!
//! Usage: `cargo run -p kit-bench --release --bin soak --
//!         [--cases N] [--seed S] [--gc-workers N] [--surface int|full]`
//!
//! `--surface` selects the generator grammar: `int` (the default) is the
//! original int-expression generator, kept so historical seeds stay
//! reproducible; `full` is the whole-language generator (datatypes,
//! arrays past the large-object threshold, strings, reals, refs, nested
//! handlers — DESIGN.md §6h) that actually reaches the collector's hard
//! cases.
//!
//! Every case is one generated program run in all five execution modes
//! under the default runtime configuration plus one fuzzed configuration
//! per mode. The fuzzed configuration draws the collector schedule by
//! arm — serial, parallel (`gc_workers` ∈ {2, 4}), sliced ({32, 256}
//! words), or deliberately both at once so the slice-over-workers
//! precedence is exercised; `--gc-workers N` pins the worker count
//! instead, for bisecting a parallel-only divergence. A full-surface
//! program that fails to compile is also a failure — the generator is
//! type-directed, so a compile error is a generator bug that would
//! otherwise silently shrink the differential surface. Any divergence
//! prints the offending engine, field, config, and full program source,
//! and the process exits nonzero — so a CI hook (`scripts/verify.sh`
//! wires in short runs of both surfaces) fails loudly.

use kit::{Compiler, Mode};
use kit_bench::programs::SplitMix64;
use kit_bench::randgen::{self, Surface};

const FUEL: u64 = 10_000_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_val = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let cases = flag_val("--cases")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(200);
    let seed = flag_val("--seed")
        .and_then(|s| {
            s.parse::<u64>()
                .ok()
                .or_else(|| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        })
        .unwrap_or(0x5EED_5041);
    let pin_workers = flag_val("--gc-workers").and_then(|s| s.parse::<usize>().ok());
    let surface = flag_val("--surface")
        .map(|s| Surface::parse(s).unwrap_or_else(|| panic!("bad --surface {s:?} (int|full)")))
        .unwrap_or(Surface::Int);

    let mut rng = SplitMix64::new(seed);
    let mut failures = 0u64;
    let mut runs = 0u64;
    for case in 0..cases {
        let src = randgen::program(&mut rng, surface);
        // A generated program that does not compile never reaches the
        // differential, so it must count as a failure in its own right.
        if let Err(e) = Compiler::new(Mode::Rgt).compile_source(&src) {
            failures += 1;
            eprintln!("== GENERATOR BUG (case {case}, seed {seed:#x}): {e} ==\n{src}\n");
            continue;
        }
        for mode in Mode::ALL_WITH_BASELINE {
            // Default configuration, then one fuzzed configuration per
            // mode — tiny pages, aggressive shrink factors, parallel
            // workers and slice budgets all move the GC schedule, which
            // must still be engine-invariant.
            let mut fuzzed = randgen::fuzz_config(&mut rng, mode);
            if let Some(w) = pin_workers {
                fuzzed.gc_workers = w;
            }
            for cfg in [None, Some(&fuzzed)] {
                runs += 1;
                if let Err(e) = randgen::differential(&src, mode, cfg, FUEL) {
                    failures += 1;
                    eprintln!("== DIVERGENCE (case {case}, seed {seed:#x}) ==\n{e}\n");
                }
            }
        }
        if (case + 1) % 50 == 0 {
            eprintln!(
                "soak: {}/{cases} cases, {runs} differentials, {failures} failures",
                case + 1
            );
        }
    }
    eprintln!(
        "soak: {cases} cases ({surface:?} surface) x {} modes x 2 configs x {} engines = \
         {runs} differentials, {failures} failures (seed {seed:#x})",
        Mode::ALL_WITH_BASELINE.len(),
        randgen::DIFF_ENGINES.len(),
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
