//! Soak runner: the randomized 4-way engine differential from
//! `tests/randomized.rs`, promoted to a binary so it can run for
//! arbitrarily many cases with full configuration fuzzing — page size,
//! initial heap, `heap_shrink_factor` hysteresis, the generational
//! policy, and all four dispatch modes (`Match` reference vs `Threaded`,
//! `Register`, `RegisterFused`).
//!
//! Usage: `cargo run -p kit-bench --release --bin soak --
//!         [--cases N] [--seed S] [--gc-workers N]`
//!
//! Every case is one generated program run in all five execution modes
//! under the default runtime configuration plus one fuzzed configuration
//! per mode. The fuzzed configuration also draws `gc_workers` from
//! `{1, 2, 4}` and the sliced-collection budget from
//! `{off, 32, 256}` words (GC modes only); `--gc-workers N` pins the
//! worker count instead, for bisecting a parallel-only divergence. Any
//! divergence prints the offending engine, field, config, and full
//! program source, and the process exits nonzero — so a CI hook
//! (`scripts/verify.sh` wires in a short run) fails loudly.

use kit::Mode;
use kit_bench::programs::SplitMix64;
use kit_bench::randgen;

const FUEL: u64 = 10_000_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_val = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let cases = flag_val("--cases")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(200);
    let seed = flag_val("--seed")
        .and_then(|s| {
            s.parse::<u64>()
                .ok()
                .or_else(|| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        })
        .unwrap_or(0x5EED_5041);
    let pin_workers = flag_val("--gc-workers").and_then(|s| s.parse::<usize>().ok());

    let mut rng = SplitMix64::new(seed);
    let mut failures = 0u64;
    let mut runs = 0u64;
    for case in 0..cases {
        let src = randgen::program(&mut rng);
        for mode in Mode::ALL_WITH_BASELINE {
            // Default configuration, then one fuzzed configuration per
            // mode — tiny pages, aggressive shrink factors, parallel
            // workers and slice budgets all move the GC schedule, which
            // must still be engine-invariant.
            let mut fuzzed = randgen::fuzz_config(&mut rng, mode);
            if let Some(w) = pin_workers {
                fuzzed.gc_workers = w;
            }
            for cfg in [None, Some(&fuzzed)] {
                runs += 1;
                if let Err(e) = randgen::differential(&src, mode, cfg, FUEL) {
                    failures += 1;
                    eprintln!("== DIVERGENCE (case {case}, seed {seed:#x}) ==\n{e}\n");
                }
            }
        }
        if (case + 1) % 50 == 0 {
            eprintln!(
                "soak: {}/{cases} cases, {runs} differentials, {failures} failures",
                case + 1
            );
        }
    }
    eprintln!(
        "soak: {cases} cases x {} modes x 2 configs x {} engines = {runs} differentials, \
         {failures} failures (seed {seed:#x})",
        Mode::ALL_WITH_BASELINE.len(),
        randgen::DIFF_ENGINES.len(),
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
