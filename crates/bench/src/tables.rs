//! Generators for every table and figure of the paper's evaluation (§4).
//!
//! Each function returns the rendered table as a `String` (the `table*`/
//! `fig*` binaries print it; the integration tests assert on its shape).
//! Absolute numbers differ from the paper — the substrate is a bytecode
//! interpreter, not 2002 x86 hardware — but the *shapes* the paper argues
//! from are reproduced; EXPERIMENTS.md records paper-vs-measured.

use crate::programs::{all, by_name};
use crate::runner::{fmt_bytes, fmt_time, improvement_pct, run_scaled, MeasuredRun};
use kit::Mode;
use kit_runtime::RtConfig;
use std::fmt::Write as _;

fn scale_of(b: &crate::Benchmark, quick: bool) -> i64 {
    if quick {
        b.test_scale
    } else {
        b.default_scale
    }
}

fn run_mode(b: &crate::Benchmark, mode: Mode, quick: bool) -> MeasuredRun {
    run_scaled(b, mode, scale_of(b, quick), None)
        .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", b.name))
}

/// Table 1 — effect of tagging on time and memory (`r` vs `rt`).
pub fn table1(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Effect of Tagging on Time and Memory Usage (Table 1)");
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>5}  {:>9} {:>9} {:>5}",
        "Program", "t_r", "t_rt", "%", "m_r", "m_rt", "%"
    );
    for b in all() {
        let r = run_mode(&b, Mode::R, quick);
        let rt = run_mode(&b, Mode::Rt, quick);
        assert_eq!(
            r.outcome.result, rt.outcome.result,
            "{}: mode disagreement",
            b.name
        );
        let tpct = improvement_pct(r.time.as_secs_f64(), rt.time.as_secs_f64());
        let mpct = improvement_pct(r.peak_bytes as f64, rt.peak_bytes as f64);
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>9} {:>5}  {:>9} {:>9} {:>5}",
            b.name,
            fmt_time(r.time),
            fmt_time(rt.time),
            -tpct,
            fmt_bytes(r.peak_bytes),
            fmt_bytes(rt.peak_bytes),
            -mpct,
        );
    }
    let _ = writeln!(
        out,
        "(% columns are overheads of tagging: (x_rt - x_r)/x_r, as in the paper)"
    );
    out
}

/// Table 2 — effect of region inference on garbage collection
/// (`gt` vs `rgt`): time, memory, number of collections.
pub fn table2(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Effect of Region Inference on Garbage Collection (Table 2)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>5}  {:>9} {:>9} {:>5}  {:>7} {:>7} {:>5}",
        "Program", "t_gt", "t_rgt", "%", "m_gt", "m_rgt", "%", "#GC_gt", "#GC_rgt", "%"
    );
    for b in all() {
        let gt = run_mode(&b, Mode::Gt, quick);
        let rgt = run_mode(&b, Mode::Rgt, quick);
        assert_eq!(
            gt.outcome.result, rgt.outcome.result,
            "{}: mode disagreement",
            b.name
        );
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>9} {:>5}  {:>9} {:>9} {:>5}  {:>7} {:>7} {:>5}",
            b.name,
            fmt_time(gt.time),
            fmt_time(rgt.time),
            improvement_pct(gt.time.as_secs_f64(), rgt.time.as_secs_f64()),
            fmt_bytes(gt.peak_bytes),
            fmt_bytes(rgt.peak_bytes),
            improvement_pct(gt.peak_bytes as f64, rgt.peak_bytes as f64),
            gt.gc_count,
            rgt.gc_count,
            improvement_pct(gt.gc_count as f64, rgt.gc_count as f64),
        );
    }
    out
}

/// Table 3 — memory recycled by region inference vs the collector, and
/// region waste, in `rgt` mode.
pub fn table3(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Memory Recycling and Region Waste (Table 3)");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8}  {:>5}",
        "Program", "RI_rgt%", "GC_rgt%", "W_rgt%", "#GC"
    );
    for b in all() {
        let rgt = run_mode(&b, Mode::Rgt, quick);
        let stats = &rgt.outcome.stats;
        let (ri, gc, w) = match stats.ri_fraction() {
            // The paper prints no entry when the collector barely ran.
            Some(ri) if stats.gc_count >= 2 => (
                format!("{:.1}", 100.0 * ri),
                format!("{:.1}", 100.0 * (1.0 - ri)),
                stats
                    .waste_fraction()
                    .map(|w| format!("{:.1}", 100.0 * w))
                    .unwrap_or_else(|| "-".to_string()),
            ),
            _ => ("-".to_string(), "-".to_string(), "-".to_string()),
        };
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8}  {:>5}",
            b.name, ri, gc, w, stats.gc_count
        );
    }
    let _ = writeln!(
        out,
        "(RI/GC from the paper's §4.3 page accounting; '-' when the collector"
    );
    let _ = writeln!(out, " ran fewer than twice, as in the paper)");
    out
}

/// Table 4 — comparison with the generational baseline (the SML/NJ
/// substitute).
pub fn table4(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Comparison with the Generational Baseline (Table 4)");
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>6}  {:>9} {:>9} {:>6}",
        "Program", "t_smlnj", "t_rgt", "ratio", "m_smlnj", "m_rgt", "ratio"
    );
    for b in all() {
        let base = run_mode(&b, Mode::Baseline, quick);
        let rgt = run_mode(&b, Mode::Rgt, quick);
        assert_eq!(
            base.outcome.result, rgt.outcome.result,
            "{}: mode disagreement",
            b.name
        );
        let tr = base.time.as_secs_f64() / rgt.time.as_secs_f64().max(1e-9);
        let mr = base.peak_bytes as f64 / (rgt.peak_bytes as f64).max(1.0);
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>9} {:>6.1}  {:>9} {:>9} {:>6.1}",
            b.name,
            fmt_time(base.time),
            fmt_time(rgt.time),
            tr,
            fmt_bytes(base.peak_bytes),
            fmt_bytes(rgt.peak_bytes),
            mr,
        );
    }
    let _ = writeln!(
        out,
        "(ratios > 1 favour regions+GC, as in the paper's t_smlnj/t_rgt columns)"
    );
    out
}

/// Figure 4 — fraction of reclaimed memory recycled by the garbage
/// collector, per collection, for `professor`.
pub fn fig4(quick: bool) -> String {
    let b = by_name("professor").expect("professor benchmark");
    // Run under pressure so the collector fires many times.
    let cfg = RtConfig {
        initial_pages: 16,
        ..RtConfig::rgt()
    };
    let run = run_scaled(&b, Mode::Rgt, scale_of(&b, quick), Some(cfg)).expect("professor run");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "GC fraction per collection, professor (Figure 4) — {} collections",
        run.outcome.stats.gc_records.len()
    );
    let _ = writeln!(
        out,
        "{:>4}  {:>6}  histogram (100% = full bar)",
        "gc#", "GC%"
    );
    for (i, rec) in run.outcome.stats.gc_records.iter().enumerate() {
        let gc = rec.gc_fraction().unwrap_or(0.0) * 100.0;
        let bar = "#".repeat((gc / 2.5).round() as usize);
        let _ = writeln!(out, "{:>4}  {:>6.1}  {}", i + 1, gc, bar);
    }
    if let Some(ri) = run.outcome.stats.ri_fraction() {
        let _ = writeln!(
            out,
            "aggregate: region inference reclaims {:.1}% of all reclaimed memory",
            100.0 * ri
        );
    }
    out
}

/// Figure 5 — region profile over time (per-region words at each
/// collection) for the compile-like `kitkb` workload.
pub fn fig5(quick: bool) -> String {
    // The paper profiles the ML Kit compiling kitkb: the global region r1
    // dominates and only the collector keeps it from growing without
    // bound. Our closest analog is `tyan`, whose global basis of
    // superseded polynomials lives in a global region that the collector
    // repeatedly cuts back. A small heap makes it sample often.
    let b = by_name("tyan").expect("tyan benchmark");
    let cfg = RtConfig {
        initial_pages: 8,
        page_words_log2: 6,
        profile: true,
        ..RtConfig::rgt()
    };
    let scale = if quick { b.test_scale } else { b.default_scale };
    let run = run_scaled(&b, Mode::Rgt, scale, Some(cfg)).expect("tyan run");
    let mut out = String::new();
    let samples = &run.outcome.profile;
    let _ = writeln!(
        out,
        "Region profile of tyan under rgt (Figure 5) — {} samples",
        samples.len()
    );
    // The largest regions by peak, like the profile's legend.
    let mut peaks: std::collections::BTreeMap<u32, u64> = Default::default();
    for s in samples {
        for (&name, &w) in &s.by_region {
            let e = peaks.entry(name).or_default();
            *e = (*e).max(w);
        }
    }
    let mut top: Vec<(u32, u64)> = peaks.into_iter().collect();
    top.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
    top.truncate(5);
    let _ = writeln!(out, "largest regions by peak words:");
    for (name, peak) in &top {
        let _ = writeln!(out, "  r{name}: peak {peak} words");
    }
    let _ = writeln!(
        out,
        "{:>6}  per-region words (top {} regions)",
        "sample",
        top.len()
    );
    for s in samples {
        let cols: Vec<String> = top
            .iter()
            .map(|(name, _)| format!("r{}={}", name, s.by_region.get(name).copied().unwrap_or(0)))
            .collect();
        let _ = writeln!(out, "{:>6}  {}", s.time, cols.join("  "));
    }
    out
}

/// The §4.5 bootstrapping substitute: the largest symbolic workload under
/// `rgt` and the baseline, reporting time and peak memory.
pub fn bootstrap(quick: bool) -> String {
    let b = by_name("kitkb").expect("kitkb benchmark");
    let scale = if quick { 12 } else { 220 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Bootstrapping substitute (paper §4.5): kitkb at scale {scale}"
    );
    for mode in [Mode::Rgt, Mode::Baseline] {
        let r = run_scaled(&b, mode, scale, None).unwrap_or_else(|e| panic!("{mode}: {e}"));
        let _ = writeln!(
            out,
            "  {:<7} time {:>8}s  peak {:>9}  collections {:>4} (minor {} / major {})",
            mode.suffix(),
            fmt_time(r.time),
            fmt_bytes(r.peak_bytes),
            r.gc_count,
            r.outcome.stats.minor_gcs,
            r.outcome.stats.major_gcs,
        );
    }
    let _ = writeln!(
        out,
        "(the paper bootstraps the 90,000-line ML Kit itself; our compiler is\n\
         Rust, so the claim 'region inference + GC works well on a large\n\
         symbolic workload' is exercised by the largest term-processing run)"
    );
    out
}
