//! Chaos clients for the `kit-serve` overload tests (`loadgen --chaos`):
//! deliberately misbehaving peers thrown at a running server while a
//! healthy mix runs next to them. Each adversary exercises one arm of
//! the connection-hygiene layer:
//!
//! * **slowloris** — writes a valid frame one byte at a time, far slower
//!   than the server's frame budget; the server must reap the
//!   connection instead of pinning a reader forever;
//! * **mid-frame disconnect** — sends a frame prefix promising more
//!   bytes than it delivers, then drops the socket; the server must
//!   clean up silently (no panic, no leaked writer lock);
//! * **malformed frames** — valid length prefix, garbage payload; and
//!   an oversized length prefix; both must be answered/closed as
//!   `BadRequest`-class failures, never crashes;
//! * **stalled reader** — pipelines requests and never reads responses,
//!   then vanishes; write timeouts must free the workers;
//! * **connection churn** — rapid connect/disconnect cycles, some with
//!   zero bytes sent.
//!
//! None of these adversaries expects useful responses; the assertions
//! live in the caller (healthy traffic stays available, worker and
//! cache probes are unchanged afterwards).

use kit_serve::wire::{self, Request};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// What one chaos run inflicted.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChaosReport {
    /// Slowloris connections opened.
    pub slowloris: usize,
    /// Connections dropped mid-frame.
    pub mid_frame_disconnects: usize,
    /// Malformed/oversized frames sent.
    pub malformed: usize,
    /// Stalled-reader connections (requests sent, responses never read).
    pub stalled_readers: usize,
    /// Connect/disconnect churn cycles.
    pub churned: usize,
}

fn victim_request(req_id: u64) -> Request {
    Request {
        req_id,
        mode: kit::Mode::Rgt,
        dispatch: kit::DispatchMode::default(),
        fuel: Some(10_000_000),
        max_heap_pages: None,
        deadline_ms: Some(2_000),
        tenant: "chaos".to_string(),
        src: "val it = 1 + 2".to_string(),
    }
}

/// Runs the victim program once and waits for the answer, so it is in
/// the server's compile cache before a leak probe records its baseline
/// (the adversaries legitimately submit it during the chaos window).
pub fn prime(addr: SocketAddr) -> std::io::Result<()> {
    let mut s = TcpStream::connect(addr)?;
    wire::write_request(&mut s, &victim_request(0))?;
    s.flush()?;
    wire::read_response(&mut s)?;
    Ok(())
}

/// One valid encoded frame (length prefix + payload) for byte-dribbling.
fn framed_request(req_id: u64) -> Vec<u8> {
    let payload = wire::encode_request(&victim_request(req_id));
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed
}

fn slowloris(addr: SocketAddr, until: Instant, report: &mut ChaosReport) {
    while Instant::now() < until {
        let Ok(mut s) = TcpStream::connect(addr) else {
            return;
        };
        report.slowloris += 1;
        let frame = framed_request(1);
        // One byte per tick: far below any sane frame budget. The write
        // starts failing once the server reaps us — that is the success
        // condition, not an error.
        for b in frame {
            if Instant::now() >= until || s.write_all(&[b]).is_err() || s.flush().is_err() {
                break;
            }
            thread::sleep(Duration::from_millis(50));
        }
    }
}

fn mid_frame_disconnect(addr: SocketAddr, until: Instant, report: &mut ChaosReport) {
    while Instant::now() < until {
        let Ok(mut s) = TcpStream::connect(addr) else {
            return;
        };
        let frame = framed_request(2);
        // Promise the full frame, deliver half, vanish.
        let _ = s.write_all(&frame[..frame.len() / 2]);
        let _ = s.flush();
        drop(s);
        report.mid_frame_disconnects += 1;
        thread::sleep(Duration::from_millis(5));
    }
}

fn malformed_frames(addr: SocketAddr, until: Instant, report: &mut ChaosReport) {
    let mut flavor = 0u8;
    while Instant::now() < until {
        let Ok(mut s) = TcpStream::connect(addr) else {
            return;
        };
        match flavor % 3 {
            0 => {
                // Valid length, garbage payload (bad version byte).
                let junk = [0xFFu8; 32];
                let _ = s.write_all(&(junk.len() as u32).to_le_bytes());
                let _ = s.write_all(&junk);
            }
            1 => {
                // Oversized length prefix: must be refused, not allocated.
                let _ = s.write_all(&u32::MAX.to_le_bytes());
            }
            _ => {
                // Truncated payload: length says N, deliver N-1, then a
                // clean shutdown (EOF mid-frame).
                let frame = framed_request(3);
                let _ = s.write_all(&frame[..frame.len() - 1]);
                let _ = s.shutdown(Shutdown::Write);
            }
        }
        let _ = s.flush();
        flavor = flavor.wrapping_add(1);
        report.malformed += 1;
        thread::sleep(Duration::from_millis(5));
    }
}

fn stalled_reader(addr: SocketAddr, until: Instant, report: &mut ChaosReport) {
    while Instant::now() < until {
        let Ok(mut s) = TcpStream::connect(addr) else {
            return;
        };
        report.stalled_readers += 1;
        // Pipeline a pile of requests and never read a single response;
        // the server's write timeout (or our disappearance) must free
        // whatever worker ends up blocked on our dead receive window.
        for i in 0..64u64 {
            if wire::write_request(&mut s, &victim_request(1000 + i)).is_err() {
                break;
            }
        }
        let _ = s.flush();
        let wait =
            (until.saturating_duration_since(Instant::now())).min(Duration::from_millis(500));
        thread::sleep(wait);
        drop(s); // vanish with unread responses in flight
    }
}

fn churn(addr: SocketAddr, until: Instant, report: &mut ChaosReport) {
    let mut n = 0u64;
    while Instant::now() < until {
        let Ok(mut s) = TcpStream::connect(addr) else {
            return;
        };
        // Every third connection sends one valid request and leaves
        // without reading the answer; the rest say nothing at all.
        if n.is_multiple_of(3) {
            let _ = wire::write_request(&mut s, &victim_request(n));
            let _ = s.flush();
        }
        drop(s);
        n += 1;
        report.churned += 1;
        if n.is_multiple_of(16) {
            thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Runs every adversary against `addr` for `duration`, concurrently.
pub fn run_chaos(addr: SocketAddr, duration: Duration) -> ChaosReport {
    let until = Instant::now() + duration;
    type Arm = fn(SocketAddr, Instant, &mut ChaosReport);
    let arms: [Arm; 5] = [
        slowloris,
        mid_frame_disconnect,
        malformed_frames,
        stalled_reader,
        churn,
    ];
    let handles: Vec<_> = arms
        .into_iter()
        .map(|arm| {
            thread::spawn(move || {
                let mut report = ChaosReport::default();
                arm(addr, until, &mut report);
                report
            })
        })
        .collect();
    let mut total = ChaosReport::default();
    for h in handles {
        let r = h.join().unwrap_or_default();
        total.slowloris += r.slowloris;
        total.mid_frame_disconnects += r.mid_frame_disconnects;
        total.malformed += r.malformed;
        total.stalled_readers += r.stalled_readers;
        total.churned += r.churned;
    }
    total
}
