//! Measurement runner: compiles once per mode, runs, and reports the
//! quantities the paper's tables use.

use crate::programs::Benchmark;
use kit::{Compiler, Error, Mode, Outcome};
use kit_runtime::RtConfig;
use std::time::Duration;

/// One measured execution.
#[derive(Debug)]
pub struct MeasuredRun {
    /// Benchmark name.
    pub name: String,
    /// Execution mode.
    pub mode: Mode,
    /// Wall-clock time of the VM run (`t_*` in the tables).
    pub time: Duration,
    /// Peak memory in bytes (`m_*`; heap + stack + large objects).
    pub peak_bytes: usize,
    /// Number of collections (`#GC`).
    pub gc_count: u64,
    /// Instructions executed (deterministic time proxy).
    pub instructions: u64,
    /// Words allocated into regions.
    pub words_allocated: u64,
    /// The full outcome (accounting records, profile, output).
    pub outcome: Outcome,
}

/// Runs `bench` under `mode` at its default scale.
///
/// # Errors
///
/// Propagates compile/runtime errors.
pub fn run(bench: &Benchmark, mode: Mode) -> Result<MeasuredRun, Error> {
    run_scaled(bench, mode, bench.default_scale, None)
}

/// Runs at an explicit scale, optionally overriding the runtime
/// configuration (heap-to-live sweeps, page-size sweeps, profiling).
///
/// # Errors
///
/// Propagates compile/runtime errors.
pub fn run_scaled(
    bench: &Benchmark,
    mode: Mode,
    scale: i64,
    config: Option<RtConfig>,
) -> Result<MeasuredRun, Error> {
    let src = bench.source_scaled(scale);
    let mut compiler = Compiler::new(mode);
    if let Some(cfg) = config {
        compiler = compiler.with_config(cfg);
    }
    let prog = compiler.compile_source(&src)?;
    let outcome = compiler.run_program(&prog)?;
    Ok(MeasuredRun {
        name: bench.name.to_string(),
        mode,
        time: outcome.wall,
        peak_bytes: outcome.stats.peak_bytes,
        gc_count: outcome.stats.gc_count,
        instructions: outcome.instructions,
        words_allocated: outcome.stats.words_allocated,
        outcome,
    })
}

/// Formats bytes the way the paper does (K / M).
pub fn fmt_bytes(b: usize) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{}M", b / (1024 * 1024))
    } else {
        format!("{}K", b.div_ceil(1024))
    }
}

/// Formats a duration in seconds with two decimals.
pub fn fmt_time(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Percentage improvement `(a - b) / a`, as the paper's tables print it.
pub fn improvement_pct(a: f64, b: f64) -> i64 {
    if a == 0.0 {
        0
    } else {
        (100.0 * (a - b) / a).round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::by_name;

    #[test]
    fn runs_fib_in_two_modes_with_same_result() {
        let b = by_name("fib").unwrap();
        let r1 = run_scaled(&b, Mode::R, 12, None).unwrap();
        let r2 = run_scaled(&b, Mode::Rgt, 12, None).unwrap();
        assert_eq!(r1.outcome.result, r2.outcome.result);
        assert_eq!(r1.gc_count, 0, "fib allocates nothing worth collecting");
    }

    #[test]
    fn formatting_matches_paper_style() {
        assert_eq!(fmt_bytes(500 * 1024), "500K");
        assert_eq!(fmt_bytes(128 * 1024 * 1024), "128M");
        assert_eq!(improvement_pct(2.0, 1.0), 50);
        assert_eq!(improvement_pct(1.0, 2.0), -100);
    }
}
