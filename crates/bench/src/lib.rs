//! The benchmark suite (paper Fig. 3) and the harnesses regenerating every
//! table and figure of the evaluation section (§4).
//!
//! Programs are MiniML sources embedded at compile time; each starts with
//! a `val scale = N` line so harnesses and tests can rescale workloads
//! (the paper ran minutes-long SML workloads on a 750 MHz Pentium III; our
//! substrate is a bytecode interpreter, so defaults are chosen to keep
//! whole-suite runs in seconds — see EXPERIMENTS.md).
//!
//! Binaries (all under `cargo run -p kit-bench --release --bin <name>`):
//!
//! * `table1` — effect of tagging (`r` vs `rt`), paper Table 1;
//! * `table2` — effect of region inference on GC (`gt` vs `rgt`), Table 2;
//! * `table3` — memory recycled by region inference vs GC + waste, Table 3;
//! * `table4` — comparison with the generational baseline, Table 4;
//! * `fig4`   — GC fraction over time for `professor`, Figure 4;
//! * `fig5`   — region profile of a compile-like workload, Figure 5;
//! * `bootstrap` — the §4.5 substitute (large symbolic workload).

pub mod chaos;
pub mod programs;
pub mod randgen;
pub mod runner;
pub mod serve_bench;
pub mod tables;

pub use programs::{all, by_name, Benchmark};
pub use runner::{run, run_scaled, MeasuredRun};
