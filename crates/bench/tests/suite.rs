//! Whole-suite differential test: every benchmark of the paper's Fig. 3
//! must produce identical results in all four paper modes, the
//! generational baseline, and the reference evaluator (scaled-down
//! workloads).

use kit::oracle::run_oracle;
use kit::{Compiler, Mode};
use kit_bench::programs::all;

#[test]
fn every_benchmark_agrees_across_all_modes_and_oracle() {
    // Deep stack: the reference evaluator recurses per data constructor,
    // and its debug-mode frames on the larger benchmarks exceed the
    // default test-thread stack.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            for b in all() {
                let src = b.source_scaled(b.test_scale);
                let oracle = run_oracle(&src, Some(2_000_000_000))
                    .unwrap_or_else(|e| panic!("{} oracle: {e}", b.name));
                for mode in Mode::ALL_WITH_BASELINE {
                    let out = Compiler::new(mode)
                        .run_source(&src)
                        .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", b.name));
                    assert_eq!(
                        out.result, oracle.result,
                        "{} [{mode}]: result mismatch",
                        b.name
                    );
                    assert_eq!(
                        out.output, oracle.output,
                        "{} [{mode}]: output mismatch",
                        b.name
                    );
                }
            }
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn region_modes_reduce_collections() {
    // The paper's headline (Table 2): enabling region inference
    // dramatically reduces the number of collections. Check the aggregate
    // over the suite at test scale with a small heap so `gt` must collect.
    let cfg_of = |mode: Mode| kit_runtime::RtConfig {
        initial_pages: 16,
        ..match mode {
            Mode::Gt => kit_runtime::RtConfig::gt(),
            _ => kit_runtime::RtConfig::rgt(),
        }
    };
    let mut gc_gt = 0;
    let mut gc_rgt = 0;
    for b in all() {
        let src = b.source_scaled(b.test_scale);
        for mode in [Mode::Gt, Mode::Rgt] {
            let out = Compiler::new(mode)
                .with_config(cfg_of(mode))
                .run_source(&src)
                .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", b.name));
            match mode {
                Mode::Gt => gc_gt += out.stats.gc_count,
                _ => gc_rgt += out.stats.gc_count,
            }
        }
    }
    assert!(
        gc_rgt * 2 <= gc_gt,
        "regions should at least halve collections: gt {gc_gt} vs rgt {gc_rgt}"
    );
}

#[test]
fn untagged_mode_uses_less_memory_than_tagged() {
    // Table 1's memory shape: m_r <= m_rt for allocation-heavy programs.
    for name in ["msort", "tyan", "kitlife"] {
        let b = kit_bench::by_name(name).unwrap();
        let src = b.source_scaled(b.test_scale);
        let r = Compiler::new(Mode::R).run_source(&src).unwrap();
        let rt = Compiler::new(Mode::Rt).run_source(&src).unwrap();
        assert!(
            r.stats.words_allocated < rt.stats.words_allocated,
            "{name}: untagged should allocate fewer words ({} vs {})",
            r.stats.words_allocated,
            rt.stats.words_allocated
        );
    }
}
