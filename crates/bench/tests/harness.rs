//! The table/figure harnesses themselves are tested at quick scale: every
//! generator must produce a row per benchmark (or a plausible series) and
//! agree across modes internally (the generators assert result equality).

use kit_bench::programs::all;
use kit_bench::tables;

#[test]
fn table1_has_a_row_per_benchmark() {
    let t = tables::table1(true);
    for b in all() {
        assert!(t.contains(b.name), "missing {} in:\n{t}", b.name);
    }
    assert!(t.contains("t_r"), "{t}");
}

#[test]
fn table2_has_a_row_per_benchmark() {
    let t = tables::table2(true);
    for b in all() {
        assert!(t.contains(b.name), "missing {} in:\n{t}", b.name);
    }
    assert!(t.contains("#GC_gt"), "{t}");
}

#[test]
fn table3_reports_fractions() {
    let t = tables::table3(true);
    assert!(t.contains("RI_rgt%"), "{t}");
    for b in all() {
        assert!(t.contains(b.name), "missing {} in:\n{t}", b.name);
    }
}

#[test]
fn table4_compares_against_baseline() {
    let t = tables::table4(true);
    assert!(t.contains("t_smlnj"), "{t}");
    for b in all() {
        assert!(t.contains(b.name), "missing {} in:\n{t}", b.name);
    }
}

#[test]
fn fig4_produces_a_series() {
    let t = tables::fig4(true);
    assert!(t.contains("GC fraction per collection"), "{t}");
}

#[test]
fn fig5_profiles_regions() {
    let t = tables::fig5(true);
    assert!(t.contains("Region profile"), "{t}");
    assert!(t.contains("largest regions"), "{t}");
}

#[test]
fn bootstrap_reports_both_runtimes() {
    let t = tables::bootstrap(true);
    assert!(t.contains("rgt"), "{t}");
    assert!(t.contains("smlnj"), "{t}");
}
