//! Minimized reproducers for bugs found by the randomized differential.
//!
//! PR 3's int-expression fuzzer caught the dangling dead-slot root bug
//! (fixed in `kit-kam`, covered by `clear_dead_slot` handling there);
//! this file holds the bugs the PR 8 full-surface generator and the
//! widened configuration fuzzing surfaced. Each test is the smallest
//! program + config pair that reproduced the failure, named after the
//! defect, so a regression bisects in one `cargo test` run.

use kit::{Compiler, Mode};
use kit_runtime::RtConfig;

/// `finish_collection` applied the parallel collector's heap headroom
/// factor (`PAR_HEADROOM`) whenever `gc_workers > 1` — but a slice
/// budget routes collection to the *serial* sliced collector regardless
/// of the worker count (the documented precedence in config.rs). The
/// result: the same program under `workers=4 + slice` grew the heap 3×
/// wider than under `workers=1 + slice` and collected 2 times instead
/// of 6, so `gc_count`, `gc_slices`, `gc_copied_words` and `peak_bytes`
/// all depended on a worker pool that never ran. Found by the
/// slice-over-workers precedence test this PR added (the engine
/// differential could not see it: every engine shares the config, so
/// they diverged together). Fixed by mirroring the collector dispatch
/// condition in the headroom policy.
#[test]
fn par_headroom_must_not_apply_when_slice_budget_routes_serial() {
    let src = "fun build 0 = nil | build n = (n, n * 7) :: build (n - 1)\n\
               fun sum ([], a) = a | sum ((x, y) :: t, a) = sum (t, a + x + y)\n\
               fun go (0, a) = a | go (k, a) = go (k - 1, (a + sum (build 120, 0)) mod 65521)\n\
               val it = go (40, 0)";
    let base = RtConfig {
        initial_pages: 4,
        page_words_log2: 6,
        gc_slice_budget_words: Some(64),
        ..RtConfig::rgt()
    };
    let run = |workers: usize| {
        Compiler::new(Mode::Rgt)
            .with_config(RtConfig {
                gc_workers: workers,
                ..base.clone()
            })
            .run_source(src)
            .unwrap()
    };
    let one = run(1);
    assert!(
        one.stats.gc_slices > 0,
        "reproducer must take the sliced path"
    );
    for workers in [2usize, 4] {
        let w = run(workers);
        assert_eq!(
            (
                &w.result,
                w.instructions,
                w.stats.gc_count,
                w.stats.gc_slices,
                w.stats.gc_copied_words,
                w.stats.heap_grows,
                w.stats.peak_bytes,
            ),
            (
                &one.result,
                one.instructions,
                one.stats.gc_count,
                one.stats.gc_slices,
                one.stats.gc_copied_words,
                one.stats.heap_grows,
                one.stats.peak_bytes,
            ),
            "sliced run must be bit-identical at {workers} workers (precedence: slice wins)"
        );
    }
}

/// `letregion` placement collected a marker's bindable region variables
/// (and the leftover global regions) by iterating a `HashMap`, so the
/// order regions were pushed at runtime depended on the per-map hash
/// seed — a fresh compile of the *same source* could produce a
/// different region-stack layout. Every logical counter still agreed
/// (the bindings are order-insensitive), but the parallel collector
/// partitions regions into contiguous-id ranges: a hot region landing
/// in a different range changes each worker's to-space need, hence the
/// grant/starvation schedule, hence which arena pages get materialized
/// — observed as `peak_bytes` wobbling across runs of `professor` at
/// `gc_workers = 4`, in-process and across processes. Fixed by sorting
/// both candidate lists; this pins the whole layout chain down.
#[test]
fn region_layout_and_par_gc_peak_are_stable_across_compiles() {
    let bench = kit_bench::by_name("professor").expect("professor benchmark exists");
    let src = bench.source_scaled(bench.test_scale);
    let run = || {
        Compiler::new(Mode::Rgt)
            .with_config(RtConfig {
                gc_workers: 4,
                ..RtConfig::rgt()
            })
            .run_source(&src)
            .unwrap()
    };
    let first = run();
    assert!(
        first.stats.gc_count >= 2,
        "reproducer must actually collect"
    );
    for i in 1..3 {
        let next = run();
        assert_eq!(
            (
                &next.result,
                next.instructions,
                next.stats.gc_count,
                next.stats.gc_copied_words,
                next.stats.heap_grows,
                next.stats.peak_bytes,
                format!("{:?}", next.stats.gc_records),
            ),
            (
                &first.result,
                first.instructions,
                first.stats.gc_count,
                first.stats.gc_copied_words,
                first.stats.heap_grows,
                first.stats.peak_bytes,
                format!("{:?}", first.stats.gc_records),
            ),
            "compile {i} must reproduce the layout of compile 0 exactly"
        );
    }
}
