//! Differential test for the interpreter's link/fusion pass and dispatch
//! engines: every benchmark, in every mode, must be bit-for-bit
//! observationally identical across every (dispatch, fusion) configuration
//! — same rendered result, same printed output, and (because
//! `LInstr::cost`/`Op::cost` charge a fused instruction for the source
//! instructions it replaces) the same instruction count and therefore the
//! same GC schedule and allocation statistics.

use kit::{Compiler, DispatchMode, Fusion, Mode};
use kit_bench::programs;
use kit_kam::LInstr;

#[test]
fn fusion_and_dispatch_are_observationally_invisible_on_every_benchmark() {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(check_all_benchmarks)
        .unwrap()
        .join()
        .unwrap();
}

fn check_all_benchmarks() {
    // The reference config is the PR 1 loop with fusion off; every other
    // (dispatch × fusion set) combination must match it exactly.
    let configs = [
        (DispatchMode::Match, Fusion::Off),
        (DispatchMode::Match, Fusion::Hand),
        (DispatchMode::Match, Fusion::Full),
        (DispatchMode::Threaded, Fusion::Off),
        (DispatchMode::Threaded, Fusion::Hand),
        (DispatchMode::Threaded, Fusion::Full),
        // The register engines link with fusion off internally; the
        // fusion setting must be observationally irrelevant to them.
        (DispatchMode::Register, Fusion::Off),
        (DispatchMode::Register, Fusion::Full),
        // Cross-block regalloc + re-fused register stream: cost merging in
        // `register::fuse` must keep fuel and the GC schedule identical.
        (DispatchMode::RegisterFused, Fusion::Off),
        (DispatchMode::RegisterFused, Fusion::Full),
    ];
    // The tier-3 uncovered-triple fixups must actually fire on the
    // corpus they were profiled from (the equivalence loop below then
    // proves them invisible).
    let mut tier3 = [0u64; 3];
    for b in programs::all() {
        let src = b.source_scaled(b.test_scale);
        let prog = Compiler::new(Mode::R)
            .compile_source(&src)
            .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
        for ins in &kit_kam::link(&prog, Fusion::Full).code {
            match ins {
                LInstr::SelectStoreLoad { .. } => tier3[0] += 1,
                LInstr::GcCheckLoadSwitchCon { .. } => tier3[1] += 1,
                LInstr::RegHandleRegHandleLoad { .. } => tier3[2] += 1,
                _ => {}
            }
        }
    }
    assert!(
        tier3.iter().all(|&n| n > 0),
        "tier-3 fusions must fire on the benchmark corpus: \
         SelectStoreLoad={} GcCheckLoadSwitchCon={} RegHandleRegHandleLoad={}",
        tier3[0],
        tier3[1],
        tier3[2]
    );

    for b in programs::all() {
        let src = b.source_scaled(b.test_scale);
        for mode in Mode::ALL_WITH_BASELINE {
            // The link pass runs inside the VM, so one compiled program
            // serves all executions.
            let prog = Compiler::new(mode)
                .compile_source(&src)
                .unwrap_or_else(|e| panic!("{} ({mode}): compile: {e}", b.name));
            let reference = Compiler::new(mode)
                .with_dispatch(DispatchMode::Match)
                .without_fusion()
                .run_program(&prog)
                .unwrap_or_else(|e| panic!("{} ({mode}) reference: {e}", b.name));
            for (dispatch, fusion) in configs {
                let out = Compiler::new(mode)
                    .with_dispatch(dispatch)
                    .with_fusion(fusion)
                    .run_program(&prog)
                    .unwrap_or_else(|e| panic!("{} ({mode}) {dispatch:?}/{fusion:?}: {e}", b.name));
                let ctx = format!("{} ({mode}) {dispatch:?}/{fusion:?}", b.name);
                assert_eq!(out.result, reference.result, "{ctx}: result");
                assert_eq!(out.output, reference.output, "{ctx}: output");
                assert_eq!(
                    out.instructions, reference.instructions,
                    "{ctx}: instruction count"
                );
                assert_eq!(
                    out.stats.words_allocated, reference.stats.words_allocated,
                    "{ctx}: words allocated"
                );
                assert_eq!(
                    out.stats.allocations, reference.stats.allocations,
                    "{ctx}: allocations"
                );
                assert_eq!(out.stats.gc_count, reference.stats.gc_count, "{ctx}: #GC");
                assert_eq!(
                    out.stats.gc_copied_words, reference.stats.gc_copied_words,
                    "{ctx}: words copied by GC"
                );
                assert_eq!(
                    out.stats.peak_bytes, reference.stats.peak_bytes,
                    "{ctx}: peak memory"
                );
            }
        }
    }
}
