//! Differential test for the interpreter's link/fusion pass: every
//! benchmark, in every mode, must be bit-for-bit observationally identical
//! with superinstruction fusion on and off — same rendered result, same
//! printed output, and (because `LInstr::cost` charges a fused instruction
//! for the source instructions it replaces) the same instruction count and
//! therefore the same GC schedule and allocation statistics.

use kit::{Compiler, Mode};
use kit_bench::programs;

#[test]
fn fusion_is_observationally_invisible_on_every_benchmark() {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(check_all_benchmarks)
        .unwrap()
        .join()
        .unwrap();
}

fn check_all_benchmarks() {
    for b in programs::all() {
        let src = b.source_scaled(b.test_scale);
        for mode in Mode::ALL_WITH_BASELINE {
            let fused = Compiler::new(mode);
            let unfused = Compiler::new(mode).without_fusion();
            // The link pass runs inside the VM, so one compiled program
            // serves both executions.
            let prog = fused
                .compile_source(&src)
                .unwrap_or_else(|e| panic!("{} ({mode}): compile: {e}", b.name));
            let f = fused
                .run_program(&prog)
                .unwrap_or_else(|e| panic!("{} ({mode}) fused: {e}", b.name));
            let u = unfused
                .run_program(&prog)
                .unwrap_or_else(|e| panic!("{} ({mode}) unfused: {e}", b.name));
            let ctx = format!("{} ({mode})", b.name);
            assert_eq!(f.result, u.result, "{ctx}: result");
            assert_eq!(f.output, u.output, "{ctx}: output");
            assert_eq!(f.instructions, u.instructions, "{ctx}: instruction count");
            assert_eq!(
                f.stats.words_allocated, u.stats.words_allocated,
                "{ctx}: words allocated"
            );
            assert_eq!(
                f.stats.allocations, u.stats.allocations,
                "{ctx}: allocations"
            );
            assert_eq!(f.stats.gc_count, u.stats.gc_count, "{ctx}: #GC");
            assert_eq!(
                f.stats.gc_copied_words, u.stats.gc_copied_words,
                "{ctx}: words copied by GC"
            );
            assert_eq!(f.stats.peak_bytes, u.stats.peak_bytes, "{ctx}: peak memory");
        }
    }
}
