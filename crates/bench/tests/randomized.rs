//! Randomized 4-way engine differential: small generated programs must
//! behave identically — result, output, instruction total, and GC/alloc
//! statistics — under `Match`, `Threaded`, `Register`, and
//! `RegisterFused` dispatch, in every mode, including on exception paths
//! and `VmError` outcomes (which the benchmark corpus in `fusion.rs`
//! barely exercises).
//!
//! The generator and comparison live in [`kit_bench::randgen`]; the
//! `soak` binary runs the same differential for arbitrarily many cases
//! with full config fuzzing. This test is the short fixed-seed CI run.

use kit::Mode;
use kit_bench::programs::SplitMix64;
use kit_bench::randgen;
use kit_runtime::RtConfig;

const FUEL: u64 = 10_000_000;

#[test]
fn random_programs_agree_across_engines() {
    let mut rng = SplitMix64::new(0x5EED_0300);
    for case in 0..48 {
        let src = randgen::program(&mut rng);
        for mode in Mode::ALL {
            randgen::differential(&src, mode, None, FUEL)
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
        // Heap pressure: tiny pages force collections mid-expression, so
        // GC scheduling differences between engines would surface here.
        let cfg = RtConfig {
            initial_pages: 4,
            page_words_log2: 6,
            ..RtConfig::rgt()
        };
        randgen::differential(&src, Mode::Rgt, Some(&cfg), FUEL)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}
