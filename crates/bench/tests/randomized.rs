//! Randomized 4-way engine differential: small generated programs must
//! behave identically — result, output, instruction total, and GC/alloc
//! statistics — under `Match`, `Threaded`, `Register`, and
//! `RegisterFused` dispatch, in every mode, including on exception paths
//! and `VmError` outcomes (which the benchmark corpus in `fusion.rs`
//! barely exercises).
//!
//! Two generator surfaces run here: the original int-expression grammar
//! and the full-MiniML grammar (datatypes, arrays past the large-object
//! threshold, strings, reals, refs, nested handlers — DESIGN.md §6h).
//! The generator and comparison live in [`kit_bench::randgen`]; the
//! `soak` binary runs the same differential for arbitrarily many cases
//! with full config fuzzing. These tests are the short fixed-seed CI run.

use kit::Mode;
use kit_bench::programs::SplitMix64;
use kit_bench::randgen::{self, Surface};
use kit_runtime::RtConfig;

const FUEL: u64 = 10_000_000;

/// One case: the N-way engine differential under the default config, a
/// heap-pressure config, the same pressure under the parallel and sliced
/// collectors, and the cross-collector mutator-equivalence check.
fn check_case(case: u64, src: &str, modes: &[Mode]) {
    for &mode in modes {
        randgen::differential(src, mode, None, FUEL).unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
    // Heap pressure: tiny pages force collections mid-expression, so
    // GC scheduling differences between engines would surface here.
    let cfg = RtConfig {
        initial_pages: 4,
        page_words_log2: 6,
        ..RtConfig::rgt()
    };
    randgen::differential(src, Mode::Rgt, Some(&cfg), FUEL)
        .unwrap_or_else(|e| panic!("case {case}: {e}"));
    // Same pressure under the parallel and sliced collectors: both
    // must stay engine-invariant too (the parallel flip is
    // deterministic round-based, the sliced schedule is driven by the
    // same safe points in every engine).
    let par = RtConfig {
        gc_workers: 4,
        ..cfg.clone()
    };
    randgen::differential(src, Mode::Rgt, Some(&par), FUEL)
        .unwrap_or_else(|e| panic!("case {case} [workers=4]: {e}"));
    let sliced = RtConfig {
        gc_slice_budget_words: Some(48),
        ..cfg.clone()
    };
    randgen::differential(src, Mode::Rgt, Some(&sliced), FUEL)
        .unwrap_or_else(|e| panic!("case {case} [sliced]: {e}"));
    // And across collectors the mutator-visible outcome must agree:
    // serial, parallel, and sliced collections reclaim on different
    // schedules but may never change what the program computes.
    randgen::mutator_equivalence(
        src,
        Mode::Rgt,
        &[("serial", &cfg), ("workers=4", &par), ("sliced", &sliced)],
        FUEL,
    )
    .unwrap_or_else(|e| panic!("case {case}: {e}"));
}

#[test]
fn random_programs_agree_across_engines() {
    let mut rng = SplitMix64::new(0x5EED_0300);
    for case in 0..48 {
        let src = randgen::program(&mut rng, Surface::Int);
        check_case(case, &src, &Mode::ALL);
    }
}

#[test]
fn random_full_surface_programs_agree_across_engines() {
    let mut rng = SplitMix64::new(0x5EED_0800);
    for case in 0..20 {
        let src = randgen::program(&mut rng, Surface::Full);
        // Full-surface programs are much bigger than int-expression
        // ones; run the mode sweep on the GC-relevant pair plus the
        // untagged reference so the test stays inside the CI budget
        // (soak covers all five modes).
        check_case(case, &src, &[Mode::R, Mode::Gt, Mode::Rgt]);
    }
}
