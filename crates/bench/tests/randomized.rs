//! Randomized 3-way engine differential: small generated programs must
//! behave identically — result, output, instruction total, and GC/alloc
//! statistics — under `Match`, `Threaded`, and `Register` dispatch, in
//! every mode, including on exception paths and `VmError` outcomes
//! (which the benchmark corpus in `fusion.rs` barely exercises).
//!
//! The generator leans into the suspect areas: `div`/`mod` with
//! dynamically-zero divisors, overflow-prone arithmetic, user exceptions
//! raised conditionally deep inside expressions, and `handle` chains that
//! discriminate on builtin vs user constructors — all inside a recursive
//! driver so the same raise sites execute many times with different
//! operand stacks, under heap configurations small enough to force
//! collections mid-expression.

use kit::{Compiler, DispatchMode, Error, Fusion, Mode};
use kit_bench::programs::SplitMix64;
use kit_runtime::RtConfig;

/// A random int leaf: a variable, a small constant, or (rarely) a
/// constant big enough that products overflow the 63-bit int range.
fn leaf(rng: &mut SplitMix64, vars: &[&str]) -> String {
    match rng.below(6) {
        0 | 1 if !vars.is_empty() => vars[rng.below(vars.len() as u64) as usize].to_string(),
        2 => "1073741823".to_string(),
        _ => {
            let n = rng.range_i64(-20, 100);
            if n < 0 {
                format!("~{}", -n)
            } else {
                n.to_string()
            }
        }
    }
}

/// A random int expression over `vars`, biased toward partial operations
/// and exception traffic.
fn int_expr(rng: &mut SplitMix64, vars: &[&str], depth: u32) -> String {
    if depth == 0 {
        return leaf(rng, vars);
    }
    let a = int_expr(rng, vars, depth - 1);
    let b = int_expr(rng, vars, depth - 1);
    match rng.below(16) {
        0..=2 => leaf(rng, vars),
        3..=5 => {
            let op = ["+", "-", "*"][rng.below(3) as usize];
            format!("({a} {op} {b})")
        }
        // Partial ops: the divisor is frequently zero at runtime.
        6 => format!("({a} div ({b} mod 3))"),
        7 => format!("({a} mod ({b} mod 5))"),
        8 => format!("(if {a} < {b} then {a} else {b})"),
        9 => format!("(let val y = {a} in (y + {b}) end)"),
        10 => format!("((fn q => q + {a}) {b})"),
        11 => format!("(fst ({a}, {b}) + snd ({b}, {a}))"),
        12 => format!("(hd [{a}, {b}] + length [{b}])"),
        // A conditionally-raised user exception carrying a payload.
        13 => format!(
            "(if {a} < {} then raise Boom ({b}) else {b})",
            leaf(rng, vars)
        ),
        // Handlers over a raising subexpression.
        _ => {
            let h1 = leaf(rng, vars);
            let h2 = leaf(rng, vars);
            format!("(({a}) handle Div => {h1} | Overflow => {h2} | Boom k => (k mod 9001))")
        }
    }
}

/// One random program: a generated function applied many times by a
/// recursive driver, every call under a handler chain so raising and
/// non-raising iterations interleave.
fn program(rng: &mut SplitMix64) -> String {
    let body = int_expr(rng, &["x0", "x1"], 3);
    let seed = int_expr(rng, &[], 2);
    let iters = 10 + rng.below(20);
    format!(
        "exception Boom of int\n\
         fun f (x0, x1) = {body}\n\
         fun go n acc =\n\
         \u{20}  if n < 1 then acc\n\
         \u{20}  else go (n - 1) (((acc * 3 + f (n, acc)) handle Div => ~1 | Overflow => ~2 | Boom k => (k + acc) mod 65537) mod 100003)\n\
         val it = go {iters} (({seed}) handle Overflow => 7 | Div => 11)\n"
    )
}

const FUEL: u64 = 10_000_000;

fn run(
    src: &str,
    mode: Mode,
    dispatch: DispatchMode,
    cfg: Option<&RtConfig>,
) -> Result<kit::Outcome, Error> {
    let mut c = Compiler::new(mode)
        .with_dispatch(dispatch)
        .with_fusion(Fusion::Full)
        .with_fuel(FUEL);
    if let Some(cfg) = cfg {
        c = c.with_config(cfg.clone());
    }
    c.run_source(src)
}

fn check_case(case: u64, src: &str, mode: Mode, cfg: Option<&RtConfig>, label: &str) {
    let reference = run(src, mode, DispatchMode::Match, cfg);
    for dispatch in [DispatchMode::Threaded, DispatchMode::Register] {
        let out = run(src, mode, dispatch, cfg);
        let ctx = format!("case {case} {label} {dispatch:?} on\n{src}");
        match (&reference, &out) {
            (Ok(want), Ok(got)) => {
                assert_eq!(got.result, want.result, "{ctx}: result");
                assert_eq!(got.output, want.output, "{ctx}: output");
                assert_eq!(got.instructions, want.instructions, "{ctx}: instructions");
                assert_eq!(
                    got.stats.words_allocated, want.stats.words_allocated,
                    "{ctx}: words allocated"
                );
                assert_eq!(
                    got.stats.allocations, want.stats.allocations,
                    "{ctx}: allocations"
                );
                assert_eq!(got.stats.gc_count, want.stats.gc_count, "{ctx}: #GC");
                assert_eq!(
                    got.stats.gc_copied_words, want.stats.gc_copied_words,
                    "{ctx}: copied words"
                );
                assert_eq!(
                    got.stats.peak_bytes, want.stats.peak_bytes,
                    "{ctx}: peak bytes"
                );
            }
            (Err(Error::Run(want)), Err(Error::Run(got))) => {
                assert_eq!(got, want, "{ctx}: error");
            }
            (want, got) => panic!("{ctx}: engines disagree: {want:?} vs {got:?}"),
        }
    }
}

#[test]
fn random_programs_agree_across_engines() {
    let mut rng = SplitMix64::new(0x5EED_0300);
    for case in 0..48 {
        let src = program(&mut rng);
        for mode in Mode::ALL {
            check_case(case, &src, mode, None, &format!("{mode}"));
        }
        // Heap pressure: tiny pages force collections mid-expression, so
        // GC scheduling differences between engines would surface here.
        let cfg = RtConfig {
            initial_pages: 4,
            page_words_log2: 6,
            ..RtConfig::rgt()
        };
        check_case(case, &src, Mode::Rgt, Some(&cfg), "rgt-pressure");
    }
}
