//! Shrink-policy sweep: `RtConfig::heap_shrink_factor` must change only
//! the arena footprint, never program-visible behavior.
//!
//! The GC *trigger* legitimately depends on the factor — a collection is
//! scheduled when `free_pages` drops under a fraction of `total_pages`,
//! and shrinking changes `total_pages` — so the sweep does NOT compare
//! GC counts or copied words across factors. What it does pin down:
//!
//! * result, output, instruction total, and mutator allocation volume
//!   are identical for every factor (including `None`, shrinking off);
//! * a tight factor (1.0) actually exercises the release path on
//!   phased, allocation-heavy workloads, in both the region collector
//!   and the generational baseline's major path;
//! * shrink accounting is coherent: pages are only recorded as released
//!   by collections that recorded a shrink, and resizes stay bounded by
//!   the collection count (the single-page-oscillation thrash case is
//!   pinned by a dedicated unit test on `shrink_with_hysteresis`).

use kit::{Compiler, DispatchMode, Fusion, Mode};
use kit_bench::programs;
use kit_runtime::config::GenPolicy;
use kit_runtime::RtConfig;

const FACTORS: [Option<f64>; 7] = [
    None,
    Some(1.0),
    Some(1.01),
    Some(1.5),
    Some(2.0),
    Some(4.0),
    Some(8.0),
];

fn run(src: &str, mode: Mode, cfg: RtConfig) -> kit::Outcome {
    Compiler::new(mode)
        .with_dispatch(DispatchMode::Register)
        .with_fusion(Fusion::Full)
        .with_fuel(200_000_000)
        .with_config(cfg)
        .run_source(src)
        .expect("benchmark must run")
}

/// Small pages + a small initial arena force many collections, so the
/// resize policy runs dozens of times per benchmark.
fn rgt_pressure(factor: Option<f64>) -> RtConfig {
    RtConfig {
        initial_pages: 4,
        page_words_log2: 6,
        heap_shrink_factor: factor,
        ..RtConfig::rgt()
    }
}

/// The generational baseline under the same pressure, covering the
/// `collect_gen` major-collection shrink path.
fn baseline_pressure(factor: Option<f64>) -> RtConfig {
    RtConfig {
        initial_pages: 4,
        page_words_log2: 6,
        heap_shrink_factor: factor,
        tagged: true,
        gc_enabled: true,
        generational: Some(GenPolicy::default()),
        ..RtConfig::gt()
    }
}

fn sweep(bench: &str, scale: i64, mode: Mode, mk: fn(Option<f64>) -> RtConfig) {
    let b = programs::by_name(bench).unwrap();
    let src = b.source_scaled(scale);
    let reference = run(&src, mode, mk(None));
    assert!(
        reference.stats.gc_count >= 10,
        "{bench} {mode}: workload too light to exercise the resize policy \
         ({} collections)",
        reference.stats.gc_count
    );
    let mut shrinks_by_factor = Vec::new();
    for factor in FACTORS {
        let out = run(&src, mode, mk(factor));
        let ctx = format!("{bench} {mode} factor {factor:?}");
        assert_eq!(out.result, reference.result, "{ctx}: result");
        assert_eq!(out.output, reference.output, "{ctx}: output");
        assert_eq!(
            out.instructions, reference.instructions,
            "{ctx}: instructions"
        );
        assert_eq!(
            out.stats.words_allocated, reference.stats.words_allocated,
            "{ctx}: words allocated"
        );
        assert_eq!(
            out.stats.allocations, reference.stats.allocations,
            "{ctx}: allocations"
        );
        // Accounting coherence: released pages come only from shrinks,
        // and every shrink released at least one page.
        if factor.is_none() {
            assert_eq!(out.stats.heap_shrinks, 0, "{ctx}: shrinking is off");
            assert_eq!(out.stats.pages_released, 0, "{ctx}: shrinking is off");
        } else {
            assert!(
                out.stats.pages_released >= out.stats.heap_shrinks,
                "{ctx}: {} shrinks but only {} pages released",
                out.stats.heap_shrinks,
                out.stats.pages_released
            );
        }
        if out.stats.heap_shrinks == 0 {
            assert_eq!(
                out.stats.pages_released, 0,
                "{ctx}: pages released without a shrink"
            );
        }
        // A collection resizes the arena at most once in each direction,
        // so a policy that releases/re-grows every cycle is visible as
        // counts tracking `gc_count`; a sane one resizes only on genuine
        // live-set movement.
        assert!(
            out.stats.heap_shrinks <= out.stats.gc_count,
            "{ctx}: more shrinks ({}) than collections ({})",
            out.stats.heap_shrinks,
            out.stats.gc_count
        );
        shrinks_by_factor.push((factor, out.stats.heap_shrinks, out.stats.gc_count));
    }
    eprintln!("{bench} {mode}: (factor, shrinks, gcs) = {shrinks_by_factor:?}");
    // A tight factor must exercise the release path on these
    // allocation-heavy phased workloads (msort drops its unsorted input
    // after the split phase; kitlife's live set breathes per generation).
    let tight = shrinks_by_factor[1].1;
    assert!(tight > 0, "{bench} {mode}: factor 1.0 never shrank");
}

#[test]
fn shrink_factor_sweep_rgt() {
    sweep("msort", 4000, Mode::Rgt, rgt_pressure);
    sweep("kitlife", 24, Mode::Rgt, rgt_pressure);
}

#[test]
fn shrink_factor_sweep_generational_baseline() {
    sweep("msort", 4000, Mode::Baseline, baseline_pressure);
}
