//! Round-trip tests for the threaded (struct-of-arrays) form: translating
//! a linked program and rebuilding every instruction must reproduce the
//! linked stream exactly, so both dispatch modes render the same
//! disassembly and charge the same per-pc cost.

use kit::{Compiler, Mode};
use kit_bench::programs;
use kit_kam::link::{link, Fusion};
use kit_kam::threaded::{translate, Op};
use kit_kam::{disasm, Program};

fn compiled(src: &str) -> Program {
    Compiler::new(Mode::R)
        .compile_source(src)
        .expect("benchmark compiles")
}

#[test]
fn threaded_form_round_trips_on_every_benchmark() {
    for b in programs::all() {
        let prog = compiled(&b.source_scaled(b.test_scale));
        for fusion in [Fusion::Off, Fusion::Hand, Fusion::Full] {
            let linked = link(&prog, fusion);
            let tcode = translate(linked.clone());
            assert_eq!(
                tcode.ops.len(),
                linked.code.len(),
                "{}: stream length",
                b.name
            );
            for pc in 0..tcode.ops.len() {
                assert_eq!(
                    tcode.rebuild(pc),
                    linked.code[pc],
                    "{} ({fusion:?}): rebuild at pc {pc}",
                    b.name
                );
                // The SoA cost table must agree with the linked form —
                // this is what keeps fuel and the GC schedule bit-identical
                // across dispatch modes.
                assert_eq!(
                    Op::of(&linked.code[pc]).cost(),
                    linked.code[pc].cost(),
                    "{} ({fusion:?}): cost at pc {pc}",
                    b.name
                );
            }
        }
    }
}

#[test]
fn both_dispatch_modes_render_the_same_mnemonic_stream() {
    for b in programs::all() {
        let prog = compiled(&b.source_scaled(b.test_scale));
        for fusion in [Fusion::Off, Fusion::Hand, Fusion::Full] {
            let linked_render = disasm::disassemble_linked(&prog, fusion);
            let threaded_render = disasm::disassemble_threaded(&prog, fusion);
            // Identical apart from the "; linked:" / "; threaded:" header.
            let body = |s: &str| s.split_once('\n').unwrap().1.to_string();
            assert_eq!(
                body(&linked_render),
                body(&threaded_render),
                "{} ({fusion:?}): dispatch modes disagree on the rendered stream",
                b.name
            );
        }
    }
}

#[test]
fn tier2_and_tier3_superinstructions_appear_and_disassemble() {
    // The profile-selected tier-2/tier-3 sets should fire on real
    // benchmark code (that is what justified them) and render under
    // their mnemonics.
    let mut seen = std::collections::BTreeSet::new();
    for b in programs::all() {
        let prog = compiled(&b.source_scaled(b.test_scale));
        let full = disasm::disassemble_threaded(&prog, Fusion::Full);
        // The leading space avoids prefix collisions (`LoadLoadPrimJump`
        // contains `LoadPrimJump`); disasm renders "  <pc>  <variant> {".
        const PROFILED: [&str; 14] = [
            " StoreLoadSelect {",
            " LoadPrimJump {",
            " SelectConstPrim {",
            " StoreLoad {",
            " LoadLoad {",
            " PrimJump {",
            " SelectStore {",
            " LoadStore {",
            " LoadSwitchCon {",
            " GcCheckLoad {",
            " RegHandleRegHandle {",
            " SelectStoreLoad {",
            " GcCheckLoadSwitchCon {",
            " RegHandleRegHandleLoad {",
        ];
        for mn in PROFILED {
            if full.contains(mn) {
                seen.insert(mn);
            }
        }
        // Tier 1 only: no tier-2/tier-3 mnemonics may appear.
        let hand = disasm::disassemble_threaded(&prog, Fusion::Hand);
        for mn in PROFILED {
            assert!(
                !hand.contains(mn),
                "{}: profiled {mn} leaked into Fusion::Hand",
                b.name
            );
        }
    }
    // SelectConstPrim fired only ~2.5k times across the suite, so it need
    // not appear at test scale; the data-hot rest must. `SelectStore` is
    // now almost always swallowed by the longer tier-3 `SelectStoreLoad`,
    // so it is exempt too.
    for mn in [
        " StoreLoadSelect {",
        " LoadPrimJump {",
        " StoreLoad {",
        " LoadLoad {",
        " PrimJump {",
        " LoadStore {",
        " LoadSwitchCon {",
        " GcCheckLoad {",
        " RegHandleRegHandle {",
        " SelectStoreLoad {",
        " GcCheckLoadSwitchCon {",
        " RegHandleRegHandleLoad {",
    ] {
        assert!(seen.contains(mn), "{mn} never fused on any benchmark");
    }
}

#[test]
fn register_form_round_trips_on_every_benchmark() {
    for b in programs::all() {
        let prog = compiled(&b.source_scaled(b.test_scale));
        let linked = link(&prog, Fusion::Off);
        let r = kit_kam::register::translate(&linked);
        // Cost preservation: the charge stream covers every source
        // instruction — this is what keeps fuel and the GC schedule
        // bit-identical to the stack engines. Entries carried across a
        // block edge defer their charge into the successor block (the
        // successor re-seeds them), so the books balance globally as
        // emitted + deferred == source + seeded.
        let total: u64 = r.costs.iter().map(|&c| c as u64).sum();
        assert_eq!(
            total + r.deferred,
            linked.code.len() as u64 + r.seeded,
            "{}: cost sum",
            b.name
        );
        assert_eq!(
            r.folded,
            linked.code.len() as u64 - r.code.ops.len() as u64,
            "{}: folded count",
            b.name
        );
        // Every pc decodes; base ops decode to an LInstr whose opcode
        // matches the stream (the register counterpart of `rebuild`).
        for pc in 0..r.code.ops.len() {
            match r.decode(pc) {
                kit_kam::RegInstr::Base(ins) => {
                    assert_eq!(
                        Op::of(&ins),
                        r.code.ops[pc],
                        "{}: base decode at pc {pc}",
                        b.name
                    );
                }
                kit_kam::RegInstr::RPrim {
                    a,
                    b: kit_kam::RSrc::Stack,
                    ..
                }
                | kit_kam::RegInstr::RPrimJump {
                    a,
                    b: kit_kam::RSrc::Stack,
                    ..
                } => {
                    // Translator invariant: a physical B operand implies a
                    // physical A operand.
                    assert_eq!(a, kit_kam::RSrc::Stack, "{}: pc {pc}", b.name);
                }
                _ => {}
            }
        }
    }
}

#[test]
fn register_opcodes_all_fire_and_disassemble() {
    use kit_kam::threaded::Op as TOp;
    let mut seen = std::collections::HashSet::new();
    for b in programs::all() {
        let prog = compiled(&b.source_scaled(b.test_scale));
        let linked = link(&prog, Fusion::Off);
        let r = kit_kam::register::translate(&linked);
        for &op in &r.code.ops {
            seen.insert(op);
        }
        let dis = disasm::disassemble_register(&prog);
        assert!(
            dis.starts_with("; register:"),
            "{}: register disassembly header",
            b.name
        );
        assert!(
            dis.contains("Halt"),
            "{}: register disassembly body",
            b.name
        );
    }
    // Every register-only opcode earns its keep on the benchmark corpus —
    // except `RStoreConst`, whose `PushConst; Store` source shape the
    // compiler only emits for constant let-bindings that survive
    // optimization; a directed program covers it below.
    for op in [TOp::RPrim, TOp::RPrimJump, TOp::RJumpIfFalse, TOp::RRet] {
        assert!(seen.contains(&op), "{op:?} never emitted on any benchmark");
    }
    let prog = compiled("fun f n = let val k = (print \"\"; 7) in k + n end\nval it = f 35");
    let linked = link(&prog, Fusion::Off);
    let r = kit_kam::register::translate(&linked);
    assert!(
        r.code.ops.contains(&TOp::RStoreConst),
        "constant let-binding should emit RStoreConst:\n{}",
        disasm::disassemble_register(&prog)
    );
}
