//! Round-trip tests for the threaded (struct-of-arrays) form: translating
//! a linked program and rebuilding every instruction must reproduce the
//! linked stream exactly, so both dispatch modes render the same
//! disassembly and charge the same per-pc cost.

use kit::{Compiler, Mode};
use kit_bench::programs;
use kit_kam::link::{link, Fusion};
use kit_kam::threaded::{translate, Op};
use kit_kam::{disasm, Program};

fn compiled(src: &str) -> Program {
    Compiler::new(Mode::R)
        .compile_source(src)
        .expect("benchmark compiles")
}

#[test]
fn threaded_form_round_trips_on_every_benchmark() {
    for b in programs::all() {
        let prog = compiled(&b.source_scaled(b.test_scale));
        for fusion in [Fusion::Off, Fusion::Hand, Fusion::Full] {
            let linked = link(&prog, fusion);
            let tcode = translate(linked.clone());
            assert_eq!(
                tcode.ops.len(),
                linked.code.len(),
                "{}: stream length",
                b.name
            );
            for pc in 0..tcode.ops.len() {
                assert_eq!(
                    tcode.rebuild(pc),
                    linked.code[pc],
                    "{} ({fusion:?}): rebuild at pc {pc}",
                    b.name
                );
                // The SoA cost table must agree with the linked form —
                // this is what keeps fuel and the GC schedule bit-identical
                // across dispatch modes.
                assert_eq!(
                    Op::of(&linked.code[pc]).cost(),
                    linked.code[pc].cost(),
                    "{} ({fusion:?}): cost at pc {pc}",
                    b.name
                );
            }
        }
    }
}

#[test]
fn both_dispatch_modes_render_the_same_mnemonic_stream() {
    for b in programs::all() {
        let prog = compiled(&b.source_scaled(b.test_scale));
        for fusion in [Fusion::Off, Fusion::Hand, Fusion::Full] {
            let linked_render = disasm::disassemble_linked(&prog, fusion);
            let threaded_render = disasm::disassemble_threaded(&prog, fusion);
            // Identical apart from the "; linked:" / "; threaded:" header.
            let body = |s: &str| s.split_once('\n').unwrap().1.to_string();
            assert_eq!(
                body(&linked_render),
                body(&threaded_render),
                "{} ({fusion:?}): dispatch modes disagree on the rendered stream",
                b.name
            );
        }
    }
}

#[test]
fn tier2_superinstructions_appear_and_disassemble() {
    // The profile-selected tier-2 set should fire on real benchmark code
    // (that is what justified it) and render under its mnemonics.
    let mut seen = std::collections::BTreeSet::new();
    for b in programs::all() {
        let prog = compiled(&b.source_scaled(b.test_scale));
        let full = disasm::disassemble_threaded(&prog, Fusion::Full);
        // The leading space avoids prefix collisions (`LoadLoadPrimJump`
        // contains `LoadPrimJump`); disasm renders "  <pc>  <variant> {".
        const TIER2: [&str; 11] = [
            " StoreLoadSelect {",
            " LoadPrimJump {",
            " SelectConstPrim {",
            " StoreLoad {",
            " LoadLoad {",
            " PrimJump {",
            " SelectStore {",
            " LoadStore {",
            " LoadSwitchCon {",
            " GcCheckLoad {",
            " RegHandleRegHandle {",
        ];
        for mn in TIER2 {
            if full.contains(mn) {
                seen.insert(mn);
            }
        }
        // Tier 1 only: no tier-2 mnemonics may appear.
        let hand = disasm::disassemble_threaded(&prog, Fusion::Hand);
        for mn in TIER2 {
            assert!(
                !hand.contains(mn),
                "{}: tier-2 {mn} leaked into Fusion::Hand",
                b.name
            );
        }
    }
    // SelectConstPrim fired only ~2.5k times across the suite, so it need
    // not appear at test scale; the data-hot five must.
    for mn in [
        " StoreLoadSelect {",
        " LoadPrimJump {",
        " StoreLoad {",
        " LoadLoad {",
        " PrimJump {",
        " SelectStore {",
        " LoadStore {",
        " LoadSwitchCon {",
        " GcCheckLoad {",
        " RegHandleRegHandle {",
    ] {
        assert!(seen.contains(mn), "{mn} never fused on any benchmark");
    }
}
