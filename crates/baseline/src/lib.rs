//! The SML/NJ-substitute baseline (DESIGN.md §4; paper §4.4).
//!
//! Table 4 of the paper compares the region+GC compiler with Standard ML
//! of New Jersey, a compiler whose runtime uses a **generational copying
//! collector** and — as the paper notes in §1.1 — *no stack at all* for
//! values. SML/NJ itself is a closed, enormous comparator, so we
//! substitute the closest synthetic equivalent that exercises the same
//! code path: the *same bytecode* for the *same program*, with
//!
//! * region inference fully disabled **including finite regions** (every
//!   value heap-allocated in one region, like SML/NJ), and
//! * a two-generation copying collector: a nursery that is minor-collected
//!   by promotion into a tenured generation (with a mutation write
//!   barrier / remembered set), and occasional major semispace passes over
//!   the tenured generation.
//!
//! Because front end, optimizer and instruction set are identical to the
//! region system's, time and memory ratios against this baseline measure
//! the memory discipline rather than unrelated compiler differences — the
//! confound the paper itself warns about.
//!
//! # Examples
//!
//! ```
//! let mut lprog = kit_typing::compile_str("val it = length (upto (1, 100))")
//!     .expect("front-end");
//! let prog = kit_baseline::compile_baseline(&mut lprog);
//! let out = kit_baseline::run_baseline(&prog, None).expect("run");
//! assert!(out.stats.gc_count == out.stats.minor_gcs);
//! ```

use kit_kam::{Program, Vm, VmError, VmOutcome};
use kit_lambda::LProgram;
use kit_region::RegionOptions;
use kit_runtime::config::GenPolicy;
use kit_runtime::{Rt, RtConfig};

/// The baseline runtime configuration: tagged values, one program region,
/// two-generation collection.
pub fn baseline_config() -> RtConfig {
    RtConfig {
        tagged: true,
        gc_enabled: true,
        generational: Some(GenPolicy::default()),
        ..RtConfig::gt()
    }
}

/// Compiles an elaborated program for the baseline: optimizer, then region
/// inference with *everything* collapsed onto one heap region.
pub fn compile_baseline(lprog: &mut LProgram) -> Program {
    kit_lambda::opt::optimize(lprog, &Default::default());
    let rprog = kit_region::infer(lprog, RegionOptions::baseline());
    let mut prog = kit_kam::compile(&rprog, true);
    prog.result_ty = lprog.result_ty.clone();
    prog
}

/// Runs a baseline-compiled program.
///
/// # Errors
///
/// Propagates uncaught exceptions and fuel exhaustion.
pub fn run_baseline(prog: &Program, fuel: Option<u64>) -> Result<VmOutcome, VmError> {
    run_baseline_with(prog, fuel, baseline_config())
}

/// Runs with an explicit configuration (policy sweeps in the benches).
///
/// # Errors
///
/// Propagates uncaught exceptions and fuel exhaustion.
pub fn run_baseline_with(
    prog: &Program,
    fuel: Option<u64>,
    config: RtConfig,
) -> Result<VmOutcome, VmError> {
    let rt = Rt::new(config);
    let mut vm = Vm::new(prog, rt);
    if let Some(f) = fuel {
        vm = vm.with_fuel(f);
    }
    vm.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_correct_results() {
        let src = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2) val it = fib 15";
        let mut lprog = kit_typing::compile_str(src).expect("front-end");
        let prog = compile_baseline(&mut lprog);
        let out = run_baseline(&prog, Some(200_000_000)).expect("run");
        assert_eq!(
            kit_kam::render::render_value(&out.rt, out.result, &prog.result_ty, &prog.data),
            "610"
        );
    }

    #[test]
    fn minor_collections_dominate() {
        let src = "fun burn 0 = 0 | burn n = length (upto (1, 100)) + burn (n - 1)
                   val it = burn 3000";
        let mut lprog = kit_typing::compile_str(src).expect("front-end");
        let prog = compile_baseline(&mut lprog);
        let cfg = RtConfig {
            generational: Some(GenPolicy {
                nursery_pages: 8,
                major_growth: 4,
            }),
            initial_pages: 32,
            ..baseline_config()
        };
        let out = run_baseline_with(&prog, Some(500_000_000), cfg).expect("run");
        assert!(out.stats.minor_gcs > 10, "minors: {}", out.stats.minor_gcs);
        assert!(
            out.stats.minor_gcs >= out.stats.major_gcs * 2,
            "minor {} vs major {}",
            out.stats.minor_gcs,
            out.stats.major_gcs
        );
    }

    #[test]
    fn survivors_cross_many_collections() {
        // A long-lived structure must survive promotion and major passes
        // while garbage churns.
        let src = "
            val keep = upto (1, 500)
            fun burn 0 = 0 | burn n = length (upto (1, 50)) + burn (n - 1)
            val _ = burn 2000
            val it = length keep + hd keep + hd (rev keep)";
        let mut lprog = kit_typing::compile_str(src).expect("front-end");
        let prog = compile_baseline(&mut lprog);
        let cfg = RtConfig {
            generational: Some(GenPolicy {
                nursery_pages: 6,
                major_growth: 2,
            }),
            initial_pages: 16,
            ..baseline_config()
        };
        let out = run_baseline_with(&prog, Some(500_000_000), cfg).expect("run");
        assert!(
            out.stats.major_gcs > 0,
            "expected at least one major collection"
        );
        let s = kit_kam::render::render_value(
            &out.rt,
            out.result,
            &kit_lambda::ty::LTy::Int,
            &prog.data,
        );
        assert_eq!(s, "1001"); // 500 + 1 + 500
    }

    #[test]
    fn mutation_barrier_keeps_old_to_young_alive() {
        // An old ref repeatedly redirected at fresh young data: without the
        // remembered set the young list would be collected.
        let src = "
            val r = ref nil
            fun churn 0 = () | churn n = (r := upto (1, 20); ignore (upto (1, 100)); churn (n - 1))
            val _ = churn 500
            val it = length (!r)";
        let mut lprog = kit_typing::compile_str(src).expect("front-end");
        let prog = compile_baseline(&mut lprog);
        let cfg = RtConfig {
            generational: Some(GenPolicy {
                nursery_pages: 4,
                major_growth: 3,
            }),
            initial_pages: 16,
            ..baseline_config()
        };
        let out = run_baseline_with(&prog, Some(500_000_000), cfg).expect("run");
        assert!(out.stats.minor_gcs > 0);
        let s = kit_kam::render::render_value(
            &out.rt,
            out.result,
            &kit_lambda::ty::LTy::Int,
            &prog.data,
        );
        assert_eq!(s, "20");
    }
}
