//! End-to-end front-end tests: parse → infer → lower → evaluate with the
//! reference evaluator, checking values and printed output.

use kit_lambda::eval::{eval, EvalError, Value};
use kit_lambda::opt::{optimize, OptOptions};
use kit_typing::compile_str;

fn run(src: &str) -> (String, String) {
    let prog = compile_str(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let out = eval(&prog.body, &prog.exns, Some(200_000_000))
        .unwrap_or_else(|e| panic!("eval failed: {e}\n{src}"));
    (format!("{:?}", out.value), out.output)
}

fn run_int(src: &str) -> i64 {
    let prog = compile_str(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let out = eval(&prog.body, &prog.exns, Some(200_000_000))
        .unwrap_or_else(|e| panic!("eval failed: {e}\n{src}"));
    match out.value {
        Value::Int(n) => n,
        other => panic!("expected int result, got {other:?}\n{src}"),
    }
}

fn run_int_optimized(src: &str) -> i64 {
    let mut prog = compile_str(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    optimize(&mut prog, &OptOptions::default());
    let out = eval(&prog.body, &prog.exns, Some(200_000_000))
        .unwrap_or_else(|e| panic!("eval failed: {e}\n{src}"));
    match out.value {
        Value::Int(n) => n,
        other => panic!("expected int result, got {other:?}\n{src}"),
    }
}

fn expect_exn(src: &str, name: &str) {
    let prog = compile_str(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let err = eval(&prog.body, &prog.exns, Some(10_000_000)).unwrap_err();
    assert_eq!(err, EvalError::UncaughtException(name.to_string()), "{src}");
}

fn expect_type_error(src: &str, fragment: &str) {
    let err = compile_str(src).unwrap_err();
    assert!(
        err.message().contains(fragment),
        "expected error containing {fragment:?}, got: {err}"
    );
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run_int("val it = 2 + 3 * 4"), 14);
    assert_eq!(run_int("val it = (2 + 3) * 4"), 20);
    assert_eq!(run_int("val it = ~7 div 2"), -4);
    assert_eq!(run_int("val it = ~7 mod 2"), 1);
}

#[test]
fn let_and_functions() {
    assert_eq!(run_int("fun double x = x + x  val it = double 21"), 42);
    assert_eq!(
        run_int("val it = let val x = 3 val y = x + 1 in x * y end"),
        12
    );
    assert_eq!(run_int("val f = fn x => x * x  val it = f 8"), 64);
}

#[test]
fn currying_and_partial_application() {
    assert_eq!(
        run_int("fun add x y = x + y  val inc = add 1  val it = inc 41"),
        42
    );
}

#[test]
fn recursion() {
    assert_eq!(
        run_int("fun fib n = if n < 2 then n else fib (n-1) + fib (n-2) val it = fib 15"),
        610
    );
    assert_eq!(
        run_int(
            "fun even 0 = true | even n = odd (n-1)
             and odd 0 = false | odd n = even (n-1)
             val it = if even 10 then 1 else 0"
        ),
        1
    );
}

#[test]
fn lists_and_prelude() {
    assert_eq!(run_int("val it = length [1,2,3,4]"), 4);
    assert_eq!(run_int("val it = hd (rev [1,2,3])"), 3);
    assert_eq!(
        run_int("val it = foldl (fn (x, acc) => x + acc) 0 (upto (1, 100))"),
        5050
    );
    assert_eq!(run_int("val it = length ([1,2] @ [3,4,5])"), 5);
    assert_eq!(run_int("val it = hd (map (fn x => x * 2) [21])"), 42);
    assert_eq!(run_int("val it = nth ([10,20,30], 1)"), 20);
}

#[test]
fn polymorphism_is_let_generalized() {
    assert_eq!(
        run_int("val it = length (map id [1,2,3]) + length (map id [true])"),
        4
    );
    assert_eq!(
        run_int("fun twice f x = f (f x) val it = twice (fn n => n + 1) 40"),
        42
    );
}

#[test]
fn value_restriction_blocks_generalization() {
    // `ref nil` must be monomorphic: using it at two types is an error.
    expect_type_error(
        "val r = ref nil
         val _ = r := [1]
         val _ = r := [true]
         val it = 0",
        "mismatch",
    );
}

#[test]
fn datatypes_and_matching() {
    assert_eq!(
        run_int(
            "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
             fun sum Leaf = 0
               | sum (Node (l, x, r)) = sum l + x + sum r
             val it = sum (Node (Node (Leaf, 1, Leaf), 2, Node (Leaf, 3, Leaf)))"
        ),
        6
    );
    assert_eq!(
        run_int(
            "datatype color = Red | Green | Blue
             fun code Red = 1 | code Green = 2 | code Blue = 3
             val it = code Green"
        ),
        2
    );
}

#[test]
fn constructor_as_function() {
    assert_eq!(
        run_int(
            "datatype box = B of int
             fun unbox (B n) = n
             val it = unbox (hd (map B [42]))"
        ),
        42
    );
}

#[test]
fn overloading_defaults_and_reals() {
    assert_eq!(run_int("val it = floor (2.5 + 0.75)"), 3);
    assert_eq!(run_int("fun sq x = x * x  val it = sq 6"), 36);
    assert_eq!(
        run_int("fun sqr (x : real) = x * x  val it = floor (sqr 3.0)"),
        9
    );
    assert_eq!(run_int("val it = if 1.5 < 2.5 then 1 else 0"), 1);
    assert_eq!(run_int("val it = if \"abc\" < \"abd\" then 1 else 0"), 1);
    assert_eq!(run_int("val it = trunc 3.9 + floor ~0.5"), 2);
}

#[test]
fn equality_specialization() {
    assert_eq!(run_int("val it = if [1,2,3] = [1,2,3] then 1 else 0"), 1);
    assert_eq!(run_int("val it = if [1,2,3] = [1,2,4] then 0 else 1"), 1);
    assert_eq!(
        run_int("val it = if (1, true) = (1, true) then 1 else 0"),
        1
    );
    assert_eq!(run_int("val it = if \"x\" = \"x\" then 1 else 0"), 1);
    assert_eq!(run_int("val it = if (1,2) <> (1,3) then 1 else 0"), 1);
    assert_eq!(
        run_int(
            "datatype t = A | B of int * t
             val it = if B (1, B (2, A)) = B (1, B (2, A)) then 1 else 0"
        ),
        1
    );
    // Refs compare by identity.
    assert_eq!(
        run_int("val r = ref 1 val s = ref 1 val it = if r = s then 1 else 0"),
        0
    );
    assert_eq!(
        run_int("val r = ref 1 val s = r val it = if r = s then 1 else 0"),
        1
    );
}

#[test]
fn equality_at_polymorphic_type_is_rejected() {
    expect_type_error(
        "fun member (x, nil) = false
           | member (x, y :: ys) = x = y orelse member (x, ys)
         val it = 0",
        "polymorphic equality",
    );
}

#[test]
fn exceptions() {
    assert_eq!(run_int("val it = (1 div 0) handle Div => 42"), 42);
    expect_exn("val it = 1 div 0", "Div");
    expect_exn("val it = hd nil", "Match");
    assert_eq!(
        run_int(
            "exception Found of int
             fun find p nil = raise Found ~1
               | find p (x :: xs) = if p x then x else find p xs
             val it = find (fn x => x > 10) [1, 20, 3] handle Found n => n"
        ),
        20
    );
    assert_eq!(
        run_int(
            "exception A exception B
             val it = (raise B) handle A => 1 | B => 2"
        ),
        2
    );
    // Unhandled exceptions re-raise past non-matching handlers.
    assert_eq!(
        run_int("val it = ((1 div 0) handle Subscript => 1) handle Div => 2"),
        2
    );
}

#[test]
fn refs_arrays_and_while() {
    assert_eq!(
        run_int(
            "val i = ref 0
             val acc = ref 0
             val _ = while !i < 10 do (acc := !acc + !i; i := !i + 1)
             val it = !acc"
        ),
        45
    );
    assert_eq!(
        run_int(
            "val a = array (10, 0)
             fun fill i = if i >= 10 then () else (aupdate (a, i, i * i); fill (i + 1))
             val _ = fill 0
             val it = asub (a, 7)"
        ),
        49
    );
    expect_exn("val a = array (3, 0) val it = asub (a, 5)", "Subscript");
}

#[test]
fn strings_and_printing() {
    let (_, out) = run("val it = print (\"answer: \" ^ itos 42 ^ \"\\n\")");
    assert_eq!(out, "answer: 42\n");
    assert_eq!(run_int("val it = size (itos 12345)"), 5);
    assert_eq!(run_int("val it = strsub (\"AB\", 1)"), 66);
    assert_eq!(run_int("val it = size (concat [\"ab\", \"cd\", \"e\"])"), 5);
}

#[test]
fn op_sections() {
    assert_eq!(run_int("val it = foldl op+ 0 [1,2,3,4]"), 10);
    assert_eq!(run_int("val it = foldl op* 1 [1,2,3,4]"), 24);
}

#[test]
fn composition() {
    assert_eq!(
        run_int("val f = (fn x => x + 1) o (fn x => x * 2) val it = f 20"),
        41
    );
}

#[test]
fn shadowing() {
    assert_eq!(
        run_int("val x = 1 val x = x + 1 val it = let val x = x * 10 in x end"),
        20
    );
}

#[test]
fn case_with_guards_via_nested_if() {
    assert_eq!(
        run_int(
            "fun classify n =
               case n of
                 0 => 100
               | 1 => 200
               | m => if m < 0 then ~1 else 300
             val it = classify 0 + classify 1 + classify 5 + classify ~3"
        ),
        599
    );
}

#[test]
fn optimizer_preserves_semantics_end_to_end() {
    let srcs = [
        "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2) val it = fib 12",
        "val it = foldl (fn (x, a) => x + a) 0 (map (fn x => x * x) (upto (1, 20)))",
        "datatype t = A | B of int fun f A = 0 | f (B n) = n val it = f (B 9) + f A",
        "val it = (1 div 0) handle Div => 7",
        "val it = length (filter (fn x => x mod 2 = 0) (upto (1, 10)))",
    ];
    for src in srcs {
        assert_eq!(run_int(src), run_int_optimized(src), "{src}");
    }
}

#[test]
fn type_errors_are_reported() {
    expect_type_error("val it = 1 + true", "mismatch");
    expect_type_error("val it = if 1 then 2 else 3", "mismatch");
    expect_type_error("val it = undefined_name", "unbound variable");
    expect_type_error("fun f x = f", "occurs");
    expect_type_error("val it = \"a\" * \"b\"", "overloading constraint");
}

#[test]
fn large_tail_recursion_via_oracle() {
    assert_eq!(
        run_int(
            "fun go (0, acc) = acc | go (n, acc) = go (n - 1, acc + n)
             val it = go (100000, 0)"
        ),
        5000050000
    );
}
