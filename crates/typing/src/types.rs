//! Inference types, unification, schemes and overloading kinds.

use kit_lambda::ty::{LTy, TyConId};
use kit_syntax::Span;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A type error (also used to surface syntax errors from the driver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    message: String,
    span: Span,
}

impl TypeError {
    /// Creates a new error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        TypeError {
            message: message.into(),
            span,
        }
    }

    /// The error description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source location.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for TypeError {}

/// A unification variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TvId(pub u32);

/// Overloading kind of a unification variable (SML-style).
///
/// The lattice is `Any > Ord > Num`: `Ord` admits `int`, `real` and
/// `string`; `Num` admits `int` and `real`. Unresolved `Ord`/`Num`
/// variables default to `int` at the end of each top-level declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TvKind {
    /// No constraint.
    Any,
    /// `int`, `real` or `string` (comparison operators).
    Ord,
    /// `int` or `real` (arithmetic operators).
    Num,
}

impl TvKind {
    /// Greatest lower bound of two kinds.
    pub fn meet(self, other: TvKind) -> TvKind {
        self.max(other)
    }
}

/// An inference type.
#[derive(Debug, Clone, PartialEq)]
pub enum Ty {
    /// Unification variable.
    Var(TvId),
    /// Quantified variable (appears only inside [`Scheme`]s).
    QVar(u32),
    /// Integer.
    Int,
    /// Real.
    Real,
    /// String.
    Str,
    /// Boolean.
    Bool,
    /// Unit.
    Unit,
    /// Exception.
    Exn,
    /// Tuple (arity >= 2).
    Tuple(Vec<Ty>),
    /// Function.
    Arrow(Box<Ty>, Box<Ty>),
    /// Applied datatype.
    Con(TyConId, Vec<Ty>),
    /// Reference.
    Ref(Box<Ty>),
    /// Array.
    Array(Box<Ty>),
}

impl Ty {
    /// Convenience constructor for `a -> b`.
    pub fn arrow(a: Ty, b: Ty) -> Ty {
        Ty::Arrow(Box::new(a), Box::new(b))
    }

    /// The builtin `list` type applied to `t`.
    pub fn list(t: Ty) -> Ty {
        Ty::Con(kit_lambda::ty::LIST, vec![t])
    }
}

/// A type scheme `∀ q0..qn . ty`, with per-quantifier kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheme {
    /// Kinds of the quantified variables (indexed by `QVar` number).
    pub kinds: Vec<TvKind>,
    /// The scheme body; quantified variables appear as [`Ty::QVar`].
    pub ty: Ty,
}

impl Scheme {
    /// A monomorphic scheme.
    pub fn mono(ty: Ty) -> Self {
        Scheme {
            kinds: Vec::new(),
            ty,
        }
    }
}

#[derive(Debug, Clone)]
struct TvState {
    link: Option<Ty>,
    kind: TvKind,
    level: u32,
}

/// The inference context: a union-find store of unification variables and
/// the current `let` level (Rémy-style level-based generalization).
#[derive(Debug, Default)]
pub struct InferCtx {
    tvs: Vec<TvState>,
    /// Current generalization level.
    pub level: u32,
}

impl InferCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh unification variable at the current level.
    pub fn fresh(&mut self) -> Ty {
        self.fresh_kinded(TvKind::Any)
    }

    /// A fresh unification variable with an overloading kind.
    pub fn fresh_kinded(&mut self, kind: TvKind) -> Ty {
        let id = TvId(self.tvs.len() as u32);
        self.tvs.push(TvState {
            link: None,
            kind,
            level: self.level,
        });
        Ty::Var(id)
    }

    /// The kind of a variable.
    pub fn kind(&self, v: TvId) -> TvKind {
        self.tvs[v.0 as usize].kind
    }

    /// Follows links one step at the root, returning a shallow-resolved type.
    pub fn resolve(&self, ty: &Ty) -> Ty {
        let mut t = ty.clone();
        while let Ty::Var(v) = t {
            match &self.tvs[v.0 as usize].link {
                Some(next) => t = next.clone(),
                None => return Ty::Var(v),
            }
        }
        t
    }

    /// Fully resolves a type, chasing links at every position.
    pub fn resolve_deep(&self, ty: &Ty) -> Ty {
        let t = self.resolve(ty);
        match t {
            Ty::Tuple(ts) => Ty::Tuple(ts.iter().map(|t| self.resolve_deep(t)).collect()),
            Ty::Arrow(a, b) => Ty::arrow(self.resolve_deep(&a), self.resolve_deep(&b)),
            Ty::Con(c, ts) => Ty::Con(c, ts.iter().map(|t| self.resolve_deep(t)).collect()),
            Ty::Ref(t) => Ty::Ref(Box::new(self.resolve_deep(&t))),
            Ty::Array(t) => Ty::Array(Box::new(self.resolve_deep(&t))),
            other => other,
        }
    }

    fn check_kind(&mut self, kind: TvKind, ty: &Ty) -> Result<(), String> {
        match (kind, ty) {
            (TvKind::Any, _) => Ok(()),
            (_, Ty::Int) | (_, Ty::Real) => Ok(()),
            (TvKind::Ord, Ty::Str) => Ok(()),
            (k, other) => Err(format!(
                "type {} does not satisfy the {} overloading constraint",
                self.display(other),
                match k {
                    TvKind::Num => "numeric",
                    TvKind::Ord => "ordered",
                    TvKind::Any => unreachable!(),
                }
            )),
        }
    }

    fn occurs_adjust(&mut self, v: TvId, ty: &Ty) -> Result<(), String> {
        match self.resolve(ty) {
            Ty::Var(w) => {
                if w == v {
                    return Err("occurs check failed (cyclic type)".to_string());
                }
                // Propagate the level downward so generalization stays sound.
                let lv = self.tvs[v.0 as usize].level;
                let st = &mut self.tvs[w.0 as usize];
                st.level = st.level.min(lv);
                Ok(())
            }
            Ty::Tuple(ts) | Ty::Con(_, ts) => {
                for t in &ts {
                    self.occurs_adjust(v, t)?;
                }
                Ok(())
            }
            Ty::Arrow(a, b) => {
                self.occurs_adjust(v, &a)?;
                self.occurs_adjust(v, &b)
            }
            Ty::Ref(t) | Ty::Array(t) => self.occurs_adjust(v, &t),
            _ => Ok(()),
        }
    }

    /// Unifies two types.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description on mismatch, occurs-check
    /// failure or overloading-kind violation.
    pub fn unify(&mut self, a: &Ty, b: &Ty) -> Result<(), String> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (&a, &b) {
            (Ty::Var(x), Ty::Var(y)) if x == y => Ok(()),
            (Ty::Var(x), _) => {
                self.occurs_adjust(*x, &b)?;
                let kind = self.tvs[x.0 as usize].kind;
                if let Ty::Var(y) = &b {
                    // Merge kinds onto the surviving root.
                    let merged = kind.meet(self.tvs[y.0 as usize].kind);
                    self.tvs[y.0 as usize].kind = merged;
                } else {
                    self.check_kind(kind, &b)?;
                }
                self.tvs[x.0 as usize].link = Some(b);
                Ok(())
            }
            (_, Ty::Var(_)) => self.unify(&b, &a),
            (Ty::Int, Ty::Int)
            | (Ty::Real, Ty::Real)
            | (Ty::Str, Ty::Str)
            | (Ty::Bool, Ty::Bool)
            | (Ty::Unit, Ty::Unit)
            | (Ty::Exn, Ty::Exn) => Ok(()),
            (Ty::Tuple(xs), Ty::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Ty::Arrow(a1, b1), Ty::Arrow(a2, b2)) => {
                self.unify(a1, a2)?;
                self.unify(b1, b2)
            }
            (Ty::Con(c1, xs), Ty::Con(c2, ys)) if c1 == c2 && xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Ty::Ref(x), Ty::Ref(y)) | (Ty::Array(x), Ty::Array(y)) => self.unify(x, y),
            _ => Err(format!(
                "type mismatch: {} vs {}",
                self.display(&a),
                self.display(&b)
            )),
        }
    }

    /// Generalizes `ty`, quantifying unlinked variables above `self.level`
    /// whose kind is `Any` (overloaded variables are never generalized, as
    /// in SML).
    pub fn generalize(&mut self, ty: &Ty) -> Scheme {
        let mut map: HashMap<TvId, u32> = HashMap::new();
        let mut kinds = Vec::new();
        let body = self.gen_walk(ty, &mut map, &mut kinds);
        Scheme { kinds, ty: body }
    }

    fn gen_walk(&mut self, ty: &Ty, map: &mut HashMap<TvId, u32>, kinds: &mut Vec<TvKind>) -> Ty {
        match self.resolve(ty) {
            Ty::Var(v) => {
                let st = &self.tvs[v.0 as usize];
                if st.level > self.level && st.kind == TvKind::Any {
                    let q = *map.entry(v).or_insert_with(|| {
                        kinds.push(TvKind::Any);
                        (kinds.len() - 1) as u32
                    });
                    Ty::QVar(q)
                } else {
                    Ty::Var(v)
                }
            }
            Ty::Tuple(ts) => Ty::Tuple(ts.iter().map(|t| self.gen_walk(t, map, kinds)).collect()),
            Ty::Arrow(a, b) => {
                Ty::arrow(self.gen_walk(&a, map, kinds), self.gen_walk(&b, map, kinds))
            }
            Ty::Con(c, ts) => Ty::Con(c, ts.iter().map(|t| self.gen_walk(t, map, kinds)).collect()),
            Ty::Ref(t) => Ty::Ref(Box::new(self.gen_walk(&t, map, kinds))),
            Ty::Array(t) => Ty::Array(Box::new(self.gen_walk(&t, map, kinds))),
            other => other,
        }
    }

    /// Instantiates a scheme with fresh variables.
    pub fn instantiate(&mut self, s: &Scheme) -> Ty {
        if s.kinds.is_empty() {
            return s.ty.clone();
        }
        let fresh: Vec<Ty> = s.kinds.iter().map(|k| self.fresh_kinded(*k)).collect();
        subst_qvars(&s.ty, &fresh)
    }

    /// Defaults every unresolved `Num`/`Ord` variable to `int`.
    ///
    /// Called at the end of each top-level declaration, mirroring SML's
    /// overloading resolution scope.
    pub fn default_overloads(&mut self) {
        for i in 0..self.tvs.len() {
            if self.tvs[i].link.is_none() && self.tvs[i].kind != TvKind::Any {
                self.tvs[i].link = Some(Ty::Int);
            }
        }
    }

    /// Converts a resolved inference type to a `LambdaExp` type. Remaining
    /// unification variables become erased [`LTy::TyVar`]s.
    pub fn to_lty(&self, ty: &Ty) -> LTy {
        match self.resolve(ty) {
            Ty::Var(v) => LTy::TyVar(v.0),
            Ty::QVar(q) => LTy::TyVar(u32::MAX - q),
            Ty::Int => LTy::Int,
            Ty::Real => LTy::Real,
            Ty::Str => LTy::Str,
            Ty::Bool => LTy::Bool,
            Ty::Unit => LTy::Unit,
            Ty::Exn => LTy::Exn,
            Ty::Tuple(ts) => LTy::Tuple(ts.iter().map(|t| self.to_lty(t)).collect()),
            Ty::Arrow(a, b) => LTy::arrow(self.to_lty(&a), self.to_lty(&b)),
            Ty::Con(c, ts) => LTy::Con(c, ts.iter().map(|t| self.to_lty(t)).collect()),
            Ty::Ref(t) => LTy::Ref(Box::new(self.to_lty(&t))),
            Ty::Array(t) => LTy::Array(Box::new(self.to_lty(&t))),
        }
    }

    /// Human-readable form of a type (for error messages).
    pub fn display(&self, ty: &Ty) -> String {
        match self.resolve(ty) {
            Ty::Var(v) => format!("'u{}", v.0),
            Ty::QVar(q) => format!("'q{q}"),
            Ty::Int => "int".to_string(),
            Ty::Real => "real".to_string(),
            Ty::Str => "string".to_string(),
            Ty::Bool => "bool".to_string(),
            Ty::Unit => "unit".to_string(),
            Ty::Exn => "exn".to_string(),
            Ty::Tuple(ts) => {
                let inner: Vec<String> = ts.iter().map(|t| self.display(t)).collect();
                format!("({})", inner.join(" * "))
            }
            Ty::Arrow(a, b) => format!("({} -> {})", self.display(&a), self.display(&b)),
            Ty::Con(c, ts) => {
                if ts.is_empty() {
                    format!("tycon{}", c.0)
                } else {
                    let inner: Vec<String> = ts.iter().map(|t| self.display(t)).collect();
                    format!("({}) tycon{}", inner.join(", "), c.0)
                }
            }
            Ty::Ref(t) => format!("{} ref", self.display(&t)),
            Ty::Array(t) => format!("{} array", self.display(&t)),
        }
    }
}

/// Substitutes `QVar(i)` with `args[i]`.
pub fn subst_qvars(ty: &Ty, args: &[Ty]) -> Ty {
    match ty {
        Ty::QVar(q) => args[*q as usize].clone(),
        Ty::Var(_) | Ty::Int | Ty::Real | Ty::Str | Ty::Bool | Ty::Unit | Ty::Exn => ty.clone(),
        Ty::Tuple(ts) => Ty::Tuple(ts.iter().map(|t| subst_qvars(t, args)).collect()),
        Ty::Arrow(a, b) => Ty::arrow(subst_qvars(a, args), subst_qvars(b, args)),
        Ty::Con(c, ts) => Ty::Con(*c, ts.iter().map(|t| subst_qvars(t, args)).collect()),
        Ty::Ref(t) => Ty::Ref(Box::new(subst_qvars(t, args))),
        Ty::Array(t) => Ty::Array(Box::new(subst_qvars(t, args))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_simple() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        cx.unify(&a, &Ty::Int).unwrap();
        assert_eq!(cx.resolve(&a), Ty::Int);
    }

    #[test]
    fn unify_arrow_propagates() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        let b = cx.fresh();
        cx.unify(
            &Ty::arrow(a.clone(), b.clone()),
            &Ty::arrow(Ty::Int, Ty::Bool),
        )
        .unwrap();
        assert_eq!(cx.resolve(&a), Ty::Int);
        assert_eq!(cx.resolve(&b), Ty::Bool);
    }

    #[test]
    fn occurs_check() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        let err = cx.unify(&a, &Ty::list(a.clone())).unwrap_err();
        assert!(err.contains("occurs"), "{err}");
    }

    #[test]
    fn num_kind_rejects_string() {
        let mut cx = InferCtx::new();
        let a = cx.fresh_kinded(TvKind::Num);
        assert!(cx.unify(&a, &Ty::Str).is_err());
        let b = cx.fresh_kinded(TvKind::Ord);
        assert!(cx.unify(&b, &Ty::Str).is_ok());
    }

    #[test]
    fn kind_merge_on_var_var_unification() {
        let mut cx = InferCtx::new();
        let a = cx.fresh_kinded(TvKind::Num);
        let b = cx.fresh_kinded(TvKind::Ord);
        cx.unify(&a, &b).unwrap();
        // The surviving root must carry Num (the meet).
        assert!(cx.unify(&a, &Ty::Str).is_err());
    }

    #[test]
    fn generalize_respects_levels() {
        let mut cx = InferCtx::new();
        let outer = cx.fresh(); // level 0
        cx.level = 1;
        let inner = cx.fresh(); // level 1
        cx.level = 0;
        let s = cx.generalize(&Ty::arrow(outer.clone(), inner.clone()));
        // inner quantified, outer not
        assert_eq!(s.kinds.len(), 1);
        assert_eq!(s.ty, Ty::arrow(outer, Ty::QVar(0)));
    }

    #[test]
    fn overloaded_vars_not_generalized_and_default_to_int() {
        let mut cx = InferCtx::new();
        cx.level = 1;
        let n = cx.fresh_kinded(TvKind::Num);
        cx.level = 0;
        let s = cx.generalize(&n);
        assert!(s.kinds.is_empty());
        cx.default_overloads();
        assert_eq!(cx.resolve(&n), Ty::Int);
    }

    #[test]
    fn instantiate_clones_with_fresh_vars() {
        let mut cx = InferCtx::new();
        let s = Scheme {
            kinds: vec![TvKind::Any],
            ty: Ty::arrow(Ty::QVar(0), Ty::QVar(0)),
        };
        let t1 = cx.instantiate(&s);
        let t2 = cx.instantiate(&s);
        cx.unify(&t1, &Ty::arrow(Ty::Int, Ty::Int)).unwrap();
        // t2 must still be free to unify at a different type.
        cx.unify(&t2, &Ty::arrow(Ty::Bool, Ty::Bool)).unwrap();
    }

    #[test]
    fn level_adjustment_on_unification() {
        let mut cx = InferCtx::new();
        let outer = cx.fresh(); // level 0
        cx.level = 1;
        let inner = cx.fresh(); // level 1
        cx.unify(&inner, &Ty::list(outer.clone())).unwrap();
        cx.level = 0;
        // `inner` links to list(outer); outer is level 0 and must not be
        // generalized.
        let s = cx.generalize(&inner);
        assert!(s.kinds.is_empty());
    }
}
