//! Name resolution and Hindley–Milner type inference, producing the typed
//! AST of [`crate::texp`].
//!
//! Notable SML features implemented faithfully:
//!
//! * let-polymorphism with the value restriction,
//! * level-based generalization (overloaded variables are never
//!   generalized; they default to `int` at the end of each top-level
//!   declaration),
//! * datatype declarations with mutual recursion,
//! * generative-at-top-level exception declarations,
//! * constructors usable as first-class functions.

use crate::builtins::{self, Builtin};
use crate::lower;
use crate::texp::{OvOp, TDec, TExp, TFun, TPat, TRule};
use crate::types::{InferCtx, Scheme, Ty, TypeError};
use kit_lambda::exp::{Prim, VarId, VarTable};
use kit_lambda::ty::{
    ConId, Constructor, DataEnv, Datatype, ExnEnv, ExnId, SchemeTy, TyConId, EXN_BIND, EXN_DIV,
    EXN_MATCH, EXN_OVERFLOW, EXN_SIZE, EXN_SUBSCRIPT,
};
use kit_lambda::LProgram;
use kit_syntax::ast::{self, BinOp, Exp, Pat, TyExp};
use kit_syntax::Span;
use std::collections::HashMap;

/// Elaborates `prelude` followed by `user` into a `LambdaExp` program.
///
/// The program result is the value of the last top-level `val` binding of
/// the user program that binds a single variable (conventionally
/// `val it = ...`), or `()` if there is none.
///
/// # Errors
///
/// Returns the first type error encountered.
pub fn elaborate(prelude: &ast::Program, user: &ast::Program) -> Result<LProgram, TypeError> {
    let mut el = Elab::new();
    let mut tdecs = Vec::new();
    for dec in prelude.decs.iter() {
        el.anno_tyvars.clear();
        tdecs.extend(el.infer_dec(dec)?);
        el.cx.default_overloads();
    }
    el.user_phase = true;
    for dec in user.decs.iter() {
        el.anno_tyvars.clear();
        tdecs.extend(el.infer_dec(dec)?);
        el.cx.default_overloads();
    }
    let (result, result_ty) = match &el.last_val {
        Some((v, t)) => (TExp::Var(*v, t.clone()), t.clone()),
        None => (TExp::Unit, Ty::Unit),
    };
    lower::lower_program(el.cx, el.data, el.exns, el.vars, tdecs, result, result_ty)
}

#[derive(Debug, Clone)]
enum Binding {
    Val(VarId, Scheme),
    Builtin(Builtin),
    Ctor(TyConId, ConId),
    Exn(ExnId),
}

#[derive(Debug, Clone)]
enum TyDef {
    Int,
    Real,
    Str,
    Bool,
    Unit,
    Exn,
    List,
    Ref,
    Array,
    Data(TyConId, u32),
}

struct Elab {
    cx: InferCtx,
    data: DataEnv,
    exns: ExnEnv,
    vars: VarTable,
    scopes: Vec<HashMap<String, Binding>>,
    tyscopes: Vec<HashMap<String, TyDef>>,
    anno_tyvars: HashMap<String, Ty>,
    last_val: Option<(VarId, Ty)>,
    user_phase: bool,
}

impl Elab {
    fn new() -> Self {
        let mut scope = HashMap::new();
        for (name, b) in builtins::ALL {
            scope.insert((*name).to_string(), Binding::Builtin(*b));
        }
        for (name, id) in [
            ("Div", EXN_DIV),
            ("Overflow", EXN_OVERFLOW),
            ("Subscript", EXN_SUBSCRIPT),
            ("Size", EXN_SIZE),
            ("Match", EXN_MATCH),
            ("Bind", EXN_BIND),
        ] {
            scope.insert(name.to_string(), Binding::Exn(id));
        }
        scope.insert(
            "nil".to_string(),
            Binding::Ctor(kit_lambda::ty::LIST, kit_lambda::ty::NIL),
        );

        let mut tyscope = HashMap::new();
        for (name, d) in [
            ("int", TyDef::Int),
            ("real", TyDef::Real),
            ("string", TyDef::Str),
            ("bool", TyDef::Bool),
            ("unit", TyDef::Unit),
            ("exn", TyDef::Exn),
            ("list", TyDef::List),
            ("ref", TyDef::Ref),
            ("array", TyDef::Array),
        ] {
            tyscope.insert(name.to_string(), d);
        }

        Elab {
            cx: InferCtx::new(),
            data: DataEnv::new(),
            exns: ExnEnv::new(),
            vars: VarTable::new(),
            scopes: vec![scope],
            tyscopes: vec![tyscope],
            anno_tyvars: HashMap::new(),
            last_val: None,
            user_phase: false,
        }
    }

    // ------------------------------------------------------------- scoping

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
        self.tyscopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
        self.tyscopes.pop();
    }

    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes.last_mut().unwrap().insert(name.to_string(), b);
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn bind_ty(&mut self, name: &str, d: TyDef) {
        self.tyscopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), d);
    }

    fn lookup_ty(&self, name: &str) -> Option<&TyDef> {
        self.tyscopes.iter().rev().find_map(|s| s.get(name))
    }

    fn unify_at(&mut self, span: Span, a: &Ty, b: &Ty) -> Result<(), TypeError> {
        self.cx.unify(a, b).map_err(|m| TypeError::new(m, span))
    }

    // ----------------------------------------------------- type expressions

    fn ty_of_tyexp(&mut self, t: &TyExp, span: Span) -> Result<Ty, TypeError> {
        match t {
            TyExp::Var(v) => {
                if let Some(ty) = self.anno_tyvars.get(v) {
                    return Ok(ty.clone());
                }
                let ty = self.cx.fresh();
                self.anno_tyvars.insert(v.clone(), ty.clone());
                Ok(ty)
            }
            TyExp::Tuple(ts) => {
                let tys = ts
                    .iter()
                    .map(|t| self.ty_of_tyexp(t, span))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Ty::Tuple(tys))
            }
            TyExp::Arrow(a, b) => Ok(Ty::arrow(
                self.ty_of_tyexp(a, span)?,
                self.ty_of_tyexp(b, span)?,
            )),
            TyExp::Con(name, args) => {
                let args: Vec<Ty> = args
                    .iter()
                    .map(|t| self.ty_of_tyexp(t, span))
                    .collect::<Result<Vec<_>, _>>()?;
                let def = self
                    .lookup_ty(name)
                    .ok_or_else(|| TypeError::new(format!("unknown type `{name}`"), span))?
                    .clone();
                let expect_arity = |n: usize| -> Result<(), TypeError> {
                    if args.len() == n {
                        Ok(())
                    } else {
                        Err(TypeError::new(
                            format!("type `{name}` expects {n} argument(s), got {}", args.len()),
                            span,
                        ))
                    }
                };
                match def {
                    TyDef::Int => {
                        expect_arity(0)?;
                        Ok(Ty::Int)
                    }
                    TyDef::Real => {
                        expect_arity(0)?;
                        Ok(Ty::Real)
                    }
                    TyDef::Str => {
                        expect_arity(0)?;
                        Ok(Ty::Str)
                    }
                    TyDef::Bool => {
                        expect_arity(0)?;
                        Ok(Ty::Bool)
                    }
                    TyDef::Unit => {
                        expect_arity(0)?;
                        Ok(Ty::Unit)
                    }
                    TyDef::Exn => {
                        expect_arity(0)?;
                        Ok(Ty::Exn)
                    }
                    TyDef::List => {
                        expect_arity(1)?;
                        Ok(Ty::list(args.into_iter().next().unwrap()))
                    }
                    TyDef::Ref => {
                        expect_arity(1)?;
                        Ok(Ty::Ref(Box::new(args.into_iter().next().unwrap())))
                    }
                    TyDef::Array => {
                        expect_arity(1)?;
                        Ok(Ty::Array(Box::new(args.into_iter().next().unwrap())))
                    }
                    TyDef::Data(id, arity) => {
                        expect_arity(arity as usize)?;
                        Ok(Ty::Con(id, args))
                    }
                }
            }
        }
    }

    fn schemety_of_tyexp(
        &self,
        t: &TyExp,
        tyvars: &[String],
        span: Span,
    ) -> Result<SchemeTy, TypeError> {
        match t {
            TyExp::Var(v) => match tyvars.iter().position(|w| w == v) {
                Some(i) => Ok(SchemeTy::Param(i as u32)),
                None => Err(TypeError::new(
                    format!("type variable '{v} not bound by the datatype declaration"),
                    span,
                )),
            },
            TyExp::Tuple(ts) => Ok(SchemeTy::Tuple(
                ts.iter()
                    .map(|t| self.schemety_of_tyexp(t, tyvars, span))
                    .collect::<Result<_, _>>()?,
            )),
            TyExp::Arrow(a, b) => Ok(SchemeTy::Arrow(
                Box::new(self.schemety_of_tyexp(a, tyvars, span)?),
                Box::new(self.schemety_of_tyexp(b, tyvars, span)?),
            )),
            TyExp::Con(name, args) => {
                let args: Vec<SchemeTy> = args
                    .iter()
                    .map(|t| self.schemety_of_tyexp(t, tyvars, span))
                    .collect::<Result<_, _>>()?;
                let def = self
                    .lookup_ty(name)
                    .ok_or_else(|| TypeError::new(format!("unknown type `{name}`"), span))?;
                Ok(match def {
                    TyDef::Int => SchemeTy::Int,
                    TyDef::Real => SchemeTy::Real,
                    TyDef::Str => SchemeTy::Str,
                    TyDef::Bool => SchemeTy::Bool,
                    TyDef::Unit => SchemeTy::Unit,
                    TyDef::Exn => SchemeTy::Exn,
                    TyDef::List => SchemeTy::Con(kit_lambda::ty::LIST, args),
                    TyDef::Ref => SchemeTy::Ref(Box::new(args.into_iter().next().unwrap())),
                    TyDef::Array => SchemeTy::Array(Box::new(args.into_iter().next().unwrap())),
                    TyDef::Data(id, _) => SchemeTy::Con(*id, args),
                })
            }
        }
    }

    /// Instantiates a constructor-argument scheme with inference types.
    fn scheme_to_ty(&self, s: &SchemeTy, targs: &[Ty]) -> Ty {
        match s {
            SchemeTy::Param(i) => targs[*i as usize].clone(),
            SchemeTy::Int => Ty::Int,
            SchemeTy::Bool => Ty::Bool,
            SchemeTy::Unit => Ty::Unit,
            SchemeTy::Real => Ty::Real,
            SchemeTy::Str => Ty::Str,
            SchemeTy::Exn => Ty::Exn,
            SchemeTy::Con(c, ts) => {
                Ty::Con(*c, ts.iter().map(|t| self.scheme_to_ty(t, targs)).collect())
            }
            SchemeTy::Arrow(a, b) => {
                Ty::arrow(self.scheme_to_ty(a, targs), self.scheme_to_ty(b, targs))
            }
            SchemeTy::Tuple(ts) => {
                Ty::Tuple(ts.iter().map(|t| self.scheme_to_ty(t, targs)).collect())
            }
            SchemeTy::Ref(t) => Ty::Ref(Box::new(self.scheme_to_ty(t, targs))),
            SchemeTy::Array(t) => Ty::Array(Box::new(self.scheme_to_ty(t, targs))),
        }
    }

    // --------------------------------------------------------- declarations

    fn infer_dec(&mut self, dec: &ast::Dec) -> Result<Vec<TDec>, TypeError> {
        match dec {
            ast::Dec::Val { pat, exp, span } => {
                self.cx.level += 1;
                let (trhs, rhs_ty) = self.infer_exp(exp)?;
                self.cx.level -= 1;
                let mut binds = Vec::new();
                let tpat = self.infer_pat(pat, &rhs_ty, &mut binds)?;
                let generalizable = is_value(exp);
                for (name, var, ty) in binds {
                    let scheme = if generalizable {
                        self.cx.generalize(&ty)
                    } else {
                        Scheme::mono(ty.clone())
                    };
                    self.bind(&name, Binding::Val(var, scheme));
                }
                if self.user_phase {
                    if let Pat::Var(name, _) = pat {
                        if self.lookup(name).is_some() {
                            if let Some(Binding::Val(v, _)) = self.lookup(name) {
                                self.last_val = Some((*v, rhs_ty.clone()));
                            }
                        }
                    }
                }
                Ok(vec![TDec::Val {
                    pat: tpat,
                    rhs: trhs,
                    span: *span,
                }])
            }
            ast::Dec::Fun { binds, span } => self.infer_fun_group(binds, *span),
            ast::Dec::Datatype { binds, span } => {
                self.infer_datatypes(binds, *span)?;
                Ok(Vec::new())
            }
            ast::Dec::Exception { name, arg, span } => {
                let arg_lty = match arg {
                    Some(t) => {
                        let ty = self.ty_of_tyexp(t, *span)?;
                        Some(self.cx.to_lty(&ty))
                    }
                    None => None,
                };
                let id = self.exns.define(name, arg_lty);
                self.bind(name, Binding::Exn(id));
                Ok(Vec::new())
            }
        }
    }

    fn infer_datatypes(&mut self, binds: &[ast::DataBind], span: Span) -> Result<(), TypeError> {
        // Pass 1: reserve ids so datatypes can be mutually recursive.
        let ids: Vec<TyConId> = binds
            .iter()
            .map(|b| {
                let id = self.data.reserve(&b.name);
                self.bind_ty(&b.name, TyDef::Data(id, b.tyvars.len() as u32));
                id
            })
            .collect();
        // Pass 2: fill in constructors and bind them.
        for (b, id) in binds.iter().zip(&ids) {
            let mut constructors = Vec::new();
            for c in &b.cons {
                let arg = match &c.arg {
                    Some(t) => Some(self.schemety_of_tyexp(t, &b.tyvars, span)?),
                    None => None,
                };
                constructors.push(Constructor {
                    name: c.name.clone(),
                    arg,
                });
            }
            self.data.fill(
                *id,
                Datatype {
                    name: b.name.clone(),
                    arity: b.tyvars.len() as u32,
                    constructors,
                },
            );
            for (i, c) in b.cons.iter().enumerate() {
                self.bind(&c.name, Binding::Ctor(*id, ConId(i as u32)));
            }
        }
        Ok(())
    }

    fn infer_fun_group(
        &mut self,
        binds: &[ast::FunBind],
        span: Span,
    ) -> Result<Vec<TDec>, TypeError> {
        self.cx.level += 1;
        // Monomorphic bindings for the whole group.
        let mut sigs = Vec::new();
        for b in binds {
            let arity = b.clauses[0].pats.len();
            let param_tys: Vec<Ty> = (0..arity).map(|_| self.cx.fresh()).collect();
            let ret = self.cx.fresh();
            let fun_ty = param_tys
                .iter()
                .rev()
                .fold(ret.clone(), |acc, p| Ty::arrow(p.clone(), acc));
            let var = self.vars.fresh(&b.name);
            self.bind(&b.name, Binding::Val(var, Scheme::mono(fun_ty.clone())));
            sigs.push((var, param_tys, ret, fun_ty));
        }
        let mut tfuns = Vec::new();
        for (b, (var, param_tys, ret, _)) in binds.iter().zip(&sigs) {
            let mut clauses = Vec::new();
            for clause in &b.clauses {
                self.push_scope();
                let mut pats = Vec::new();
                for (p, pt) in clause.pats.iter().zip(param_tys) {
                    let mut cbinds = Vec::new();
                    let tp = self.infer_pat(p, pt, &mut cbinds)?;
                    for (name, v, t) in cbinds {
                        self.bind(&name, Binding::Val(v, Scheme::mono(t)));
                    }
                    pats.push(tp);
                }
                let (body, bty) = self.infer_exp(&clause.body)?;
                self.unify_at(clause.body.span(), &bty, ret)?;
                self.pop_scope();
                clauses.push((pats, body));
            }
            let params: Vec<(VarId, Ty)> = param_tys
                .iter()
                .enumerate()
                .map(|(i, t)| (self.vars.fresh(&format!("{}#{}", b.name, i)), t.clone()))
                .collect();
            tfuns.push(TFun {
                var: *var,
                params,
                ret: ret.clone(),
                clauses,
                span: b.span,
            });
        }
        self.cx.level -= 1;
        // Generalize and re-bind.
        for (b, (var, _, _, fun_ty)) in binds.iter().zip(&sigs) {
            let scheme = self.cx.generalize(fun_ty);
            self.bind(&b.name, Binding::Val(*var, scheme));
        }
        let _ = span;
        Ok(vec![TDec::Fun(tfuns)])
    }

    // ------------------------------------------------------------- patterns

    fn infer_pat(
        &mut self,
        pat: &Pat,
        expected: &Ty,
        binds: &mut Vec<(String, VarId, Ty)>,
    ) -> Result<TPat, TypeError> {
        let span = pat.span();
        match pat {
            Pat::Wild(_) => Ok(TPat::Wild),
            Pat::Unit(_) => {
                self.unify_at(span, expected, &Ty::Unit)?;
                Ok(TPat::Wild)
            }
            Pat::Int(n, _) => {
                self.unify_at(span, expected, &Ty::Int)?;
                Ok(TPat::Int(*n))
            }
            Pat::Str(s, _) => {
                self.unify_at(span, expected, &Ty::Str)?;
                Ok(TPat::Str(s.clone()))
            }
            Pat::Bool(b, _) => {
                self.unify_at(span, expected, &Ty::Bool)?;
                Ok(TPat::Bool(*b))
            }
            Pat::Var(name, _) => match self.lookup(name).cloned() {
                Some(Binding::Ctor(tycon, con)) => {
                    let dt = self.data.get(tycon);
                    if dt.constructors[con.0 as usize].arg.is_some() {
                        return Err(TypeError::new(
                            format!("constructor `{name}` expects an argument"),
                            span,
                        ));
                    }
                    let targs: Vec<Ty> = (0..dt.arity).map(|_| self.cx.fresh()).collect();
                    self.unify_at(span, expected, &Ty::Con(tycon, targs.clone()))?;
                    Ok(TPat::Con {
                        tycon,
                        con,
                        targs,
                        arg: None,
                    })
                }
                Some(Binding::Exn(id)) => {
                    if self.exns.get(id).arg.is_some() {
                        return Err(TypeError::new(
                            format!("exception `{name}` expects an argument"),
                            span,
                        ));
                    }
                    self.unify_at(span, expected, &Ty::Exn)?;
                    Ok(TPat::Exn { exn: id, arg: None })
                }
                _ => {
                    if binds.iter().any(|(n, _, _)| n == name) {
                        return Err(TypeError::new(
                            format!("duplicate variable `{name}` in pattern"),
                            span,
                        ));
                    }
                    let v = self.vars.fresh(name);
                    binds.push((name.clone(), v, expected.clone()));
                    Ok(TPat::Var(v, expected.clone()))
                }
            },
            Pat::Tuple(ps, _) => {
                let tys: Vec<Ty> = ps.iter().map(|_| self.cx.fresh()).collect();
                self.unify_at(span, expected, &Ty::Tuple(tys.clone()))?;
                let tps = ps
                    .iter()
                    .zip(&tys)
                    .map(|(p, t)| self.infer_pat(p, t, binds))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(TPat::Tuple(tps))
            }
            Pat::Con(name, argp, _) => match self.lookup(name).cloned() {
                Some(Binding::Ctor(tycon, con)) => {
                    let dt = self.data.get(tycon);
                    let arity = dt.arity;
                    let Some(arg_scheme) = dt.constructors[con.0 as usize].arg.clone() else {
                        return Err(TypeError::new(
                            format!("constructor `{name}` takes no argument"),
                            span,
                        ));
                    };
                    let targs: Vec<Ty> = (0..arity).map(|_| self.cx.fresh()).collect();
                    self.unify_at(span, expected, &Ty::Con(tycon, targs.clone()))?;
                    let arg_ty = self.scheme_to_ty(&arg_scheme, &targs);
                    let tp = self.infer_pat(argp, &arg_ty, binds)?;
                    Ok(TPat::Con {
                        tycon,
                        con,
                        targs,
                        arg: Some(Box::new(tp)),
                    })
                }
                Some(Binding::Exn(id)) => {
                    let Some(arg_ty) = self.exns.get(id).arg.clone() else {
                        return Err(TypeError::new(
                            format!("exception `{name}` takes no argument"),
                            span,
                        ));
                    };
                    self.unify_at(span, expected, &Ty::Exn)?;
                    let arg_ty = lty_to_ty(&arg_ty);
                    let tp = self.infer_pat(argp, &arg_ty, binds)?;
                    Ok(TPat::Exn {
                        exn: id,
                        arg: Some(Box::new(tp)),
                    })
                }
                _ => Err(TypeError::new(
                    format!("unknown constructor `{name}`"),
                    span,
                )),
            },
            Pat::List(ps, _) => {
                let elem = self.cx.fresh();
                self.unify_at(span, expected, &Ty::list(elem.clone()))?;
                let mut out = TPat::Con {
                    tycon: kit_lambda::ty::LIST,
                    con: kit_lambda::ty::NIL,
                    targs: vec![elem.clone()],
                    arg: None,
                };
                for p in ps.iter().rev() {
                    let tp = self.infer_pat(p, &elem, binds)?;
                    out = TPat::Con {
                        tycon: kit_lambda::ty::LIST,
                        con: kit_lambda::ty::CONS,
                        targs: vec![elem.clone()],
                        arg: Some(Box::new(TPat::Tuple(vec![tp, out]))),
                    };
                }
                Ok(out)
            }
            Pat::Cons(h, t, _) => {
                let elem = self.cx.fresh();
                self.unify_at(span, expected, &Ty::list(elem.clone()))?;
                let th = self.infer_pat(h, &elem, binds)?;
                let tt = self.infer_pat(t, &Ty::list(elem.clone()), binds)?;
                Ok(TPat::Con {
                    tycon: kit_lambda::ty::LIST,
                    con: kit_lambda::ty::CONS,
                    targs: vec![elem],
                    arg: Some(Box::new(TPat::Tuple(vec![th, tt]))),
                })
            }
            Pat::Ascribe(p, t, _) => {
                let ty = self.ty_of_tyexp(t, span)?;
                self.unify_at(span, expected, &ty)?;
                self.infer_pat(p, &ty, binds)
            }
        }
    }

    // ----------------------------------------------------------- expressions

    fn infer_rules(
        &mut self,
        rules: &[ast::Rule],
        scrut_ty: &Ty,
        result_ty: &Ty,
    ) -> Result<Vec<TRule>, TypeError> {
        let mut out = Vec::new();
        for r in rules {
            self.push_scope();
            let mut binds = Vec::new();
            let tp = self.infer_pat(&r.pat, scrut_ty, &mut binds)?;
            for (name, v, t) in binds {
                self.bind(&name, Binding::Val(v, Scheme::mono(t)));
            }
            let (te, ty) = self.infer_exp(&r.exp)?;
            self.unify_at(r.exp.span(), &ty, result_ty)?;
            self.pop_scope();
            out.push(TRule { pat: tp, exp: te });
        }
        Ok(out)
    }

    fn infer_exp(&mut self, exp: &Exp) -> Result<(TExp, Ty), TypeError> {
        let span = exp.span();
        match exp {
            Exp::Int(n, _) => Ok((TExp::Int(*n), Ty::Int)),
            Exp::Real(r, _) => Ok((TExp::Real(*r), Ty::Real)),
            Exp::Str(s, _) => Ok((TExp::Str(s.clone()), Ty::Str)),
            Exp::Bool(b, _) => Ok((TExp::Bool(*b), Ty::Bool)),
            Exp::Unit(_) => Ok((TExp::Unit, Ty::Unit)),
            Exp::Var(name, _) => self.infer_var(name, span),
            Exp::Tuple(es, _) => {
                let mut tes = Vec::new();
                let mut tys = Vec::new();
                for e in es {
                    let (te, ty) = self.infer_exp(e)?;
                    tes.push(te);
                    tys.push(ty);
                }
                Ok((TExp::Tuple(tes), Ty::Tuple(tys)))
            }
            Exp::List(es, _) => {
                let elem = self.cx.fresh();
                let mut out = TExp::Con {
                    tycon: kit_lambda::ty::LIST,
                    con: kit_lambda::ty::NIL,
                    targs: vec![elem.clone()],
                    arg: None,
                };
                for e in es.iter().rev() {
                    let (te, ty) = self.infer_exp(e)?;
                    self.unify_at(e.span(), &ty, &elem)?;
                    out = TExp::Con {
                        tycon: kit_lambda::ty::LIST,
                        con: kit_lambda::ty::CONS,
                        targs: vec![elem.clone()],
                        arg: Some(Box::new(TExp::Tuple(vec![te, out]))),
                    };
                }
                Ok((out, Ty::list(elem)))
            }
            Exp::Cons(h, t, _) => {
                let (th, hty) = self.infer_exp(h)?;
                let (tt, tty) = self.infer_exp(t)?;
                self.unify_at(span, &tty, &Ty::list(hty.clone()))?;
                Ok((
                    TExp::Con {
                        tycon: kit_lambda::ty::LIST,
                        con: kit_lambda::ty::CONS,
                        targs: vec![hty.clone()],
                        arg: Some(Box::new(TExp::Tuple(vec![th, tt]))),
                    },
                    Ty::list(hty),
                ))
            }
            Exp::Append(a, b, _) => {
                // `xs @ ys` is `append (xs, ys)` from the prelude.
                let (ta, tya) = self.infer_exp(a)?;
                let (tb, tyb) = self.infer_exp(b)?;
                self.unify_at(span, &tya, &tyb)?;
                let elem = self.cx.fresh();
                self.unify_at(span, &tya, &Ty::list(elem))?;
                let Some(Binding::Val(v, scheme)) = self.lookup("append").cloned() else {
                    return Err(TypeError::new("prelude `append` is missing", span));
                };
                let fty = self.cx.instantiate(&scheme);
                let arg = Ty::Tuple(vec![tya.clone(), tyb]);
                self.unify_at(span, &fty, &Ty::arrow(arg, tya.clone()))?;
                Ok((
                    TExp::App(
                        Box::new(TExp::Var(v, fty)),
                        Box::new(TExp::Tuple(vec![ta, tb])),
                    ),
                    tya,
                ))
            }
            Exp::App(f, a, _) => self.infer_app(f, a, span),
            Exp::BinOp(op, a, b, _) => self.infer_binop(*op, a, b, span),
            Exp::Neg(e, _) => {
                let (te, ty) = self.infer_exp(e)?;
                let n = builtins::fresh_num(&mut self.cx);
                self.unify_at(span, &ty, &n)?;
                Ok((
                    TExp::Overload {
                        op: OvOp::Neg,
                        args: vec![te],
                        ty: n.clone(),
                        span,
                    },
                    n,
                ))
            }
            Exp::Deref(e, _) => {
                let (te, ty) = self.infer_exp(e)?;
                let a = self.cx.fresh();
                self.unify_at(span, &ty, &Ty::Ref(Box::new(a.clone())))?;
                Ok((
                    TExp::Prim {
                        prim: Prim::RefGet,
                        args: vec![te],
                    },
                    a,
                ))
            }
            Exp::Not(e, _) => {
                let (te, ty) = self.infer_exp(e)?;
                self.unify_at(span, &ty, &Ty::Bool)?;
                Ok((
                    TExp::If(
                        Box::new(te),
                        Box::new(TExp::Bool(false)),
                        Box::new(TExp::Bool(true)),
                    ),
                    Ty::Bool,
                ))
            }
            Exp::Andalso(a, b, _) => {
                let (ta, tya) = self.infer_exp(a)?;
                let (tb, tyb) = self.infer_exp(b)?;
                self.unify_at(span, &tya, &Ty::Bool)?;
                self.unify_at(span, &tyb, &Ty::Bool)?;
                Ok((
                    TExp::If(Box::new(ta), Box::new(tb), Box::new(TExp::Bool(false))),
                    Ty::Bool,
                ))
            }
            Exp::Orelse(a, b, _) => {
                let (ta, tya) = self.infer_exp(a)?;
                let (tb, tyb) = self.infer_exp(b)?;
                self.unify_at(span, &tya, &Ty::Bool)?;
                self.unify_at(span, &tyb, &Ty::Bool)?;
                Ok((
                    TExp::If(Box::new(ta), Box::new(TExp::Bool(true)), Box::new(tb)),
                    Ty::Bool,
                ))
            }
            Exp::If(c, t, f, _) => {
                let (tc, cty) = self.infer_exp(c)?;
                self.unify_at(c.span(), &cty, &Ty::Bool)?;
                let (tt, tty) = self.infer_exp(t)?;
                let (tf, fty) = self.infer_exp(f)?;
                self.unify_at(span, &tty, &fty)?;
                Ok((TExp::If(Box::new(tc), Box::new(tt), Box::new(tf)), tty))
            }
            Exp::While(c, b, _) => {
                let (tc, cty) = self.infer_exp(c)?;
                self.unify_at(c.span(), &cty, &Ty::Bool)?;
                let (tb, bty) = self.infer_exp(b)?;
                self.unify_at(b.span(), &bty, &Ty::Unit)?;
                Ok((TExp::While(Box::new(tc), Box::new(tb)), Ty::Unit))
            }
            Exp::Case(scrut, rules, _) => {
                let (ts, sty) = self.infer_exp(scrut)?;
                let rty = self.cx.fresh();
                let trules = self.infer_rules(rules, &sty, &rty)?;
                Ok((
                    TExp::Case {
                        scrut: Box::new(ts),
                        sty,
                        rules: trules,
                        rty: rty.clone(),
                        span,
                    },
                    rty,
                ))
            }
            Exp::Fn(rules, _) => {
                let pty = self.cx.fresh();
                let rty = self.cx.fresh();
                // Single irrefutable variable rule: bind the parameter
                // directly (common case, avoids a trivial match).
                if rules.len() == 1 {
                    if let Pat::Var(name, _) = &rules[0].pat {
                        if !matches!(
                            self.lookup(name),
                            Some(Binding::Ctor(_, _)) | Some(Binding::Exn(_))
                        ) {
                            self.push_scope();
                            let v = self.vars.fresh(name);
                            self.bind(name, Binding::Val(v, Scheme::mono(pty.clone())));
                            let (tb, bty) = self.infer_exp(&rules[0].exp)?;
                            self.unify_at(span, &bty, &rty)?;
                            self.pop_scope();
                            return Ok((
                                TExp::Fn {
                                    param: v,
                                    pty: pty.clone(),
                                    rty: rty.clone(),
                                    body: Box::new(tb),
                                },
                                Ty::arrow(pty, rty),
                            ));
                        }
                    }
                }
                let pv = self.vars.fresh("arg");
                let trules = self.infer_rules(rules, &pty, &rty)?;
                let body = TExp::Case {
                    scrut: Box::new(TExp::Var(pv, pty.clone())),
                    sty: pty.clone(),
                    rules: trules,
                    rty: rty.clone(),
                    span,
                };
                Ok((
                    TExp::Fn {
                        param: pv,
                        pty: pty.clone(),
                        rty: rty.clone(),
                        body: Box::new(body),
                    },
                    Ty::arrow(pty, rty),
                ))
            }
            Exp::Let(decs, body, _) => {
                self.push_scope();
                let mut tdecs = Vec::new();
                for d in decs {
                    tdecs.extend(self.infer_dec(d)?);
                }
                let mut tes = Vec::new();
                let mut last_ty = Ty::Unit;
                for (i, e) in body.iter().enumerate() {
                    let (te, ty) = self.infer_exp(e)?;
                    tes.push(te);
                    if i == body.len() - 1 {
                        last_ty = ty;
                    }
                }
                self.pop_scope();
                let body_exp = if tes.len() == 1 {
                    tes.into_iter().next().unwrap()
                } else {
                    TExp::Seq(tes)
                };
                Ok((
                    TExp::Let {
                        decs: tdecs,
                        body: Box::new(body_exp),
                    },
                    last_ty,
                ))
            }
            Exp::Seq(es, _) => {
                let mut tes = Vec::new();
                let mut last_ty = Ty::Unit;
                for (i, e) in es.iter().enumerate() {
                    let (te, ty) = self.infer_exp(e)?;
                    tes.push(te);
                    if i == es.len() - 1 {
                        last_ty = ty;
                    }
                }
                Ok((TExp::Seq(tes), last_ty))
            }
            Exp::Raise(e, _) => {
                let (te, ty) = self.infer_exp(e)?;
                self.unify_at(span, &ty, &Ty::Exn)?;
                let rty = self.cx.fresh();
                Ok((TExp::Raise(Box::new(te), rty.clone()), rty))
            }
            Exp::Handle(e, rules, _) => {
                let (te, ty) = self.infer_exp(e)?;
                let trules = self.infer_rules(rules, &Ty::Exn, &ty)?;
                Ok((
                    TExp::Handle {
                        body: Box::new(te),
                        rules: trules,
                        rty: ty.clone(),
                        span,
                    },
                    ty,
                ))
            }
            Exp::Ascribe(e, t, _) => {
                let (te, ty) = self.infer_exp(e)?;
                let want = self.ty_of_tyexp(t, span)?;
                self.unify_at(span, &ty, &want)?;
                Ok((te, want))
            }
        }
    }

    fn infer_var(&mut self, name: &str, span: Span) -> Result<(TExp, Ty), TypeError> {
        // `op+`-style references are expanded to overloaded lambdas by the
        // lowerer; here they become Overload/Eq-producing functions.
        if let Some(rest) = name.strip_prefix("op") {
            if !rest.is_empty() && self.lookup(name).is_none() {
                return self.infer_op_section(rest, span);
            }
        }
        match self.lookup(name).cloned() {
            Some(Binding::Val(v, scheme)) => {
                let ty = self.cx.instantiate(&scheme);
                Ok((TExp::Var(v, ty.clone()), ty))
            }
            Some(Binding::Builtin(b)) => {
                let ty = b.fresh_ty(&mut self.cx);
                Ok((TExp::Builtin(b, ty.clone()), ty))
            }
            Some(Binding::Ctor(tycon, con)) => {
                let dt = self.data.get(tycon);
                let arity = dt.arity;
                let arg = dt.constructors[con.0 as usize].arg.clone();
                let targs: Vec<Ty> = (0..arity).map(|_| self.cx.fresh()).collect();
                let res_ty = Ty::Con(tycon, targs.clone());
                match arg {
                    None => Ok((
                        TExp::Con {
                            tycon,
                            con,
                            targs,
                            arg: None,
                        },
                        res_ty,
                    )),
                    Some(s) => {
                        let arg_ty = self.scheme_to_ty(&s, &targs);
                        Ok((
                            TExp::ConVal { tycon, con, targs },
                            Ty::arrow(arg_ty, res_ty),
                        ))
                    }
                }
            }
            Some(Binding::Exn(id)) => match self.exns.get(id).arg.clone() {
                None => Ok((TExp::ExCon { exn: id, arg: None }, Ty::Exn)),
                Some(at) => Ok((TExp::ExnVal(id), Ty::arrow(lty_to_ty(&at), Ty::Exn))),
            },
            None => Err(TypeError::new(format!("unbound variable `{name}`"), span)),
        }
    }

    /// `op +` and friends, used as first-class functions.
    fn infer_op_section(&mut self, sym: &str, span: Span) -> Result<(TExp, Ty), TypeError> {
        let p = self.vars.fresh("p");
        let a = self.vars.fresh("a");
        let b = self.vars.fresh("b");
        let (body, opnd_ty, res_ty): (TExp, Ty, Ty) = match sym {
            "+" | "-" | "*" => {
                let t = builtins::fresh_num(&mut self.cx);
                let op = match sym {
                    "+" => OvOp::Add,
                    "-" => OvOp::Sub,
                    _ => OvOp::Mul,
                };
                (
                    TExp::Overload {
                        op,
                        args: vec![TExp::Var(a, t.clone()), TExp::Var(b, t.clone())],
                        ty: t.clone(),
                        span,
                    },
                    t.clone(),
                    t,
                )
            }
            "<" | "<=" | ">" | ">=" => {
                let t = builtins::fresh_ord(&mut self.cx);
                let op = match sym {
                    "<" => OvOp::Lt,
                    "<=" => OvOp::Le,
                    ">" => OvOp::Gt,
                    _ => OvOp::Ge,
                };
                (
                    TExp::Overload {
                        op,
                        args: vec![TExp::Var(a, t.clone()), TExp::Var(b, t.clone())],
                        ty: t.clone(),
                        span,
                    },
                    t,
                    Ty::Bool,
                )
            }
            "=" => {
                let t = self.cx.fresh();
                (
                    TExp::Eq {
                        lhs: Box::new(TExp::Var(a, t.clone())),
                        rhs: Box::new(TExp::Var(b, t.clone())),
                        ty: t.clone(),
                        negate: false,
                        span,
                    },
                    t,
                    Ty::Bool,
                )
            }
            "div" | "mod" => (
                TExp::Prim {
                    prim: if sym == "div" { Prim::IDiv } else { Prim::IMod },
                    args: vec![TExp::Var(a, Ty::Int), TExp::Var(b, Ty::Int)],
                },
                Ty::Int,
                Ty::Int,
            ),
            "/" => (
                TExp::Prim {
                    prim: Prim::RDiv,
                    args: vec![TExp::Var(a, Ty::Real), TExp::Var(b, Ty::Real)],
                },
                Ty::Real,
                Ty::Real,
            ),
            "^" => (
                TExp::Prim {
                    prim: Prim::StrConcat,
                    args: vec![TExp::Var(a, Ty::Str), TExp::Var(b, Ty::Str)],
                },
                Ty::Str,
                Ty::Str,
            ),
            "::" => {
                let t = self.cx.fresh();
                (
                    TExp::Con {
                        tycon: kit_lambda::ty::LIST,
                        con: kit_lambda::ty::CONS,
                        targs: vec![t.clone()],
                        arg: Some(Box::new(TExp::Tuple(vec![
                            TExp::Var(a, t.clone()),
                            TExp::Var(b, Ty::list(t.clone())),
                        ]))),
                    },
                    t.clone(),
                    Ty::list(t),
                )
            }
            other => {
                return Err(TypeError::new(
                    format!("`op {other}` is not supported"),
                    span,
                ));
            }
        };
        // fn p => case p of (a, b) => body
        let (a_ty, b_ty) = match sym {
            "::" => (opnd_ty.clone(), Ty::list(opnd_ty.clone())),
            _ => (opnd_ty.clone(), opnd_ty.clone()),
        };
        let p_ty = Ty::Tuple(vec![a_ty.clone(), b_ty.clone()]);
        let case = TExp::Case {
            scrut: Box::new(TExp::Var(p, p_ty.clone())),
            sty: p_ty.clone(),
            rules: vec![TRule {
                pat: TPat::Tuple(vec![TPat::Var(a, a_ty), TPat::Var(b, b_ty)]),
                exp: body,
            }],
            rty: res_ty.clone(),
            span,
        };
        Ok((
            TExp::Fn {
                param: p,
                pty: p_ty.clone(),
                rty: res_ty.clone(),
                body: Box::new(case),
            },
            Ty::arrow(p_ty, res_ty),
        ))
    }

    fn infer_app(&mut self, f: &Exp, a: &Exp, span: Span) -> Result<(TExp, Ty), TypeError> {
        // Constructor / exception application is built directly.
        if let Exp::Var(name, _) = f {
            match self.lookup(name).cloned() {
                Some(Binding::Ctor(tycon, con)) => {
                    let dt = self.data.get(tycon);
                    let arity = dt.arity;
                    if let Some(s) = dt.constructors[con.0 as usize].arg.clone() {
                        let targs: Vec<Ty> = (0..arity).map(|_| self.cx.fresh()).collect();
                        let arg_ty = self.scheme_to_ty(&s, &targs);
                        let (ta, tya) = self.infer_exp(a)?;
                        self.unify_at(span, &tya, &arg_ty)?;
                        return Ok((
                            TExp::Con {
                                tycon,
                                con,
                                targs: targs.clone(),
                                arg: Some(Box::new(ta)),
                            },
                            Ty::Con(tycon, targs),
                        ));
                    }
                }
                Some(Binding::Exn(id)) => {
                    if let Some(at) = self.exns.get(id).arg.clone() {
                        let (ta, tya) = self.infer_exp(a)?;
                        self.unify_at(span, &tya, &lty_to_ty(&at))?;
                        return Ok((
                            TExp::ExCon {
                                exn: id,
                                arg: Some(Box::new(ta)),
                            },
                            Ty::Exn,
                        ));
                    }
                }
                _ => {}
            }
        }
        let (tf, fty) = self.infer_exp(f)?;
        let (ta, aty) = self.infer_exp(a)?;
        let r = self.cx.fresh();
        self.unify_at(span, &fty, &Ty::arrow(aty, r.clone()))?;
        Ok((TExp::App(Box::new(tf), Box::new(ta)), r))
    }

    fn infer_binop(
        &mut self,
        op: BinOp,
        a: &Exp,
        b: &Exp,
        span: Span,
    ) -> Result<(TExp, Ty), TypeError> {
        let (ta, tya) = self.infer_exp(a)?;
        let (tb, tyb) = self.infer_exp(b)?;
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let t = builtins::fresh_num(&mut self.cx);
                self.unify_at(span, &tya, &t)?;
                self.unify_at(span, &tyb, &t)?;
                let ov = match op {
                    BinOp::Add => OvOp::Add,
                    BinOp::Sub => OvOp::Sub,
                    _ => OvOp::Mul,
                };
                Ok((
                    TExp::Overload {
                        op: ov,
                        args: vec![ta, tb],
                        ty: t.clone(),
                        span,
                    },
                    t,
                ))
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let t = builtins::fresh_ord(&mut self.cx);
                self.unify_at(span, &tya, &t)?;
                self.unify_at(span, &tyb, &t)?;
                let ov = match op {
                    BinOp::Lt => OvOp::Lt,
                    BinOp::Le => OvOp::Le,
                    BinOp::Gt => OvOp::Gt,
                    _ => OvOp::Ge,
                };
                Ok((
                    TExp::Overload {
                        op: ov,
                        args: vec![ta, tb],
                        ty: t,
                        span,
                    },
                    Ty::Bool,
                ))
            }
            BinOp::Div | BinOp::Mod => {
                self.unify_at(span, &tya, &Ty::Int)?;
                self.unify_at(span, &tyb, &Ty::Int)?;
                let p = if op == BinOp::Div {
                    Prim::IDiv
                } else {
                    Prim::IMod
                };
                Ok((
                    TExp::Prim {
                        prim: p,
                        args: vec![ta, tb],
                    },
                    Ty::Int,
                ))
            }
            BinOp::RDiv => {
                self.unify_at(span, &tya, &Ty::Real)?;
                self.unify_at(span, &tyb, &Ty::Real)?;
                Ok((
                    TExp::Prim {
                        prim: Prim::RDiv,
                        args: vec![ta, tb],
                    },
                    Ty::Real,
                ))
            }
            BinOp::Eq | BinOp::Neq => {
                self.unify_at(span, &tya, &tyb)?;
                Ok((
                    TExp::Eq {
                        lhs: Box::new(ta),
                        rhs: Box::new(tb),
                        ty: tya,
                        negate: op == BinOp::Neq,
                        span,
                    },
                    Ty::Bool,
                ))
            }
            BinOp::Concat => {
                self.unify_at(span, &tya, &Ty::Str)?;
                self.unify_at(span, &tyb, &Ty::Str)?;
                Ok((
                    TExp::Prim {
                        prim: Prim::StrConcat,
                        args: vec![ta, tb],
                    },
                    Ty::Str,
                ))
            }
            BinOp::Assign => {
                let cell = self.cx.fresh();
                self.unify_at(span, &tya, &Ty::Ref(Box::new(cell.clone())))?;
                self.unify_at(span, &tyb, &cell)?;
                Ok((
                    TExp::Prim {
                        prim: Prim::RefSet,
                        args: vec![ta, tb],
                    },
                    Ty::Unit,
                ))
            }
            BinOp::Compose => {
                // f o g  =  let vf = f; vg = g in fn x => vf (vg x)
                let x = self.vars.fresh("x");
                let ax = self.cx.fresh();
                let bx = self.cx.fresh();
                let cx2 = self.cx.fresh();
                self.unify_at(span, &tyb, &Ty::arrow(ax.clone(), bx.clone()))?;
                self.unify_at(span, &tya, &Ty::arrow(bx.clone(), cx2.clone()))?;
                let vf = self.vars.fresh("f");
                let vg = self.vars.fresh("g");
                let body = TExp::App(
                    Box::new(TExp::Var(vf, tya.clone())),
                    Box::new(TExp::App(
                        Box::new(TExp::Var(vg, tyb.clone())),
                        Box::new(TExp::Var(x, ax.clone())),
                    )),
                );
                let lam = TExp::Fn {
                    param: x,
                    pty: ax.clone(),
                    rty: cx2.clone(),
                    body: Box::new(body),
                };
                let exp = TExp::Let {
                    decs: vec![
                        TDec::Val {
                            pat: TPat::Var(vf, tya),
                            rhs: ta,
                            span,
                        },
                        TDec::Val {
                            pat: TPat::Var(vg, tyb),
                            rhs: tb,
                            span,
                        },
                    ],
                    body: Box::new(lam),
                };
                Ok((exp, Ty::arrow(ax, cx2)))
            }
        }
    }
}

/// Converts a closed `LTy` (exception argument types) back to an inference
/// type.
fn lty_to_ty(t: &kit_lambda::ty::LTy) -> Ty {
    use kit_lambda::ty::LTy;
    match t {
        LTy::TyVar(_) => Ty::Unit, // exception args must be closed; erased
        LTy::Int => Ty::Int,
        LTy::Bool => Ty::Bool,
        LTy::Unit => Ty::Unit,
        LTy::Real => Ty::Real,
        LTy::Str => Ty::Str,
        LTy::Exn => Ty::Exn,
        LTy::Con(c, ts) => Ty::Con(*c, ts.iter().map(lty_to_ty).collect()),
        LTy::Arrow(a, b) => Ty::arrow(lty_to_ty(a), lty_to_ty(b)),
        LTy::Tuple(ts) => Ty::Tuple(ts.iter().map(lty_to_ty).collect()),
        LTy::Ref(t) => Ty::Ref(Box::new(lty_to_ty(t))),
        LTy::Array(t) => Ty::Array(Box::new(lty_to_ty(t))),
    }
}

/// SML value restriction: only syntactic values may be generalized.
fn is_value(e: &Exp) -> bool {
    match e {
        Exp::Fn(_, _)
        | Exp::Int(_, _)
        | Exp::Real(_, _)
        | Exp::Str(_, _)
        | Exp::Bool(_, _)
        | Exp::Unit(_)
        | Exp::Var(_, _) => true,
        Exp::Tuple(es, _) | Exp::List(es, _) => es.iter().all(is_value),
        Exp::Cons(h, t, _) => is_value(h) && is_value(t),
        Exp::Ascribe(e, _, _) => is_value(e),
        _ => false,
    }
}
