//! Pattern-match compilation to `LambdaExp` decision trees.
//!
//! A first-column matrix algorithm (Augustsson-style):
//!
//! * irrefutable tests (wildcards, variables, tuples) are resolved without
//!   branching — variables by substituting the occurrence variable into the
//!   rule body, tuples by destructuring the occurrence once with `Select`s;
//! * the first refutable column of the first row decides the branch
//!   construct (`SwitchCon`/`SwitchInt`/`SwitchStr`/`SwitchExn`/`If`);
//! * rows without a test at the branched occurrence flow into every arm and
//!   the default, preserving first-match semantics.
//!
//! Rule bodies may be duplicated across branches; duplicated copies are
//! alpha-renamed so variable ids stay globally unique (a requirement of the
//! optimizer and region inference). Pattern variables never produce `let`
//! bindings: the occurrence variable is substituted directly.

use crate::texp::TPat;
use kit_lambda::exp::{LExp, VarId, VarTable};
use kit_lambda::opt::inline::rename_clone;
use kit_lambda::opt::simplify::subst_atomic;
use kit_lambda::ty::{ConId, DataEnv, ExnId, LTy, TyConId};
use std::collections::HashMap;

/// Placeholder type for compiler-introduced binders whose precise type is
/// irrelevant downstream (region inference recomputes types bottom-up).
pub const UNKNOWN_TY: LTy = LTy::TyVar(u32::MAX);

/// Shared state for match compilation.
pub struct MatchCtx<'a> {
    /// Variable table for fresh temporaries.
    pub vars: &'a mut VarTable,
    /// Datatype environment (for signature-completeness checks).
    pub data: &'a DataEnv,
}

#[derive(Debug, Clone)]
struct Row {
    cols: Vec<(VarId, TPat)>,
    subst: Vec<(VarId, VarId)>, // pattern var -> occurrence var
    body: usize,
}

/// Compiles a match over the occurrence variables `occs`.
///
/// Each row pairs one pattern per occurrence with a rule body. `default`
/// must contain no binders (it is cloned freely); it is typically
/// `raise Match`, `raise Bind`, or a re-raise.
pub fn compile(
    mc: &mut MatchCtx<'_>,
    occs: &[VarId],
    rows: Vec<(Vec<TPat>, LExp)>,
    default: &LExp,
) -> LExp {
    let mut bodies = Vec::new();
    let mut mrows = Vec::new();
    for (i, (pats, body)) in rows.into_iter().enumerate() {
        assert_eq!(pats.len(), occs.len(), "row arity mismatch");
        bodies.push(body);
        mrows.push(Row {
            cols: occs.iter().copied().zip(pats).collect(),
            subst: Vec::new(),
            body: i,
        });
    }
    let mut st = Solver {
        mc,
        bodies,
        used: vec![false; mrows.len()],
        default,
    };
    st.solve(mrows)
}

struct Solver<'a, 'b> {
    mc: &'a mut MatchCtx<'b>,
    bodies: Vec<LExp>,
    used: Vec<bool>,
    default: &'a LExp,
}

impl Solver<'_, '_> {
    fn emit_body(&mut self, row: &Row) -> LExp {
        let mut e = if self.used[row.body] {
            rename_clone(&self.bodies[row.body], self.mc.vars, &mut HashMap::new())
        } else {
            self.used[row.body] = true;
            self.bodies[row.body].clone()
        };
        for (pvar, occ) in &row.subst {
            subst_atomic(&mut e, *pvar, &LExp::Var(*occ));
        }
        e
    }

    fn solve(&mut self, mut rows: Vec<Row>) -> LExp {
        if rows.is_empty() {
            return self.default.clone();
        }
        // Normalize the first row: drop irrefutable-variable tests.
        {
            let Row { cols, subst, .. } = &mut rows[0];
            cols.retain_mut(|(occ, pat)| match pat {
                TPat::Wild => false,
                TPat::Var(v, _) => {
                    subst.push((*v, *occ));
                    false
                }
                _ => true,
            });
        }
        if rows[0].cols.is_empty() {
            let row0 = rows[0].clone();
            return self.emit_body(&row0);
        }
        let (occ, pat) = rows[0].cols[0].clone();
        match pat {
            TPat::Wild | TPat::Var(_, _) => unreachable!("normalized above"),
            TPat::Tuple(ps) => self.destructure_tuple(occ, ps.len(), rows),
            TPat::Int(_) => self.branch_int(occ, rows),
            TPat::Str(_) => self.branch_str(occ, rows),
            TPat::Bool(_) => self.branch_bool(occ, rows),
            TPat::Con { tycon, .. } => self.branch_con(occ, tycon, rows),
            TPat::Exn { .. } => self.branch_exn(occ, rows),
        }
    }

    /// Destructures the tuple at `occ` once, expanding tuple tests at `occ`
    /// in every row into component tests.
    fn destructure_tuple(&mut self, occ: VarId, arity: usize, mut rows: Vec<Row>) -> LExp {
        let comps: Vec<VarId> = (0..arity)
            .map(|i| self.mc.vars.fresh(&format!("t{i}")))
            .collect();
        for row in &mut rows {
            let mut new_cols = Vec::new();
            for (o, p) in std::mem::take(&mut row.cols) {
                if o == occ {
                    match p {
                        TPat::Tuple(ps) => {
                            assert_eq!(ps.len(), arity, "tuple pattern arity mismatch");
                            new_cols.extend(comps.iter().copied().zip(ps));
                        }
                        TPat::Wild => {}
                        TPat::Var(v, _) => row.subst.push((v, occ)),
                        other => panic!("non-tuple pattern {other:?} at tuple occurrence"),
                    }
                } else {
                    new_cols.push((o, p));
                }
            }
            row.cols = new_cols;
        }
        let inner = self.solve(rows);
        comps
            .into_iter()
            .enumerate()
            .rev()
            .fold(inner, |acc, (i, c)| LExp::Let {
                var: c,
                ty: UNKNOWN_TY,
                rhs: Box::new(LExp::Select {
                    i,
                    arity,
                    tup: Box::new(LExp::Var(occ)),
                }),
                body: Box::new(acc),
            })
    }

    /// Rows relevant when `occ` is known to match constructor-like key `k`.
    /// Rows without a test at `occ` are kept (they match anything).
    fn specialize<K: PartialEq + Clone>(
        rows: &[Row],
        occ: VarId,
        key: &K,
        get_key: impl Fn(&TPat) -> Option<K>,
        expand: impl Fn(&mut Row, TPat),
    ) -> Vec<Row> {
        let mut out = Vec::new();
        for row in rows {
            match row.cols.iter().position(|(o, _)| *o == occ) {
                None => out.push(row.clone()),
                Some(ix) => {
                    let pat = &row.cols[ix].1;
                    match get_key(pat) {
                        Some(ref k2) if k2 == key => {
                            let mut r = row.clone();
                            let (_, p) = r.cols.remove(ix);
                            expand(&mut r, p);
                            out.push(r);
                        }
                        Some(_) => {}
                        None => {
                            // Variable/wildcard at this occurrence: matches.
                            let mut r = row.clone();
                            let (_, p) = r.cols.remove(ix);
                            match p {
                                TPat::Wild => {}
                                TPat::Var(v, _) => r.subst.push((v, occ)),
                                other => {
                                    panic!("mixed pattern kinds at occurrence: {other:?}")
                                }
                            }
                            out.push(r);
                        }
                    }
                }
            }
        }
        out
    }

    /// Rows still relevant when no arm matched.
    fn default_rows(rows: &[Row], occ: VarId) -> Vec<Row> {
        rows.iter()
            .filter_map(|row| match row.cols.iter().position(|(o, _)| *o == occ) {
                None => Some(row.clone()),
                Some(ix) => match &row.cols[ix].1 {
                    TPat::Wild | TPat::Var(_, _) => {
                        let mut r = row.clone();
                        let (_, p) = r.cols.remove(ix);
                        if let TPat::Var(v, _) = p {
                            r.subst.push((v, occ));
                        }
                        Some(r)
                    }
                    _ => None,
                },
            })
            .collect()
    }

    fn keys_of<K: PartialEq + Clone>(
        rows: &[Row],
        occ: VarId,
        get_key: impl Fn(&TPat) -> Option<K>,
    ) -> Vec<K> {
        let mut keys: Vec<K> = Vec::new();
        for row in rows {
            if let Some((_, p)) = row.cols.iter().find(|(o, _)| *o == occ) {
                if let Some(k) = get_key(p) {
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
            }
        }
        keys
    }

    fn branch_int(&mut self, occ: VarId, rows: Vec<Row>) -> LExp {
        let get = |p: &TPat| match p {
            TPat::Int(n) => Some(*n),
            _ => None,
        };
        let keys = Self::keys_of(&rows, occ, get);
        let arms = keys
            .into_iter()
            .map(|k| {
                let spec = Self::specialize(&rows, occ, &k, get, |_, _| {});
                (k, self.solve(spec))
            })
            .collect();
        let def = self.solve(Self::default_rows(&rows, occ));
        LExp::SwitchInt {
            scrut: Box::new(LExp::Var(occ)),
            arms,
            default: Box::new(def),
        }
    }

    fn branch_str(&mut self, occ: VarId, rows: Vec<Row>) -> LExp {
        let get = |p: &TPat| match p {
            TPat::Str(s) => Some(s.clone()),
            _ => None,
        };
        let keys = Self::keys_of(&rows, occ, get);
        let arms = keys
            .into_iter()
            .map(|k| {
                let spec = Self::specialize(&rows, occ, &k, get, |_, _| {});
                (k, self.solve(spec))
            })
            .collect();
        let def = self.solve(Self::default_rows(&rows, occ));
        LExp::SwitchStr {
            scrut: Box::new(LExp::Var(occ)),
            arms,
            default: Box::new(def),
        }
    }

    fn branch_bool(&mut self, occ: VarId, rows: Vec<Row>) -> LExp {
        let get = |p: &TPat| match p {
            TPat::Bool(b) => Some(*b),
            _ => None,
        };
        let t = self.solve(Self::specialize(&rows, occ, &true, get, |_, _| {}));
        let f = self.solve(Self::specialize(&rows, occ, &false, get, |_, _| {}));
        LExp::If(Box::new(LExp::Var(occ)), Box::new(t), Box::new(f))
    }

    fn branch_con(&mut self, occ: VarId, tycon: TyConId, rows: Vec<Row>) -> LExp {
        let get = |p: &TPat| match p {
            TPat::Con { con, .. } => Some(*con),
            _ => None,
        };
        let keys: Vec<ConId> = Self::keys_of(&rows, occ, get);
        let mut arms = Vec::new();
        for k in &keys {
            // Fresh variable for the constructor argument in this arm.
            let carries = self.mc.data.get(tycon).constructors[k.0 as usize]
                .arg
                .is_some();
            let argv = carries.then(|| self.mc.vars.fresh("conarg"));
            let spec = Self::specialize(&rows, occ, k, get, |r, p| {
                if let TPat::Con { arg: Some(ap), .. } = p {
                    r.cols.insert(0, (argv.expect("carrying constructor"), *ap));
                } else if let TPat::Con { arg: None, .. } = p {
                    // nullary: nothing to expand
                }
            });
            let inner = self.solve(spec);
            let arm = match argv {
                Some(v) => LExp::Let {
                    var: v,
                    ty: UNKNOWN_TY,
                    rhs: Box::new(LExp::DeCon {
                        tycon,
                        con: *k,
                        scrut: Box::new(LExp::Var(occ)),
                    }),
                    body: Box::new(inner),
                },
                None => inner,
            };
            arms.push((*k, arm));
        }
        let complete = keys.len() == self.mc.data.get(tycon).constructors.len();
        let default = if complete {
            None
        } else {
            Some(Box::new(self.solve(Self::default_rows(&rows, occ))))
        };
        LExp::SwitchCon {
            scrut: Box::new(LExp::Var(occ)),
            tycon,
            arms,
            default,
        }
    }

    fn branch_exn(&mut self, occ: VarId, rows: Vec<Row>) -> LExp {
        let get = |p: &TPat| match p {
            TPat::Exn { exn, .. } => Some(*exn),
            _ => None,
        };
        let keys: Vec<ExnId> = Self::keys_of(&rows, occ, get);
        let mut arms = Vec::new();
        for k in &keys {
            let argv = self.mc.vars.fresh("exnarg");
            let mut used_arg = false;
            let spec = Self::specialize(&rows, occ, k, get, |r, p| {
                if let TPat::Exn { arg: Some(ap), .. } = p {
                    r.cols.insert(0, (argv, *ap));
                }
            });
            // Determine whether any row binds the argument.
            for row in &spec {
                if row.cols.iter().any(|(o, _)| *o == argv) {
                    used_arg = true;
                }
            }
            let inner = self.solve(spec);
            let arm = if used_arg {
                LExp::Let {
                    var: argv,
                    ty: UNKNOWN_TY,
                    rhs: Box::new(LExp::DeExn {
                        exn: *k,
                        scrut: Box::new(LExp::Var(occ)),
                    }),
                    body: Box::new(inner),
                }
            } else {
                inner
            };
            arms.push((*k, arm));
        }
        // Exceptions are an open type: always emit a default.
        let default = Box::new(self.solve(Self::default_rows(&rows, occ)));
        LExp::SwitchExn {
            scrut: Box::new(LExp::Var(occ)),
            arms,
            default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;
    use kit_lambda::eval::{eval, Value};
    use kit_lambda::ty::{ExnEnv, CONS, LIST, NIL};

    fn list_pat(ps: Vec<TPat>) -> TPat {
        // [p1, p2, ...] as nested cons patterns
        let mut out = TPat::Con {
            tycon: LIST,
            con: NIL,
            targs: vec![Ty::Int],
            arg: None,
        };
        for p in ps.into_iter().rev() {
            out = TPat::Con {
                tycon: LIST,
                con: CONS,
                targs: vec![Ty::Int],
                arg: Some(Box::new(TPat::Tuple(vec![p, out]))),
            };
        }
        out
    }

    fn int_list(vals: &[i64]) -> LExp {
        let mut out = LExp::Con {
            tycon: LIST,
            con: NIL,
            targs: vec![],
            arg: None,
        };
        for v in vals.iter().rev() {
            out = LExp::Con {
                tycon: LIST,
                con: CONS,
                targs: vec![],
                arg: Some(Box::new(LExp::Record(vec![LExp::Int(*v), out]))),
            };
        }
        out
    }

    fn run(e: &LExp) -> i64 {
        match eval(e, &ExnEnv::new(), Some(1_000_000)).unwrap().value {
            Value::Int(n) => n,
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn compiles_list_length_style_match() {
        // case xs of nil => 0 | x :: _ => x
        let mut vars = VarTable::new();
        let data = DataEnv::new();
        let xs = vars.fresh("xs");
        let x = vars.fresh("x");
        let rows = vec![
            (vec![list_pat(vec![])], LExp::Int(0)),
            (
                vec![TPat::Con {
                    tycon: LIST,
                    con: CONS,
                    targs: vec![Ty::Int],
                    arg: Some(Box::new(TPat::Tuple(vec![
                        TPat::Var(x, Ty::Int),
                        TPat::Wild,
                    ]))),
                }],
                LExp::Var(x),
            ),
        ];
        let mut mc = MatchCtx {
            vars: &mut vars,
            data: &data,
        };
        let tree = compile(&mut mc, &[xs], rows, &LExp::Int(-1));
        // Exhaustive: no default in the switch.
        let LExp::SwitchCon { default: None, .. } = &tree else {
            panic!("expected exhaustive switch, got {tree:?}")
        };
        let prog = LExp::Let {
            var: xs,
            ty: UNKNOWN_TY,
            rhs: Box::new(int_list(&[42, 1])),
            body: Box::new(tree),
        };
        assert_eq!(run(&prog), 42);
    }

    #[test]
    fn first_match_priority_with_literals() {
        // case n of 0 => 10 | 1 => 11 | _ => 99
        let mut vars = VarTable::new();
        let data = DataEnv::new();
        let n = vars.fresh("n");
        let rows = vec![
            (vec![TPat::Int(0)], LExp::Int(10)),
            (vec![TPat::Int(1)], LExp::Int(11)),
            (vec![TPat::Wild], LExp::Int(99)),
        ];
        let mut mc = MatchCtx {
            vars: &mut vars,
            data: &data,
        };
        let tree = compile(&mut mc, &[n], rows, &LExp::Int(-1));
        for (v, expect) in [(0, 10), (1, 11), (7, 99)] {
            let prog = LExp::Let {
                var: n,
                ty: UNKNOWN_TY,
                rhs: Box::new(LExp::Int(v)),
                body: Box::new(tree.clone()),
            };
            assert_eq!(run(&prog), expect, "scrut {v}");
        }
    }

    #[test]
    fn multi_column_tuple_rows() {
        // fun f 0 y = y | f x 0 = x | f x y = x + y (two occurrences)
        let mut vars = VarTable::new();
        let data = DataEnv::new();
        let a = vars.fresh("a");
        let b = vars.fresh("b");
        let x1 = vars.fresh("x");
        let y1 = vars.fresh("y");
        let x2 = vars.fresh("x");
        let y2 = vars.fresh("y");
        let rows = vec![
            (vec![TPat::Int(0), TPat::Var(y1, Ty::Int)], LExp::Var(y1)),
            (vec![TPat::Var(x1, Ty::Int), TPat::Int(0)], LExp::Var(x1)),
            (
                vec![TPat::Var(x2, Ty::Int), TPat::Var(y2, Ty::Int)],
                LExp::Prim(
                    kit_lambda::exp::Prim::IAdd,
                    vec![LExp::Var(x2), LExp::Var(y2)],
                ),
            ),
        ];
        let mut mc = MatchCtx {
            vars: &mut vars,
            data: &data,
        };
        let tree = compile(&mut mc, &[a, b], rows, &LExp::Int(-1));
        let mk = |av: i64, bv: i64, t: &LExp| LExp::Let {
            var: a,
            ty: UNKNOWN_TY,
            rhs: Box::new(LExp::Int(av)),
            body: Box::new(LExp::Let {
                var: b,
                ty: UNKNOWN_TY,
                rhs: Box::new(LExp::Int(bv)),
                body: Box::new(t.clone()),
            }),
        };
        assert_eq!(run(&mk(0, 5, &tree)), 5);
        assert_eq!(run(&mk(5, 0, &tree)), 5);
        assert_eq!(run(&mk(3, 4, &tree)), 7);
    }

    #[test]
    fn default_reached_when_no_rule_matches() {
        let mut vars = VarTable::new();
        let data = DataEnv::new();
        let n = vars.fresh("n");
        let rows = vec![(vec![TPat::Int(1)], LExp::Int(1))];
        let mut mc = MatchCtx {
            vars: &mut vars,
            data: &data,
        };
        let tree = compile(&mut mc, &[n], rows, &LExp::Int(-7));
        let prog = LExp::Let {
            var: n,
            ty: UNKNOWN_TY,
            rhs: Box::new(LExp::Int(9)),
            body: Box::new(tree),
        };
        assert_eq!(run(&prog), -7);
    }
}
