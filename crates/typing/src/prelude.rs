//! The MiniML prelude, compiled in front of every program.
//!
//! A small subset of the SML Basis list/utility functions, written to avoid
//! polymorphic equality (which MiniML supports only at ground types; see
//! the crate docs).

/// The prelude source.
pub const PRELUDE: &str = r#"
fun ignore _ = ()
fun fst (x, _) = x
fun snd (_, y) = y
fun id x = x

fun hd (x :: _) = x
fun tl (_ :: xs) = xs
fun null nil = true
  | null _ = false

fun append (nil, ys) = ys
  | append (x :: xs, ys) = x :: append (xs, ys)

fun rev xs =
  let
    fun go (nil, acc) = acc
      | go (x :: xs, acc) = go (xs, x :: acc)
  in
    go (xs, nil)
  end

fun length xs =
  let
    fun go (nil, n) = n
      | go (_ :: xs, n) = go (xs, n + 1)
  in
    go (xs, 0)
  end

fun map f nil = nil
  | map f (x :: xs) = f x :: map f xs

fun app f nil = ()
  | app f (x :: xs) = (f x; app f xs)

fun foldl f b nil = b
  | foldl f b (x :: xs) = foldl f (f (x, b)) xs

fun foldr f b nil = b
  | foldr f b (x :: xs) = f (x, foldr f b xs)

fun filter p nil = nil
  | filter p (x :: xs) = if p x then x :: filter p xs else filter p xs

fun exists p nil = false
  | exists p (x :: xs) = p x orelse exists p xs

fun all p nil = true
  | all p (x :: xs) = p x andalso all p xs

fun nth (x :: _, 0) = x
  | nth (_ :: xs, n) = nth (xs, n - 1)
  | nth (nil, _) = raise Subscript

fun take (_, 0) = nil
  | take (x :: xs, n) = x :: take (xs, n - 1)
  | take (nil, _) = raise Subscript

fun drop (xs, 0) = xs
  | drop (_ :: xs, n) = drop (xs, n - 1)
  | drop (nil, _) = raise Subscript

fun tabulate (n, f) =
  let
    fun go i = if i >= n then nil else f i :: go (i + 1)
  in
    go 0
  end

fun min (a, b) = if a < b then a else b
fun max (a, b) = if a > b then a else b

fun concat nil = ""
  | concat (s :: ss) = s ^ concat ss

fun upto (lo, hi) = if lo > hi then nil else lo :: upto (lo + 1, hi)
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_parses() {
        let p = kit_syntax::parse_program(PRELUDE).expect("prelude must parse");
        assert!(p.decs.len() >= 20);
    }
}
