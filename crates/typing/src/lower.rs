//! Lowering from the typed AST to `LambdaExp`.
//!
//! This is where all remaining static decisions are made:
//!
//! * overloaded operators are resolved against their (now final) types;
//! * polymorphic equality is expanded to type-specific code — primitive
//!   comparisons for base types, inline field comparisons for tuples, and
//!   generated recursive functions for datatypes (after Elsman's tag-free
//!   polymorphic equality);
//! * patterns are compiled to decision trees ([`crate::matchc`]);
//! * builtins are either applied directly (becoming primitives) or
//!   eta-expanded into closures;
//! * `while` loops become tail-recursive `Fix` functions.

use crate::matchc::{self, MatchCtx, UNKNOWN_TY};
use crate::texp::{OvOp, TDec, TExp, TFun, TPat};
use crate::types::{InferCtx, Ty, TypeError};
use kit_lambda::exp::{FixFun, LExp, Prim, VarId, VarTable};
use kit_lambda::ty::{ConId, DataEnv, ExnEnv, LTy, TyConId, EXN_BIND, EXN_MATCH};
use kit_lambda::LProgram;
use kit_syntax::Span;
use std::collections::HashMap;

/// Lowers the fully inferred program to `LambdaExp`.
///
/// # Errors
///
/// Fails on equality at a type that is not ground (functions, arrays of
/// functions, or residual type variables).
pub fn lower_program(
    cx: InferCtx,
    data: DataEnv,
    exns: ExnEnv,
    vars: VarTable,
    tdecs: Vec<TDec>,
    result: TExp,
    result_ty: Ty,
) -> Result<LProgram, TypeError> {
    let mut lw = Lower {
        cx,
        data,
        exns,
        vars,
        eq_memo: HashMap::new(),
        eq_defs: Vec::new(),
    };
    let core = lw.lower_exp(&result)?;
    let mut body = lw.lower_decs(&tdecs, core)?;
    if !lw.eq_defs.is_empty() {
        body = LExp::Fix {
            funs: std::mem::take(&mut lw.eq_defs),
            body: Box::new(body),
        };
    }
    let result_ty = lw.cx.to_lty(&result_ty);
    Ok(LProgram {
        data: lw.data,
        exns: lw.exns,
        vars: lw.vars,
        body,
        result_ty,
    })
}

struct Lower {
    cx: InferCtx,
    data: DataEnv,
    exns: ExnEnv,
    vars: VarTable,
    eq_memo: HashMap<LTy, VarId>,
    eq_defs: Vec<FixFun>,
}

impl Lower {
    fn lty(&self, t: &Ty) -> LTy {
        self.cx.to_lty(t)
    }

    fn raise_exn(&self, exn: kit_lambda::ty::ExnId) -> LExp {
        LExp::Raise {
            exp: Box::new(LExp::ExCon { exn, arg: None }),
            ty: UNKNOWN_TY,
        }
    }

    fn lower_decs(&mut self, decs: &[TDec], inner: LExp) -> Result<LExp, TypeError> {
        let mut out = inner;
        for dec in decs.iter().rev() {
            out = match dec {
                TDec::Val { pat, rhs, span: _ } => {
                    let rhs = self.lower_exp(rhs)?;
                    match pat {
                        TPat::Var(v, t) => LExp::Let {
                            var: *v,
                            ty: self.lty(t),
                            rhs: Box::new(rhs),
                            body: Box::new(out),
                        },
                        TPat::Wild => LExp::Let {
                            var: self.vars.fresh("_"),
                            ty: UNKNOWN_TY,
                            rhs: Box::new(rhs),
                            body: Box::new(out),
                        },
                        _ => {
                            let sv = self.vars.fresh("bind");
                            let default = self.raise_exn(EXN_BIND);
                            let mut mc = MatchCtx {
                                vars: &mut self.vars,
                                data: &self.data,
                            };
                            let tree = matchc::compile(
                                &mut mc,
                                &[sv],
                                vec![(vec![pat.clone()], out)],
                                &default,
                            );
                            LExp::Let {
                                var: sv,
                                ty: UNKNOWN_TY,
                                rhs: Box::new(rhs),
                                body: Box::new(tree),
                            }
                        }
                    }
                }
                TDec::Fun(tfuns) => {
                    let mut funs = Vec::new();
                    for f in tfuns {
                        funs.push(self.lower_fun(f)?);
                    }
                    LExp::Fix {
                        funs,
                        body: Box::new(out),
                    }
                }
            };
        }
        Ok(out)
    }

    fn lower_fun(&mut self, f: &TFun) -> Result<FixFun, TypeError> {
        let param_vars: Vec<VarId> = f.params.iter().map(|(v, _)| *v).collect();
        let mut rows = Vec::new();
        for (pats, body) in &f.clauses {
            rows.push((pats.clone(), self.lower_exp(body)?));
        }
        let default = self.raise_exn(EXN_MATCH);
        let mut mc = MatchCtx {
            vars: &mut self.vars,
            data: &self.data,
        };
        let tree = matchc::compile(&mut mc, &param_vars, rows, &default);

        // Curried lowering: the Fix function takes the first parameter and
        // returns nested lambdas for the rest. (A later optimizer pass
        // uncurries saturated calls.)
        let ptys: Vec<LTy> = f.params.iter().map(|(_, t)| self.lty(t)).collect();
        let ret_lty = self.lty(&f.ret);
        let mut body = tree;
        let mut rty = ret_lty;
        for i in (1..f.params.len()).rev() {
            body = LExp::Fn {
                params: vec![(param_vars[i], ptys[i].clone())],
                ret: rty.clone(),
                body: Box::new(body),
            };
            rty = LTy::arrow(ptys[i].clone(), rty);
        }
        Ok(FixFun {
            var: f.var,
            params: vec![(param_vars[0], ptys[0].clone())],
            ret: rty,
            body,
        })
    }

    fn lower_exp(&mut self, e: &TExp) -> Result<LExp, TypeError> {
        match e {
            TExp::Int(n) => Ok(LExp::Int(*n)),
            TExp::Real(r) => Ok(LExp::Real(*r)),
            TExp::Str(s) => Ok(LExp::Str(s.clone())),
            TExp::Bool(b) => Ok(LExp::Bool(*b)),
            TExp::Unit => Ok(LExp::Unit),
            TExp::Var(v, _) => Ok(LExp::Var(*v)),
            TExp::Builtin(b, ty) => Ok(self.eta_builtin(*b, ty)),
            TExp::Con {
                tycon,
                con,
                targs,
                arg,
            } => {
                let targs: Vec<LTy> = targs.iter().map(|t| self.lty(t)).collect();
                let arg = match arg {
                    Some(a) => Some(Box::new(self.lower_exp(a)?)),
                    None => None,
                };
                Ok(LExp::Con {
                    tycon: *tycon,
                    con: *con,
                    targs,
                    arg,
                })
            }
            TExp::ConVal { tycon, con, targs } => {
                let targs_l: Vec<LTy> = targs.iter().map(|t| self.lty(t)).collect();
                let arg_ty = self
                    .data
                    .con_arg_ty(*tycon, *con, &targs_l)
                    .expect("ConVal of nullary constructor");
                let p = self.vars.fresh("conv");
                Ok(LExp::Fn {
                    params: vec![(p, arg_ty)],
                    ret: LTy::Con(*tycon, targs_l.clone()),
                    body: Box::new(LExp::Con {
                        tycon: *tycon,
                        con: *con,
                        targs: targs_l,
                        arg: Some(Box::new(LExp::Var(p))),
                    }),
                })
            }
            TExp::ExCon { exn, arg } => {
                let arg = match arg {
                    Some(a) => Some(Box::new(self.lower_exp(a)?)),
                    None => None,
                };
                Ok(LExp::ExCon { exn: *exn, arg })
            }
            TExp::ExnVal(exn) => {
                let arg_ty = self
                    .exns
                    .get(*exn)
                    .arg
                    .clone()
                    .expect("ExnVal of nullary exception");
                let p = self.vars.fresh("exnv");
                Ok(LExp::Fn {
                    params: vec![(p, arg_ty)],
                    ret: LTy::Exn,
                    body: Box::new(LExp::ExCon {
                        exn: *exn,
                        arg: Some(Box::new(LExp::Var(p))),
                    }),
                })
            }
            TExp::Tuple(es) => {
                let es = es
                    .iter()
                    .map(|e| self.lower_exp(e))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(LExp::Record(es))
            }
            TExp::App(f, a) => self.lower_app(f, a),
            TExp::Fn {
                param,
                pty,
                rty,
                body,
            } => Ok(LExp::Fn {
                params: vec![(*param, self.lty(pty))],
                ret: self.lty(rty),
                body: Box::new(self.lower_exp(body)?),
            }),
            TExp::Let { decs, body } => {
                let inner = self.lower_exp(body)?;
                self.lower_decs(decs, inner)
            }
            TExp::Seq(es) => {
                let mut out = None;
                for e in es.iter().rev() {
                    let le = self.lower_exp(e)?;
                    out = Some(match out {
                        None => le,
                        Some(rest) => LExp::Let {
                            var: self.vars.fresh("_"),
                            ty: UNKNOWN_TY,
                            rhs: Box::new(le),
                            body: Box::new(rest),
                        },
                    });
                }
                Ok(out.unwrap_or(LExp::Unit))
            }
            TExp::If(c, t, f) => Ok(LExp::If(
                Box::new(self.lower_exp(c)?),
                Box::new(self.lower_exp(t)?),
                Box::new(self.lower_exp(f)?),
            )),
            TExp::While(c, b) => {
                let loopv = self.vars.fresh("while");
                let c = self.lower_exp(c)?;
                let b = self.lower_exp(b)?;
                let again = LExp::Let {
                    var: self.vars.fresh("_"),
                    ty: UNKNOWN_TY,
                    rhs: Box::new(b),
                    body: Box::new(LExp::App(Box::new(LExp::Var(loopv)), vec![])),
                };
                let fun = FixFun {
                    var: loopv,
                    params: vec![],
                    ret: LTy::Unit,
                    body: LExp::If(Box::new(c), Box::new(again), Box::new(LExp::Unit)),
                };
                Ok(LExp::Fix {
                    funs: vec![fun],
                    body: Box::new(LExp::App(Box::new(LExp::Var(loopv)), vec![])),
                })
            }
            TExp::Case {
                scrut, rules, span, ..
            } => {
                let scrut = self.lower_exp(scrut)?;
                let rows = rules
                    .iter()
                    .map(|r| Ok((vec![r.pat.clone()], self.lower_exp(&r.exp)?)))
                    .collect::<Result<Vec<_>, TypeError>>()?;
                let sv = self.vars.fresh("scrut");
                let default = self.raise_exn(EXN_MATCH);
                let mut mc = MatchCtx {
                    vars: &mut self.vars,
                    data: &self.data,
                };
                let tree = matchc::compile(&mut mc, &[sv], rows, &default);
                let _ = span;
                Ok(LExp::Let {
                    var: sv,
                    ty: UNKNOWN_TY,
                    rhs: Box::new(scrut),
                    body: Box::new(tree),
                })
            }
            TExp::Raise(e, ty) => Ok(LExp::Raise {
                exp: Box::new(self.lower_exp(e)?),
                ty: self.lty(ty),
            }),
            TExp::Handle {
                body, rules, span, ..
            } => {
                let body = self.lower_exp(body)?;
                let ev = self.vars.fresh("exn");
                let rows = rules
                    .iter()
                    .map(|r| Ok((vec![r.pat.clone()], self.lower_exp(&r.exp)?)))
                    .collect::<Result<Vec<_>, TypeError>>()?;
                // Unhandled exceptions re-raise.
                let default = LExp::Raise {
                    exp: Box::new(LExp::Var(ev)),
                    ty: UNKNOWN_TY,
                };
                let mut mc = MatchCtx {
                    vars: &mut self.vars,
                    data: &self.data,
                };
                let tree = matchc::compile(&mut mc, &[ev], rows, &default);
                let _ = span;
                Ok(LExp::Handle {
                    body: Box::new(body),
                    var: ev,
                    handler: Box::new(tree),
                })
            }
            TExp::Overload { op, args, ty, span } => self.lower_overload(*op, args, ty, *span),
            TExp::Eq {
                lhs,
                rhs,
                ty,
                negate,
                span,
            } => {
                let l = self.lower_exp(lhs)?;
                let r = self.lower_exp(rhs)?;
                let lty = self.lty(ty);
                let eq = self.eq_exp(&lty, l, r, *span)?;
                Ok(if *negate {
                    LExp::If(
                        Box::new(eq),
                        Box::new(LExp::Bool(false)),
                        Box::new(LExp::Bool(true)),
                    )
                } else {
                    eq
                })
            }
            TExp::Prim { prim, args } => {
                let args = args
                    .iter()
                    .map(|a| self.lower_exp(a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(LExp::Prim(*prim, args))
            }
        }
    }

    /// Application, with builtins and constructors applied directly.
    fn lower_app(&mut self, f: &TExp, a: &TExp) -> Result<LExp, TypeError> {
        match f {
            TExp::Builtin(b, _) => {
                let (prim, arity) = b.prim();
                if arity == 1 {
                    let a = self.lower_exp(a)?;
                    return Ok(LExp::Prim(prim, vec![a]));
                }
                if let TExp::Tuple(es) = a {
                    if es.len() == arity {
                        let args = es
                            .iter()
                            .map(|e| self.lower_exp(e))
                            .collect::<Result<Vec<_>, _>>()?;
                        return Ok(LExp::Prim(prim, args));
                    }
                }
                // The tuple argument is not syntactic: bind and project.
                let a = self.lower_exp(a)?;
                let t = self.vars.fresh("args");
                let args = (0..arity)
                    .map(|i| LExp::Select {
                        i,
                        arity,
                        tup: Box::new(LExp::Var(t)),
                    })
                    .collect();
                return Ok(LExp::Let {
                    var: t,
                    ty: UNKNOWN_TY,
                    rhs: Box::new(a),
                    body: Box::new(LExp::Prim(prim, args)),
                });
            }
            TExp::ConVal { tycon, con, targs } => {
                let targs: Vec<LTy> = targs.iter().map(|t| self.lty(t)).collect();
                let a = self.lower_exp(a)?;
                return Ok(LExp::Con {
                    tycon: *tycon,
                    con: *con,
                    targs,
                    arg: Some(Box::new(a)),
                });
            }
            TExp::ExnVal(exn) => {
                let a = self.lower_exp(a)?;
                return Ok(LExp::ExCon {
                    exn: *exn,
                    arg: Some(Box::new(a)),
                });
            }
            _ => {}
        }
        let f = self.lower_exp(f)?;
        let a = self.lower_exp(a)?;
        Ok(LExp::App(Box::new(f), vec![a]))
    }

    /// Eta-expands a builtin referenced as a value.
    fn eta_builtin(&mut self, b: crate::builtins::Builtin, ty: &Ty) -> LExp {
        let (prim, arity) = b.prim();
        let lty = self.lty(ty);
        let (pty, rty) = match &lty {
            LTy::Arrow(p, r) => ((**p).clone(), (**r).clone()),
            _ => (UNKNOWN_TY, UNKNOWN_TY),
        };
        let p = self.vars.fresh("bi");
        let body = if arity == 1 {
            LExp::Prim(prim, vec![LExp::Var(p)])
        } else {
            let args = (0..arity)
                .map(|i| LExp::Select {
                    i,
                    arity,
                    tup: Box::new(LExp::Var(p)),
                })
                .collect();
            LExp::Prim(prim, args)
        };
        LExp::Fn {
            params: vec![(p, pty)],
            ret: rty,
            body: Box::new(body),
        }
    }

    fn lower_overload(
        &mut self,
        op: OvOp,
        args: &[TExp],
        ty: &Ty,
        span: Span,
    ) -> Result<LExp, TypeError> {
        let largs = args
            .iter()
            .map(|a| self.lower_exp(a))
            .collect::<Result<Vec<_>, _>>()?;
        let lty = self.lty(ty);
        use OvOp::*;
        let prim = match (&lty, op) {
            (LTy::Int, Add) => Prim::IAdd,
            (LTy::Int, Sub) => Prim::ISub,
            (LTy::Int, Mul) => Prim::IMul,
            (LTy::Int, Neg) => Prim::INeg,
            (LTy::Int, Abs) => Prim::IAbs,
            (LTy::Int, Lt) => Prim::ILt,
            (LTy::Int, Le) => Prim::ILe,
            (LTy::Int, Gt) => Prim::IGt,
            (LTy::Int, Ge) => Prim::IGe,
            (LTy::Real, Add) => Prim::RAdd,
            (LTy::Real, Sub) => Prim::RSub,
            (LTy::Real, Mul) => Prim::RMul,
            (LTy::Real, Neg) => Prim::RNeg,
            (LTy::Real, Abs) => Prim::RAbs,
            (LTy::Real, Lt) => Prim::RLt,
            (LTy::Real, Le) => Prim::RLe,
            (LTy::Real, Gt) => Prim::RGt,
            (LTy::Real, Ge) => Prim::RGe,
            (LTy::Str, cmp @ (Lt | Le | Gt | Ge)) => {
                return self.lower_str_cmp(cmp, largs);
            }
            (other, _) => {
                return Err(TypeError::new(
                    format!("overloaded operator used at non-overloadable type {other}"),
                    span,
                ));
            }
        };
        Ok(LExp::Prim(prim, largs))
    }

    /// String comparisons via `StrLt`, preserving evaluation order.
    fn lower_str_cmp(&mut self, op: OvOp, mut args: Vec<LExp>) -> Result<LExp, TypeError> {
        let b = args.pop().expect("binary comparison");
        let a = args.pop().expect("binary comparison");
        let va = self.vars.fresh("sa");
        let vb = self.vars.fresh("sb");
        let not = |e: LExp| {
            LExp::If(
                Box::new(e),
                Box::new(LExp::Bool(false)),
                Box::new(LExp::Bool(true)),
            )
        };
        let body = match op {
            OvOp::Lt => LExp::Prim(Prim::StrLt, vec![LExp::Var(va), LExp::Var(vb)]),
            OvOp::Gt => LExp::Prim(Prim::StrLt, vec![LExp::Var(vb), LExp::Var(va)]),
            OvOp::Le => not(LExp::Prim(Prim::StrLt, vec![LExp::Var(vb), LExp::Var(va)])),
            OvOp::Ge => not(LExp::Prim(Prim::StrLt, vec![LExp::Var(va), LExp::Var(vb)])),
            _ => unreachable!("non-comparison string overload"),
        };
        Ok(LExp::Let {
            var: va,
            ty: LTy::Str,
            rhs: Box::new(a),
            body: Box::new(LExp::Let {
                var: vb,
                ty: LTy::Str,
                rhs: Box::new(b),
                body: Box::new(body),
            }),
        })
    }

    // ------------------------------------------------------------- equality

    /// An expression computing structural equality of `l` and `r` at `ty`.
    fn eq_exp(&mut self, ty: &LTy, l: LExp, r: LExp, span: Span) -> Result<LExp, TypeError> {
        match ty {
            LTy::Int | LTy::Bool | LTy::Unit => Ok(LExp::Prim(Prim::IEq, vec![l, r])),
            LTy::Real => Ok(LExp::Prim(Prim::REq, vec![l, r])),
            LTy::Str => Ok(LExp::Prim(Prim::StrEq, vec![l, r])),
            LTy::Ref(_) => Ok(LExp::Prim(Prim::RefEq, vec![l, r])),
            LTy::Array(_) => Ok(LExp::Prim(Prim::ArrEq, vec![l, r])),
            LTy::Tuple(ts) => {
                let va = self.vars.fresh("ea");
                let vb = self.vars.fresh("eb");
                let mut cmp = LExp::Bool(true);
                let arity = ts.len();
                for (i, t) in ts.iter().enumerate().rev() {
                    let field_eq = self.eq_exp(
                        t,
                        LExp::Select {
                            i,
                            arity,
                            tup: Box::new(LExp::Var(va)),
                        },
                        LExp::Select {
                            i,
                            arity,
                            tup: Box::new(LExp::Var(vb)),
                        },
                        span,
                    )?;
                    cmp = if matches!(cmp, LExp::Bool(true)) {
                        field_eq
                    } else {
                        LExp::If(
                            Box::new(field_eq),
                            Box::new(cmp),
                            Box::new(LExp::Bool(false)),
                        )
                    };
                }
                Ok(LExp::Let {
                    var: va,
                    ty: ty.clone(),
                    rhs: Box::new(l),
                    body: Box::new(LExp::Let {
                        var: vb,
                        ty: ty.clone(),
                        rhs: Box::new(r),
                        body: Box::new(cmp),
                    }),
                })
            }
            LTy::Con(tycon, targs) => {
                let f = self.eq_fun(*tycon, targs, span)?;
                Ok(LExp::App(Box::new(LExp::Var(f)), vec![l, r]))
            }
            LTy::Exn => Err(TypeError::new(
                "equality is not defined on exceptions",
                span,
            )),
            LTy::Arrow(_, _) => Err(TypeError::new("equality is not defined on functions", span)),
            LTy::TyVar(_) => Err(TypeError::new(
                "polymorphic equality at a non-ground type is not supported; \
                 pass an explicit comparison function",
                span,
            )),
        }
    }

    /// The (memoized, possibly recursive) equality function for a datatype
    /// instance.
    fn eq_fun(&mut self, tycon: TyConId, targs: &[LTy], span: Span) -> Result<VarId, TypeError> {
        let key = LTy::Con(tycon, targs.to_vec());
        if let Some(v) = self.eq_memo.get(&key) {
            return Ok(*v);
        }
        let name = format!("eq_{}", self.data.get(tycon).name);
        let fv = self.vars.fresh(&name);
        // Insert before generating the body so recursive datatypes tie the
        // knot through the memo table.
        self.eq_memo.insert(key.clone(), fv);

        let x = self.vars.fresh("x");
        let y = self.vars.fresh("y");
        let ctors = self.data.get(tycon).constructors.clone();
        let single = ctors.len() == 1;
        let mut arms = Vec::new();
        for (i, c) in ctors.iter().enumerate() {
            let cid = ConId(i as u32);
            let inner = match &c.arg {
                None => LExp::SwitchCon {
                    scrut: Box::new(LExp::Var(y)),
                    tycon,
                    arms: vec![(cid, LExp::Bool(true))],
                    default: if single {
                        None
                    } else {
                        Some(Box::new(LExp::Bool(false)))
                    },
                },
                Some(s) => {
                    let arg_ty = s.instantiate(targs);
                    let cmp = self.eq_exp(
                        &arg_ty,
                        LExp::DeCon {
                            tycon,
                            con: cid,
                            scrut: Box::new(LExp::Var(x)),
                        },
                        LExp::DeCon {
                            tycon,
                            con: cid,
                            scrut: Box::new(LExp::Var(y)),
                        },
                        span,
                    )?;
                    LExp::SwitchCon {
                        scrut: Box::new(LExp::Var(y)),
                        tycon,
                        arms: vec![(cid, cmp)],
                        default: if single {
                            None
                        } else {
                            Some(Box::new(LExp::Bool(false)))
                        },
                    }
                }
            };
            arms.push((cid, inner));
        }
        let body = LExp::SwitchCon {
            scrut: Box::new(LExp::Var(x)),
            tycon,
            arms,
            default: None,
        };
        self.eq_defs.push(FixFun {
            var: fv,
            params: vec![(x, key.clone()), (y, key)],
            ret: LTy::Bool,
            body,
        });
        Ok(fv)
    }
}
