//! Built-in functions of the initial basis.
//!
//! Each builtin has a type (possibly polymorphic or overloaded, generated
//! fresh per use) and a lowering to a [`Prim`]. Builtins applied directly
//! are lowered to primitive applications; builtins used as values are
//! eta-expanded by the lowerer.

use crate::types::{InferCtx, TvKind, Ty};
use kit_lambda::exp::Prim;

/// A built-in function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `print : string -> unit`
    Print,
    /// `itos : int -> string`
    Itos,
    /// `rtos : real -> string`
    Rtos,
    /// `chr : int -> string`
    Chr,
    /// `real : int -> real`
    RealOf,
    /// `floor : real -> int`
    Floor,
    /// `trunc : real -> int`
    Trunc,
    /// `sqrt : real -> real`
    Sqrt,
    /// `sin : real -> real`
    Sin,
    /// `cos : real -> real`
    Cos,
    /// `atan : real -> real`
    Atan,
    /// `ln : real -> real`
    Ln,
    /// `exp : real -> real`
    Exp,
    /// `size : string -> int`
    Size,
    /// `strsub : string * int -> int`
    StrSub,
    /// `ref : 'a -> 'a ref`
    RefNew,
    /// `array : int * 'a -> 'a array`
    Array,
    /// `asub : 'a array * int -> 'a`
    Asub,
    /// `aupdate : 'a array * int * 'a -> unit`
    Aupdate,
    /// `alength : 'a array -> int`
    Alength,
}

/// All builtins with their source names.
pub const ALL: &[(&str, Builtin)] = &[
    ("print", Builtin::Print),
    ("itos", Builtin::Itos),
    ("rtos", Builtin::Rtos),
    ("chr", Builtin::Chr),
    ("real", Builtin::RealOf),
    ("floor", Builtin::Floor),
    ("trunc", Builtin::Trunc),
    ("sqrt", Builtin::Sqrt),
    ("sin", Builtin::Sin),
    ("cos", Builtin::Cos),
    ("atan", Builtin::Atan),
    ("ln", Builtin::Ln),
    ("exp", Builtin::Exp),
    ("size", Builtin::Size),
    ("strsub", Builtin::StrSub),
    ("ref", Builtin::RefNew),
    ("array", Builtin::Array),
    ("asub", Builtin::Asub),
    ("aupdate", Builtin::Aupdate),
    ("alength", Builtin::Alength),
];

impl Builtin {
    /// A fresh instance of the builtin's type.
    pub fn fresh_ty(self, cx: &mut InferCtx) -> Ty {
        use Builtin::*;
        match self {
            Print => Ty::arrow(Ty::Str, Ty::Unit),
            Itos => Ty::arrow(Ty::Int, Ty::Str),
            Rtos => Ty::arrow(Ty::Real, Ty::Str),
            Chr => Ty::arrow(Ty::Int, Ty::Str),
            RealOf => Ty::arrow(Ty::Int, Ty::Real),
            Floor | Trunc => Ty::arrow(Ty::Real, Ty::Int),
            Sqrt | Sin | Cos | Atan | Ln | Exp => Ty::arrow(Ty::Real, Ty::Real),
            Size => Ty::arrow(Ty::Str, Ty::Int),
            StrSub => Ty::arrow(Ty::Tuple(vec![Ty::Str, Ty::Int]), Ty::Int),
            RefNew => {
                let a = cx.fresh();
                Ty::arrow(a.clone(), Ty::Ref(Box::new(a)))
            }
            Array => {
                let a = cx.fresh();
                Ty::arrow(Ty::Tuple(vec![Ty::Int, a.clone()]), Ty::Array(Box::new(a)))
            }
            Asub => {
                let a = cx.fresh();
                Ty::arrow(Ty::Tuple(vec![Ty::Array(Box::new(a.clone())), Ty::Int]), a)
            }
            Aupdate => {
                let a = cx.fresh();
                Ty::arrow(
                    Ty::Tuple(vec![Ty::Array(Box::new(a.clone())), Ty::Int, a]),
                    Ty::Unit,
                )
            }
            Alength => {
                let a = cx.fresh();
                Ty::arrow(Ty::Array(Box::new(a)), Ty::Int)
            }
        }
    }

    /// The primitive this builtin lowers to, with the number of `LambdaExp`
    /// arguments (tuple parameters are split).
    pub fn prim(self) -> (Prim, usize) {
        use Builtin::*;
        match self {
            Print => (Prim::Print, 1),
            Itos => (Prim::ItoS, 1),
            Rtos => (Prim::RtoS, 1),
            Chr => (Prim::Chr, 1),
            RealOf => (Prim::IntToReal, 1),
            Floor => (Prim::Floor, 1),
            Trunc => (Prim::Trunc, 1),
            Sqrt => (Prim::Sqrt, 1),
            Sin => (Prim::Sin, 1),
            Cos => (Prim::Cos, 1),
            Atan => (Prim::Atan, 1),
            Ln => (Prim::Ln, 1),
            Exp => (Prim::Exp, 1),
            Size => (Prim::StrSize, 1),
            StrSub => (Prim::StrSub, 2),
            RefNew => (Prim::RefNew, 1),
            Array => (Prim::ArrNew, 2),
            Asub => (Prim::ArrSub, 2),
            Aupdate => (Prim::ArrUpd, 3),
            Alength => (Prim::ArrLen, 1),
        }
    }
}

/// A fresh numeric (`int`/`real`) variable — used by overloaded operators.
pub fn fresh_num(cx: &mut InferCtx) -> Ty {
    cx.fresh_kinded(TvKind::Num)
}

/// A fresh ordered (`int`/`real`/`string`) variable.
pub fn fresh_ord(cx: &mut InferCtx) -> Ty {
    cx.fresh_kinded(TvKind::Ord)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_tuple_shape() {
        for (_, b) in ALL {
            let mut cx = InferCtx::new();
            let ty = b.fresh_ty(&mut cx);
            let Ty::Arrow(param, _) = ty else {
                panic!("builtin type must be an arrow")
            };
            let expect = match *param {
                Ty::Tuple(ref ts) => ts.len(),
                _ => 1,
            };
            assert_eq!(b.prim().1, expect, "{b:?}");
        }
    }
}
