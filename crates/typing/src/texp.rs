//! The internal *typed* abstract syntax produced by inference and consumed
//! by lowering.
//!
//! `TExp` sits between the surface AST and `LambdaExp`: names are resolved
//! (variables carry unique [`VarId`]s, constructors carry their datatype
//! ids), every node that needs one carries an inference [`Ty`], but
//! patterns are not yet compiled and overloaded operators are not yet
//! resolved — both happen during lowering, after the enclosing top-level
//! declaration's types are final.

use crate::builtins::Builtin;
use crate::types::Ty;
use kit_lambda::exp::VarId;
use kit_lambda::ty::{ConId, ExnId, TyConId};
use kit_syntax::Span;

/// Overloaded operators (resolved to int/real/string primitives at lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OvOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// unary `~`
    Neg,
    /// `abs`
    Abs,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A typed pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum TPat {
    /// `_` (also used for the unit pattern).
    Wild,
    /// Variable binding.
    Var(VarId, Ty),
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Tuple.
    Tuple(Vec<TPat>),
    /// Datatype constructor.
    Con {
        /// Datatype.
        tycon: TyConId,
        /// Constructor.
        con: ConId,
        /// Type arguments of the datatype at this pattern.
        targs: Vec<Ty>,
        /// Argument pattern for value-carrying constructors.
        arg: Option<Box<TPat>>,
    },
    /// Exception constructor.
    Exn {
        /// The exception.
        exn: ExnId,
        /// Argument pattern.
        arg: Option<Box<TPat>>,
    },
}

impl TPat {
    /// Variables bound by this pattern, in left-to-right order.
    pub fn bound_vars(&self) -> Vec<(VarId, Ty)> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<(VarId, Ty)>) {
        match self {
            TPat::Var(v, t) => out.push((*v, t.clone())),
            TPat::Tuple(ps) => ps.iter().for_each(|p| p.collect_vars(out)),
            TPat::Con { arg: Some(p), .. } | TPat::Exn { arg: Some(p), .. } => p.collect_vars(out),
            _ => {}
        }
    }

    /// `true` if the pattern can never fail to match.
    pub fn irrefutable(&self) -> bool {
        match self {
            TPat::Wild | TPat::Var(_, _) => true,
            TPat::Tuple(ps) => ps.iter().all(TPat::irrefutable),
            _ => false,
        }
    }
}

/// One rule of a match.
#[derive(Debug, Clone, PartialEq)]
pub struct TRule {
    /// The pattern.
    pub pat: TPat,
    /// The right-hand side.
    pub exp: TExp,
}

/// One function of a (possibly mutually recursive) `fun` group.
#[derive(Debug, Clone, PartialEq)]
pub struct TFun {
    /// The bound function variable.
    pub var: VarId,
    /// Fresh parameter variables with their types (curried arguments).
    pub params: Vec<(VarId, Ty)>,
    /// Result type.
    pub ret: Ty,
    /// Clauses: argument patterns (one per parameter) and body.
    pub clauses: Vec<(Vec<TPat>, TExp)>,
    /// Source span (for match-failure diagnostics).
    pub span: Span,
}

/// A typed declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum TDec {
    /// `val pat = exp`.
    Val {
        /// The pattern.
        pat: TPat,
        /// The bound expression.
        rhs: TExp,
        /// Source span.
        span: Span,
    },
    /// A `fun` group.
    Fun(Vec<TFun>),
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TExp {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Unit literal.
    Unit,
    /// Resolved variable (its type is the instantiation at this use).
    Var(VarId, Ty),
    /// Builtin referenced as a value (eta-expanded at lowering if not
    /// directly applied).
    Builtin(Builtin, Ty),
    /// Datatype constructor application (or nullary constant).
    Con {
        /// Datatype.
        tycon: TyConId,
        /// Constructor.
        con: ConId,
        /// Type arguments at this use.
        targs: Vec<Ty>,
        /// Argument.
        arg: Option<Box<TExp>>,
    },
    /// A value-carrying constructor used as a first-class function.
    ConVal {
        /// Datatype.
        tycon: TyConId,
        /// Constructor.
        con: ConId,
        /// Type arguments at this use.
        targs: Vec<Ty>,
    },
    /// Exception constructor application (or nullary exception value).
    ExCon {
        /// The exception.
        exn: ExnId,
        /// Argument.
        arg: Option<Box<TExp>>,
    },
    /// A value-carrying exception constructor used as a function.
    ExnVal(ExnId),
    /// Tuple.
    Tuple(Vec<TExp>),
    /// Application (unary; the surface language is curried).
    App(Box<TExp>, Box<TExp>),
    /// `fn`-abstraction with a single parameter; multi-rule `fn` is
    /// expressed as `Fn { param = x, body = Case (Var x) rules }`.
    Fn {
        /// Parameter.
        param: VarId,
        /// Parameter type.
        pty: Ty,
        /// Result type.
        rty: Ty,
        /// Body.
        body: Box<TExp>,
    },
    /// Local declarations.
    Let {
        /// Declarations, in order.
        decs: Vec<TDec>,
        /// Body.
        body: Box<TExp>,
    },
    /// Sequencing; value of the last expression.
    Seq(Vec<TExp>),
    /// Conditional (`andalso`/`orelse` are desugared to this).
    If(Box<TExp>, Box<TExp>, Box<TExp>),
    /// `while cond do body`.
    While(Box<TExp>, Box<TExp>),
    /// `case scrut of rules`; a failing match raises `Match`.
    Case {
        /// Scrutinee.
        scrut: Box<TExp>,
        /// Its type.
        sty: Ty,
        /// The rules.
        rules: Vec<TRule>,
        /// Result type.
        rty: Ty,
        /// Source span.
        span: Span,
    },
    /// `raise e`.
    Raise(Box<TExp>, Ty),
    /// `e handle rules`; an unhandled exception is re-raised.
    Handle {
        /// Protected expression.
        body: Box<TExp>,
        /// Handler rules (patterns of type `exn`).
        rules: Vec<TRule>,
        /// Result type.
        rty: Ty,
        /// Source span.
        span: Span,
    },
    /// Overloaded operator application; `ty` is the operand type, resolved
    /// at lowering.
    Overload {
        /// The operator.
        op: OvOp,
        /// Operands.
        args: Vec<TExp>,
        /// Operand type.
        ty: Ty,
        /// Source span.
        span: Span,
    },
    /// Polymorphic equality, specialized at lowering; `ty` is the compared
    /// type and must be ground by then.
    Eq {
        /// Left operand.
        lhs: Box<TExp>,
        /// Right operand.
        rhs: Box<TExp>,
        /// Compared type.
        ty: Ty,
        /// `true` for `<>`.
        negate: bool,
        /// Source span.
        span: Span,
    },
    /// Fully resolved primitive application.
    Prim {
        /// The primitive.
        prim: kit_lambda::exp::Prim,
        /// Arguments.
        args: Vec<TExp>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_vars_in_order() {
        let p = TPat::Tuple(vec![
            TPat::Var(VarId(1), Ty::Int),
            TPat::Wild,
            TPat::Var(VarId(2), Ty::Bool),
        ]);
        let vs: Vec<u32> = p.bound_vars().iter().map(|(v, _)| v.0).collect();
        assert_eq!(vs, vec![1, 2]);
    }

    #[test]
    fn irrefutable_patterns() {
        assert!(TPat::Wild.irrefutable());
        assert!(TPat::Tuple(vec![TPat::Wild, TPat::Var(VarId(0), Ty::Int)]).irrefutable());
        assert!(!TPat::Int(3).irrefutable());
    }
}
