//! Elaboration for MiniML: Hindley–Milner type inference, SML-style
//! overloading resolution, pattern-match compilation and lowering to the
//! monomorphic-representation `LambdaExp` IR of [`kit_lambda`].
//!
//! Pipeline position (paper §3): *Elaboration* and *Modules Compilation*
//! collapse into this crate (MiniML has no modules); its output feeds the
//! `kit-lambda` optimizer and then region inference.
//!
//! Design notes:
//!
//! * Polymorphic functions are compiled **once** with erased type
//!   variables — as in the ML Kit, where region polymorphism is orthogonal
//!   to type polymorphism. No allocation happens at a variable type, so the
//!   runtime never needs the erased structure.
//! * SML overloading (`+`, `<`, `abs`, `~` over int/real, `<` also over
//!   strings) is resolved per top-level declaration with defaulting to
//!   `int`, as in the Definition.
//! * Polymorphic equality is specialized at elaboration time into
//!   type-specific code (after Elsman, *Polymorphic equality — no tags
//!   required*), which is what allows the untagged `r` mode to run without
//!   any value tags. Equality at a type that is still a variable after
//!   inference is rejected with a diagnostic.
//!
//! # Examples
//!
//! ```
//! let prog = kit_typing::compile_str("val it = 1 + 2")?;
//! // `prog` is an optimizable `kit_lambda::LProgram`.
//! # Ok::<(), kit_typing::TypeError>(())
//! ```

pub mod builtins;
pub mod infer;
pub mod lower;
pub mod matchc;
pub mod prelude;
pub mod texp;
pub mod types;

use kit_lambda::LProgram;
use kit_syntax::SyntaxError;

pub use types::TypeError;

/// Parses and elaborates `src` (with the standard prelude) to `LambdaExp`.
///
/// # Errors
///
/// Returns a [`TypeError`] for syntax errors (converted) and type errors.
pub fn compile_str(src: &str) -> Result<LProgram, TypeError> {
    let prog = kit_syntax::parse_program(src).map_err(from_syntax)?;
    compile_program(&prog)
}

/// Elaborates an already-parsed program (with the standard prelude).
///
/// # Errors
///
/// Returns a [`TypeError`] on ill-typed input.
pub fn compile_program(prog: &kit_syntax::Program) -> Result<LProgram, TypeError> {
    let prelude = kit_syntax::parse_program(prelude::PRELUDE).expect("prelude must parse");
    infer::elaborate(&prelude, prog)
}

fn from_syntax(e: SyntaxError) -> TypeError {
    TypeError::new(format!("syntax error: {}", e.message()), e.span())
}
