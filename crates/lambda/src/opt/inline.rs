//! Function inlining.
//!
//! Two cases, both standard in contraction-based optimizers:
//!
//! 1. a `let`-bound `fn` used exactly once (as a callee) is inlined and the
//!    binding dropped — no renaming needed because each variable id occurs
//!    in exactly one binder;
//! 2. a `let`-bound `fn` with a small body is inlined at every call site,
//!    with all binders alpha-renamed to keep variable ids globally unique.
//!
//! `Fix`-bound functions whose group is provably non-recursive are first
//! demoted to `let`-bound `fn`s so the rules above apply to them too.

use crate::exp::{FixFun, LExp, LProgram, VarId, VarTable};
use crate::opt::simplify::for_each_child_mut;
use std::collections::HashMap;

/// Runs one inlining pass over the program; returns the number of
/// functions inlined or demoted.
pub fn inline(prog: &mut LProgram, inline_size: usize) -> usize {
    let mut n = 0;
    demote_nonrecursive_fix(&mut prog.body, &mut n);
    inline_lets(&mut prog.body, &mut prog.vars, inline_size, &mut n);
    n
}

/// Rewrites `Fix` groups whose functions never reference the group into
/// nested `Let`-of-`Fn` bindings.
fn demote_nonrecursive_fix(e: &mut LExp, n: &mut usize) {
    for_each_child_mut(e, |c| demote_nonrecursive_fix(c, n));
    if let LExp::Fix { funs, body } = e {
        let group: Vec<VarId> = funs.iter().map(|f| f.var).collect();
        let recursive = funs.iter().any(|f| {
            let fv = f.body.free_vars();
            group.iter().any(|g| fv.contains(g))
        });
        if !recursive {
            let funs = std::mem::take(funs);
            let mut result = std::mem::replace(body, Box::new(LExp::Unit));
            for f in funs.into_iter().rev() {
                let FixFun {
                    var,
                    params,
                    ret,
                    body: fbody,
                } = f;
                let fn_ty = fn_ty_of(&params, &ret);
                result = Box::new(LExp::Let {
                    var,
                    ty: fn_ty,
                    rhs: Box::new(LExp::Fn {
                        params,
                        ret,
                        body: Box::new(fbody),
                    }),
                    body: result,
                });
            }
            *e = *result;
            *n += 1;
        }
    }
}

fn fn_ty_of(params: &[(VarId, crate::ty::LTy)], ret: &crate::ty::LTy) -> crate::ty::LTy {
    use crate::ty::LTy;
    let arg = match params.len() {
        1 => params[0].1.clone(),
        _ => LTy::Tuple(params.iter().map(|(_, t)| t.clone()).collect()),
    };
    LTy::arrow(arg, ret.clone())
}

/// Counts, for every variable, total uses and uses in callee position.
fn count_uses(e: &LExp, uses: &mut HashMap<VarId, (usize, usize)>) {
    if let LExp::Var(v) = e {
        uses.entry(*v).or_default().0 += 1;
        return;
    }
    if let LExp::App(f, args) = e {
        if let LExp::Var(v) = f.as_ref() {
            let ent = uses.entry(*v).or_default();
            ent.0 += 1;
            ent.1 += 1;
        } else {
            count_uses(f, uses);
        }
        for a in args {
            count_uses(a, uses);
        }
        return;
    }
    e.for_each_child(|c| count_uses(c, uses));
}

fn inline_lets(e: &mut LExp, vars: &mut VarTable, inline_size: usize, n: &mut usize) {
    for_each_child_mut(e, |c| inline_lets(c, vars, inline_size, n));
    let LExp::Let { var, rhs, body, .. } = e else {
        return;
    };
    let LExp::Fn { params, .. } = rhs.as_ref() else {
        return;
    };
    let arity = params.len();

    let mut uses = HashMap::new();
    count_uses(body, &mut uses);
    let (total, as_callee) = uses.get(var).copied().unwrap_or((0, 0));
    if total == 0 {
        // Dead function binding (closure creation is pure).
        *e = *std::mem::replace(body, Box::new(LExp::Unit));
        *n += 1;
        return;
    }
    // Only inline when every use is a saturated call.
    if total != as_callee {
        return;
    }
    let small = rhs.size() <= inline_size;
    if total == 1 || small {
        let var = *var;
        let f = std::mem::replace(rhs.as_mut(), LExp::Unit);
        let mut b = std::mem::replace(body.as_mut(), LExp::Unit);
        let mut remaining = total;
        inline_calls(&mut b, var, &f, arity, vars, total > 1, &mut remaining);
        *e = b;
        *n += 1;
    }
}

/// Replaces `App(Var(var), args)` with a beta redex of `f`.
fn inline_calls(
    e: &mut LExp,
    var: VarId,
    f: &LExp,
    arity: usize,
    vars: &mut VarTable,
    rename: bool,
    remaining: &mut usize,
) {
    for_each_child_mut(e, |c| {
        inline_calls(c, var, f, arity, vars, rename, remaining)
    });
    if let LExp::App(callee, args) = e {
        if matches!(callee.as_ref(), LExp::Var(v) if *v == var) && args.len() == arity {
            *remaining -= 1;
            let body = if rename || *remaining > 0 {
                rename_clone(f, vars, &mut HashMap::new())
            } else {
                f.clone()
            };
            **callee = body;
            // The resulting `App(Fn, args)` is beta-reduced by the next
            // simplify round.
        }
    }
}

/// Clones `e`, freshening every binder (alpha renaming), so that variable
/// ids stay globally unique after multi-use inlining.
pub fn rename_clone(e: &LExp, vars: &mut VarTable, map: &mut HashMap<VarId, VarId>) -> LExp {
    let fresh = |v: VarId, vars: &mut VarTable, map: &mut HashMap<VarId, VarId>| {
        let name = format!("{}'", vars.name(v));
        let nv = vars.fresh(&name);
        map.insert(v, nv);
        nv
    };
    match e {
        LExp::Var(v) => LExp::Var(map.get(v).copied().unwrap_or(*v)),
        LExp::Fn { params, ret, body } => {
            let params = params
                .iter()
                .map(|(v, t)| (fresh(*v, vars, map), t.clone()))
                .collect();
            let body = Box::new(rename_clone(body, vars, map));
            LExp::Fn {
                params,
                ret: ret.clone(),
                body,
            }
        }
        LExp::Let { var, ty, rhs, body } => {
            let rhs = Box::new(rename_clone(rhs, vars, map));
            let nv = fresh(*var, vars, map);
            let body = Box::new(rename_clone(body, vars, map));
            LExp::Let {
                var: nv,
                ty: ty.clone(),
                rhs,
                body,
            }
        }
        LExp::Fix { funs, body } => {
            let nvars: Vec<VarId> = funs.iter().map(|f| fresh(f.var, vars, map)).collect();
            let funs = funs
                .iter()
                .zip(nvars)
                .map(|(f, nv)| FixFun {
                    var: nv,
                    params: f
                        .params
                        .iter()
                        .map(|(v, t)| (fresh(*v, vars, map), t.clone()))
                        .collect(),
                    ret: f.ret.clone(),
                    body: rename_clone(&f.body, vars, map),
                })
                .collect();
            let body = Box::new(rename_clone(body, vars, map));
            LExp::Fix { funs, body }
        }
        LExp::Handle { body, var, handler } => {
            let body = Box::new(rename_clone(body, vars, map));
            let nv = fresh(*var, vars, map);
            let handler = Box::new(rename_clone(handler, vars, map));
            LExp::Handle {
                body,
                var: nv,
                handler,
            }
        }
        // Non-binding nodes: clone structurally, renaming children.
        _ => {
            let mut out = e.clone();
            for_each_child_mut(&mut out, |c| {
                let r = rename_clone(c, vars, map);
                *c = r;
            });
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::Prim;
    use crate::opt::simplify::simplify;
    use crate::ty::{DataEnv, ExnEnv, LTy};

    fn mkprog(body: LExp, vars: VarTable) -> LProgram {
        LProgram {
            data: DataEnv::new(),
            exns: ExnEnv::new(),
            vars,
            body,
            result_ty: LTy::Int,
        }
    }

    #[test]
    fn inlines_single_use_function() {
        let mut vars = VarTable::new();
        let f = vars.fresh("f");
        let x = vars.fresh("x");
        // let f = fn x => x + 1 in f 41
        let body = LExp::Let {
            var: f,
            ty: LTy::arrow(LTy::Int, LTy::Int),
            rhs: Box::new(LExp::Fn {
                params: vec![(x, LTy::Int)],
                ret: LTy::Int,
                body: Box::new(LExp::Prim(Prim::IAdd, vec![LExp::Var(x), LExp::Int(1)])),
            }),
            body: Box::new(LExp::App(Box::new(LExp::Var(f)), vec![LExp::Int(41)])),
        };
        let mut p = mkprog(body, vars);
        assert_eq!(inline(&mut p, 40), 1);
        simplify(&mut p.body);
        simplify(&mut p.body);
        assert_eq!(p.body, LExp::Int(42));
    }

    #[test]
    fn multi_use_inlining_renames() {
        let mut vars = VarTable::new();
        let f = vars.fresh("f");
        let x = vars.fresh("x");
        // let f = fn x => x * x in f 3 + f 4
        let body = LExp::Let {
            var: f,
            ty: LTy::arrow(LTy::Int, LTy::Int),
            rhs: Box::new(LExp::Fn {
                params: vec![(x, LTy::Int)],
                ret: LTy::Int,
                body: Box::new(LExp::Prim(Prim::IMul, vec![LExp::Var(x), LExp::Var(x)])),
            }),
            body: Box::new(LExp::Prim(
                Prim::IAdd,
                vec![
                    LExp::App(Box::new(LExp::Var(f)), vec![LExp::Int(3)]),
                    LExp::App(Box::new(LExp::Var(f)), vec![LExp::Int(4)]),
                ],
            )),
        };
        let mut p = mkprog(body, vars);
        assert!(inline(&mut p, 40) > 0);
        simplify(&mut p.body);
        simplify(&mut p.body);
        assert_eq!(p.body, LExp::Int(25));
    }

    #[test]
    fn escaping_function_not_inlined() {
        let mut vars = VarTable::new();
        let f = vars.fresh("f");
        let x = vars.fresh("x");
        // let f = fn x => x in (f, f 1)  — f escapes into a record.
        let body = LExp::Let {
            var: f,
            ty: LTy::arrow(LTy::Int, LTy::Int),
            rhs: Box::new(LExp::Fn {
                params: vec![(x, LTy::Int)],
                ret: LTy::Int,
                body: Box::new(LExp::Var(x)),
            }),
            body: Box::new(LExp::Record(vec![
                LExp::Var(f),
                LExp::App(Box::new(LExp::Var(f)), vec![LExp::Int(1)]),
            ])),
        };
        let before = body.clone();
        let mut p = mkprog(body, vars);
        assert_eq!(inline(&mut p, 40), 0);
        assert_eq!(p.body, before);
    }

    #[test]
    fn demotes_nonrecursive_fix() {
        let mut vars = VarTable::new();
        let f = vars.fresh("f");
        let x = vars.fresh("x");
        let body = LExp::Fix {
            funs: vec![FixFun {
                var: f,
                params: vec![(x, LTy::Int)],
                ret: LTy::Int,
                body: LExp::Var(x),
            }],
            body: Box::new(LExp::App(Box::new(LExp::Var(f)), vec![LExp::Int(7)])),
        };
        let mut p = mkprog(body, vars);
        assert!(inline(&mut p, 40) > 0);
        simplify(&mut p.body);
        simplify(&mut p.body);
        assert_eq!(p.body, LExp::Int(7));
    }

    #[test]
    fn recursive_fix_untouched() {
        let mut vars = VarTable::new();
        let f = vars.fresh("f");
        let x = vars.fresh("x");
        let body = LExp::Fix {
            funs: vec![FixFun {
                var: f,
                params: vec![(x, LTy::Int)],
                ret: LTy::Int,
                body: LExp::App(Box::new(LExp::Var(f)), vec![LExp::Var(x)]),
            }],
            body: Box::new(LExp::Int(1)),
        };
        let before = body.clone();
        let mut p = mkprog(body, vars);
        // Demotion must not fire; the binding is recursive.
        demote_nonrecursive_fix(&mut p.body, &mut 0);
        assert_eq!(p.body, before);
    }
}
